//! Chaos tests: randomized failure schedules against the stacked
//! systems, asserting the invariants the paper promises survive
//! *arbitrary* bad luck, not just the curated scenarios.

use quicksand::cart::{run as run_cart, CartAction, CartScenario};
use quicksand::dynamo::DynamoConfig;
use quicksand::sim::{SimDuration, SimRng, SimTime};
use quicksand::tandem::{build as build_tandem, AppProc, Mode, TandemConfig, TandemMsg};
use rand::Rng;

/// Random partition windows against the cart: whatever the windows, no
/// acknowledged edit is lost and the replicas converge after the last
/// heal.
#[test]
fn cart_survives_randomized_partition_schedules() {
    for seed in 0..8u64 {
        let mut rng = SimRng::new(seed.wrapping_mul(0x9e3779b97f4a7c15));
        let start = rng.gen_range(10..500);
        let dur = rng.gen_range(500..8_000);
        let scenario = CartScenario {
            plans: (0..3)
                .map(|s| {
                    (0..4)
                        .map(|i| {
                            let item = ((s * 4 + i) % 5) as u64;
                            if (s + i) % 4 == 3 {
                                CartAction::Remove { item }
                            } else {
                                CartAction::Add { item, qty: 1 }
                            }
                        })
                        .collect()
                })
                .collect(),
            think: SimDuration::from_millis(rng.gen_range(10..80)),
            partition: Some((SimTime::from_millis(start), SimTime::from_millis(start + dur))),
            horizon: SimTime::from_secs(60),
            dynamo: DynamoConfig::default(),
            n_stores: 5,
            ..CartScenario::default()
        };
        let r = run_cart(&scenario, seed + 1);
        assert_eq!(r.lost_edits, 0, "seed {seed}: {r:?}");
        assert_eq!(r.edits_acked, 12, "seed {seed}: {r:?}");
        assert!(r.converged, "seed {seed}: {r:?}");
    }
}

/// Random multi-pair crash/promote schedules against the Tandem cluster:
/// whichever primaries die and whenever, committed work is never lost
/// and every transaction resolves.
#[test]
fn tandem_survives_randomized_multi_pair_crashes() {
    for seed in 0..6u64 {
        let mut rng = SimRng::new(seed.wrapping_add(77));
        let cfg = TandemConfig {
            mode: if seed % 2 == 0 { Mode::Dp2 } else { Mode::Dp1 },
            n_dps: 3,
            n_apps: 3,
            txns_per_app: 25,
            writes_per_txn: 3,
            mean_interarrival: SimDuration::from_millis(3),
            horizon: SimTime::from_secs(120),
            ..TandemConfig::default()
        };
        let (mut sim, lay) = build_tandem(&cfg, seed);
        // Crash a random subset of primaries at random times, each with
        // a Guardian promote shortly after.
        for (i, (primary, backup)) in lay.pairs.iter().enumerate() {
            if rng.gen_bool(0.7) {
                let at = SimTime::from_millis(rng.gen_range(10..300));
                sim.schedule_crash(at, *primary);
                sim.inject_at(
                    at + SimDuration::from_millis(5),
                    *backup,
                    lay.adp,
                    TandemMsg::Promote,
                );
                let _ = i;
            }
        }
        sim.run_until(cfg.horizon);

        let mut committed = Vec::new();
        let mut aborted = 0u64;
        let mut unresolved = 0u64;
        for app in &lay.apps {
            let a: &AppProc = sim.actor(*app);
            committed.extend(a.committed.iter().copied());
            aborted += a.aborted.len() as u64;
            unresolved += a.unresolved();
        }
        assert_eq!(
            committed.len() as u64 + aborted + unresolved,
            75,
            "seed {seed}: accounting broken"
        );
        assert_eq!(unresolved, 0, "seed {seed}: work stuck forever");
        // Durability audit against the ADP.
        let adp: &quicksand::tandem::Adp = sim.actor(lay.adp);
        for txn in &committed {
            assert!(adp.is_committed(*txn), "seed {seed}: committed {txn} not durable");
            let recs = adp.log().iter().filter(|r| r.txn == *txn).count();
            assert_eq!(
                recs, cfg.writes_per_txn as usize,
                "seed {seed}: committed {txn} missing records"
            );
        }
        if cfg.mode == Mode::Dp1 {
            assert_eq!(aborted, 0, "seed {seed}: DP1 must stay transparent");
        }
    }
}

/// Randomized crash/restart timings against log shipping: resurrection
/// always makes the books whole, wherever the crash lands.
#[test]
fn logship_resurrection_survives_random_crash_timing() {
    use quicksand::logship::{run as run_ship, LogshipConfig, RecoveryPolicy};
    for seed in 0..6u64 {
        let mut rng = SimRng::new(seed.wrapping_mul(31).wrapping_add(5));
        let crash_ms = rng.gen_range(20..400);
        let cfg = LogshipConfig {
            mean_interarrival: SimDuration::from_millis(rng.gen_range(1..5)),
            ship_interval: SimDuration::from_millis(rng.gen_range(5..150)),
            crash_primary_at: Some(SimTime::from_millis(crash_ms)),
            restart_primary_at: Some(SimTime::from_millis(crash_ms + rng.gen_range(500..3000))),
            recovery: RecoveryPolicy::Resurrect,
            horizon: SimTime::from_secs(90),
            ..LogshipConfig::default()
        };
        let expected = (cfg.n_clients as u64) * cfg.ops_per_client;
        let r = run_ship(&cfg, seed + 100);
        assert_eq!(r.lost_acked, 0, "seed {seed} crash@{crash_ms}ms: {r:?}");
        assert_eq!(r.duplicate_applications, 0, "seed {seed}: {r:?}");
        assert_eq!(r.acked, expected, "seed {seed}: clients must finish: {r:?}");
    }
}

/// A crashed node's in-flight spans are closed with `crashed` status,
/// never leaked open: the observability layer must stay honest about
/// work the failure interrupted.
#[test]
fn crashed_nodes_close_their_spans_instead_of_leaking_them() {
    use quicksand::dynamo::{build_cluster, DynamoMsg, Probe, VectorClock};
    use quicksand::sim::{Simulation, SpanStatus};

    for seed in [1u64, 2, 3] {
        let mut sim: Simulation<DynamoMsg<u64>> = Simulation::new(seed);
        let cluster = build_cluster(&mut sim, 4, &DynamoConfig::default());
        let probe = sim.add_node(Probe::<u64>::new());
        for k in 0..20u64 {
            sim.inject_at(
                SimTime::from_millis(k * 2),
                cluster.stores[(k % 4) as usize],
                probe,
                DynamoMsg::ClientPut {
                    req: k,
                    key: k,
                    value: k + 100,
                    context: VectorClock::new(),
                    resp_to: probe,
                },
            );
        }
        // Crash store 1 while it is coordinating puts; never restart it,
        // so nothing can quietly finish its spans later.
        let victim = cluster.stores[1];
        sim.schedule_crash(SimTime::from_millis(11), victim);
        sim.run_until(SimTime::from_secs(10));

        let crashed: Vec<_> = sim
            .spans()
            .spans()
            .iter()
            .filter(|s| s.node == Some(victim) && s.status == SpanStatus::Crashed)
            .collect();
        assert!(
            !crashed.is_empty(),
            "seed {seed}: the crash interrupted no span — scenario lost its teeth"
        );
        let leaked: Vec<_> = sim
            .spans()
            .spans()
            .iter()
            .filter(|s| s.node == Some(victim) && s.status == SpanStatus::Open)
            .collect();
        assert!(leaked.is_empty(), "seed {seed}: leaked open spans: {leaked:?}");
    }
}

/// Crash and restart a Dynamo store node mid-workload: its durable store
/// survives, coordination state is rebuilt, and the cluster still
/// converges with nothing lost.
#[test]
fn dynamo_store_crash_and_restart_loses_nothing() {
    use quicksand::dynamo::{build_cluster, DynamoMsg, Probe, ProbeResult, StoreNode, VectorClock};
    use quicksand::sim::Simulation;

    for seed in [1u64, 2, 3] {
        let mut sim: Simulation<DynamoMsg<u64>> = Simulation::new(seed);
        let cluster = build_cluster(&mut sim, 4, &DynamoConfig::default());
        let probe = sim.add_node(Probe::<u64>::new());
        for k in 0..20u64 {
            sim.inject_at(
                SimTime::from_millis(k * 2),
                cluster.stores[(k % 4) as usize],
                probe,
                DynamoMsg::ClientPut {
                    req: k,
                    key: k,
                    value: k + 100,
                    context: VectorClock::new(),
                    resp_to: probe,
                },
            );
        }
        // Store 1 crashes mid-stream and comes back.
        sim.schedule_crash(SimTime::from_millis(15), cluster.stores[1]);
        sim.schedule_restart(SimTime::from_millis(200), cluster.stores[1]);
        sim.run_until(SimTime::from_secs(10));

        let p: &Probe<u64> = sim.actor(probe);
        let acked: Vec<u64> =
            (0..20).filter(|k| matches!(p.result(*k), Some(ProbeResult::PutOk))).collect();
        assert!(!acked.is_empty(), "seed {seed}: some puts must succeed");
        // Every acknowledged key is present and converged everywhere.
        for k in &acked {
            let reference = sim.actor::<StoreNode<u64>>(cluster.stores[0]).versions(*k).to_vec();
            assert!(!reference.is_empty(), "seed {seed}: acked key {k} vanished");
            for s in &cluster.stores {
                let node: &StoreNode<u64> = sim.actor(*s);
                assert!(
                    quicksand::dynamo::same_versions(node.versions(*k), &reference),
                    "seed {seed}: store {s} diverged on key {k}"
                );
            }
        }
    }
}
