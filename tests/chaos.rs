//! Chaos tests: seed-swept fault plans against every stacked substrate,
//! driven by the [`quicksand::chaos`] harness. Each sweep generates a
//! fresh randomized fault schedule per seed (partitions, one-way
//! splits, crash/restart, link degradation), runs the scenario, checks
//! the substrate's invariant set, and — on failure — shrinks the
//! schedule to a 1-minimal reproducing plan before reporting it. The
//! paper's claim is that these invariants survive *arbitrary* bad luck,
//! not just the curated scenarios; the sweeps here are the claim's
//! standing audit.
//!
//! Seed discipline: sweeps pass raw indices, and the generator runs
//! every index through `mix_seed` (a splitmix64 finalizer) internally —
//! unlike the old `seed.wrapping_mul(0x9e3779b97f4a7c15)` derivation,
//! which mapped seed 0 to the degenerate all-zero stream.

use quicksand::cart::CartMode;
use quicksand::chaos::{
    bank_chaos, cart_chaos, dynamo_chaos, escrow_chaos, eventlog_harness, logship_chaos,
    membership_chaos, mix_seed, tandem_chaos, FaultPlan,
};
use quicksand::dynamo::WorkloadConfig;
use quicksand::eventlog::AckPolicy;
use quicksand::logship::ShipMode;
use quicksand::tandem::Mode;

/// Satellite regression: the old sweep derived RNG seeds with
/// `seed.wrapping_mul(0x9e3779b97f4a7c15)`, which maps sweep index 0 to
/// seed 0 — so the "first" chaos schedule was the degenerate zero
/// stream. `mix_seed` must give index 0 a real stream, and every index
/// a distinct one, which is what makes `sweep(0..n)` mean "n different
/// schedules".
#[test]
fn every_swept_seed_yields_a_distinct_fault_schedule() {
    assert_ne!(mix_seed(0), 0, "index 0 must not degenerate to the zero stream");
    assert_ne!(
        0u64.wrapping_mul(0x9e3779b97f4a7c15),
        1,
        "the old derivation really did map 0 -> 0"
    );

    let spec = cart_chaos(CartMode::OpLog).spec().clone();
    let mut plans: Vec<FaultPlan> = (0..64).map(|s| FaultPlan::generate(s, &spec)).collect();
    assert!(!plans[0].is_empty(), "seed 0 generates a real plan");
    let total = plans.len();
    plans.sort_by_key(|a| a.to_json());
    plans.dedup();
    assert!(
        plans.len() >= total - 2,
        "{} of {total} generated plans were duplicates — seeds are not independent",
        total - plans.len()
    );
}

/// The cart under arbitrary healed schedules, in both reconciliation
/// modes: no acked edit is lost, every planned edit eventually acks,
/// replicas converge, and no causal span leaks open.
#[test]
fn cart_survives_seed_swept_fault_plans() {
    for mode in [CartMode::OpLog, CartMode::OrSet] {
        let report = cart_chaos(mode).sweep(0..16);
        assert_eq!(report.seeds_swept, 16);
        assert!(report.faults_injected.values().sum::<u64>() > 0, "plans must inject faults");
        assert!(report.passed(), "{mode:?}:\n{report}");
    }
}

/// The raw Dynamo workload under the full fault grammar: acked values
/// survive somewhere, hinted handoff + anti-entropy reconverge after
/// the last heal, and the retrying loader always finishes.
#[test]
fn dynamo_workload_survives_seed_swept_fault_plans() {
    let report = dynamo_chaos(WorkloadConfig::default()).sweep(0..16);
    assert_eq!(report.seeds_swept, 16);
    assert!(report.passed(), "{report}");
}

/// Live membership under randomized join/leave/crash/partition plans:
/// standby stores join mid-run, members leave gracefully, and the
/// `no-acked-write-lost-across-rebalance` invariant holds — every acked
/// PUT stays reachable through the **final** ring's preference lists,
/// every rebalance transfer acks, and no durable guess is left open.
#[test]
fn membership_rebalance_survives_seed_swept_join_leave_plans() {
    let report = membership_chaos().sweep(0..12);
    assert_eq!(report.seeds_swept, 12);
    let add = report.faults_injected.get("add_node").copied().unwrap_or(0);
    let remove = report.faults_injected.get("remove_node").copied().unwrap_or(0);
    assert!(
        add > 0 && remove > 0,
        "a 12-seed sweep must exercise both membership clauses (add={add}, remove={remove})"
    );
    assert!(report.passed(), "{report}");
}

/// Process pairs under randomized crash/restart schedules against the
/// primaries (the Tandem bus is reliable by assumption): committed work
/// is never lost and every transaction resolves.
#[test]
fn tandem_survives_seed_swept_crash_plans() {
    for mode in [Mode::Dp1, Mode::Dp2] {
        let report = tandem_chaos(mode).sweep(0..12);
        assert_eq!(report.seeds_swept, 12);
        assert_eq!(
            report.faults_injected.keys().collect::<Vec<_>>(),
            vec!["crash"],
            "tandem's spec admits only crash clauses"
        );
        assert!(report.passed(), "{mode:?}:\n{report}");
    }
}

/// Log shipping with resurrection under randomized primary
/// crash/restart timing: no acked op is lost, nothing is applied twice
/// past dedup, and every client finishes.
#[test]
fn logship_resurrection_survives_seed_swept_crash_plans() {
    for mode in [ShipMode::Asynchronous, ShipMode::Synchronous] {
        let report = logship_chaos(mode).sweep(0..12);
        assert_eq!(report.seeds_swept, 12);
        assert!(report.passed(), "{mode:?}:\n{report}");
    }
}

/// The event log under randomized broker crash/partition plans, once
/// per ack policy: an acked append may be lost only if the policy
/// priced that loss in (§4's spectrum), every priced-in loss shows up
/// as an orphaned guess in the ledger, every planned append eventually
/// acks, and no span leaks open.
#[test]
fn eventlog_acked_appends_survive_seed_swept_fault_plans() {
    for policy in [AckPolicy::Immediate, AckPolicy::OnFsync, AckPolicy::OnReplicate(2)] {
        let report = eventlog_harness(policy).sweep(0..12);
        assert_eq!(report.seeds_swept, 12);
        assert!(report.passed(), "{policy}:\n{report}");
    }
}

/// Check clearing under partition/crash plans projected onto the round
/// axis: faults delay inter-branch knowledge but the books always
/// balance, nothing double-posts, closed statements stay closed, and no
/// span leaks open.
#[test]
fn bank_clearing_survives_seed_swept_fault_plans() {
    let report = bank_chaos().sweep(0..12);
    assert_eq!(report.seeds_swept, 12);
    assert!(report.passed(), "{report}");
}

/// Escrowed stock shares under disconnection: however the plan isolates
/// replicas, the fleet never promises more stock than it holds, the
/// commutative tally conserves every unit, and the replicas agree after
/// the final settlement.
#[test]
fn escrow_never_over_commits_under_seed_swept_fault_plans() {
    let report = escrow_chaos().sweep(0..48);
    assert_eq!(report.seeds_swept, 48);
    assert!(report.passed(), "{report}");
}

/// Acceptance demo: a deliberately planted bug — disabling the gossip
/// re-arm on store restart, so a crashed-and-restarted store never
/// again runs anti-entropy or delivers the hints it holds (the exact
/// bug the first healthy sweep caught in the wild) — is *caught* by the
/// sweep and *shrunk* to a minimal reproducing fault plan. The
/// shrinker's output is the artifact under test: each failure must
/// reproduce from at most 3 clauses, never from the empty plan (a calm
/// run never crashes, so the bug needs a fault to manifest), must keep
/// at least one crash clause, and must blame the convergence invariant.
#[test]
fn planted_dynamo_bug_is_caught_and_shrunk_to_a_minimal_plan() {
    let mut cfg = WorkloadConfig::default();
    cfg.dynamo.rearm_gossip_on_restart = false; // the planted bug

    let run = dynamo_chaos(cfg);
    let report = run.sweep(0..12);
    assert!(!report.passed(), "a 12-seed sweep must catch read-repair-less divergence:\n{report}");
    assert!(report.shrink_runs > 0, "failures must actually be shrunk");

    for failure in &report.failures {
        assert!(
            failure.plan.len() <= 3,
            "seed {}: shrunk plan still has {} clauses:\n{}",
            failure.seed,
            failure.plan.len(),
            failure.plan
        );
        assert!(
            !failure.plan.is_empty(),
            "seed {}: the bug needs a fault to manifest — a calm run converges",
            failure.seed
        );
        assert!(
            failure.plan.faults.iter().any(|f| f.kind() == "crash"),
            "seed {}: the minimal repro must keep the crash that triggers the bug:\n{}",
            failure.seed,
            failure.plan
        );
        assert!(failure.original_len >= failure.plan.len());
        assert!(
            failure.violations.iter().any(|v| v.invariant == "eventual-convergence"),
            "seed {}: expected a convergence violation, got {:?}",
            failure.seed,
            failure.violations
        );
    }

    // The shrunk repro is deterministic: re-running the minimal plan
    // under its seed reproduces the violation outside the driver.
    let worst = &report.failures[0];
    let replay = run.shrink(worst.seed, &worst.plan);
    assert_eq!(replay.plan, worst.plan, "an already-minimal plan shrinks to itself");
    assert!(!replay.violations.is_empty());
}
