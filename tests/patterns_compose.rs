//! Cross-crate integration: the ACID 2.0 certificate applies to every
//! application's operation type, and the core patterns compose the way
//! the paper says they do.

use quicksand::cart::{CartAction, CartOp};
use quicksand::core::acid2;
use quicksand::core::op::OpLog;
use quicksand::core::uniquifier::Uniquifier;
use quicksand::logship::ShipOp;
use rand::SeedableRng;

fn rng() -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(77)
}

#[test]
fn logship_ops_are_certified_acid_2_0() {
    let ops: Vec<ShipOp> = (0..40)
        .map(|i| ShipOp {
            id: Uniquifier::from_parts(1, i),
            account: i % 5,
            delta: (i as i64 % 17) - 8,
        })
        .collect();
    acid2::certify(&ops, 40, &mut rng()).expect("account deltas commute");
}

#[test]
fn cart_adds_alone_are_fully_commutative() {
    let ops: Vec<CartOp> = (0..30)
        .map(|i| CartOp {
            id: Uniquifier::from_parts(2, i),
            action: CartAction::Add { item: i % 4, qty: 1 },
        })
        .collect();
    acid2::certify(&ops, 40, &mut rng()).expect("pure adds are ACID 2.0");
}

#[test]
fn cart_removes_break_raw_commutativity_but_the_oplog_restores_determinism() {
    // Add then Remove of the same item does not commute raw — exactly
    // why the cart stores the *ledger* and materializes canonically.
    let ops = vec![
        CartOp { id: Uniquifier::from_parts(3, 1), action: CartAction::Add { item: 1, qty: 1 } },
        CartOp { id: Uniquifier::from_parts(3, 2), action: CartAction::Remove { item: 1 } },
    ];
    assert!(acid2::check_commutative(&ops, 100, &mut rng()).is_err());
    // But through the log, every arrival order materializes identically.
    acid2::check_associative(&ops, 3, 50, &mut rng()).expect("union + canonical replay");
    acid2::check_idempotent(&ops, 50, &mut rng()).expect("dedup");
}

#[test]
fn oplog_union_reaches_the_same_state_via_any_gossip_topology() {
    // Simulate 4 replicas that gossip along different topologies (ring,
    // star, all-pairs); all must converge to the same state.
    let ops: Vec<ShipOp> = (0..60)
        .map(|i| ShipOp { id: Uniquifier::from_parts(4, i), account: i % 3, delta: i as i64 })
        .collect();
    let seed_logs = |n: usize| -> Vec<OpLog<ShipOp>> {
        let mut logs = vec![OpLog::new(); n];
        for (i, op) in ops.iter().enumerate() {
            logs[i % n].record(op.clone());
        }
        logs
    };
    // Ring gossip, two laps.
    let mut ring = seed_logs(4);
    for _ in 0..2 {
        for i in 0..4 {
            let j = (i + 1) % 4;
            let delta = ring[i].diff(&ring[j]);
            for op in delta {
                ring[j].record(op);
            }
            let delta = ring[j].diff(&ring[i]);
            for op in delta {
                ring[i].record(op);
            }
        }
    }
    // Star gossip through hub 0.
    let mut star = seed_logs(4);
    for _ in 0..2 {
        for i in 1..4 {
            let delta = star[i].diff(&star[0]);
            for op in delta {
                star[0].record(op);
            }
            let delta = star[0].diff(&star[i]);
            for op in delta {
                star[i].record(op);
            }
        }
    }
    let reference = ring[0].materialize();
    for log in ring.iter().chain(star.iter()) {
        assert_eq!(log.materialize(), reference, "topology changed the outcome");
        assert_eq!(log.len(), 60);
    }
}

#[test]
fn derived_uniquifiers_collapse_across_independent_derivations() {
    // Two subsystems independently derive the id for the same business
    // event (a check) and must agree — the §6.2 property that makes
    // deterministic compensation possible.
    let a = Uniquifier::composite("bank:quicksand/acct:9", 144);
    let b = Uniquifier::composite("bank:quicksand/acct:9", 144);
    assert_eq!(a, b);
    let mut log: OpLog<ShipOp> = OpLog::new();
    assert!(log.record(ShipOp { id: a, account: 9, delta: -100 }));
    assert!(!log.record(ShipOp { id: b, account: 9, delta: -100 }));
}
