//! Cross-crate integration: the Tandem substrate under a sweep of seeds,
//! crash times, and modes. The load-bearing invariant from §3: whatever
//! the failure timing, an acknowledged commit is durable — under DP1
//! *and* DP2 — and DP1 additionally never aborts.

use quicksand::sim::{SimDuration, SimTime};
use quicksand::tandem::{run, Mode, TandemConfig};

fn cfg(mode: Mode, crash_ms: Option<u64>) -> TandemConfig {
    TandemConfig {
        mode,
        n_dps: 3,
        n_apps: 3,
        txns_per_app: 25,
        writes_per_txn: 4,
        mean_interarrival: SimDuration::from_millis(3),
        crash_primary_at: crash_ms.map(SimTime::from_millis),
        horizon: SimTime::from_secs(60),
        ..TandemConfig::default()
    }
}

#[test]
fn committed_work_survives_any_crash_timing_under_both_modes() {
    for mode in [Mode::Dp1, Mode::Dp2] {
        for crash_ms in [10u64, 40, 80, 150, 300] {
            for seed in [1u64, 2, 3] {
                let r = run(&cfg(mode, Some(crash_ms)), seed);
                assert_eq!(
                    r.lost_committed, 0,
                    "durability violated: mode={mode} crash={crash_ms}ms seed={seed}: {r:?}"
                );
                assert_eq!(
                    r.committed + r.aborted + r.unresolved,
                    75,
                    "accounting broken: mode={mode} crash={crash_ms}ms seed={seed}: {r:?}"
                );
            }
        }
    }
}

#[test]
fn dp1_never_aborts_dp2_sometimes_does() {
    let mut dp2_aborted_total = 0;
    for seed in [5u64, 6, 7, 8] {
        let r1 = run(&cfg(Mode::Dp1, Some(60)), seed);
        assert_eq!(r1.aborted, 0, "DP1 is transparent (seed {seed}): {r1:?}");
        assert_eq!(r1.committed, 75);
        let r2 = run(&cfg(Mode::Dp2, Some(60)), seed);
        dp2_aborted_total += r2.aborted;
    }
    assert!(dp2_aborted_total > 0, "DP2 should abort in-flight work across these seeds");
}

#[test]
fn failure_free_runs_are_identical_across_modes_in_outcome() {
    for seed in [11u64, 12] {
        let r1 = run(&cfg(Mode::Dp1, None), seed);
        let r2 = run(&cfg(Mode::Dp2, None), seed);
        assert_eq!(r1.committed, 75);
        assert_eq!(r2.committed, 75);
        assert_eq!(r1.aborted + r2.aborted, 0);
        // The 1986 rewrite is strictly cheaper in messages.
        assert!(
            r2.messages < r1.messages,
            "DP2 {} msgs should undercut DP1 {}",
            r2.messages,
            r1.messages
        );
    }
}

#[test]
fn dp2_message_savings_grow_with_transaction_size() {
    let ratio = |writes: u32| {
        let mut c1 = cfg(Mode::Dp1, None);
        c1.writes_per_txn = writes;
        let mut c2 = cfg(Mode::Dp2, None);
        c2.writes_per_txn = writes;
        let r1 = run(&c1, 3);
        let r2 = run(&c2, 3);
        r1.messages as f64 / r2.messages as f64
    };
    assert!(ratio(16) > ratio(2), "bigger txns amplify the checkpoint tax");
}
