//! Observability determinism: the span trees, trace exports, and metric
//! dumps are part of the simulation's deterministic output. Two runs
//! with the same seed must produce byte-identical artifacts, or traces
//! can't be diffed across code changes and repro seeds lose their value.

use quicksand::cart::{run as run_cart, CartScenario};
use quicksand::sim::SimTime;

fn traced_scenario() -> CartScenario {
    CartScenario {
        partition: Some((SimTime::from_millis(20), SimTime::from_secs(5))),
        horizon: SimTime::from_secs(40),
        trace: true,
        ..CartScenario::default()
    }
}

/// Same seed ⇒ byte-identical span JSONL, Chrome trace, rendered span
/// trees, event-trace JSONL, and metrics JSON.
#[test]
fn same_seed_runs_produce_byte_identical_observability_artifacts() {
    let scenario = traced_scenario();
    let a = run_cart(&scenario, 42);
    let b = run_cart(&scenario, 42);

    assert_eq!(a.spans.to_jsonl(), b.spans.to_jsonl());
    assert_eq!(a.spans.to_chrome_trace(), b.spans.to_chrome_trace());
    let trees = |r: &quicksand::cart::CartReport| -> String {
        r.spans.roots().map(|s| r.spans.render_tree(s.id)).collect()
    };
    assert_eq!(trees(&a), trees(&b));
    assert_eq!(a.trace_jsonl, b.trace_jsonl);
    assert!(a.trace_jsonl.is_some(), "tracing was enabled");
    assert_eq!(a.metrics.to_json(), b.metrics.to_json());
    // And the run actually produced something to compare.
    assert!(!a.spans.is_empty());
}

/// Different seeds do diverge — the determinism above isn't because the
/// artifacts are degenerate.
#[test]
fn different_seeds_diverge() {
    let scenario = traced_scenario();
    let a = run_cart(&scenario, 42);
    let b = run_cart(&scenario, 43);
    assert_ne!(a.trace_jsonl, b.trace_jsonl);
}
