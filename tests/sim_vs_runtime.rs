//! Cross-validation of the two engines on the same unmodified actors:
//! the deterministic simulator and the wall-clock multi-threaded
//! runtime both drive [`dynamo::StoreNode`] + [`cart::CrdtShopper`]
//! through an identical workload, and the application-level outcome —
//! which acked edits survive into the reconciled cart — must agree.
//!
//! Two checks:
//! 1. fault-free: the reconciled materialized carts are *exactly*
//!    equal (same items, same quantities);
//! 2. with an induced crash+restart of one store on both engines:
//!    the reconciled item sets are equal and **zero acked adds are
//!    lost** — the §6.4 promise, engine-independent.
//!
//! The workload is add-only with distinct items so the reconciled view
//! is schedule-independent (the OR-Set join is commutative and no
//! remove can race an add); quantities may legitimately exceed the
//! plan under faults because a shopper that retries an unacked edit
//! re-applies it (at-least-once on purpose — §5's "at-least-once +
//! idempotence", where membership, not count, is the idempotent part).

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use cart::{CartAction, CartMode, CartScenario, CrdtCart, CrdtShopper, CART_KEY};
use crdt::Crdt;
use dynamo::{standby_view, DynamoConfig, DynamoMsg, StoreNode};
use quicksand_runtime::{Runtime, RuntimeBuilder};
use sim::{Fault, FaultPlan, NodeId, SimDuration, SimTime};

const N_STORES: u32 = 4;

/// Three shoppers, eight adds each, all items distinct.
fn plans() -> Vec<Vec<CartAction>> {
    (0..3u64)
        .map(|i| {
            (0..8u64).map(|j| CartAction::Add { item: 100 * i + j, qty: j as u32 + 1 }).collect()
        })
        .collect()
}

/// Total quantity each planned item should reach when applied exactly
/// once (retries may inflate it, never deflate it).
fn planned_qtys() -> BTreeMap<u64, u32> {
    let mut m = BTreeMap::new();
    for plan in plans() {
        for a in plan {
            if let CartAction::Add { item, qty } = a {
                m.insert(item, qty);
            }
        }
    }
    m
}

/// Stand up the service on the wall-clock runtime: the same ring
/// construction as [`dynamo::build_crdt_cluster`] (stores at node ids
/// `0..n`), shoppers added after. Mirrored inline because the root
/// package sits below the bench crate in the dependency graph.
fn launch_runtime(seed: u64) -> (Runtime<DynamoMsg<CrdtCart>>, Vec<NodeId>, Vec<NodeId>) {
    let cfg = DynamoConfig::default();
    let view = standby_view(N_STORES, 0);
    let mut b = RuntimeBuilder::new().seed(seed);
    let stores: Vec<NodeId> = (0..N_STORES as usize).map(NodeId).collect();
    for s in 0..N_STORES {
        b.add_node(
            StoreNode::<CrdtCart>::new(s, view.clone(), stores.clone(), cfg.clone())
                .with_sibling_squash(),
        );
    }
    let shoppers: Vec<NodeId> = plans()
        .into_iter()
        .enumerate()
        .map(|(i, plan)| {
            b.add_node(CrdtShopper::new(
                i as u32,
                CART_KEY,
                stores.clone(),
                plan,
                SimDuration::from_millis(5),
            ))
        })
        .collect();
    (b.launch(), stores, shoppers)
}

/// Wait (wall clock) until every shopper acked its whole plan, let
/// anti-entropy converge, then reconcile: join every store's sibling
/// set for the cart key and materialize. Returns (acked edit count,
/// materialized cart).
fn finish_runtime(
    rt: Runtime<DynamoMsg<CrdtCart>>,
    stores: &[NodeId],
    shoppers: &[NodeId],
) -> (u64, BTreeMap<u64, u32>) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        std::thread::sleep(Duration::from_millis(20));
        let done = shoppers.iter().all(|&s| rt.inspect::<CrdtShopper, bool, _>(s, |sh| sh.done()));
        if done {
            break;
        }
        assert!(Instant::now() < deadline, "runtime half did not finish in 60s");
    }
    std::thread::sleep(Duration::from_millis(300));

    let report = rt.shutdown();
    let acked: u64 =
        shoppers.iter().map(|&s| report.actor::<CrdtShopper>(s).acked.len() as u64).sum();
    let mut joined = CrdtCart::new();
    for &s in stores {
        for v in report.actor::<StoreNode<CrdtCart>>(s).versions(CART_KEY) {
            joined.merge(&v.value);
        }
    }
    (acked, joined.materialize())
}

fn sim_run(seed: u64, faults: FaultPlan) -> cart::CartReport {
    let scenario = CartScenario {
        mode: CartMode::OrSet,
        n_stores: N_STORES,
        plans: plans(),
        think: SimDuration::from_millis(5),
        horizon: SimTime::from_secs(60),
        faults,
        ..CartScenario::default()
    };
    cart::run(&scenario, seed)
}

#[test]
fn fault_free_runs_agree_exactly() {
    let seed = 0xC1DE2009;
    let sim = sim_run(seed, FaultPlan::none());
    assert_eq!(sim.lost_edits, 0, "sim lost acked edits fault-free");

    let (rt, stores, shoppers) = launch_runtime(seed);
    let (rt_acked, rt_cart) = finish_runtime(rt, &stores, &shoppers);

    let total_planned: u64 = plans().iter().map(|p| p.len() as u64).sum();
    assert_eq!(rt_acked, total_planned, "every planned edit must ack");
    // Fault-free on a reliable loopback there are no retries, so the
    // reconciled carts agree item-for-item *and* quantity-for-quantity.
    assert_eq!(rt_cart, sim.final_cart, "reconciled carts diverged between engines");
}

#[test]
fn induced_crash_loses_no_acked_adds_on_either_engine() {
    let seed = 0xDEAD2009;
    let victim = NodeId(1);

    // Sim half: crash store 1 at t=30ms, restart at t=130ms.
    let faults = FaultPlan::from_faults(vec![Fault::Crash {
        at: SimTime::from_millis(30),
        node: victim,
        restart_at: Some(SimTime::from_millis(130)),
    }]);
    let sim = sim_run(seed, faults);
    assert_eq!(sim.lost_edits, 0, "sim lost acked edits under crash");

    // Runtime half: same crash/restart induced in wall time.
    let (rt, stores, shoppers) = launch_runtime(seed);
    std::thread::sleep(Duration::from_millis(30));
    rt.crash(victim);
    std::thread::sleep(Duration::from_millis(100));
    rt.restart(victim);
    let (rt_acked, rt_cart) = finish_runtime(rt, &stores, &shoppers);

    // The §6.4 promise on both engines: nothing acked may be lost.
    // With distinct add-only items both reconciled item *sets* are the
    // full plan; quantities may exceed the plan on either engine when a
    // timed-out edit was retried (at-least-once), so only the lower
    // bound is engine-independent.
    let planned = planned_qtys();
    let sim_items: Vec<u64> = sim.final_cart.keys().copied().collect();
    let rt_items: Vec<u64> = rt_cart.keys().copied().collect();
    let want: Vec<u64> = planned.keys().copied().collect();
    assert_eq!(sim_items, want, "sim cart item set incomplete under crash");
    assert_eq!(rt_items, want, "runtime cart item set incomplete under crash");
    assert!(rt_acked >= planned.len() as u64, "every planned edit must ack at least once");
    for (item, qty) in &planned {
        assert!(
            rt_cart[item] >= *qty,
            "item {item} qty {} below planned {qty} on the runtime",
            rt_cart[item]
        );
        assert!(
            sim.final_cart[item] >= *qty,
            "item {item} qty {} below planned {qty} on the sim",
            sim.final_cart[item]
        );
    }
}
