//! Cross-crate integration: the eventual-consistency stack — cart over
//! dynamo over sim, bank clearing, log shipping — checked across seeds
//! for the invariants the paper promises.

use quicksand::bank::{run_clearing, ClearingConfig};
use quicksand::cart::{run as run_cart, CartAction, CartScenario};
use quicksand::dynamo::DynamoConfig;
use quicksand::logship::{run as run_ship, LogshipConfig, RecoveryPolicy, ShipMode};
use quicksand::sim::{SimDuration, SimTime};

fn cart_scenario(partition: bool) -> CartScenario {
    CartScenario {
        n_stores: 5,
        plans: (0..4)
            .map(|s| {
                (0..5)
                    .map(|i| {
                        let item = ((s * 5 + i) % 6) as u64;
                        if i % 3 == 2 {
                            CartAction::Remove { item }
                        } else {
                            CartAction::Add { item, qty: 1 }
                        }
                    })
                    .collect()
            })
            .collect(),
        think: SimDuration::from_millis(30),
        partition: partition.then(|| (SimTime::from_millis(50), SimTime::from_secs(8))),
        horizon: SimTime::from_secs(60),
        dynamo: DynamoConfig::default(),
        ..CartScenario::default()
    }
}

#[test]
fn cart_never_loses_an_acked_edit_across_seeds_and_partitions() {
    for partition in [false, true] {
        for seed in [1u64, 7, 42, 1234] {
            let r = run_cart(&cart_scenario(partition), seed);
            assert_eq!(r.edits_acked, 20, "partition={partition} seed={seed}: {r:?}");
            assert_eq!(r.lost_edits, 0, "partition={partition} seed={seed}: {r:?}");
            assert!(r.converged, "partition={partition} seed={seed}: {r:?}");
        }
    }
}

#[test]
fn cart_stays_fully_available_through_the_partition() {
    for seed in [3u64, 9] {
        let r = run_cart(&cart_scenario(true), seed);
        assert_eq!(
            r.put_availability(),
            1.0,
            "sloppy quorum must accept every PUT (seed {seed}): {r:?}"
        );
    }
}

#[test]
fn bank_invariants_hold_across_seeds_and_windows() {
    for exchange_every in [1u64, 10, 50] {
        for seed in [1u64, 2, 3] {
            let cfg = ClearingConfig {
                rounds: 150,
                exchange_every,
                dup_presentment_prob: 0.1,
                ..ClearingConfig::default()
            };
            let r = run_clearing(&cfg, seed);
            assert!(r.converged, "w={exchange_every} seed={seed}: {r:?}");
            assert!(r.no_double_posting, "w={exchange_every} seed={seed}: {r:?}");
            assert!(r.statements_ok, "w={exchange_every} seed={seed}: {r:?}");
        }
    }
}

#[test]
fn logship_loss_grows_with_the_shipping_window() {
    let run_with = |ship_ms: u64, seed: u64| {
        let cfg = LogshipConfig {
            mode: ShipMode::Asynchronous,
            ship_interval: SimDuration::from_millis(ship_ms),
            mean_interarrival: SimDuration::from_millis(2),
            crash_primary_at: Some(SimTime::from_millis(150)),
            recovery: RecoveryPolicy::Discard,
            horizon: SimTime::from_secs(60),
            ..LogshipConfig::default()
        };
        run_ship(&cfg, seed).lost_acked
    };
    for seed in [1u64, 5] {
        let tight = run_with(2, seed);
        let loose = run_with(200, seed);
        assert!(
            loose > tight,
            "seed {seed}: loss should grow with the window ({tight} vs {loose})"
        );
    }
}

#[test]
fn logship_resurrection_always_makes_the_books_whole() {
    for seed in [1u64, 2, 3, 4, 5] {
        let cfg = LogshipConfig {
            ship_interval: SimDuration::from_millis(80),
            mean_interarrival: SimDuration::from_millis(2),
            crash_primary_at: Some(SimTime::from_millis(150)),
            restart_primary_at: Some(SimTime::from_secs(3)),
            recovery: RecoveryPolicy::Resurrect,
            horizon: SimTime::from_secs(60),
            ..LogshipConfig::default()
        };
        let r = run_ship(&cfg, seed);
        assert_eq!(r.lost_acked, 0, "seed {seed}: {r:?}");
        assert_eq!(r.duplicate_applications, 0, "seed {seed}: {r:?}");
    }
}
