//! Forensics tests: the flight recorder's causal slices and the
//! guess/apology ledger, end to end.
//!
//! The claims under audit:
//!
//! 1. **Happens-before closure** — every event in a slice is a causal
//!    ancestor of the target: ids never exceed the target's, and every
//!    cause edge inside the slice lands on another slice member (or is
//!    explicitly counted as truncated; with a roomy ring nothing is).
//! 2. **Strict subset** — a slice is an explanation, not a replay: it
//!    must stay well under 20% of the full recorded history.
//! 3. **Determinism** — the same seed explains itself byte-identically
//!    twice, both as rendered text and as JSON artifacts on disk.
//! 4. **The planted `rearm_gossip_on_restart` defect** — with the bug,
//!    a crashed-and-restarted hint holder never gossips again, so the
//!    run ends with the stranded hint's durable guess still open, and
//!    the explainer targets exactly that promise. With the fix, the
//!    same seed's hints all resolve, and at least one resolution's
//!    slice contains the `Restart` event whose re-armed gossip timer
//!    delivered it — the causal evidence the bug removes.

use std::collections::BTreeSet;

use quicksand::cart::{self, CartMode};
use quicksand::chaos::{cart_chaos, dynamo_chaos, ChaosRun, FaultPlan};
use quicksand::dynamo::{self, WorkloadConfig};
use quicksand::sim::{CausalSlice, FlightKind, FlightRecorder, SimDuration, SpanStore};

/// A flight-enabled cart run under the same plan the chaos builder
/// would generate for `seed`.
fn cart_flight_run(seed: u64) -> (FlightRecorder, SpanStore) {
    let spec = cart_chaos(CartMode::OpLog).spec().clone();
    let plan = FaultPlan::generate(seed, &spec);
    let mut sc = cart::CartScenario::default();
    sc.horizon = sc.horizon.max(plan.ends_by() + SimDuration::from_secs(10));
    sc.faults = plan;
    sc.flight = true;
    let r = cart::run(&sc, seed);
    (r.flight.expect("flight was enabled"), r.spans)
}

/// The happens-before closure property for one slice.
fn assert_closed_under_causes(slice: &CausalSlice) {
    assert!(!slice.truncated, "a 64k ring must retain a cart run in full");
    assert_eq!(slice.missing_ancestors, 0);
    let members: BTreeSet<u64> = slice.events.iter().map(|e| e.id.0).collect();
    assert!(members.contains(&slice.target.0), "the slice must contain its own target");
    for e in &slice.events {
        assert!(
            e.id.0 <= slice.target.0,
            "{} is later than the target {} — not happens-before",
            e.id,
            slice.target
        );
        if let Some(c) = e.cause {
            assert!(
                members.contains(&c.0),
                "{}'s cause {} is missing from an untruncated slice",
                e.id,
                c
            );
        }
    }
}

#[test]
fn slices_are_happens_before_closed_across_seeds() {
    for seed in 0..20 {
        let (flight, spans) = cart_flight_run(seed);
        // Two targets per run: the last event (deepest history) and the
        // last guess opening (the forensically interesting one).
        let mut targets = vec![flight.events().last().expect("events recorded").id];
        if let Some(g) = flight.last_matching(|e| e.kind == FlightKind::GuessOpen) {
            targets.push(g);
        }
        for target in targets {
            let slice = flight.slice(target, &spans);
            assert_eq!(slice.total_recorded, flight.total_recorded());
            assert_closed_under_causes(&slice);
        }
    }
}

#[test]
fn slices_are_strict_subsets_of_the_full_trace() {
    for seed in [1, 5, 11] {
        let (flight, spans) = cart_flight_run(seed);
        let target = flight.events().last().expect("events recorded").id;
        let slice = flight.slice(target, &spans);
        assert!(!slice.events.is_empty());
        assert!(
            slice.fraction_of_total() < 0.20,
            "seed {seed}: slice is {:.1}% of {} events — an explanation, not a replay",
            slice.fraction_of_total() * 100.0,
            slice.total_recorded
        );
    }
}

#[test]
fn planted_rearm_bug_is_explained_and_the_fix_shows_the_rearm() {
    let mut buggy = WorkloadConfig::default();
    buggy.dynamo.rearm_gossip_on_restart = false;

    let run = dynamo_chaos(buggy);
    let report = run.sweep(0..12);
    assert!(!report.passed(), "a 12-seed sweep must catch the stranded hints:\n{report}");
    let seed = report.failures[0].seed;

    // The explainer's target is the stranded hint: a durable guess the
    // run never closed.
    let e = run.explain_seed(seed).expect("a failing seed explains itself");
    assert!(!e.violations.is_empty(), "the re-run must reproduce the violation");
    let target = e
        .slice
        .events
        .iter()
        .find(|ev| ev.id == e.slice.target)
        .expect("the slice contains its target");
    assert_eq!(target.kind, FlightKind::GuessOpen);
    assert_eq!(target.label.as_deref(), Some("dynamo.hint_handoff"));
    assert!(
        target.fields.iter().any(|(k, v)| k == "durable" && v == "true"),
        "the stranded promise is a durable guess: {target:?}"
    );
    // And the sweep-side accounting agrees: the merged ledger still
    // carries open guesses.
    assert!(report.ledger.open() > 0, "stranded hints must show as open in the ledger");

    // Same seed, bug fixed: every hint resolves, and at least one
    // resolution is causally downstream of a Restart — the re-armed
    // gossip timer the defect removes.
    let fixed = WorkloadConfig {
        faults: FaultPlan::generate(seed, run.spec()),
        flight: true,
        ..WorkloadConfig::default()
    };
    let r = dynamo::run_workload(&fixed, seed);
    assert!(r.ledger.is_settled(), "with the fix the ledger settles: {:?}", r.ledger);
    let flight = r.flight.expect("flight was enabled");
    let resolves: Vec<_> = flight
        .events()
        .filter(|ev| {
            ev.kind == FlightKind::GuessResolve
                && ev.label.as_deref() == Some("dynamo.hint_handoff")
        })
        .map(|ev| ev.id)
        .collect();
    assert!(!resolves.is_empty(), "the crash schedule must park and later deliver hints");
    let rearm_evidenced = resolves.iter().any(|id| {
        flight.slice(*id, &r.spans).events.iter().any(|ev| ev.kind == FlightKind::Restart)
    });
    assert!(
        rearm_evidenced,
        "some hint delivery must trace back to the restart's re-armed gossip timer"
    );
}

#[test]
fn explain_artifacts_are_byte_identical_across_runs() {
    let mut buggy = WorkloadConfig::default();
    buggy.dynamo.rearm_gossip_on_restart = false;
    let run = dynamo_chaos(buggy);
    let report = run.sweep(0..12);
    assert!(!report.passed());
    let seed = report.failures[0].seed;

    let a = run.explain_seed(seed).expect("failing seed explains itself");
    let b = run.explain_seed(seed).expect("failing seed explains itself");
    assert_eq!(a.render_text(), b.render_text(), "text artifact must be deterministic");
    assert_eq!(a.to_json(), b.to_json(), "json artifact must be deterministic");

    // And through the artifact writer: same bytes on disk.
    let base = std::env::temp_dir().join(format!("quicksand-forensics-{}", std::process::id()));
    let (txt1, json1) =
        ChaosRun::<()>::write_artifacts(&base.join("run1"), &a).expect("artifacts write");
    let (txt2, json2) =
        ChaosRun::<()>::write_artifacts(&base.join("run2"), &b).expect("artifacts write");
    assert_eq!(std::fs::read(&txt1).unwrap(), std::fs::read(&txt2).unwrap());
    assert_eq!(std::fs::read(&json1).unwrap(), std::fs::read(&json2).unwrap());
    let _ = std::fs::remove_dir_all(&base);
}
