//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the (small) subset of the rand 0.8 API the workspace
//! actually uses: [`RngCore`], [`Rng`] (`gen`, `gen_range`, `gen_bool`),
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], and
//! [`seq::SliceRandom::shuffle`]. The generator is xoshiro256++ seeded
//! via SplitMix64 — deterministic, portable, and fast; it does **not**
//! reproduce the streams of the real `StdRng` (ChaCha12), which is fine
//! because nothing in the workspace depends on specific draw values.

/// Error type for fallible byte-filling; this stub never fails.
#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("rand stub error (unreachable)")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator: raw integer draws.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut i = 0;
        while i < dest.len() {
            let chunk = self.next_u64().to_le_bytes();
            let n = chunk.len().min(dest.len() - i);
            dest[i..i + n].copy_from_slice(&chunk[..n]);
            i += n;
        }
    }
    /// Fallible variant of [`RngCore::fill_bytes`]; never fails here.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A type that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A type [`Rng::gen_range`] can sample uniformly over an interval.
///
/// Generic (rather than per-range-type) impls keep type inference
/// working for untyped literals like `gen_range(10..500)`, exactly as
/// real rand's `SampleUniform` does.
pub trait SampleUniform: Copy + PartialOrd {
    /// A value uniform in `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_uniform<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                assert!(span > 0, "gen_range: empty range");
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_uniform<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        _inclusive: bool,
        rng: &mut R,
    ) -> Self {
        assert!(lo <= hi, "gen_range: empty range");
        lo + (hi - lo) * f64::sample_standard(rng)
    }
}

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(*self.start(), *self.end(), true, rng)
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly distributed value of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A value uniform in `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// An RNG constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed (via SplitMix64 state expansion).
    fn seed_from_u64(state: u64) -> Self;
    /// Build from OS entropy — stubbed as a fixed seed so offline runs
    /// stay deterministic.
    fn from_entropy() -> Self {
        Self::seed_from_u64(0x9e3779b97f4a7c15)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for rand's ChaCha12
    /// `StdRng`; same API, different — but still high-quality — stream).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related extensions.

    use super::{Rng, RngCore};

    /// Extension methods on slices (the subset the workspace uses).
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffle the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Prelude-style glob import target mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = r.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut r = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits={hits}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice untouched");
    }
}
