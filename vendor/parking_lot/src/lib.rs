//! Offline stand-in for `parking_lot`: wraps the std synchronization
//! primitives behind parking_lot's poison-free API (`lock()` returns the
//! guard directly). Performance characteristics are std's, which is fine
//! for the workspace's benches.

use std::sync::{self, PoisonError};

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// A new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning (parking_lot semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose accessors never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// A new lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trips() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trips() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }
}
