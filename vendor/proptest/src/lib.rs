//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this vendored crate
//! re-implements the subset of proptest the workspace uses: the
//! [`proptest!`] macro, `prop_assert*!`/`prop_assume!`, integer/float
//! range strategies, tuples, [`collection::vec`], [`strategy::Just`],
//! `prop_oneof!`, `any::<T>()`, and [`test_runner::ProptestConfig`].
//!
//! Differences from real proptest, deliberately accepted:
//!
//! - **No shrinking.** A failing case reports its case index and the
//!   deterministic per-test seed; since sampling is seeded from the test
//!   name, every failure replays exactly under `cargo test`.
//! - **Deterministic by default.** Real proptest draws fresh entropy per
//!   run; here each test's stream is fixed so CI results are stable.
//! - Default case count is 64 (not 256) to keep simulation-heavy suites
//!   fast; `ProptestConfig::with_cases` overrides as usual.

pub mod strategy {
    //! Value-generation strategies.

    use rand::prelude::*;

    /// A source of sampled values. Unlike real proptest there is no
    /// value tree: strategies sample directly, with no shrinking.
    pub trait Strategy {
        /// The type of values this strategy produces.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Transform every sampled value with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Erase the strategy's type (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            (**self).sample(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Uniform choice between several strategies of one value type
    /// (backs `prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over the given arms. Panics if `arms` is empty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            let i = rng.gen_range(0..self.arms.len());
            self.arms[i].sample(rng)
        }
    }

    macro_rules! strategy_for_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    strategy_for_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    macro_rules! strategy_for_tuple {
        ($($s:ident/$idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        };
    }
    strategy_for_tuple!(S0 / 0);
    strategy_for_tuple!(S0 / 0, S1 / 1);
    strategy_for_tuple!(S0 / 0, S1 / 1, S2 / 2);
    strategy_for_tuple!(S0 / 0, S1 / 1, S2 / 2, S3 / 3);
    strategy_for_tuple!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4);
    strategy_for_tuple!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4, S5 / 5);
}

pub mod collection {
    //! Strategies over collections.

    use super::strategy::Strategy;
    use rand::prelude::*;

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        size: std::ops::Range<usize>,
    }

    /// A `Vec` whose length is uniform in `size` and whose elements are
    /// drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = if self.size.is_empty() {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use super::strategy::Strategy;
    use rand::prelude::*;

    /// Samples `true` and `false` with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The uniform boolean strategy (`prop::bool::ANY`).
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut StdRng) -> bool {
            rng.gen_bool(0.5)
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` — the canonical strategy for a type.

    use super::strategy::Strategy;
    use rand::prelude::*;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Sample one arbitrary value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy, Default)]
    pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

    /// The canonical strategy producing any value of `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(std::marker::PhantomData)
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod test_runner {
    //! Configuration and failure plumbing for `proptest!` expansions.

    /// Per-test configuration (only `cases` is honoured).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; many properties here run a
            // whole simulation per case, so trim the default.
            ProptestConfig { cases: 64 }
        }
    }

    /// Why one sampled case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assert*!` failed: the property is falsified.
        Fail(String),
        /// `prop_assume!` failed: skip this case, draw another.
        Reject(String),
    }

    /// Deterministic per-test seed: FNV-1a over the test's name.
    pub fn seed_for(test_name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

/// Define property tests: each listed function runs its body against
/// `cases` sampled inputs (no shrinking; see the crate docs).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            let seed = $crate::test_runner::seed_for(concat!(module_path!(), "::", stringify!($name)));
            let mut rng = <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(seed);
            for case in 0..cfg.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)*
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "property {} falsified at case {}/{} (seed {:#x}): {}",
                            stringify!($name), case, cfg.cases, seed, msg
                        );
                    }
                }
            }
        }
    )*};
}

/// Assert a boolean property; failure falsifies the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)*)),
            );
        }
    };
}

/// Assert two values are equal; failure falsifies the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Assert two values differ; failure falsifies the current case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Skip the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_owned(),
            ));
        }
    };
}

/// Uniform choice among several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[doc(hidden)]
pub use rand as __rand;

pub mod prelude {
    //! The glob-import surface mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Namespace alias so `prop::collection::vec(..)` etc. resolve.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
        pub use crate::strategy;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_sample_in_bounds(x in 3u64..17, y in -4i64..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-4..=4).contains(&y));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn vec_and_tuple_strategies_compose(
            v in prop::collection::vec((0u8..4, 0u64..10), 2..6)
        ) {
            prop_assert!((2..6).contains(&v.len()));
            for (a, b) in v {
                prop_assert!(a < 4 && b < 10);
            }
        }
    }

    proptest! {
        #[test]
        fn oneof_and_map_work(x in prop_oneof![
            (0u32..5).prop_map(|v| v * 2),
            Just(99u32),
        ]) {
            prop_assert!(x == 99 || x % 2 == 0);
        }
    }

    #[test]
    fn seeds_differ_by_name() {
        use crate::test_runner::seed_for;
        assert_ne!(seed_for("a"), seed_for("b"));
        assert_eq!(seed_for("a"), seed_for("a"));
    }
}
