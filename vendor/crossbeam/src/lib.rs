//! Offline stand-in for `crossbeam`: just the scoped-thread API the
//! workspace's benches use (`crossbeam::scope` + `Scope::spawn`), backed
//! by `std::thread::scope`.

/// Result type of [`scope`] (matches crossbeam's signature; the std
/// backing propagates child panics by panicking, so this is always `Ok`).
pub type ScopeResult<R> = Result<R, Box<dyn std::any::Any + Send + 'static>>;

/// Handle for spawning threads tied to an enclosing [`scope`] call.
pub struct Scope<'scope, 'env> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped thread; the closure receives the scope handle (so
    /// it can spawn nested threads, as in crossbeam).
    pub fn spawn<F, T>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        self.inner.spawn(move || {
            f(&Scope { inner });
        });
    }
}

/// Run `f` with a scope handle; all spawned threads are joined before
/// `scope` returns.
pub fn scope<'env, F, R>(f: F) -> ScopeResult<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_join_before_return() {
        let n = AtomicUsize::new(0);
        super::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    n.fetch_add(1, Ordering::SeqCst);
                });
            }
        })
        .unwrap();
        assert_eq!(n.load(Ordering::SeqCst), 8);
    }
}
