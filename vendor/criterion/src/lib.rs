//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace's benches use — [`Criterion`],
//! [`black_box`], [`BenchmarkId`], `criterion_group!`/`criterion_main!`,
//! benchmark groups with `sample_size` — with a simple timing loop that
//! prints mean wall-clock time per iteration. No statistics, plots, or
//! baselines; good enough to run `cargo bench` offline and eyeball
//! relative numbers.

use std::time::{Duration, Instant};

/// Opaque value barrier: prevents the optimizer from deleting a
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A two-part benchmark identifier (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{name}/{parameter}") }
    }

    /// An id rendered as just the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Runs one benchmark's measurement loop.
pub struct Bencher {
    samples: u64,
    mean: Duration,
}

impl Bencher {
    /// Time `f`, first warming up, then averaging over the sample count.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        for _ in 0..3 {
            black_box(f());
        }
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        self.mean = start.elapsed() / self.samples as u32;
    }
}

/// Entry point: runs benchmarks and prints per-iteration means.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

fn run_one(label: &str, samples: u64, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher { samples, mean: Duration::ZERO };
    f(&mut b);
    println!("{label:<48} {:>12.3?}/iter ({samples} samples)", b.mean);
}

impl Criterion {
    /// Benchmark `f` under `label` with the default sample count.
    pub fn bench_function(
        &mut self,
        label: impl std::fmt::Display,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        run_one(&label.to_string(), 50, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.into(), samples: 50 }
    }
}

/// A group of benchmarks sharing a name prefix and sample count.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    samples: u64,
}

impl BenchmarkGroup<'_> {
    /// Set the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1) as u64;
        self
    }

    /// Benchmark `f` under `label` within this group.
    pub fn bench_function(
        &mut self,
        label: impl std::fmt::Display,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        run_one(&format!("{}/{label}", self.name), self.samples, f);
        self
    }

    /// Benchmark `f` under `id`, handing `input` through to the closure.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(&format!("{}/{id}", self.name), self.samples, |b| f(b, input));
        self
    }

    /// Finish the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Collect benchmark functions into one callable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generate `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
