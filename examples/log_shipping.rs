//! Log shipping (§4): the datacenter failover, the stuck tail, and the
//! resurrection that uniquified, commutative operations make safe.
//!
//! Scenario: an async-shipping primary crashes with acknowledged work
//! still in its WAL; the backup takes over and clients follow the
//! redirect. When the old primary restarts, it replays its entire WAL at
//! the new primary — uniquifiers collapse what already shipped, and the
//! stranded tail reappears without double-applying anything.
//!
//! Run with: `cargo run --example log_shipping`

use quicksand::logship::{run, LogshipConfig, RecoveryPolicy, ShipMode};
use quicksand::sim::{SimDuration, SimTime};

fn main() {
    let base = LogshipConfig {
        n_clients: 4,
        ops_per_client: 40,
        mean_interarrival: SimDuration::from_millis(2),
        wan_one_way: SimDuration::from_millis(20),
        ship_interval: SimDuration::from_millis(50),
        crash_primary_at: Some(SimTime::from_millis(120)),
        horizon: SimTime::from_secs(60),
        ..LogshipConfig::default()
    };

    println!("WAN: 20ms one-way.  Primary crashes at t=120ms; backup takes over.\n");

    // Sync latency measured without the crash (after a takeover the
    // surviving site runs alone at local latency, diluting the figure);
    // a crash under sync shipping loses nothing anyway — the harness
    // tests prove that.
    let sync =
        LogshipConfig { mode: ShipMode::Synchronous, crash_primary_at: None, ..base.clone() };
    let r = run(&sync, 4);
    println!(
        "synchronous shipping:  commit {:.1} ms mean, lost {} (transparent, but slow)",
        r.commit_mean_ms, r.lost_acked
    );

    let discard = LogshipConfig { recovery: RecoveryPolicy::Discard, ..base.clone() };
    let r = run(&discard, 4);
    println!("async + discard:       commit {:.1} ms mean, lost {} of {} acked; {} stuck in the dead WAL",
        r.commit_mean_ms, r.lost_acked, r.acked, r.stuck_tail);

    let resurrect = LogshipConfig {
        recovery: RecoveryPolicy::Resurrect,
        restart_primary_at: Some(SimTime::from_secs(3)),
        ..base
    };
    let r = run(&resurrect, 4);
    println!(
        "async + resurrect:     commit {:.1} ms mean, lost {}; resurrected {}; double-applied {}",
        r.commit_mean_ms, r.lost_acked, r.resurrected, r.duplicate_applications
    );
    assert_eq!(r.lost_acked, 0);
    assert_eq!(r.duplicate_applications, 0);

    println!("\n\"Log-shipping: our first example where giving a little bit in");
    println!("consistency yields a lot of resilience and scale!\" (§4.1)");
}
