//! Why the paper avoids distributed transactions (§2.3): watch 2PC
//! block.
//!
//! The same workload runs three times: no failure; a coordinator crash
//! with recovery; a coordinator that never comes back. In-doubt
//! participants hold their locks the entire time — "fragile systems and
//! reduced availability" — where the op-centric systems in the rest of
//! this repository would have kept answering and settled up later.
//!
//! Run with: `cargo run --example two_phase`

use quicksand::sim::{SimDuration, SimTime};
use quicksand::twopc::{run, TpcConfig};

fn main() {
    let base = TpcConfig {
        txns: 120,
        mean_interarrival: SimDuration::from_millis(3),
        horizon: SimTime::from_secs(60),
        ..TpcConfig::default()
    };

    let r = run(&base, 7);
    println!("== healthy 2PC ==");
    println!(
        "committed {} / conflict-aborts {} / max in-doubt lock {:.1} ms",
        r.committed, r.aborted_conflict, r.in_doubt_max_ms
    );

    let mut crash = base.clone();
    crash.crash_coordinator_at = Some(SimTime::from_millis(60));
    crash.restart_coordinator_at = Some(SimTime::from_secs(2));
    let r = run(&crash, 7);
    println!("\n== coordinator dies at 60ms, recovers at 2s ==");
    println!("committed {} (service was down for the rest) ", r.committed);
    println!(
        "in-doubt locks hung for up to {:.0} ms — nobody could touch those keys",
        r.in_doubt_max_ms
    );
    println!(
        "recovery presumed abort for {} undecided txns; blocked forever: {}",
        r.aborted_other, r.unresolved
    );

    let mut dead = base;
    dead.crash_coordinator_at = Some(SimTime::from_millis(60));
    dead.restart_coordinator_at = None;
    let r = run(&dead, 7);
    println!("\n== coordinator never returns ==");
    println!("transactions blocked FOREVER at the participants: {}", r.unresolved);
    println!("\n\"Distributed transactions... result in fragile systems and reduced");
    println!("availability. For this reason, they are rarely used in production");
    println!("systems.\" (§2.3) — the rest of this repo is what you do instead.");
}
