//! The replicated bank (§6.2): three branches clear checks against the
//! same accounts, reconciling every 20 rounds. Check numbers make the
//! work idempotent; commutative debits/credits make it reorderable;
//! overdrafts discovered at reconciliation bounce deterministically (the
//! compensation ops derive their uniquifiers from the check, so every
//! branch mints the *same* apology). Big checks take the §5.5
//! coordinated path.
//!
//! Run with: `cargo run --example bank_clearing`

use quicksand::bank::{run_clearing, ClearingConfig};

fn main() {
    let cfg = ClearingConfig {
        n_branches: 3,
        n_accounts: 40,
        initial_deposit: 50_000, // $500 per account
        rounds: 300,
        checks_per_round: 12,
        exchange_every: 20,
        dup_presentment_prob: 0.05,
        coordinate_threshold: Some(1_000_000), // the $10,000 rule
        ..ClearingConfig::default()
    };
    let r = run_clearing(&cfg, 6_2);

    println!("branches: 3   accounts: 40   reconcile every 20 rounds");
    println!();
    println!("checks presented:              {}", r.presented);
    println!("cleared on local guess:        {}", r.cleared_local);
    println!("cleared via coordination:      {}", r.cleared_coordinated);
    println!("refused (insufficient funds):  {}", r.refused);
    println!("duplicate presentments collapsed by check number: {}", r.duplicates_collapsed);
    println!("duplicate presentments granted before sync:       {}", r.duplicates_granted);
    println!();
    println!("overdraft episodes found at reconciliation: {}", r.overdraft_episodes);
    println!("checks bounced (reversal + $30 fee):        {}", r.bounced);
    println!("escalated to a human (§5.6):                {}", r.human_apologies);
    println!();
    println!("mean clearing latency:   {:.2} ms", r.mean_clear_latency_us / 1000.0);
    println!("branches converged:      {}", r.converged);
    println!("any check posted twice:  {}", if r.no_double_posting { "no" } else { "YES" });
    println!("statement book audit:    {}", if r.statements_ok { "ok" } else { "FAILED" });

    // The paper's memories/guesses/apologies cycle, measured: how long
    // each locally-cleared check sat as an unconfirmed guess before the
    // reconciliation audit confirmed it or bounced it.
    let mut r = r;
    let guess = r.metrics.histogram("guess.outstanding_us").summary();
    println!();
    println!("guess windows (act-on-guess -> confirmation/apology):");
    println!("  outstanding guesses measured: {}", guess.count);
    println!(
        "  outstanding time: mean {:.1} s   p50 {:.1} s   p99 {:.1} s   max {:.1} s",
        guess.mean / 1e6,
        guess.p50 / 1e6,
        guess.p99 / 1e6,
        guess.max / 1e6
    );
    println!(
        "  confirmed: {}   apologies (bounced at audit): {}",
        r.metrics.counter("guess.confirmed"),
        r.metrics.counter("guess.apologies")
    );
    assert!(guess.count > 0, "local clears must record guess windows");
    assert!(r.converged && r.no_double_posting && r.statements_ok);
}
