//! The seat-reservation pattern (§7.3) during an on-sale rush.
//!
//! Scalper bots hold prime seats and never pay; honest buyers want two
//! minutes to type a card number. The three-state pattern — available,
//! purchase-pending(session, expiry), purchased(buyer) — with a durable
//! cleanup queue bounds how long an untrusted agent can pin inventory.
//!
//! Run with: `cargo run --example seat_rush`

use quicksand::core::reservation::{BuyerId, SeatMap, SessionId};

fn main() {
    const TTL: u64 = 120; // "typically minutes": 120 ticks here
    let mut venue = SeatMap::new(12);
    let mut session = 0u64;
    let mut buyer = 0u64;
    let fresh = |s: &mut u64| {
        *s += 1;
        SessionId(*s)
    };

    // t=0: bots grab the six primest seats.
    for _ in 0..6 {
        let seat = venue.best_available().expect("seats open");
        venue.hold(seat, fresh(&mut session), 0, TTL).unwrap();
    }
    let (avail, pending, sold) = venue.census();
    println!("t=0   bots hold the front rows  -> available={avail} pending={pending} sold={sold}");

    // t=10: an honest buyer takes the best remaining seat and pays.
    let seat = venue.best_available().unwrap();
    let s = fresh(&mut session);
    venue.hold(seat, s, 10, TTL).unwrap();
    buyer += 1;
    venue.purchase(seat, s, BuyerId(buyer), 30).unwrap();
    println!("t=30  honest buyer purchased seat {seat:?}");

    // t=60: a second buyer holds, then reneges voluntarily.
    let seat2 = venue.best_available().unwrap();
    let s2 = fresh(&mut session);
    venue.hold(seat2, s2, 60, TTL).unwrap();
    venue.release(seat2, s2).unwrap();
    println!("t=60  buyer held {seat2:?} and released it — rollback, no cost");

    // t=120: the cleanup worker drains the durable queue; the bot holds
    // from t=0 lapse and the prime seats come back.
    let freed = venue.expire(120);
    println!("t=120 cleanup freed {} bot-held seats: {freed:?}", freed.len());
    let (avail, pending, sold) = venue.census();
    println!("      available={avail} pending={pending} sold={sold}");

    // The invariant of §7.3 holds throughout: every seat is available,
    // pending with a bounded expiry, or sold with a real purchase.
    venue.check_invariant(121, 1).expect("invariant");
    let (placed, expired, purchases) = venue.stats();
    println!("\nlifetime: holds={placed} expired-by-cleanup={expired} purchases={purchases}");
    println!("\"You can identify potential seats and then you have a bounded");
    println!("period of time to complete the transaction.\" (§7.3)");
}
