//! The Tandem story (§3): run the same OLTP workload on the 1984 and
//! 1986 systems, crash a primary disk process mid-run, and compare.
//!
//! DP1 checkpoints every WRITE to the backup before acknowledging — so
//! the crash is invisible (and every WRITE pays a round trip). DP2 lets
//! the log buffer lollygag in the primary — WRITEs are fast, but the
//! crash aborts the in-flight transactions that touched the failed pair.
//! Both preserve every committed transaction: the audit trail is checked
//! at the end of each run.
//!
//! Run with: `cargo run --example tandem_failover`

use quicksand::sim::{SimDuration, SimTime};
use quicksand::tandem::{run, Mode, TandemConfig};

fn main() {
    for mode in [Mode::Dp1, Mode::Dp2] {
        let cfg = TandemConfig {
            mode,
            n_dps: 2,
            n_apps: 4,
            txns_per_app: 50,
            writes_per_txn: 4,
            mean_interarrival: SimDuration::from_millis(3),
            crash_primary_at: Some(SimTime::from_millis(80)),
            horizon: SimTime::from_secs(60),
            ..TandemConfig::default()
        };
        let r = run(&cfg, 1984);
        println!("== {mode} — crash of DP-0's primary at t=80ms ==");
        println!("committed:            {}", r.committed);
        println!("aborted by takeover:  {}", r.aborted);
        println!("checkpoint msgs:      {}", r.checkpoint_msgs);
        println!("WRITE ack latency:    {:.2} ms mean", r.write_ack_mean_ms);
        println!("commit latency:       {:.2} ms mean", r.commit_mean_ms);
        println!("committed txns lost:  {}  (must be 0)", r.lost_committed);
        println!();
        assert_eq!(r.lost_committed, 0);
        if mode == Mode::Dp1 {
            assert_eq!(r.aborted, 0, "DP1 takeover is transparent");
        }
    }
    println!("DP2 trades per-WRITE checkpoints (and their latency) for");
    println!("abort-on-takeover — \"an acceptable erosion of behavior\" (§3.3).");

    // Act two: the crashed processor reloads, rejoins its pair as the
    // backup, catches up by state sync — and then the *other* processor
    // dies, failing the pair back onto the reloaded one. Still nothing
    // committed is lost.
    let cfg = TandemConfig {
        mode: Mode::Dp2,
        n_dps: 2,
        n_apps: 4,
        txns_per_app: 60,
        writes_per_txn: 4,
        mean_interarrival: SimDuration::from_millis(3),
        crash_primary_at: Some(SimTime::from_millis(60)),
        restart_primary_at: Some(SimTime::from_millis(200)),
        crash_new_primary_at: Some(SimTime::from_millis(400)),
        horizon: SimTime::from_secs(60),
        ..TandemConfig::default()
    };
    let r = run(&cfg, 1986);
    println!("\n== DP2: crash -> reload & reintegrate -> crash the other half ==");
    println!("committed: {}   aborted across both takeovers: {}", r.committed, r.aborted);
    println!("committed txns lost: {}  (the pair survived losing BOTH members,", r.lost_committed);
    println!("one at a time, because reintegration restored the mirror between)");
    assert_eq!(r.lost_committed, 0);
}
