//! Certifying your own operations as ACID 2.0 (§8, §9).
//!
//! The paper closes by asking application designers to dissect their
//! business operations: "What are the operations in play? When are they
//! commutative? What practices make the operations idempotent?" This
//! example is that dissection as a workflow: define an operation type,
//! run the executable law checkers, and read the counterexample when a
//! law fails.
//!
//! Run with: `cargo run --example acid2_certify`

use quicksand::core::acid2::{self, Law};
use quicksand::core::op::Operation;
use quicksand::core::uniquifier::Uniquifier;
use rand::SeedableRng;

/// A loyalty-points ledger operation, as a shop might design it.
#[derive(Debug, Clone, PartialEq)]
enum PointsOp {
    /// Award points (commutative: addition).
    Award { id: Uniquifier, points: i64 },
    /// Redeem points (commutative: subtraction).
    Redeem { id: Uniquifier, points: i64 },
    /// The tempting shortcut: "just set the balance" — a WRITE.
    SetBalance { id: Uniquifier, to: i64 },
}

impl Operation for PointsOp {
    type State = i64;
    fn id(&self) -> Uniquifier {
        match self {
            PointsOp::Award { id, .. }
            | PointsOp::Redeem { id, .. }
            | PointsOp::SetBalance { id, .. } => *id,
        }
    }
    fn apply(&self, balance: &mut i64) {
        match self {
            PointsOp::Award { points, .. } => *balance += points,
            PointsOp::Redeem { points, .. } => *balance -= points,
            PointsOp::SetBalance { to, .. } => *balance = *to,
        }
    }
}

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2009);
    let id = |n: u64| Uniquifier::composite("points", n);

    // Design A: award/redeem only — the operation-centric discipline.
    let good: Vec<PointsOp> = (0..30)
        .map(|i| {
            if i % 3 == 0 {
                PointsOp::Redeem { id: id(i), points: i as i64 }
            } else {
                PointsOp::Award { id: id(i), points: 2 * i as i64 }
            }
        })
        .collect();
    match acid2::certify(&good, 60, &mut rng) {
        Ok(()) => println!("award/redeem ledger: CERTIFIED ACID 2.0 ✓"),
        Err(v) => println!("award/redeem ledger: FAILED {} — {}", v.law, v.detail),
    }

    // Design B: someone added SetBalance "for the admin tool".
    let mut tempted = good.clone();
    tempted.push(PointsOp::SetBalance { id: id(999), to: 100 });
    match acid2::certify(&tempted, 200, &mut rng) {
        Ok(()) => println!("ledger + SetBalance: certified (unexpected!)"),
        Err(v) => {
            assert_eq!(v.law, Law::Commutativity);
            println!("ledger + SetBalance: FAILED {}", v.law);
            println!("  counterexample: {}", v.detail.split(" (order:").next().unwrap_or(""));
            println!("  — \"WRITE is not commutative\" (§5.3). Replace the admin");
            println!("    SetBalance with a computed Award/Redeem adjustment.");
        }
    }

    // The fix: express the correction as a delta at the point of ingress.
    let mut fixed = good;
    fixed.push(PointsOp::Award { id: id(999), points: 7 });
    acid2::certify(&fixed, 200, &mut rng).expect("deltas commute");
    println!("ledger + delta adjustment: CERTIFIED ACID 2.0 ✓");
    println!("\n\"When the application is constrained to the additional requirements");
    println!("of commutativity and associativity, the world gets a LOT easier.\" (§8.2)");
}
