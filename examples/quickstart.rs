//! Quickstart: the paper's whole argument in sixty lines.
//!
//! Two replicas of a bank balance clear withdrawals while disconnected
//! (memories + guesses), reconcile (the "Oh, crap!" moment), and
//! apologize — then the same workload runs with synchronous coordination
//! and nothing ever needs an apology. "Either you have synchronous
//! checkpoints to your backup or you must sometimes apologize for your
//! behavior." (§5.8)
//!
//! Run with: `cargo run --example quickstart`

use quicksand::core::acid2::examples::CounterAdd;
use quicksand::core::mga::{coordinated_accept, ApologyQueue, Replica, ReplicaId};
use quicksand::core::rules::{BusinessRule, PredicateRule};

fn main() {
    let rule = PredicateRule::min_bound("no-overdraft", |balance: &i64| *balance, 0);
    let rules: [&dyn BusinessRule<i64>; 1] = [&rule];

    println!("== The guessing bank (asynchronous checkpoints) ==");
    let mut east = Replica::new(ReplicaId(0));
    let mut west = Replica::new(ReplicaId(1));
    // Both coasts know about the $100 deposit...
    east.try_accept(CounterAdd::new(1, 100), &rules);
    west.learn(CounterAdd::new(1, 100));
    // ...and, disconnected, each clears an $80 check. Locally both are
    // fine: each guess is checked against local knowledge only.
    let d1 = east.try_accept(CounterAdd::new(2, -80), &rules);
    let d2 = west.try_accept(CounterAdd::new(3, -80), &rules);
    println!("east cleared $80: {:?}", d1.accepted());
    println!("west cleared $80: {:?}", d2.accepted());

    // Knowledge sloshes together.
    east.exchange(&mut west);
    println!("reconciled balance: ${}", east.local_opinion());

    // The apology queue routes the violation: business code handles the
    // designed case, humans get the rest.
    let mut apologies = ApologyQueue::new();
    apologies.register_handler("no-overdraft", |a| {
        Some(format!("charged $30 bounce fee for: {}", a.detail))
    });
    east.audit(&rules, &mut apologies);
    for (apology, action) in apologies.automated_log() {
        println!("apology (automated): {} -> {}", apology.rule, action);
    }

    println!("\n== The coordinating bank (synchronous checkpoints) ==");
    let mut replicas = vec![Replica::new(ReplicaId(0)), Replica::new(ReplicaId(1))];
    coordinated_accept(&mut replicas, CounterAdd::new(1, 100), &rules);
    let d1 = coordinated_accept(&mut replicas, CounterAdd::new(2, -80), &rules);
    let d2 = coordinated_accept(&mut replicas, CounterAdd::new(3, -80), &rules);
    println!("first $80 check:  accepted={}", d1.accepted());
    println!("second $80 check: accepted={} (refused before promising!)", d2.accepted());
    println!("final balance: ${}", replicas[0].local_opinion());
    println!("\nSame rules, same work: coordination refuses up front and pays");
    println!("latency; guessing answers fast and pays apologies. (§5.8)");
}
