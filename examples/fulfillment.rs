//! Purchase orders, enthusiastic replicas, and the forklift (§5.4, §7).
//!
//! A retry storm sends the same purchase orders to two warehouses. The
//! dedup tables collapse local retries; the effect ledgers catch the
//! cross-replica duplicates at reconciliation, and compensation respects
//! fungibility: paperback shipments quietly return to the shelf, while
//! the one Gutenberg bible promised twice becomes an apology. Then the
//! stock-policy sweep shows §7.1's spectrum under scarcity.
//!
//! Run with: `cargo run --example fulfillment`

use quicksand::core::resources::Fungibility;
use quicksand::core::uniquifier::Uniquifier;
use quicksand::inventory::{run_stock, StockConfig, StockPolicy, Warehouse};

fn main() {
    println!("== Two enthusiastic warehouses and one retry storm ==");
    let mut east = Warehouse::new(0, 1_000, Fungibility::Fungible);
    let mut west = Warehouse::new(1, 1_000, Fungibility::Fungible);
    // Orders 0..10; each is retried once against the *other* warehouse
    // (the client gave up too early and tried elsewhere).
    for n in 0..10u64 {
        let order = Uniquifier::composite("po", n);
        east.process_order(order, 2);
        west.process_order(order, 2); // the cross-replica retry
    }
    println!(
        "before reconciliation: east shipped {}, west shipped {}",
        1_000 - east.stock_remaining(),
        1_000 - west.stock_remaining()
    );
    let rec = east.reconcile(&mut west);
    println!(
        "reconciliation found {} duplicate shipments; {} units returned to shelves",
        rec.duplicate_shipments.len(),
        rec.units_returned
    );
    println!("after: east stock {}, west stock {}", east.stock_remaining(), west.stock_remaining());

    println!("\n== The Gutenberg bible (unique goods) ==");
    let mut a = Warehouse::new(0, 1, Fungibility::Unique);
    let mut b = Warehouse::new(1, 1, Fungibility::Unique);
    let order = Uniquifier::composite("bible", 1);
    a.process_order(order, 1);
    b.process_order(order, 1);
    let rec = a.reconcile(&mut b);
    println!("promised twice -> apologies owed: {}", rec.apologies);

    println!("\n== Stock policy under scarcity (demand 2x stock, skewed) ==");
    println!(
        "{:<18} {:>8} {:>9} {:>9} {:>10}",
        "policy", "accepted", "declined", "oversold", "forklift"
    );
    for (label, policy) in [
        ("over-provision", StockPolicy::OverProvision),
        ("over-book 1.15", StockPolicy::OverBook { factor: 1.15 }),
        ("sliding", StockPolicy::Sliding),
    ] {
        let cfg = StockConfig {
            policy,
            total_stock: 400,
            rounds: 100,
            orders_per_round: 8,
            demand_skew: 1.5,
            forklift_prob: 0.01,
            sync_every: 5,
            ..StockConfig::default()
        };
        let r = run_stock(&cfg, 7);
        println!(
            "{:<18} {:>8} {:>9} {:>9} {:>10}",
            label, r.accepted, r.declined, r.oversold, r.forklift_apologies
        );
    }
    println!("\n\"Even if the computer systems are perfect, business includes");
    println!("apologizing because stuff will go wrong!\" (§7.2)");
}
