//! The Dynamo shopping cart riding out a network partition (§6.1).
//!
//! Four shoppers edit one cart on a five-node Dynamo-style store. Ten
//! seconds into the run the cluster splits in half; shoppers keep
//! editing through whichever side they can reach (sloppy quorum accepts
//! every PUT). After the heal, gossip and hinted handoff reconverge the
//! replicas, and the op-union reconciliation guarantees no acknowledged
//! edit is lost — while a deleted item may sneak back in (§6.4).
//!
//! Run with: `cargo run --example shopping_cart`
//!
//! Pass `--trace-out DIR` to also write the observability artifacts:
//! `DIR/spans.jsonl` (one span per line), `DIR/trace.jsonl` (sim+app
//! events), and `DIR/chrome_trace.json` (load in Perfetto / Chrome
//! `about://tracing` to see each `dynamo.put`'s child `net.hop`s with
//! per-hop latencies).

use quicksand::cart::{run, CartAction, CartScenario};
use quicksand::sim::{SimDuration, SimTime};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let trace_out = args.iter().position(|a| a == "--trace-out").map(|pos| {
        args.get(pos + 1).cloned().unwrap_or_else(|| {
            eprintln!("--trace-out needs a directory");
            std::process::exit(2);
        })
    });

    let scenario = CartScenario {
        trace: trace_out.is_some(),
        n_stores: 5,
        plans: vec![
            vec![
                CartAction::Add { item: 1, qty: 1 },
                CartAction::Add { item: 2, qty: 2 },
                CartAction::Remove { item: 1 },
                CartAction::Add { item: 4, qty: 1 },
            ],
            vec![
                CartAction::Add { item: 3, qty: 1 },
                CartAction::ChangeQty { item: 3, qty: 4 },
                CartAction::Add { item: 1, qty: 5 },
            ],
            vec![CartAction::Add { item: 5, qty: 2 }, CartAction::Remove { item: 2 }],
            vec![CartAction::Add { item: 2, qty: 1 }, CartAction::Add { item: 6, qty: 1 }],
        ],
        think: SimDuration::from_millis(40),
        partition: Some((SimTime::from_millis(60), SimTime::from_secs(10))),
        horizon: SimTime::from_secs(45),
        ..CartScenario::default()
    };

    let report = run(&scenario, 2009);

    println!("shoppers: 4   stores: 5   partition: 60ms..10s, healed after");
    println!();
    println!("edits acknowledged:       {}", report.edits_acked);
    println!("PUT availability:         {:.1}%", report.put_availability() * 100.0);
    println!("GETs that failed (shopper proceeded on empty view): {}", report.get_failures);
    println!(
        "sibling sets reconciled by the application:         {}",
        report.sibling_reconciliations
    );
    println!("acked edits lost:         {}  (the §6.4 guarantee)", report.lost_edits);
    println!("deleted items resurrected: {} (the §6.4 anomaly)", report.resurrected_items);
    println!("replicas converged:       {}", report.converged);
    println!();
    println!("final cart (item -> qty): {:?}", report.final_cart);

    if let Some(dir) = trace_out {
        std::fs::create_dir_all(&dir).expect("create trace-out dir");
        let p = |name: &str| format!("{dir}/{name}");
        std::fs::write(p("spans.jsonl"), report.spans.to_jsonl()).unwrap();
        std::fs::write(p("chrome_trace.json"), report.spans.to_chrome_trace()).unwrap();
        std::fs::write(p("trace.jsonl"), report.trace_jsonl.as_deref().unwrap_or("")).unwrap();
        println!();
        println!("observability artifacts in {dir}/:");
        println!("  spans.jsonl         {} spans", report.spans.len());
        println!("  trace.jsonl         sim+app events");
        println!("  chrome_trace.json   load in Perfetto (ui.perfetto.dev)");
        // Show one dynamo.put causal tree: the put, its replica hops,
        // and each hop's latency.
        if let Some(put) = report
            .spans
            .spans()
            .iter()
            .find(|s| s.name == "dynamo.put" && report.spans.children(s.id).next().is_some())
        {
            println!();
            println!("one dynamo.put causal tree (µs latencies per hop):");
            print!("{}", report.spans.render_tree(put.id));
        }
    }
    assert_eq!(report.lost_edits, 0);
    assert!(report.converged);
}
