//! The Dynamo shopping cart riding out a network partition (§6.1).
//!
//! Four shoppers edit one cart on a five-node Dynamo-style store. Ten
//! seconds into the run the cluster splits in half; shoppers keep
//! editing through whichever side they can reach (sloppy quorum accepts
//! every PUT). After the heal, gossip and hinted handoff reconverge the
//! replicas, and the op-union reconciliation guarantees no acknowledged
//! edit is lost — while a deleted item may sneak back in (§6.4).
//!
//! Run with: `cargo run --example shopping_cart`

use quicksand::cart::{run, CartAction, CartScenario};
use quicksand::sim::{SimDuration, SimTime};

fn main() {
    let scenario = CartScenario {
        n_stores: 5,
        plans: vec![
            vec![
                CartAction::Add { item: 1, qty: 1 },
                CartAction::Add { item: 2, qty: 2 },
                CartAction::Remove { item: 1 },
                CartAction::Add { item: 4, qty: 1 },
            ],
            vec![
                CartAction::Add { item: 3, qty: 1 },
                CartAction::ChangeQty { item: 3, qty: 4 },
                CartAction::Add { item: 1, qty: 5 },
            ],
            vec![
                CartAction::Add { item: 5, qty: 2 },
                CartAction::Remove { item: 2 },
            ],
            vec![
                CartAction::Add { item: 2, qty: 1 },
                CartAction::Add { item: 6, qty: 1 },
            ],
        ],
        think: SimDuration::from_millis(40),
        partition: Some((SimTime::from_millis(60), SimTime::from_secs(10))),
        horizon: SimTime::from_secs(45),
        ..CartScenario::default()
    };

    let report = run(&scenario, 2009);

    println!("shoppers: 4   stores: 5   partition: 60ms..10s, healed after");
    println!();
    println!("edits acknowledged:       {}", report.edits_acked);
    println!("PUT availability:         {:.1}%", report.put_availability() * 100.0);
    println!("GETs that failed (shopper proceeded on empty view): {}", report.get_failures);
    println!("sibling sets reconciled by the application:         {}", report.sibling_reconciliations);
    println!("acked edits lost:         {}  (the §6.4 guarantee)", report.lost_edits);
    println!("deleted items resurrected: {} (the §6.4 anomaly)", report.resurrected_items);
    println!("replicas converged:       {}", report.converged);
    println!();
    println!("final cart (item -> qty): {:?}", report.final_cart);
    assert_eq!(report.lost_edits, 0);
    assert!(report.converged);
}
