//! The Dynamo shopping cart riding out a network partition (§6.1).
//!
//! Four shoppers edit one cart on a five-node Dynamo-style store. Ten
//! seconds into the run the cluster splits in half; shoppers keep
//! editing through whichever side they can reach (sloppy quorum accepts
//! every PUT). After the heal, gossip and hinted handoff reconverge the
//! replicas, and the op-union reconciliation guarantees no acknowledged
//! edit is lost — while a deleted item may sneak back in (§6.4).
//!
//! Run with: `cargo run --example shopping_cart`
//!
//! Pass `--cart-mode oplog|orset|both` (default `both`) to pick the
//! cart representation: `oplog` is the paper-faithful §6.1 operation
//! ledger whose canonical replay resurrects deletes; `orset` is the
//! CRDT cart (add-wins OR-Set + PN-counters) where an observed delete
//! can never be replay-inverted. `both` runs the same seed through each
//! and prints the reappearing-delete count per mode.
//!
//! Pass `--trace-out DIR` to also write the observability artifacts:
//! `DIR/spans.jsonl` (one span per line), `DIR/trace.jsonl` (sim+app
//! events), and `DIR/chrome_trace.json` (load in Perfetto / Chrome
//! `about://tracing` to see each `dynamo.put`'s child `net.hop`s with
//! per-hop latencies).

use quicksand::cart::{run, CartAction, CartMode, CartReport, CartScenario};
use quicksand::sim::{SimDuration, SimTime};

fn scenario(mode: CartMode, trace: bool) -> CartScenario {
    CartScenario {
        mode,
        trace,
        n_stores: 5,
        plans: vec![
            vec![
                CartAction::Add { item: 1, qty: 1 },
                CartAction::Add { item: 2, qty: 2 },
                CartAction::Remove { item: 1 },
                CartAction::Add { item: 4, qty: 1 },
            ],
            vec![
                CartAction::Add { item: 3, qty: 1 },
                CartAction::ChangeQty { item: 3, qty: 4 },
                CartAction::Add { item: 1, qty: 5 },
            ],
            vec![CartAction::Add { item: 5, qty: 2 }, CartAction::Remove { item: 2 }],
            vec![CartAction::Add { item: 2, qty: 1 }, CartAction::Add { item: 6, qty: 1 }],
        ],
        think: SimDuration::from_millis(40),
        partition: Some((SimTime::from_millis(60), SimTime::from_secs(10))),
        horizon: SimTime::from_secs(45),
        ..CartScenario::default()
    }
}

fn mode_name(mode: CartMode) -> &'static str {
    match mode {
        CartMode::OpLog => "oplog",
        CartMode::OrSet => "orset",
    }
}

fn print_report(mode: CartMode, report: &CartReport) {
    println!("--- cart mode: {} ---", mode_name(mode));
    println!("edits acknowledged:       {}", report.edits_acked);
    println!("PUT availability:         {:.1}%", report.put_availability() * 100.0);
    println!("GETs that failed (shopper proceeded on empty view): {}", report.get_failures);
    println!(
        "sibling sets reconciled by the application:         {}",
        report.sibling_reconciliations
    );
    println!("acked edits lost:         {}  (the §6.4 guarantee)", report.lost_edits);
    println!("deleted items resurrected: {} (the §6.4 anomaly)", report.resurrected_items);
    println!("replicas converged:       {}", report.converged);
    println!("final cart (item -> qty): {:?}", report.final_cart);
    println!();
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let trace_out = args.iter().position(|a| a == "--trace-out").map(|pos| {
        args.get(pos + 1).cloned().unwrap_or_else(|| {
            eprintln!("--trace-out needs a directory");
            std::process::exit(2);
        })
    });
    let modes: Vec<CartMode> = match args
        .iter()
        .position(|a| a == "--cart-mode")
        .map(|pos| args.get(pos + 1).map(String::as_str).unwrap_or(""))
    {
        None | Some("both") => vec![CartMode::OpLog, CartMode::OrSet],
        Some("oplog") => vec![CartMode::OpLog],
        Some("orset") => vec![CartMode::OrSet],
        Some(other) => {
            eprintln!("--cart-mode must be oplog, orset, or both (got {other:?})");
            std::process::exit(2);
        }
    };

    println!("shoppers: 4   stores: 5   partition: 60ms..10s, healed after");
    println!();

    let mut reports = Vec::new();
    for &mode in &modes {
        // Trace artifacts come from the first mode run.
        let trace = trace_out.is_some() && reports.is_empty();
        let report = run(&scenario(mode, trace), 2009);
        print_report(mode, &report);
        reports.push((mode, report));
    }

    if reports.len() > 1 {
        // In the partition run above a deleted item can reappear in
        // *either* mode when a concurrent add never observed the delete
        // — that's add-wins semantics, not the §6.4 anomaly. The
        // controlled ablation below has no partition, so every delete
        // causally observes the add it is deleting; only replay-order
        // inversion can resurrect an item.
        println!("§6.4 ablation (every delete observes its add; same seed, same plans):");
        for &mode in &modes {
            let r = run(&CartScenario::contended(mode), 2009);
            let note = match mode {
                CartMode::OpLog => "canonical replay can sort a delete before an add it saw",
                CartMode::OrSet => "an observed delete kills the add instances it saw",
            };
            println!(
                "  {:<6} reappearing deletes: {}   ({note})",
                mode_name(mode),
                r.resurrected_items
            );
            assert_eq!(r.lost_edits, 0);
            assert!(r.converged);
        }
        println!();
    }

    if let Some(dir) = trace_out {
        let report = &reports[0].1;
        std::fs::create_dir_all(&dir).expect("create trace-out dir");
        let p = |name: &str| format!("{dir}/{name}");
        std::fs::write(p("spans.jsonl"), report.spans.to_jsonl()).unwrap();
        std::fs::write(p("chrome_trace.json"), report.spans.to_chrome_trace()).unwrap();
        std::fs::write(p("trace.jsonl"), report.trace_jsonl.as_deref().unwrap_or("")).unwrap();
        println!();
        println!("observability artifacts in {dir}/:");
        println!("  spans.jsonl         {} spans", report.spans.len());
        println!("  trace.jsonl         sim+app events");
        println!("  chrome_trace.json   load in Perfetto (ui.perfetto.dev)");
        // Show one dynamo.put causal tree: the put, its replica hops,
        // and each hop's latency.
        if let Some(put) = report
            .spans
            .spans()
            .iter()
            .find(|s| s.name == "dynamo.put" && report.spans.children(s.id).next().is_some())
        {
            println!();
            println!("one dynamo.put causal tree (µs latencies per hop):");
            print!("{}", report.spans.render_tree(put.id));
        }
    }
    for (_, report) in &reports {
        assert_eq!(report.lost_edits, 0);
        assert!(report.converged);
    }
}
