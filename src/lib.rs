//! # quicksand — a reproduction of *Building on Quicksand*
//! (Helland & Campbell, CIDR 2009)
//!
//! This facade re-exports the workspace crates; see the README for the
//! architecture and EXPERIMENTS.md for the derived evaluation.
//!
//! - [`core`] (`quicksand_core`) — the paper's pattern library:
//!   uniquifiers, idempotence, operation-centric state, ACID 2.0,
//!   memories/guesses/apologies, escrow locking, resource policies, the
//!   seat-reservation pattern.
//! - [`crdt`] — delta-state CRDTs realizing ACID 2.0 (§8), with a
//!   generic anti-entropy replication actor.
//! - [`sim`] — the deterministic discrete-event substrate.
//! - [`tandem`] — the NonStop model: DP1 (1984) vs DP2 (1986).
//! - [`logship`] — asynchronous log shipping and stuck-tail recovery.
//! - [`dynamo`] — the availability-first replicated blob store.
//! - [`membership`] — gossip-based cluster membership: a view CRDT, a
//!   consistent-hash ring, and live rebalancing with durable guesses.
//! - [`twopc`] — the Two-Phase Commit baseline the paper argues against.
//! - [`cart`], [`bank`], [`inventory`] — the worked example applications.
//! - [`chaos`] — cross-substrate chaos scenarios: per-substrate
//!   [`ChaosRun`](sim::chaos::ChaosRun) builders with invariant sets,
//!   over the seed-driven fault-plan engine in [`sim::chaos`].

#![forbid(unsafe_code)]

pub mod chaos;

pub use bank;
pub use cart;
pub use crdt;
pub use dynamo;
pub use eventlog;
pub use inventory;
pub use logship;
pub use membership;
pub use quicksand_core as core;
pub use sim;
pub use tandem;
pub use twopc;
