//! # quicksand::chaos — cross-substrate chaos scenarios
//!
//! The paper's thesis is that fault handling *is* the semantics: "the
//! resilience to failures comes from the behavior of the whole, not the
//! perfection of the parts" (§3). This module is the test-support
//! surface that takes the thesis literally. It re-exports the seed-driven
//! fault-plan engine from [`sim::chaos`] and packages, for every
//! substrate in the workspace, a ready-made [`ChaosRun`]: a scenario
//! closure that threads a generated [`FaultPlan`] into the substrate's
//! harness, plus the invariant set that substrate promises to hold under
//! *any* healed schedule:
//!
//! - [`cart_chaos`] — no acked edit is ever lost, the replicas converge,
//!   every planned edit eventually acks, and no causal span leaks open.
//! - [`dynamo_chaos`] — blind PUTs under full fault classes: acked
//!   values survive somewhere, hinted handoff + anti-entropy reconverge.
//! - [`tandem_chaos`] — process-pair takeover: no committed transaction
//!   is lost, every transaction resolves.
//! - [`logship_chaos`] — primary crash + resurrection: no acked op lost,
//!   no duplicate application, every op acks.
//! - [`eventlog_harness`] — broker crashes against the partitioned
//!   event log: an acked append may vanish only when the
//!   [`eventlog::AckPolicy`] explicitly priced that loss in.
//! - [`bank_chaos`] — the books always balance: faults delay knowledge,
//!   never corrupt it.
//! - [`escrow_chaos`] — disconnected escrow shares never over-commit the
//!   fleet's stock (§5.3).
//!
//! Each builder returns the configured [`ChaosRun`]; sweep it over any
//! seed range (derive seeds with [`mix_seed`]) and every violation comes
//! back shrunk to a minimal plan. The generic
//! [`no_leaked_open_spans`] helper adapts the span-hygiene invariant to
//! any report type that exposes a [`SpanStore`].

use sim::{
    Explanation, FlightRecorder, GuessOutcome, Ledger, LedgerAccounting, NodeId, SimDuration,
    SimRng, SimTime, SpanStore,
};

pub use sim::chaos::{
    invariant, mix_seed, ChaosReport, ChaosRun, Fault, FaultPlan, FaultSpec, Invariant, Shrunk,
    Violation,
};

use rand::Rng;

/// Build an [`Explanation`] from a flight-enabled re-run: target the
/// last unresolved guess (a promise the run never closed) and fall back
/// to the last recorded event when every guess resolved.
fn explanation_from(
    seed: u64,
    plan: &FaultPlan,
    flight: Option<FlightRecorder>,
    spans: SpanStore,
) -> Option<Explanation> {
    // Construction lives on `EngineCore` (the path the wall-clock
    // runtime's /explain endpoint uses too); reassemble the harness
    // report's observability state into a core and go through it.
    let mut core = sim::EngineCore::new(seed);
    core.flight = flight;
    core.spans = spans;
    core.plan = plan.clone();
    core.explain_latest()
}

/// No span may still be open once a run's report is cut: crashed nodes
/// close theirs with `Crashed` status, finished work closes with `Ok`,
/// so an open span is leaked bookkeeping. Adapt with an accessor,
/// e.g. `no_leaked_open_spans(|r: &CartReport| &r.spans)`.
pub fn no_leaked_open_spans<R: 'static>(
    spans: impl Fn(&R) -> &SpanStore + 'static,
) -> Box<dyn Invariant<R>> {
    invariant("no-leaked-open-spans", move |r: &R| {
        let open: Vec<&str> = spans(r).open_spans().map(|s| s.name.as_str()).collect();
        if open.is_empty() {
            Ok(())
        } else {
            Err(format!("{} span(s) leaked open: {:?}", open.len(), open))
        }
    })
}

/// Chaos over the shopping cart (§6.4): stores crash and restart, links
/// partition and degrade, shoppers keep retrying. Crashes are restricted
/// to the stores — a crashed shopper is an absent customer, not a fault
/// the cart can answer for.
pub fn cart_chaos(mode: cart::CartMode) -> ChaosRun<cart::CartReport> {
    let base = cart::CartScenario { mode, ..cart::CartScenario::default() };
    let forensic = base.clone();
    let stores: Vec<NodeId> = (0..base.n_stores as usize).map(NodeId).collect();
    let mut nodes = stores.clone();
    nodes.extend((0..base.plans.len()).map(|i| NodeId(base.n_stores as usize + i)));
    let expected: u64 = base.plans.iter().map(|p| p.len() as u64).sum();
    let spec = FaultSpec::new(nodes).crashable(stores);
    ChaosRun::new(spec, move |plan, seed| {
        let mut sc = base.clone();
        sc.faults = plan.clone();
        // Give shoppers room to retry past the last heal.
        sc.horizon = sc.horizon.max(plan.ends_by() + SimDuration::from_secs(10));
        cart::run(&sc, seed)
    })
    .invariant("no-acked-edit-lost", |r: &cart::CartReport| {
        if r.lost_edits == 0 {
            Ok(())
        } else {
            Err(format!("{} acked edit(s) missing from the converged cart", r.lost_edits))
        }
    })
    .invariant("eventual-convergence", |r: &cart::CartReport| {
        if r.converged {
            Ok(())
        } else {
            Err("replica sibling sets still disagree after the plan healed".into())
        }
    })
    .invariant("every-edit-acked", move |r: &cart::CartReport| {
        if r.edits_acked == expected {
            Ok(())
        } else {
            Err(format!(
                "{} of {expected} edits acked — shoppers gave up or stalled",
                r.edits_acked
            ))
        }
    })
    .with_invariant(no_leaked_open_spans(|r: &cart::CartReport| &r.spans))
    .with_ledger(|r: &cart::CartReport| r.ledger.clone())
    .with_explainer(move |plan, seed| {
        let mut sc = forensic.clone();
        sc.faults = plan.clone();
        sc.horizon = sc.horizon.max(plan.ends_by() + SimDuration::from_secs(10));
        sc.flight = true;
        let r = cart::run(&sc, seed);
        explanation_from(seed, plan, r.flight, r.spans)
    })
}

/// Chaos over the raw Dynamo workload (§6.1): a retrying loader
/// blind-writes uniquely-valued versions while the full fault-class
/// grammar runs against the stores. The loader itself never crashes —
/// it plays the paper's patient customer.
pub fn dynamo_chaos(cfg: dynamo::WorkloadConfig) -> ChaosRun<dynamo::WorkloadReport> {
    let forensic = cfg.clone();
    let stores: Vec<NodeId> = (0..cfg.n_stores as usize).map(NodeId).collect();
    let mut nodes = stores.clone();
    nodes.push(NodeId(cfg.n_stores as usize)); // the loader
    let total = cfg.puts;
    let spec = FaultSpec::new(nodes).crashable(stores);
    ChaosRun::new(spec, move |plan, seed| {
        let mut c = cfg.clone();
        c.faults = plan.clone();
        dynamo::run_workload(&c, seed)
    })
    .invariant("no-acked-put-lost", |r: &dynamo::WorkloadReport| {
        if r.acked_lost == 0 {
            Ok(())
        } else {
            Err(format!("{} acked value(s) held by no store — durability evaporated", r.acked_lost))
        }
    })
    .invariant("eventual-convergence", |r: &dynamo::WorkloadReport| {
        if r.converged() {
            Ok(())
        } else {
            Err(format!(
                "{} diverged key(s), {} hint(s) still parked after heal + settle",
                r.diverged_keys, r.hints_undelivered
            ))
        }
    })
    .invariant("every-put-acked", move |r: &dynamo::WorkloadReport| {
        if r.acked == total {
            Ok(())
        } else {
            Err(format!("{} of {total} PUTs acked — availability promise broken", r.acked))
        }
    })
    .with_ledger(|r: &dynamo::WorkloadReport| r.ledger.clone())
    .with_explainer(move |plan, seed| {
        let mut c = forensic.clone();
        c.faults = plan.clone();
        c.flight = true;
        let r = dynamo::run_workload(&c, seed);
        explanation_from(seed, plan, r.flight, r.spans)
    })
}

/// Chaos over live membership (the quicksand-membership subsystem):
/// the Dynamo workload runs while the plan grows and shrinks the ring —
/// [`Fault::AddNode`] directs a pre-provisioned standby store to join,
/// [`Fault::RemoveNode`] directs a member to leave gracefully — with
/// crashes and partitions interleaved against the same stores. Every
/// moved key range rides a durable `membership.transfer` guess, so the
/// headline invariant `no-acked-write-lost-across-rebalance` is checked
/// against the **final** ring's preference lists: an acked PUT that
/// survives only on a departed store is a loss, because no read will
/// ever route there again.
///
/// Two of the five founding members are leavable, so the worst plan
/// (both leave, nobody joins) still leaves an N=3 write quorum standing.
/// Suspicion stays off (the [`dynamo::DynamoConfig`] default): a
/// transient partition must never be escalated into an eviction the
/// plan didn't order, which keeps the sweep's membership changes
/// exactly the planned ones. One-way splits and link degradation are
/// left out — they exercise the message layer, not the rebalance
/// protocol, and [`dynamo_chaos`] already sweeps them.
pub fn membership_chaos() -> ChaosRun<dynamo::WorkloadReport> {
    let cfg = dynamo::WorkloadConfig { spares: 2, ..dynamo::WorkloadConfig::default() };
    let forensic = cfg.clone();
    let members: Vec<NodeId> = (0..cfg.n_stores as usize).map(NodeId).collect();
    let spares: Vec<NodeId> =
        (cfg.n_stores as usize..(cfg.n_stores + cfg.spares) as usize).map(NodeId).collect();
    let mut nodes = members.clone();
    nodes.extend(spares.iter().copied());
    nodes.push(NodeId((cfg.n_stores + cfg.spares) as usize)); // the loader
    let total = cfg.puts;
    let spec = FaultSpec::new(nodes)
        .crashable(members.clone())
        .joinable(spares)
        .leavable(members[..2].to_vec())
        .oneway(false)
        .degrades(false)
        .faults(2, 5);
    ChaosRun::new(spec, move |plan, seed| {
        let mut c = cfg.clone();
        c.faults = plan.clone();
        dynamo::run_workload(&c, seed)
    })
    .invariant("no-acked-write-lost-across-rebalance", |r: &dynamo::WorkloadReport| {
        if r.acked_lost_in_ring == 0 && r.transfers_unacked == 0 {
            Ok(())
        } else {
            Err(format!(
                "{} acked value(s) unreachable through the final ring, {} transfer(s) unacked",
                r.acked_lost_in_ring, r.transfers_unacked
            ))
        }
    })
    .invariant("no-acked-put-lost", |r: &dynamo::WorkloadReport| {
        if r.acked_lost == 0 {
            Ok(())
        } else {
            Err(format!("{} acked value(s) held by no store — durability evaporated", r.acked_lost))
        }
    })
    .invariant("eventual-convergence", |r: &dynamo::WorkloadReport| {
        if r.converged() {
            Ok(())
        } else {
            Err(format!(
                "{} diverged key(s), {} hint(s) still parked after heal + settle",
                r.diverged_keys, r.hints_undelivered
            ))
        }
    })
    .invariant("every-put-acked", move |r: &dynamo::WorkloadReport| {
        if r.acked == total {
            Ok(())
        } else {
            Err(format!("{} of {total} PUTs acked — availability promise broken", r.acked))
        }
    })
    .invariant("all-guesses-settled", |r: &dynamo::WorkloadReport| {
        if r.ledger.open() == 0 {
            Ok(())
        } else {
            Err(format!("{} guess(es) still open after quiescence", r.ledger.open()))
        }
    })
    .with_ledger(|r: &dynamo::WorkloadReport| r.ledger.clone())
    .with_explainer(move |plan, seed| {
        let mut c = forensic.clone();
        c.faults = plan.clone();
        c.flight = true;
        let r = dynamo::run_workload(&c, seed);
        explanation_from(seed, plan, r.flight, r.spans)
    })
}

/// Chaos over the process-pair substrate (§4): crash-and-restart plans
/// against the initial primaries, with the Guardian promoting backups.
/// The Tandem bus is reliable by assumption, so only crash faults are
/// generated.
pub fn tandem_chaos(mode: tandem::Mode) -> ChaosRun<tandem::TandemReport> {
    let base = tandem::TandemConfig { mode, ..tandem::TandemConfig::default() };
    let forensic = base.clone();
    let primaries: Vec<NodeId> = (0..base.n_dps).map(|i| NodeId(base.n_apps + 2 * i)).collect();
    let nodes: Vec<NodeId> = (0..base.n_apps + 2 * base.n_dps + 1).map(NodeId).collect();
    let total = base.n_apps as u64 * base.txns_per_app;
    let spec =
        FaultSpec::new(nodes).crashable(primaries).partitions(false).oneway(false).degrades(false);
    ChaosRun::new(spec, move |plan, seed| {
        let mut cfg = base.clone();
        cfg.faults = plan.clone();
        cfg.horizon = cfg.horizon.max(plan.ends_by() + SimDuration::from_secs(10));
        tandem::run(&cfg, seed)
    })
    .invariant("no-committed-txn-lost", |r: &tandem::TandemReport| {
        if r.lost_committed == 0 {
            Ok(())
        } else {
            Err(format!("{} committed txn(s) missing from the surviving image", r.lost_committed))
        }
    })
    .invariant("every-txn-resolved", move |r: &tandem::TandemReport| {
        if r.unresolved == 0 && r.committed + r.aborted == total {
            Ok(())
        } else {
            Err(format!(
                "{} committed + {} aborted + {} unresolved != {total}",
                r.committed, r.aborted, r.unresolved
            ))
        }
    })
    .with_ledger(|r: &tandem::TandemReport| r.ledger.clone())
    .with_explainer(move |plan, seed| {
        let mut cfg = forensic.clone();
        cfg.faults = plan.clone();
        cfg.horizon = cfg.horizon.max(plan.ends_by() + SimDuration::from_secs(10));
        cfg.flight = true;
        let r = tandem::run(&cfg, seed);
        explanation_from(seed, plan, r.flight, r.spans)
    })
}

/// Chaos over asynchronous log shipping (§5.1): the primary crashes and
/// resurrects on the generated schedule; the backup takes over; the
/// resurrected tail must reconcile without losing or double-applying a
/// single acked op. Crash faults only — shipping's interesting failure
/// *is* the crash; link faults belong to the dynamo scenarios.
pub fn logship_chaos(mode: logship::ShipMode) -> ChaosRun<logship::LogshipReport> {
    let base = logship::LogshipConfig {
        mode,
        recovery: logship::RecoveryPolicy::Resurrect,
        ..logship::LogshipConfig::default()
    };
    let forensic = base.clone();
    let primary = NodeId(base.n_clients);
    let nodes: Vec<NodeId> = (0..base.n_clients + 2).map(NodeId).collect();
    let total = base.n_clients as u64 * base.ops_per_client;
    let spec = FaultSpec::new(nodes)
        .crashable(vec![primary])
        .partitions(false)
        .oneway(false)
        .degrades(false);
    ChaosRun::new(spec, move |plan, seed| {
        let mut cfg = base.clone();
        cfg.faults = plan.clone();
        cfg.horizon = cfg.horizon.max(plan.ends_by() + SimDuration::from_secs(10));
        logship::run(&cfg, seed)
    })
    .invariant("no-acked-op-lost", |r: &logship::LogshipReport| {
        if r.lost_acked == 0 {
            Ok(())
        } else {
            Err(format!("{} acked op(s) absent from the authority's balances", r.lost_acked))
        }
    })
    .invariant("no-duplicate-application", |r: &logship::LogshipReport| {
        if r.duplicate_applications == 0 {
            Ok(())
        } else {
            Err(format!("{} op(s) applied more than once past dedup", r.duplicate_applications))
        }
    })
    .invariant("every-op-acked", move |r: &logship::LogshipReport| {
        if r.acked == total {
            Ok(())
        } else {
            Err(format!("{} of {total} ops acked — clients starved", r.acked))
        }
    })
    .with_ledger(|r: &logship::LogshipReport| r.ledger.clone())
    .with_explainer(move |plan, seed| {
        let mut cfg = forensic.clone();
        cfg.faults = plan.clone();
        cfg.horizon = cfg.horizon.max(plan.ends_by() + SimDuration::from_secs(10));
        cfg.flight = true;
        let r = logship::run(&cfg, seed);
        explanation_from(seed, plan, r.flight, r.spans)
    })
}

/// Chaos over the event-log substrate (§4): broker crashes (leader and
/// replicas) under any healed schedule. The one invariant that varies
/// by policy is the point of the whole crate: an acked append may be
/// lost **iff** the [`eventlog::AckPolicy`] priced that window in.
/// `Immediate` buys speed with a crash-sized apology window (the ledger
/// books every one); `OnFsync` must never lose an ack to a process
/// crash; `OnReplicate(n)` must additionally keep every acked record
/// alive without the leader's disk.
pub fn eventlog_harness(policy: eventlog::AckPolicy) -> ChaosRun<eventlog::EventLogReport> {
    let n_replicas = match policy {
        eventlog::AckPolicy::OnReplicate(n) => (n as usize).max(1),
        _ => 0,
    };
    let base = eventlog::EventLogScenario {
        policy,
        n_replicas,
        compact_every: 8,
        ..eventlog::EventLogScenario::default()
    };
    let forensic = base.clone();
    let lay = eventlog::harness::layout(&base);
    let mut brokers = vec![lay.leader];
    brokers.extend(lay.replicas.iter().copied());
    let mut nodes = lay.producers.clone();
    nodes.extend(brokers.iter().copied());
    nodes.push(lay.consumer);
    let expected = base.n_producers as u64 * base.appends_per_producer;
    let spec = FaultSpec::new(nodes).crashable(brokers);
    ChaosRun::new(spec, move |plan, seed| {
        let mut sc = base.clone();
        sc.faults = plan.clone();
        // Give producers room to retry past the last heal.
        sc.horizon = sc.horizon.max(plan.ends_by() + SimDuration::from_secs(10));
        eventlog::run(&sc, seed)
    })
    .invariant("acked-append-never-lost-under-policy", move |r: &eventlog::EventLogReport| {
        if !policy.prices_in_crash_loss() && r.lost_acked > 0 {
            return Err(format!(
                "{} acked append(s) held by no broker under {policy}, which sold durability",
                r.lost_acked
            ));
        }
        if !policy.prices_in_disk_loss() && r.lost_without_leader_disk > 0 {
            return Err(format!(
                "{} acked append(s) would die with the leader's disk under {policy}",
                r.lost_without_leader_disk
            ));
        }
        // When the policy priced the loss in, every loss must still be
        // an apology the ledger knows about — priced-in is not silent.
        if policy.prices_in_crash_loss() && r.lost_acked > r.ledger.orphaned() {
            return Err(format!(
                "{} loss(es) but only {} orphaned guess(es) — an ack escaped unbooked",
                r.lost_acked,
                r.ledger.orphaned()
            ));
        }
        Ok(())
    })
    .invariant("every-append-acked", move |r: &eventlog::EventLogReport| {
        if r.acked == expected {
            Ok(())
        } else {
            Err(format!("{} of {expected} appends acked — producers starved", r.acked))
        }
    })
    .with_invariant(no_leaked_open_spans(|r: &eventlog::EventLogReport| &r.spans))
    .with_ledger(|r: &eventlog::EventLogReport| r.ledger.clone())
    .with_explainer(move |plan, seed| {
        let mut sc = forensic.clone();
        sc.faults = plan.clone();
        sc.horizon = sc.horizon.max(plan.ends_by() + SimDuration::from_secs(10));
        sc.flight = true;
        let r = eventlog::run(&sc, seed);
        explanation_from(seed, plan, r.flight, r.spans)
    })
}

/// Chaos over check clearing (§6.2): partitions and crashes projected
/// onto the round axis delay inter-branch knowledge; the head office
/// (branch 0) never goes dark and the final settlement always runs fully
/// connected, so every safety invariant must survive any plan.
pub fn bank_chaos() -> ChaosRun<bank::ClearingReport> {
    let base = bank::ClearingConfig::default();
    let nodes: Vec<NodeId> = (0..base.n_branches).map(NodeId).collect();
    let crashable: Vec<NodeId> = (1..base.n_branches).map(NodeId).collect();
    let end_us = (base.rounds as f64 * base.round_us) as u64;
    let spec = FaultSpec::new(nodes)
        .crashable(crashable)
        .degrades(false)
        .window(SimTime::from_micros(end_us / 10), SimTime::from_micros(end_us * 4 / 5));
    ChaosRun::new(spec, move |plan, seed| {
        let mut cfg = base.clone();
        cfg.faults = plan.clone();
        bank::run_clearing(&cfg, seed)
    })
    .invariant("balanced-books", |r: &bank::ClearingReport| {
        if r.books_balance {
            Ok(())
        } else {
            Err("replaying a branch log disagrees with its balances, or money leaked".into())
        }
    })
    .invariant("eventual-convergence", |r: &bank::ClearingReport| {
        if r.converged {
            Ok(())
        } else {
            Err("branches disagree after final settlement".into())
        }
    })
    .invariant("no-double-posting", |r: &bank::ClearingReport| {
        if r.no_double_posting {
            Ok(())
        } else {
            Err("a uniquified op posted twice".into())
        }
    })
    .invariant("statements-ok", |r: &bank::ClearingReport| {
        if r.statements_ok {
            Ok(())
        } else {
            Err("a closed monthly statement was retroactively edited".into())
        }
    })
    .with_invariant(no_leaked_open_spans(|r: &bank::ClearingReport| &r.spans))
    .with_ledger(|r: &bank::ClearingReport| r.ledger.clone())
}

// ---------------------------------------------------------------------------
// Escrow under disconnection (§5.3)
// ---------------------------------------------------------------------------

/// A fleet of [`inventory::PnStock`] replicas selling from escrowed
/// shares while a [`FaultPlan`], projected onto a round axis exactly as
/// in [`bank::ClearingConfig`], decides who is offline and which pairs
/// may exchange counter deltas.
#[derive(Debug, Clone)]
pub struct EscrowScenario {
    /// Fleet size.
    pub n_replicas: usize,
    /// Units escrowed to each replica (`[0, share]` bounds its sales).
    pub share: i64,
    /// Selling rounds.
    pub rounds: u64,
    /// Maximum sale attempts per replica per round (uniform `0..=max`).
    pub max_sales_per_round: u64,
    /// Delta exchange happens every this many rounds.
    pub exchange_every: u64,
    /// Sim-time microseconds per round, for projecting the plan.
    pub round_us: f64,
    /// The fault timeline (round-axis semantics; `Degrade` is ignored).
    pub faults: FaultPlan,
}

impl Default for EscrowScenario {
    fn default() -> Self {
        EscrowScenario {
            n_replicas: 4,
            share: 30,
            rounds: 50,
            max_sales_per_round: 3,
            exchange_every: 5,
            round_us: 100_000.0, // 0.1 s per round → 50 rounds span 5 s
            faults: FaultPlan::none(),
        }
    }
}

/// What the escrow fleet did and where the stock ended up.
#[derive(Debug, Clone, Default)]
pub struct EscrowReport {
    /// Sale attempts across the fleet.
    pub attempts: u64,
    /// Sales the escrow admitted (each moved one unit).
    pub accepted: u64,
    /// Sales the escrow crisply refused at the bound.
    pub refused: u64,
    /// Total units the fleet started with.
    pub capacity: i64,
    /// The fleet-wide tally after the final full exchange.
    pub fleet_value: i64,
    /// Whether every replica reads the same fleet value at the end.
    pub replicas_agree: bool,
    /// Guess/apology accounting (`escrow.sale` guesses: sales admitted
    /// against a local share, all confirmed at settlement — escrow is
    /// the §5.3 discipline that never has to apologize).
    pub ledger: LedgerAccounting,
}

fn round_of(t: SimTime, round_us: f64) -> u64 {
    (t.as_micros() as f64 / round_us) as u64
}

/// Run the escrow fleet under `scenario.faults`. Crashed replicas skip
/// their selling rounds; partitioned pairs skip their exchanges; the
/// final exchange is always fully connected ("the trucks eventually
/// arrive"), so convergence is a fair question.
pub fn run_escrow(scenario: &EscrowScenario, seed: u64) -> EscrowReport {
    let n = scenario.n_replicas;
    let mut fleet: Vec<inventory::PnStock> = (0..n)
        .map(|i| inventory::PnStock::new(i as u64, scenario.share, 0, scenario.share))
        .collect();
    // Seed exchange: everyone learns everyone's share.
    for i in 0..n {
        for j in 0..n {
            if i != j {
                let t = fleet[j].tally().clone();
                fleet[i].absorb(&t);
            }
        }
    }

    let offline = |r: usize, round: u64| -> bool {
        scenario.faults.faults.iter().any(|f| match f {
            Fault::Crash { at, node, restart_at } if node.0 == r => {
                let from = round_of(*at, scenario.round_us);
                let until = restart_at.map_or(u64::MAX, |t| round_of(t, scenario.round_us));
                (from..until).contains(&round)
            }
            _ => false,
        })
    };
    let blocked = |a: usize, b: usize, round: u64| -> bool {
        scenario.faults.faults.iter().any(|f| match f {
            Fault::Partition { at, until, left, right } => {
                let window = round_of(*at, scenario.round_us)..round_of(*until, scenario.round_us);
                window.contains(&round)
                    && ((left.iter().any(|n| n.0 == a) && right.iter().any(|n| n.0 == b))
                        || (left.iter().any(|n| n.0 == b) && right.iter().any(|n| n.0 == a)))
            }
            Fault::PartitionOneWay { at, until, from, to } => {
                // A one-way link break blocks the pair's exchange: delta
                // exchange is a conversation, not a broadcast.
                let window = round_of(*at, scenario.round_us)..round_of(*until, scenario.round_us);
                window.contains(&round)
                    && ((from.iter().any(|n| n.0 == a) && to.iter().any(|n| n.0 == b))
                        || (from.iter().any(|n| n.0 == b) && to.iter().any(|n| n.0 == a)))
            }
            _ => false,
        })
    };

    let mut rng = SimRng::new(seed ^ 0xe5c4_0e5c_4e5c_40e5);
    let mut report =
        EscrowReport { capacity: scenario.share * n as i64, ..EscrowReport::default() };
    let mut ledger = Ledger::new();
    let mut open_sales = Vec::new();
    let at_round = |round: u64| SimTime::from_micros((round as f64 * scenario.round_us) as u64);

    for round in 0..scenario.rounds {
        for (i, stock) in fleet.iter_mut().enumerate() {
            if offline(i, round) {
                continue;
            }
            let sales = rng.gen_range(0..=scenario.max_sales_per_round);
            for _ in 0..sales {
                report.attempts += 1;
                let txn = stock.begin();
                match stock.reserve(txn, -1) {
                    Ok(()) => {
                        stock.commit(txn).expect("an admitted reservation commits");
                        report.accepted += 1;
                        // Each admitted sale is an optimistic promise
                        // made against local knowledge; the escrowed
                        // share bounds it, so settlement always confirms.
                        open_sales.push(ledger.open(
                            "escrow.sale",
                            Some(NodeId(i)),
                            "escrowed local share",
                            at_round(round),
                        ));
                    }
                    Err(_) => {
                        stock.abort(txn).expect("a refused txn aborts cleanly");
                        report.refused += 1;
                    }
                }
            }
        }
        if (round + 1) % scenario.exchange_every.max(1) == 0 {
            for i in 0..n {
                for j in (i + 1)..n {
                    if offline(i, round) || offline(j, round) || blocked(i, j, round) {
                        continue;
                    }
                    let ti = fleet[i].tally().clone();
                    let tj = fleet[j].tally().clone();
                    fleet[i].absorb(&tj);
                    fleet[j].absorb(&ti);
                }
            }
        }
    }

    // Final settlement: fully connected.
    for i in 0..n {
        for j in 0..n {
            if i != j {
                let t = fleet[j].tally().clone();
                fleet[i].absorb(&t);
            }
        }
    }
    report.fleet_value = fleet[0].fleet_value();
    report.replicas_agree = fleet.iter().all(|s| s.fleet_value() == report.fleet_value);
    for g in open_sales {
        ledger.resolve(g, at_round(scenario.rounds), GuessOutcome::Confirmed);
    }
    report.ledger = ledger.accounting();
    report
}

/// Chaos over the escrow fleet: however the plan isolates replicas, the
/// escrowed shares mean the fleet can never promise more stock than it
/// holds, and the commutative tally conserves every unit.
pub fn escrow_chaos() -> ChaosRun<EscrowReport> {
    let base = EscrowScenario::default();
    let nodes: Vec<NodeId> = (0..base.n_replicas).map(NodeId).collect();
    let spec = FaultSpec::new(nodes).degrades(false);
    ChaosRun::new(spec, move |plan, seed| {
        let mut sc = base.clone();
        sc.faults = plan.clone();
        run_escrow(&sc, seed)
    })
    .invariant("escrow-never-over-commits", |r: &EscrowReport| {
        if (r.accepted as i64) <= r.capacity && r.fleet_value >= 0 {
            Ok(())
        } else {
            Err(format!(
                "accepted {} of capacity {} leaving fleet value {}",
                r.accepted, r.capacity, r.fleet_value
            ))
        }
    })
    .invariant("fleet-tally-conserves-stock", |r: &EscrowReport| {
        if r.fleet_value == r.capacity - r.accepted as i64 {
            Ok(())
        } else {
            Err(format!(
                "fleet value {} != capacity {} - accepted {}",
                r.fleet_value, r.capacity, r.accepted
            ))
        }
    })
    .invariant("replicas-agree-after-settle", |r: &EscrowReport| {
        if r.replicas_agree {
            Ok(())
        } else {
            Err("replicas read different fleet values after full exchange".into())
        }
    })
    .invariant("escrow-never-apologizes", |r: &EscrowReport| {
        if r.ledger.apologized() == 0 && r.ledger.is_settled() {
            Ok(())
        } else {
            Err(format!(
                "{} apology(ies), {} guess(es) left open — escrow must be crisp",
                r.ledger.apologized(),
                r.ledger.open()
            ))
        }
    })
    .with_ledger(|r: &EscrowReport| r.ledger.clone())
}
