//! The flight recorder's bounded ring under concurrent wall-clock
//! load: many worker threads record events through the shared core
//! while the ring evicts, and the properties the forensics pipeline
//! leans on must hold throughout —
//!
//! - **slices stay happens-before-closed**: every member event's cause
//!   is itself a member, or the slice is flagged `truncated` with the
//!   dangling edges counted in `missing_ancestors` (a bounded ring may
//!   forget history, but never silently);
//! - **eviction accounting is exact**: `evicted()` always equals
//!   `total_recorded() - len()`, and the ring never exceeds capacity.

use std::collections::BTreeSet;
use std::time::Duration;

use quicksand_runtime::RuntimeBuilder;
use sim::{Actor, CausalSlice, Context, NodeId, SimDuration};

/// Deliberately tiny: the volley below records two orders of magnitude
/// more events than this, so eviction churns for most of the run.
const CAP: usize = 64;
const PAIRS: usize = 3;
const ROUNDS: u64 = 400;

#[derive(Clone, Debug)]
struct Ball(u64);

struct Ponger;

impl Actor<Ball> for Ponger {
    fn on_message(&mut self, ctx: &mut Context<'_, Ball>, from: NodeId, msg: Ball) {
        ctx.send(from, Ball(msg.0 + 1));
    }
}

struct Pinger {
    peer: NodeId,
    rounds: u64,
    done: std::sync::mpsc::Sender<()>,
}

impl Actor<Ball> for Pinger {
    fn on_start(&mut self, ctx: &mut Context<'_, Ball>) {
        ctx.set_timer(SimDuration::from_millis(1), 0);
    }
    fn on_timer(&mut self, ctx: &mut Context<'_, Ball>, _tag: u64) {
        ctx.send(self.peer, Ball(0));
    }
    fn on_message(&mut self, ctx: &mut Context<'_, Ball>, _from: NodeId, msg: Ball) {
        if msg.0 < self.rounds {
            ctx.send(self.peer, Ball(msg.0 + 1));
        } else {
            self.done.send(()).ok();
        }
    }
}

/// A slice is happens-before-closed when no member's cause edge dangles
/// silently: it either lands on another member or is accounted for by
/// the truncation flag.
fn assert_slice_closed(slice: &CausalSlice) {
    let members: BTreeSet<u64> = slice.events.iter().map(|e| e.id.0).collect();
    let dangling: Vec<u64> = slice
        .events
        .iter()
        .filter_map(|e| e.cause)
        .map(|c| c.0)
        .filter(|c| !members.contains(c))
        .collect();
    if !dangling.is_empty() {
        assert!(
            slice.truncated,
            "slice for E{} has dangling causes {dangling:?} but is not flagged truncated",
            slice.target.0
        );
        assert!(
            slice.missing_ancestors > 0,
            "truncated slice for E{} counts zero missing ancestors",
            slice.target.0
        );
    }
}

#[test]
fn ring_eviction_under_concurrent_load_keeps_slices_closed() {
    let (done_tx, done_rx) = std::sync::mpsc::channel();
    let mut b = RuntimeBuilder::new().seed(11).flight(CAP);
    let mut pingers = 0usize;
    for _ in 0..PAIRS {
        let ponger = b.add_node(Ponger);
        b.add_node(Pinger { peer: ponger, rounds: ROUNDS, done: done_tx.clone() });
        pingers += 1;
    }
    let rt = b.launch();

    // Probe the ring while the volleys are in flight: accounting must
    // be exact and the newest event's slice closed at every instant,
    // not just after quiescence.
    let mut finished = 0usize;
    let mut probes = 0usize;
    while finished < pingers {
        if done_rx.recv_timeout(Duration::from_millis(5)).is_ok() {
            finished += 1;
        }
        rt.with_core(|c| {
            let f = c.flight.as_ref().expect("flight recorder on");
            assert!(f.len() <= CAP, "ring exceeded capacity: {}", f.len());
            assert_eq!(
                f.evicted(),
                f.total_recorded() - f.len() as u64,
                "eviction accounting drifted mid-run"
            );
            if let Some(target) = f.last_matching(|_| true) {
                assert_slice_closed(&f.slice(target, &c.spans));
                probes += 1;
            }
        });
    }
    assert!(probes > 0, "the probe loop never observed a live ring");

    let report = rt.shutdown();
    let f = report.core.flight.as_ref().expect("flight recorder on");
    assert!(
        f.total_recorded() > (CAP as u64) * 10,
        "load too small to churn the ring: {} events",
        f.total_recorded()
    );
    assert!(f.evicted() > 0, "nothing was evicted");
    assert_eq!(f.evicted(), f.total_recorded() - f.len() as u64);
    assert!(f.len() <= CAP);
    // The retained window is the dense tail of the id space.
    assert_eq!(f.first_retained(), f.evicted());

    // Post-quiescence, every retained event's slice is closed too.
    for probe in [f.first_retained(), f.total_recorded() - 1] {
        assert_slice_closed(&f.slice(sim::FlightId(probe), &report.core.spans));
    }
}
