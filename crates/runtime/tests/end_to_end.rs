//! The same unmodified actors, on both transports: a ping/pong pair and
//! a timer-driven heartbeat run over loopback channels and real TCP
//! sockets, exercising the whole path (mailboxes, the shared engine
//! core, the timer wheel, and — for TCP — the wire codec and framing).

use std::time::Duration;

use quicksand_core::{WireCodec, WireError};
use quicksand_runtime::{RuntimeBuilder, TransportKind};
use sim::{Actor, Context, NodeId, SimDuration};

#[derive(Clone, Debug, PartialEq)]
enum Msg {
    Ping(u64),
    Pong(u64),
}

impl WireCodec for Msg {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Msg::Ping(n) => {
                0u8.encode(out);
                n.encode(out);
            }
            Msg::Pong(n) => {
                1u8.encode(out);
                n.encode(out);
            }
        }
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode(buf)? {
            0 => Ok(Msg::Ping(u64::decode(buf)?)),
            1 => Ok(Msg::Pong(u64::decode(buf)?)),
            t => Err(WireError::BadTag(t)),
        }
    }
}

/// Replies `Pong(n + 1)` to every ping.
struct Ponger;

impl Actor<Msg> for Ponger {
    fn on_message(&mut self, ctx: &mut Context<'_, Msg>, from: NodeId, msg: Msg) {
        if let Msg::Ping(n) = msg {
            ctx.send(from, Msg::Pong(n + 1));
        }
    }
}

/// Kicks off on a timer, then volleys with the ponger until `rounds`
/// pongs arrive.
struct Pinger {
    peer: NodeId,
    rounds: u64,
    got: Vec<u64>,
    done: std::sync::mpsc::Sender<()>,
}

impl Actor<Msg> for Pinger {
    fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
        ctx.set_timer(SimDuration::from_millis(1), 0);
    }
    fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, _tag: u64) {
        ctx.send(self.peer, Msg::Ping(0));
    }
    fn on_message(&mut self, ctx: &mut Context<'_, Msg>, _from: NodeId, msg: Msg) {
        if let Msg::Pong(n) = msg {
            self.got.push(n);
            if self.got.len() as u64 == self.rounds {
                self.done.send(()).ok();
            } else {
                ctx.send(self.peer, Msg::Ping(n));
            }
        }
    }
}

fn volley(kind: TransportKind) {
    let (done_tx, done_rx) = std::sync::mpsc::channel();
    let mut b = RuntimeBuilder::new().seed(42);
    let ponger = b.add_node(Ponger);
    let _pinger = b.add_node(Pinger { peer: ponger, rounds: 16, got: Vec::new(), done: done_tx });
    let rt = b.launch_transport(kind).expect("launch");
    done_rx.recv_timeout(Duration::from_secs(10)).expect("volley completes");
    let pinger_node = NodeId(1);
    let report = rt.shutdown();
    let pinger = report.actor::<Pinger>(pinger_node);
    // Each pong carries the previous value + 1: 1, 2, 3, ...
    assert_eq!(pinger.got, (1..=16).collect::<Vec<u64>>());
    assert!(report.core.metrics.counter("sim.messages_sent") >= 32);
}

#[test]
fn ping_pong_volley_over_loopback() {
    volley(TransportKind::Loopback);
}

#[test]
fn ping_pong_volley_over_tcp() {
    volley(TransportKind::Tcp);
}

/// S2 (runtime side): cancelling a pending timer suppresses it, and
/// cancelling an already-fired or foreign timer id is a harmless no-op
/// — the same contract the simulator documents.
#[test]
fn timer_cancel_contract_holds_on_the_runtime() {
    #[derive(Clone, Debug)]
    enum TMsg {
        Go,
        ForeignCancel(sim::TimerId),
        Fired(u64),
    }
    struct Canceller {
        listener: NodeId,
        fired: Option<sim::TimerId>,
    }
    impl Actor<TMsg> for Canceller {
        fn on_start(&mut self, ctx: &mut Context<'_, TMsg>) {
            // Arm two: cancel one immediately (must never fire), let the
            // other fire and then cancel it again (must be a no-op).
            let doomed = ctx.set_timer(SimDuration::from_millis(5), 1);
            self.fired = Some(ctx.set_timer(SimDuration::from_millis(10), 2));
            ctx.cancel_timer(doomed);
        }
        fn on_timer(&mut self, ctx: &mut Context<'_, TMsg>, tag: u64) {
            if let Some(id) = self.fired {
                ctx.cancel_timer(id); // already fired: documented no-op
            }
            ctx.send(self.listener, TMsg::Fired(tag));
        }
        fn on_message(&mut self, ctx: &mut Context<'_, TMsg>, _from: NodeId, msg: TMsg) {
            if let TMsg::ForeignCancel(id) = msg {
                ctx.cancel_timer(id); // not ours: documented no-op
            }
        }
    }
    struct Listener {
        tx: std::sync::mpsc::Sender<u64>,
        peer_timer: std::sync::mpsc::Sender<sim::TimerId>,
        armed: bool,
    }
    impl Actor<TMsg> for Listener {
        fn on_message(&mut self, ctx: &mut Context<'_, TMsg>, _from: NodeId, msg: TMsg) {
            match msg {
                TMsg::Fired(tag) => {
                    self.tx.send(tag).ok();
                }
                TMsg::Go if !self.armed => {
                    self.armed = true;
                    let id = ctx.set_timer(SimDuration::from_secs(30), 9);
                    self.peer_timer.send(id).ok();
                }
                _ => {}
            }
        }
    }

    let (tx, rx) = std::sync::mpsc::channel();
    let (id_tx, id_rx) = std::sync::mpsc::channel();
    let mut b = RuntimeBuilder::new().seed(7);
    let listener = b.add_node(Listener { tx, peer_timer: id_tx, armed: false });
    let canceller = b.add_node(Canceller { listener, fired: None });
    let rt = b.launch();

    // Only tag 2 fires: tag 1 was cancelled while pending.
    assert_eq!(rx.recv_timeout(Duration::from_secs(5)).expect("timer fires"), 2);
    assert!(rx.recv_timeout(Duration::from_millis(100)).is_err(), "cancelled timer must not fire");

    // A foreign cancel must not suppress the listener's own timer.
    rt.inject(listener, canceller, TMsg::Go);
    let foreign = id_rx.recv_timeout(Duration::from_secs(5)).expect("listener armed");
    rt.inject(canceller, listener, TMsg::ForeignCancel(foreign));
    std::thread::sleep(Duration::from_millis(50));

    let report = rt.shutdown();
    assert_eq!(
        report.core.metrics.counter("sim.foreign_timer_cancel_ignored"),
        1,
        "foreign cancel was observed and ignored"
    );
}
