//! Wall-clock chaos against a live runtime: the same [`FaultPlan`]
//! clauses the simulator schedules, executed by the chaos controller on
//! real threads and (for the partition test) real TCP sockets.
//!
//! Windows are deliberately generous — these tests assert *ordering and
//! effect* (blocked during the window, flowing after the heal, crashed
//! then restarted), never exact wall-clock timing.

use std::time::Duration;

use quicksand_runtime::RuntimeBuilder;
use sim::{Actor, Context, Fault, FaultPlan, FaultSpec, LinkConfig, NodeId, SimDuration, SimTime};

/// Sends an incrementing sequence number to `peer` on a steady timer.
struct Pinger {
    peer: NodeId,
    next: u64,
    every: SimDuration,
}

impl Pinger {
    fn new(peer: NodeId) -> Self {
        Pinger { peer, next: 0, every: SimDuration::from_millis(5) }
    }
}

impl Actor<u64> for Pinger {
    fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
        ctx.set_timer(self.every, 0);
    }
    fn on_timer(&mut self, ctx: &mut Context<'_, u64>, _tag: u64) {
        ctx.send(self.peer, self.next);
        self.next += 1;
        ctx.set_timer(self.every, 0);
    }
    fn on_message(&mut self, _ctx: &mut Context<'_, u64>, _from: NodeId, _msg: u64) {}
}

/// Counts what arrives; wipes on crash, flags the restart.
#[derive(Default)]
struct Counter {
    received: u64,
    crashed: bool,
    restarted: bool,
}

impl Actor<u64> for Counter {
    fn on_message(&mut self, _ctx: &mut Context<'_, u64>, _from: NodeId, _msg: u64) {
        self.received += 1;
    }
    fn on_crash(&mut self, _now: SimTime) {
        self.crashed = true;
        self.received = 0; // volatile state dies with the node
    }
    fn on_restart(&mut self, _ctx: &mut Context<'_, u64>) {
        self.restarted = true;
    }
}

#[test]
fn partition_blocks_tcp_traffic_then_heals_and_redials() {
    let plan = FaultPlan::from_faults(vec![Fault::Partition {
        at: SimTime::from_millis(100),
        until: SimTime::from_millis(400),
        left: vec![NodeId(0)],
        right: vec![NodeId(1)],
    }]);
    let mut b = RuntimeBuilder::new().chaos(plan, 11);
    let counter = {
        let peer = b.add_node(Pinger::new(NodeId(1)));
        assert_eq!(peer, NodeId(0));
        b.add_node(Counter::default())
    };
    let rt = b.launch_tcp().expect("tcp launch");
    let chaos = || rt.chaos().expect("chaos configured");
    assert!(chaos().wait_finished(Duration::from_secs(30)), "plan completes");
    // During the window the pinger's frames were refused and booked as
    // drops (the partition severed the live conn, then blocked sends).
    assert!(chaos().stats().partition_drops > 0, "{:?}", chaos().stats());
    // After the heal, traffic must flow again over a lazily redialed
    // conn — a healed partition is not a permanent blackhole.
    let at_heal = rt.inspect::<Counter, _, _>(counter, |c| c.received);
    std::thread::sleep(Duration::from_millis(300));
    let after = rt.inspect::<Counter, _, _>(counter, |c| c.received);
    assert!(after > at_heal, "no frames after heal: {at_heal} -> {after}");
    let report = rt.shutdown();
    assert!(report.core.metrics.counter("sim.messages_dropped") > 0);
    assert_eq!(report.core.metrics.counter("runtime.chaos_clauses"), 2, "onset + heal");
}

#[test]
fn crash_clause_rides_the_epoch_machinery_and_restart_travels_with_it() {
    let plan = FaultPlan::from_faults(vec![Fault::Crash {
        at: SimTime::from_millis(60),
        node: NodeId(1),
        restart_at: Some(SimTime::from_millis(200)),
    }]);
    let mut b = RuntimeBuilder::new().chaos(plan, 5);
    b.add_node(Pinger::new(NodeId(1)));
    let counter = b.add_node(Counter::default());
    let rt = b.launch();
    assert!(rt.chaos().expect("chaos").wait_finished(Duration::from_secs(30)));
    std::thread::sleep(Duration::from_millis(150));
    let status = rt.node_status(counter);
    assert!(status.is_up(), "restarted");
    assert_eq!(status.crashes(), 1);
    assert_eq!(status.restarts(), 1);
    assert_eq!(status.epoch(), 1, "crash bumped the epoch");
    let (crashed, restarted, received) =
        rt.inspect::<Counter, _, _>(counter, |c| (c.crashed, c.restarted, c.received));
    assert!(crashed, "on_crash ran");
    assert!(restarted, "on_restart ran");
    assert!(received > 0, "traffic resumed after the restart");
    let report = rt.shutdown();
    assert_eq!(report.core.metrics.counter("runtime.restarts"), 1);
    assert_eq!(
        report.core.metrics.counter("runtime.chaos_clauses"),
        2,
        "crash onset + restart heal"
    );
}

#[test]
fn degraded_link_loses_frames_with_sim_visible_bookkeeping() {
    let plan = FaultPlan::from_faults(vec![Fault::Degrade {
        at: SimTime::from_millis(40),
        until: SimTime::from_millis(300),
        a: NodeId(0),
        b: NodeId(1),
        link: LinkConfig {
            latency_min: SimDuration::from_millis(1),
            latency_max: SimDuration::from_millis(2),
            drop_prob: 1.0, // every frame in the window dies
            duplicate_prob: 0.0,
        },
    }]);
    let mut b = RuntimeBuilder::new().chaos(plan, 23);
    b.add_node(Pinger::new(NodeId(1)));
    b.add_node(Counter::default());
    let rt = b.launch();
    assert!(rt.chaos().expect("chaos").wait_finished(Duration::from_secs(30)));
    let stats = rt.chaos().expect("chaos").stats();
    assert!(stats.chance_drops > 0, "lossy window dropped frames: {stats:?}");
    let report = rt.shutdown();
    assert!(
        report.core.metrics.counter("sim.messages_dropped") >= stats.chance_drops,
        "every chaos drop is booked like a sim drop"
    );
}

#[test]
fn same_seed_replays_the_same_clause_sequence_on_the_live_runtime() {
    // A generated plan (not hand-written): the reproducibility contract
    // is seed -> plan -> applied clause sequence, end to end.
    let spec = FaultSpec::new(vec![NodeId(0), NodeId(1)])
        .window(SimTime::from_millis(20), SimTime::from_millis(250))
        .faults(3, 5);
    let plan = FaultPlan::generate(77, &spec);
    let run = || {
        let mut b = RuntimeBuilder::new().chaos(plan.clone(), 77);
        b.add_node(Pinger::new(NodeId(1)));
        b.add_node(Counter::default());
        let rt = b.launch();
        assert!(rt.chaos().expect("chaos").wait_finished(Duration::from_secs(30)));
        let log = rt.chaos().expect("chaos").applied();
        rt.shutdown();
        log
    };
    let first = run();
    assert_eq!(first.len(), plan.timeline().len(), "every edge applied");
    assert_eq!(first, run(), "same seed, same clause sequence");
}
