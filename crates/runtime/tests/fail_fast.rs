//! S3: fail-fast crash coverage for the wall-clock runtime (§2.2).
//!
//! A panic in the middle of a callback must leave the node *crashed*,
//! never torn: volatile state is wiped by `on_crash`, every `Action`
//! the doomed callback had queued is discarded (a crashed node cannot
//! send), and a later restart recovers exactly the durable fields.

use std::sync::mpsc::RecvTimeoutError;
use std::time::Duration;

use quicksand_runtime::RuntimeBuilder;
use sim::{Actor, Context, NodeId, SimTime};

/// Messages for the panicking store below.
#[derive(Clone, Debug)]
enum Msg {
    /// Write a value durably, then ack.
    Put(u64),
    /// Write to volatile memory only, then ack.
    Cache(u64),
    /// Queue an ack *and* a timer, then panic before returning.
    Poison,
    /// Ack with current state: (durable, volatile, restarts).
    Probe,
    /// Ack carrying the requested payload.
    Ack(u64),
    /// Probe response.
    State(Vec<u64>, Vec<u64>, u64),
}

/// A store with an explicit durable/volatile split and a poison pill.
#[derive(Default)]
struct Store {
    durable: Vec<u64>,
    volatile: Vec<u64>,
    restarts: u64,
    client: Option<NodeId>,
}

impl Actor<Msg> for Store {
    fn on_message(&mut self, ctx: &mut Context<'_, Msg>, from: NodeId, msg: Msg) {
        self.client = Some(from);
        match msg {
            Msg::Put(v) => {
                self.durable.push(v);
                ctx.send(from, Msg::Ack(v));
            }
            Msg::Cache(v) => {
                self.volatile.push(v);
                ctx.send(from, Msg::Ack(v));
            }
            Msg::Poison => {
                // Both of these effects must be discarded by the crash.
                ctx.send(from, Msg::Ack(u64::MAX));
                ctx.set_timer(sim::SimDuration::from_millis(1), 7);
                panic!("poison pill");
            }
            Msg::Probe => {
                ctx.send(
                    from,
                    Msg::State(self.durable.clone(), self.volatile.clone(), self.restarts),
                );
            }
            _ => {}
        }
    }

    fn on_crash(&mut self, _now: SimTime) {
        self.volatile.clear(); // memory does not survive a crash
    }

    fn on_restart(&mut self, _ctx: &mut Context<'_, Msg>) {
        self.restarts += 1;
    }
}

/// Collector that forwards everything it hears to a test channel.
struct Collector(std::sync::mpsc::Sender<Msg>);

impl Actor<Msg> for Collector {
    fn on_message(&mut self, _ctx: &mut Context<'_, Msg>, _from: NodeId, msg: Msg) {
        self.0.send(msg).ok();
    }
}

fn recv(rx: &std::sync::mpsc::Receiver<Msg>) -> Msg {
    rx.recv_timeout(Duration::from_secs(5)).expect("reply within 5s")
}

#[test]
fn panic_mid_callback_crashes_the_node_without_tearing_state() {
    let (tx, rx) = std::sync::mpsc::channel();
    let mut b = RuntimeBuilder::new().seed(1);
    let store;
    let client;
    {
        store = b.add_node(Store::default());
        client = b.add_node(Collector(tx));
    }
    let rt = b.launch();

    // Establish durable and volatile state, acked.
    rt.inject(store, client, Msg::Put(10));
    rt.inject(store, client, Msg::Cache(20));
    assert!(matches!(recv(&rx), Msg::Ack(10)));
    assert!(matches!(recv(&rx), Msg::Ack(20)));

    // The poison callback queues an ack and a timer, then panics. The
    // node must crash fail-fast: no ack escapes, no timer fires.
    rt.inject(store, client, Msg::Poison);

    // Messages to a crashed node are dropped, so the probe goes
    // unanswered — and crucially the poisoned ack never arrived either.
    rt.inject(store, client, Msg::Probe);
    match rx.recv_timeout(Duration::from_millis(300)) {
        Err(RecvTimeoutError::Timeout) => {}
        other => panic!("crashed node must not respond, got {other:?}"),
    }

    // Restart: durable state survives, volatile was wiped by on_crash,
    // and on_restart ran exactly once.
    rt.restart(store);
    rt.inject(store, client, Msg::Probe);
    match recv(&rx) {
        Msg::State(durable, volatile, restarts) => {
            assert_eq!(durable, vec![10], "durable state survives the crash");
            assert!(volatile.is_empty(), "volatile state is wiped, not torn");
            assert_eq!(restarts, 1);
        }
        other => panic!("expected probe state, got {other:?}"),
    }

    let report = rt.shutdown();
    let crashes = report.core.metrics.counter("runtime.panic_crashes");
    assert_eq!(crashes, 1, "the panic was booked as a fail-fast crash");
    // The probe sent while the node was down was booked as lost.
    assert!(report.core.metrics.counter("sim.dropped_to_down_node") >= 1);
}

#[test]
fn timers_armed_before_a_crash_never_fire_after_restart() {
    /// Arms a slow timer, then panics on command; counts timer fires.
    #[derive(Default)]
    struct TimerVictim {
        fires: u64,
    }
    #[derive(Clone, Debug)]
    enum TMsg {
        ArmThenPanic,
        Probe,
        Fires(u64),
    }
    impl Actor<TMsg> for TimerVictim {
        fn on_message(&mut self, ctx: &mut Context<'_, TMsg>, from: NodeId, msg: TMsg) {
            match msg {
                TMsg::ArmThenPanic => {
                    ctx.set_timer(sim::SimDuration::from_millis(50), 1);
                    panic!("down we go");
                }
                TMsg::Probe => ctx.send(from, TMsg::Fires(self.fires)),
                TMsg::Fires(_) => {}
            }
        }
        fn on_timer(&mut self, _ctx: &mut Context<'_, TMsg>, _tag: u64) {
            self.fires += 1;
        }
    }
    struct Probe(std::sync::mpsc::Sender<TMsg>);
    impl Actor<TMsg> for Probe {
        fn on_message(&mut self, _ctx: &mut Context<'_, TMsg>, _from: NodeId, msg: TMsg) {
            self.0.send(msg).ok();
        }
    }

    let (tx, rx) = std::sync::mpsc::channel();
    let mut b = RuntimeBuilder::new().seed(2);
    let victim = b.add_node(TimerVictim::default());
    let probe = b.add_node(Probe(tx));
    let rt = b.launch();

    rt.inject(victim, probe, TMsg::ArmThenPanic);
    // Give the (discarded) timer's deadline time to pass, restart, and
    // check the stale timer was recognized by its dead epoch.
    std::thread::sleep(Duration::from_millis(120));
    rt.restart(victim);
    std::thread::sleep(Duration::from_millis(50));
    rt.inject(victim, probe, TMsg::Probe);
    match rx.recv_timeout(Duration::from_secs(5)).expect("probe answered") {
        TMsg::Fires(n) => assert_eq!(n, 0, "pre-crash timer must not fire after restart"),
        other => panic!("unexpected {other:?}"),
    }
    rt.shutdown();
}
