//! Fault-plan parity between the two engines (satellite): any plan a
//! [`FaultSpec`] seed generates (a) survives the JSON round-trip
//! byte-for-byte, (b) renders a timeline with exactly the edges the
//! clauses imply, in `(at, clause, Onset<Heal)` order, and (c) applies
//! the *same clause sequence* on the wall-clock controller that the
//! timeline — the sim engine's execution order — prescribes.

use std::time::Duration;

use proptest::prelude::*;
use quicksand_runtime::{rendered_timeline, RuntimeBuilder};
use sim::{Actor, ClauseEdge, Context, Fault, FaultPlan, FaultSpec, NodeId, SimTime};

const NODES: usize = 4;

fn spec(crashable_only_first_two: bool) -> FaultSpec {
    let all: Vec<NodeId> = (0..NODES).map(NodeId).collect();
    let s = FaultSpec::new(all)
        .window(SimTime::from_millis(10), SimTime::from_millis(400))
        .faults(1, 6);
    if crashable_only_first_two {
        s.crashable(vec![NodeId(0), NodeId(1)])
    } else {
        s
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every generated plan serializes to JSON and parses back equal —
    /// wall-clock failures can always be replayed in the simulator.
    #[test]
    fn generated_plans_round_trip_through_json(seed in 0u64..20_000, restrict in any::<bool>()) {
        let plan = FaultPlan::generate(seed, &spec(restrict));
        let json = plan.to_json();
        let back = FaultPlan::from_json(&json).expect("own JSON parses");
        prop_assert_eq!(&back, &plan);
        prop_assert_eq!(back.to_json(), json, "re-serialization is stable");
    }

    /// The timeline is the clause list, exactly: one Onset per clause at
    /// its `at()`, a Heal at `ends_at()` unless the clause is a
    /// crash-without-restart, all sorted by `(at, clause, edge)`.
    #[test]
    fn timeline_edges_match_the_clauses(seed in 0u64..20_000) {
        let plan = FaultPlan::generate(seed, &spec(false));
        let tl = plan.timeline();
        for (i, f) in plan.faults.iter().enumerate() {
            let onsets: Vec<_> =
                tl.iter().filter(|e| e.clause == i && e.edge == ClauseEdge::Onset).collect();
            prop_assert_eq!(onsets.len(), 1);
            prop_assert_eq!(onsets[0].at, f.at());
            let heals: Vec<_> =
                tl.iter().filter(|e| e.clause == i && e.edge == ClauseEdge::Heal).collect();
            if matches!(f, Fault::Crash { restart_at: None, .. }) {
                prop_assert!(heals.is_empty(), "dead crash has no heal edge");
            } else {
                prop_assert_eq!(heals.len(), 1);
                prop_assert_eq!(heals[0].at, f.ends_at());
            }
        }
        let keys: Vec<_> = tl.iter().map(|e| (e.at, e.clause, e.edge)).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        prop_assert_eq!(keys, sorted, "timeline is ordered");
    }
}

/// A node that ignores everything — parity runs only watch the
/// controller's applied log, not actor behaviour.
struct Inert;
impl Actor<u64> for Inert {
    fn on_message(&mut self, _ctx: &mut Context<'_, u64>, _from: NodeId, _msg: u64) {}
}

/// Live parity: the wall-clock controller applies exactly the clause
/// sequence `timeline()` prescribes — the same sequence `apply` feeds
/// the simulator — for generated plans compressed into a short window.
#[test]
fn controller_applies_the_sim_timeline_verbatim() {
    for seed in [1u64, 9, 42] {
        let s = FaultSpec::new((0..NODES).map(NodeId).collect())
            .window(SimTime::from_millis(5), SimTime::from_millis(120))
            .faults(2, 4);
        let plan = FaultPlan::generate(seed, &s);
        let expected = rendered_timeline(&plan);
        let mut b = RuntimeBuilder::new().chaos(plan, seed);
        for _ in 0..NODES {
            b.add_node(Inert);
        }
        let rt = b.launch();
        assert!(
            rt.chaos().expect("chaos").wait_finished(Duration::from_secs(30)),
            "seed {seed}: plan finishes"
        );
        let applied = rt.chaos().expect("chaos").applied();
        rt.shutdown();
        assert_eq!(applied, expected, "seed {seed}: wall-clock order == sim timeline order");
    }
}
