//! Wall-clock time mapped onto the simulator's [`SimTime`] axis.
//!
//! Actors written against the sim contract read `ctx.now()` as a
//! [`SimTime`] and arm timers in [`sim::SimDuration`]s. The runtime
//! keeps that contract by declaring its own epoch — the instant the
//! runtime launched — and reporting elapsed wall time since then in
//! microseconds. Nothing in an actor needs to know which clock is
//! underneath; that is the whole point.

use std::time::{Duration, Instant};

use sim::{SimDuration, SimTime};

/// Wall-clock source: `SimTime::ZERO` is the moment the runtime
/// launched, and time advances with the host clock.
#[derive(Clone, Copy, Debug)]
pub struct WallClock {
    start: Instant,
}

impl WallClock {
    /// A clock whose epoch is now.
    pub fn new() -> Self {
        WallClock { start: Instant::now() }
    }

    /// Elapsed wall time since launch, on the sim's time axis.
    pub fn now(&self) -> SimTime {
        SimTime::from_micros(self.start.elapsed().as_micros() as u64)
    }

    /// A [`SimDuration`] as a host [`Duration`] (for timer deadlines).
    pub fn to_host(d: SimDuration) -> Duration {
        Duration::from_micros(d.as_micros())
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic_and_starts_near_zero() {
        let clock = WallClock::new();
        let a = clock.now();
        let b = clock.now();
        assert!(b >= a);
        assert!(a < SimTime::from_secs(1), "epoch is launch time");
    }

    #[test]
    fn duration_conversion_preserves_microseconds() {
        let d = WallClock::to_host(SimDuration::from_millis(7));
        assert_eq!(d.as_micros(), 7_000);
    }
}
