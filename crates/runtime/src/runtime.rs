//! The wall-clock runtime: unmodified [`sim::Actor`]s on OS threads.
//!
//! Each node gets a worker thread draining an mpsc mailbox; a timer
//! thread sleeps on a deadline heap; sends travel through a
//! [`Transport`]. All callback effects — sends, timer arms/cancels,
//! span/metric/ledger bookkeeping — are applied through the *same*
//! [`EngineCore`] the simulator drives, so the two engines cannot drift
//! semantically. What differs is exactly what must: time comes from the
//! host clock, ordering from the OS scheduler, and crashes from real
//! panics.
//!
//! ## Concurrency model
//!
//! The [`EngineCore`] sits behind one mutex, so actor callbacks are
//! serialized — the same "one callback at a time per run" atomicity the
//! simulator provides, which is what lets unmodified actors (written
//! with no internal locking) run correctly. Worker threads still buy
//! real parallelism for everything outside the callback: wire
//! encode/decode, socket I/O, and mailbox management all run
//! concurrently. Scaling the *callbacks* themselves would need per-node
//! cores and is out of scope here; the contract, not the throughput
//! ceiling, is what this runtime exists to prove.
//!
//! ## Fail-fast crashes (§2.2)
//!
//! A panic inside any actor callback is caught at the callback boundary
//! and converted into the paper's crash semantics: the node stops
//! processing (messages to it drop, timers die), its in-flight
//! [`sim::Action`]s are discarded — a crashed node cannot send — its
//! open spans close as crashed, its volatile guesses orphan, and
//! `on_crash` runs so the actor wipes volatile state. A later
//! [`Runtime::restart`] runs `on_restart` against whatever the actor
//! modelled as durable. Harnesses can also inject crashes directly.
//!
//! ## Observability
//!
//! [`RuntimeBuilder::telemetry`] attaches the live operator surface
//! (see [`crate::telemetry`]): an HTTP endpoint serving `/health`,
//! `/metrics`, `/ledger`, and `/trace` straight off the running
//! cluster. Per-node mailbox depths, crash epochs, restart and
//! panic-crash counts are tracked whether or not the endpoint is
//! enabled, and panics/restarts land in the metric registry labeled by
//! node (`runtime.panic_crashes{node=n3}`), with the unlabeled name
//! keeping the aggregate.

use std::any::Any;
use std::net::{TcpListener, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use quicksand_core::WireCodec;
use sim::{
    Action, Actor, Context, EngineCore, FlightId, FlightRecorder, IncidentKind, NodeId,
    SimDuration, SimTime, SpanId, SpanStatus, Trace,
};

use crate::chaos::{ChaosController, ChaosTransport, CtlHook, NetChaos};
use crate::clock::WallClock;
use crate::telemetry::{CoreHandle, NodeStatus, TelemetrySurface};
use crate::timer::{DueTimer, TimerWheel};
use crate::transport::{Envelope, Inbox, Loopback, TcpTransport, Transport};

/// A boxed actor as the runtime holds it: the sim contract plus `Send`
/// so it can live on a worker thread.
pub type BoxedActor<M> = Box<dyn Actor<M> + Send>;

/// Flight-recorder ring capacity when the builder doesn't choose one.
/// Incident forensics is always on: every crash post-mortem needs a
/// slice, so the recorder runs by default ([`RuntimeBuilder::flight`]
/// with `0` disables it).
pub const DEFAULT_FLIGHT_CAP: usize = 4096;

/// Default deadline after which a still-open guess files a
/// guess-deadline incident (the apology is overdue).
pub const DEFAULT_GUESS_DEADLINE: Duration = Duration::from_secs(30);

/// Which transport carries sends between nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransportKind {
    /// In-process channels (fast path, no serialization).
    Loopback,
    /// Real TCP sockets on localhost with wire-encoded frames.
    Tcp,
}

impl std::str::FromStr for TransportKind {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "loopback" => Ok(TransportKind::Loopback),
            "tcp" => Ok(TransportKind::Tcp),
            other => Err(format!("unknown transport {other:?} (loopback|tcp)")),
        }
    }
}

struct Shared<M> {
    core: Mutex<EngineCore>,
    clock: WallClock,
    transport: Arc<dyn Transport<M>>,
    wheel: Arc<TimerWheel>,
    /// Per-node live status (telemetry; maintained unconditionally).
    nodes: Vec<NodeStatus>,
    /// Per-node mailbox depth counters, shared with the [`Inbox`]es.
    depths: Vec<Arc<AtomicU64>>,
}

impl<M> Shared<M> {
    fn lock_core(&self) -> MutexGuard<'_, EngineCore> {
        // A panicking callback is caught inside the guard's scope, so
        // the lock is never poisoned by a crash; recover defensively
        // anyway.
        self.core.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl<M: Send + 'static> CoreHandle for Shared<M> {
    fn lock_core(&self) -> MutexGuard<'_, EngineCore> {
        Shared::lock_core(self)
    }
    fn uptime(&self) -> SimTime {
        self.clock.now()
    }
    fn nodes(&self) -> &[NodeStatus] {
        &self.nodes
    }
    fn mailbox_depth(&self, node: usize) -> u64 {
        self.depths.get(node).map(|d| d.load(Ordering::Relaxed)).unwrap_or(0)
    }
    fn timer_wheel_len(&self) -> usize {
        self.wheel.pending_len()
    }
}

/// Seed drawn from OS entropy (via the randomly-keyed std hasher), for
/// runs that are *not* trying to be reproducible.
fn entropy_seed() -> u64 {
    use std::collections::hash_map::RandomState;
    use std::hash::{BuildHasher, Hasher};
    let mut h = RandomState::new().build_hasher();
    h.write_u64(std::process::id() as u64);
    h.finish()
}

/// A configured fault plan waiting for launch: the plan, the shared
/// network-fault surface, and a wrap closure built where the `M: Clone`
/// bound is available (duplicated frames need cloning; the rest of the
/// builder doesn't).
struct ChaosPrep<M> {
    plan: sim::FaultPlan,
    net: Arc<NetChaos>,
    #[allow(clippy::type_complexity)]
    wrap: Box<dyn FnOnce(Arc<dyn Transport<M>>, Arc<NetChaos>) -> Arc<dyn Transport<M>>>,
    ctl: Option<CtlHook<M>>,
}

/// Collects actors, then launches them as a running cluster.
pub struct RuntimeBuilder<M> {
    actors: Vec<BoxedActor<M>>,
    seed: Option<u64>,
    telemetry_listener: Option<TcpListener>,
    snapshot_interval: Duration,
    flight_cap: Option<usize>,
    trace_cap: Option<usize>,
    guess_deadline: Option<Duration>,
    chaos: Option<ChaosPrep<M>>,
}

impl<M: Send + 'static> RuntimeBuilder<M> {
    /// An empty cluster description.
    pub fn new() -> Self {
        RuntimeBuilder {
            actors: Vec::new(),
            seed: None,
            telemetry_listener: None,
            snapshot_interval: Duration::from_secs(1),
            flight_cap: None,
            trace_cap: None,
            guess_deadline: Some(DEFAULT_GUESS_DEADLINE),
            chaos: None,
        }
    }

    /// Pin the engine RNG seed (for cross-validation against a sim run).
    /// Unseeded runtimes draw from OS entropy.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Serve the live telemetry endpoint on `addr` (e.g.
    /// `"127.0.0.1:9090"`, port `0` for ephemeral). The bind happens
    /// here, so a taken port fails at configuration time rather than
    /// silently after launch. The bound address is available from
    /// [`Runtime::telemetry_addr`].
    pub fn telemetry(mut self, addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        self.telemetry_listener = Some(TcpListener::bind(addr)?);
        Ok(self)
    }

    /// How often the telemetry snapshot thread captures counters and
    /// histograms for rate/windowed-percentile derivation (default 1s).
    pub fn snapshot_interval(mut self, interval: Duration) -> Self {
        self.snapshot_interval = interval.max(Duration::from_millis(10));
        self
    }

    /// Size the forensic flight recorder's bounded ring. The recorder
    /// is **on by default** ([`DEFAULT_FLIGHT_CAP`] events) because
    /// incident forensics depends on it; pass `0` to disable it and
    /// with it the black box.
    pub fn flight(mut self, capacity: usize) -> Self {
        self.flight_cap = Some(capacity);
        self
    }

    /// How long a guess may stay open before a guess-deadline incident
    /// is filed (default [`DEFAULT_GUESS_DEADLINE`]). `None` disables
    /// the sweep.
    pub fn guess_deadline(mut self, deadline: Option<Duration>) -> Self {
        self.guess_deadline = deadline;
        self
    }

    /// Enable the bounded event trace with `capacity` events.
    pub fn trace(mut self, capacity: usize) -> Self {
        self.trace_cap = Some(capacity);
        self
    }

    /// Execute `plan` against the launched cluster: a wall-clock chaos
    /// controller (see [`crate::chaos`]) walks the plan's timeline from
    /// launch, partitioning/degrading the transport, crashing and
    /// restarting workers. `seed` drives the per-frame drop/latency/
    /// duplication draws on degraded links; the clause sequence itself
    /// is fully determined by the plan. Requires `M: Clone` because a
    /// degraded link may duplicate frames.
    pub fn chaos(mut self, plan: sim::FaultPlan, seed: u64) -> Self
    where
        M: Clone,
    {
        let net = Arc::new(NetChaos::new(seed));
        self.chaos = Some(ChaosPrep {
            plan,
            net,
            wrap: Box::new(|inner, net| Arc::new(ChaosTransport::new(inner, net))),
            ctl: None,
        });
        self
    }

    /// Install the membership control hook: when the chaos plan reaches
    /// an `add_node` / `remove_node` clause, `hook(kind, node)` produces
    /// the cluster's own control message (e.g. dynamo's `CtlJoin`),
    /// which the controller injects into the target node's inbox at the
    /// clause's wall-clock offset. Call after [`RuntimeBuilder::chaos`];
    /// a hook without a plan is inert.
    pub fn membership_ctl(
        mut self,
        hook: impl Fn(&'static str, NodeId) -> Option<M> + Send + 'static,
    ) -> Self {
        if let Some(prep) = self.chaos.as_mut() {
            prep.ctl = Some(Box::new(hook));
        }
        self
    }

    /// Add an actor; returns its node id (dense from zero, exactly like
    /// [`sim::Simulation::add_node`]).
    pub fn add_node(&mut self, actor: impl Actor<M> + Send) -> NodeId {
        let id = NodeId(self.actors.len());
        self.actors.push(Box::new(actor));
        id
    }

    /// Launch on the in-process loopback transport.
    pub fn launch(self) -> Runtime<M> {
        self.launch_with(|inboxes| Arc::new(Loopback::new(inboxes)))
    }

    /// Launch on real TCP sockets (each node listens on an ephemeral
    /// localhost port). Requires the message type to cross the wire.
    pub fn launch_tcp(self) -> std::io::Result<Runtime<M>>
    where
        M: WireCodec,
    {
        let mut err = None;
        let rt = self.launch_with(|inboxes| match TcpTransport::bind(inboxes) {
            Ok(t) => t as Arc<dyn Transport<M>>,
            Err(e) => {
                err = Some(e);
                Arc::new(Loopback::new(Vec::new())) // never used; launch aborts below
            }
        });
        match err {
            Some(e) => {
                rt.abort();
                Err(e)
            }
            None => Ok(rt),
        }
    }

    /// Launch on the given transport kind.
    pub fn launch_transport(self, kind: TransportKind) -> std::io::Result<Runtime<M>>
    where
        M: WireCodec,
    {
        match kind {
            TransportKind::Loopback => Ok(self.launch()),
            TransportKind::Tcp => self.launch_tcp(),
        }
    }

    fn launch_with(
        self,
        make_transport: impl FnOnce(Vec<Inbox<M>>) -> Arc<dyn Transport<M>>,
    ) -> Runtime<M> {
        let seed = self.seed.unwrap_or_else(entropy_seed);
        let n = self.actors.len();
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = mpsc::channel();
            senders.push(Inbox::new(tx));
            receivers.push(rx);
        }
        let depths: Vec<Arc<AtomicU64>> = senders.iter().map(|s| s.depth_handle()).collect();
        let mut transport = make_transport(senders.clone());
        let chaos_prep = self.chaos.map(|prep| {
            transport = (prep.wrap)(transport.clone(), prep.net.clone());
            (prep.plan, prep.net, prep.ctl)
        });
        let wheel = Arc::new(TimerWheel::new());
        let mut core = EngineCore::new(seed);
        let flight_cap = self.flight_cap.unwrap_or(DEFAULT_FLIGHT_CAP);
        if flight_cap > 0 {
            core.flight = Some(FlightRecorder::new(flight_cap));
        }
        if let Some(cap) = self.trace_cap {
            core.trace = Some(Trace::new(cap));
        }
        if let Some((plan, _, _)) = &chaos_prep {
            // Explanations and incidents render the clauses in force.
            core.plan = plan.clone();
        }
        let shared = Arc::new(Shared {
            core: Mutex::new(core),
            clock: WallClock::new(),
            transport,
            wheel: wheel.clone(),
            nodes: (0..n).map(|_| NodeStatus::new()).collect(),
            depths,
        });

        let wheel_senders = senders.clone();
        let wheel_thread = std::thread::spawn(move || {
            while let Some(t) = wheel.wait_due() {
                let env =
                    Envelope::Timer { tag: t.tag, epoch: t.epoch, span: t.span, cause: t.cause };
                wheel_senders[t.node].send(env).ok();
            }
        });

        let workers = self
            .actors
            .into_iter()
            .zip(receivers)
            .enumerate()
            .map(|(i, (actor, rx))| {
                let shared = shared.clone();
                std::thread::spawn(move || {
                    Worker { node: NodeId(i), shared, up: true, epoch: 0 }.run(actor, rx)
                })
            })
            .collect();

        let telemetry = self.telemetry_listener.and_then(|listener| {
            let core: Arc<dyn CoreHandle> = shared.clone();
            TelemetrySurface::start(listener, core, self.snapshot_interval).ok()
        });

        // The guess-deadline sweeper: a light always-on auditor that
        // files an incident for any promise left open too long.
        let sweeper_stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let sweeper = self.guess_deadline.filter(|_| flight_cap > 0).map(|deadline| {
            let shared = shared.clone();
            let stop = sweeper_stop.clone();
            std::thread::spawn(move || {
                let tick = (deadline / 4).clamp(Duration::from_millis(50), Duration::from_secs(1));
                while !stop.load(Ordering::Relaxed) {
                    std::thread::sleep(tick);
                    let now = shared.clock.now();
                    let deadline = SimDuration::from_micros(deadline.as_micros() as u64);
                    let nodes = &shared.nodes;
                    shared.lock_core().sweep_overdue_guesses(now, deadline, |n| {
                        nodes.get(n.0).map_or(0, |s| s.epoch())
                    });
                }
            })
        });

        // The chaos clock starts now: clause offsets are measured from
        // launch, after every worker exists to receive crash envelopes.
        let chaos = chaos_prep.map(|(plan, net, ctl)| {
            let on_apply = {
                let shared = shared.clone();
                Box::new(move |kind: &'static str, edge: &'static str| {
                    shared
                        .lock_core()
                        .metrics
                        .inc_with("runtime.chaos_clauses", &[("kind", kind), ("edge", edge)]);
                })
            };
            ChaosController::start(
                plan,
                net,
                shared.transport.clone(),
                senders.clone(),
                on_apply,
                ctl,
            )
        });

        Runtime {
            shared,
            senders,
            workers,
            wheel_thread: Some(wheel_thread),
            telemetry,
            chaos,
            sweeper,
            sweeper_stop,
        }
    }
}

impl<M: Send + 'static> Default for RuntimeBuilder<M> {
    fn default() -> Self {
        RuntimeBuilder::new()
    }
}

/// One node's event loop: drain the mailbox, run callbacks through the
/// shared [`EngineCore`], apply effects through clock and transport.
struct Worker<M> {
    node: NodeId,
    shared: Arc<Shared<M>>,
    /// Local liveness; flips on (injected or panic) crash and restart.
    up: bool,
    /// Bumped per crash so stale timers are recognizably dead.
    epoch: u64,
}

impl<M: Send + 'static> Worker<M> {
    fn status(&self) -> &NodeStatus {
        &self.shared.nodes[self.node.0]
    }

    fn run(mut self, mut actor: BoxedActor<M>, rx: mpsc::Receiver<Envelope<M>>) -> BoxedActor<M> {
        let depth = self.shared.depths[self.node.0].clone();
        // `on_start` runs as the worker's first act. Workers start
        // concurrently, so cross-node start order is unspecified (the
        // sim runs starts in NodeId order) — actors already cannot
        // assume peers started first, because sends to a not-yet-started
        // node simply queue in its mailbox.
        self.callback(&mut actor, None, None, |a, ctx| a.on_start(ctx));
        while let Ok(env) = rx.recv() {
            depth.fetch_sub(1, Ordering::Relaxed);
            match env {
                Envelope::Msg { from, msg, hop, cause } => {
                    if !self.up {
                        let now = self.shared.clock.now();
                        self.shared.lock_core().dropped_to_down(self.node, from, hop, cause, now);
                        continue;
                    }
                    self.dispatch(
                        &mut actor,
                        hop,
                        |core, node, now| core.deliver_bookkeeping(node, from, hop, cause, now),
                        |a, ctx| a.on_message(ctx, from, msg),
                    );
                }
                Envelope::Timer { tag, epoch, span, cause } => {
                    if !self.up || epoch != self.epoch {
                        continue; // timers do not survive crashes
                    }
                    self.dispatch(
                        &mut actor,
                        span,
                        |core, node, now| core.timer_bookkeeping(node, span, cause, now),
                        |a, ctx| a.on_timer(ctx, tag),
                    );
                }
                Envelope::Crash => {
                    if !self.up {
                        continue;
                    }
                    let now = self.shared.clock.now();
                    self.crash(&mut actor, now);
                }
                Envelope::Restart => {
                    if self.up {
                        continue;
                    }
                    self.up = true;
                    self.status().note_restart();
                    let label = format!("n{}", self.node.0);
                    self.dispatch(
                        &mut actor,
                        None,
                        |core, node, now| {
                            core.metrics.inc_with("runtime.restarts", &[("node", &label)]);
                            core.restart_bookkeeping(node, now)
                        },
                        |a, ctx| a.on_restart(ctx),
                    );
                }
                Envelope::Inspect(f) => f(actor.as_mut()),
                Envelope::Shutdown => break,
            }
        }
        actor
    }

    /// Fail-fast crash: mirror of the simulator's crash event, §2.2.
    /// `on_crash` runs outside the core lock (it has no `Context`); if
    /// it panics too, the node simply stays down with volatile state
    /// unwiped — it can never run again in this epoch, so no torn state
    /// is observable.
    fn crash(&mut self, actor: &mut BoxedActor<M>, now: SimTime) {
        self.up = false;
        self.epoch += 1;
        self.status().note_crash(self.epoch, false);
        let _ = catch_unwind(AssertUnwindSafe(|| actor.on_crash(now)));
        let mut core = self.shared.lock_core();
        let outcome = core.crash_bookkeeping(self.node, now);
        core.record_crash_incident(self.node, self.epoch, IncidentKind::ChaosCrash, now, &outcome);
    }

    /// Run one callback under the core lock with pre-bookkeeping, then
    /// apply its effects. A panic inside the callback becomes a
    /// fail-fast crash and all of the callback's actions are discarded —
    /// a crashed node cannot have sent.
    fn dispatch(
        &mut self,
        actor: &mut BoxedActor<M>,
        ambient: Option<SpanId>,
        pre: impl FnOnce(&mut EngineCore, NodeId, SimTime) -> Option<FlightId>,
        f: impl FnOnce(&mut dyn Actor<M>, &mut Context<'_, M>),
    ) {
        let shared = Arc::clone(&self.shared);
        let now = shared.clock.now();
        let mut core = shared.lock_core();
        let cause = pre(&mut core, self.node, now);
        self.callback_locked(core, actor, now, ambient, cause, f);
    }

    /// Like [`Worker::dispatch`] but without event bookkeeping (used
    /// for `on_start`).
    fn callback(
        &mut self,
        actor: &mut BoxedActor<M>,
        ambient: Option<SpanId>,
        cause: Option<FlightId>,
        f: impl FnOnce(&mut dyn Actor<M>, &mut Context<'_, M>),
    ) {
        let shared = Arc::clone(&self.shared);
        let now = shared.clock.now();
        let core = shared.lock_core();
        self.callback_locked(core, actor, now, ambient, cause, f);
    }

    fn callback_locked(
        &mut self,
        mut core: MutexGuard<'_, EngineCore>,
        actor: &mut BoxedActor<M>,
        now: SimTime,
        ambient: Option<SpanId>,
        cause: Option<FlightId>,
        f: impl FnOnce(&mut dyn Actor<M>, &mut Context<'_, M>),
    ) {
        let result = catch_unwind(AssertUnwindSafe(|| {
            core.run_callback(self.node, now, ambient, cause, |ctx| f(actor.as_mut(), ctx))
        }));
        let actions = match result {
            Ok(((), actions)) => actions,
            Err(_) => {
                // Fail-fast: count it (labeled by node, aggregate kept
                // by the unlabeled name), then crash exactly like an
                // injected crash (bookkeeping first needs the lock we
                // already hold; `on_crash` runs after release).
                let label = format!("n{}", self.node.0);
                core.metrics.inc_with("runtime.panic_crashes", &[("node", &label)]);
                drop(core);
                let _ = catch_unwind(AssertUnwindSafe(|| actor.on_crash(now)));
                self.up = false;
                self.epoch += 1;
                self.status().note_crash(self.epoch, true);
                let mut core = self.shared.lock_core();
                let outcome = core.crash_bookkeeping(self.node, now);
                core.record_crash_incident(
                    self.node,
                    self.epoch,
                    IncidentKind::PanicCrash,
                    now,
                    &outcome,
                );
                return;
            }
        };
        // Book sends under the lock (hop spans), then do the actual
        // I/O and timer arming after releasing it.
        let mut outgoing = Vec::new();
        let mut arms = Vec::new();
        let mut cancels = Vec::new();
        for action in actions {
            match action {
                Action::Send { to, msg, span } => {
                    core.metrics.inc("sim.messages_sent");
                    let hop = core.plan_hop(span, to, now);
                    outgoing.push((to, hop, msg));
                }
                Action::SetTimer { id, delay, tag, span } => {
                    arms.push((
                        Instant::now() + WallClock::to_host(delay),
                        DueTimer {
                            node: self.node.0,
                            seq: id.seq(),
                            tag,
                            epoch: self.epoch,
                            span,
                            cause,
                        },
                    ));
                }
                Action::CancelTimer { id } => {
                    if core.cancel_allowed(self.node, id) {
                        cancels.push(id.seq());
                    }
                }
            }
        }
        drop(core);
        for (to, hop, msg) in outgoing {
            if !self.shared.transport.send(self.node, to, hop, cause, msg) {
                let at = self.shared.clock.now();
                let mut core = self.shared.lock_core();
                core.finish_hop(hop, at, SpanStatus::Dropped);
                core.metrics.inc("sim.messages_dropped");
            }
        }
        for (deadline, t) in arms {
            self.shared.wheel.arm(deadline, t);
        }
        for seq in cancels {
            self.shared.wheel.cancel(seq);
        }
    }
}

/// A running cluster of actors on OS threads. Dropping without
/// [`Runtime::shutdown`] leaks the worker threads; always shut down.
pub struct Runtime<M> {
    shared: Arc<Shared<M>>,
    senders: Vec<Inbox<M>>,
    workers: Vec<JoinHandle<BoxedActor<M>>>,
    wheel_thread: Option<JoinHandle<()>>,
    telemetry: Option<TelemetrySurface>,
    chaos: Option<ChaosController>,
    sweeper: Option<JoinHandle<()>>,
    sweeper_stop: Arc<std::sync::atomic::AtomicBool>,
}

impl<M: Send + 'static> Runtime<M> {
    /// Wall time since launch, on the sim time axis.
    pub fn now(&self) -> SimTime {
        self.shared.clock.now()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.senders.len()
    }

    /// Where the telemetry endpoint is listening, if enabled (the real
    /// port, even when configured with port `0`).
    pub fn telemetry_addr(&self) -> Option<std::net::SocketAddr> {
        self.telemetry.as_ref().map(|t| t.addr())
    }

    /// The chaos controller, when the builder configured a fault plan —
    /// its applied-clause log, traffic stats, and completion flag.
    pub fn chaos(&self) -> Option<&ChaosController> {
        self.chaos.as_ref()
    }

    /// Live status of `node` (telemetry view; updated without locks).
    pub fn node_status(&self, node: NodeId) -> &NodeStatus {
        &self.shared.nodes[node.0]
    }

    /// Current depth of `node`'s mailbox.
    pub fn mailbox_depth(&self, node: NodeId) -> u64 {
        self.senders[node.0].depth()
    }

    /// Inject a fail-fast crash. Enqueued like a message: it takes
    /// effect after the node drains earlier traffic.
    pub fn crash(&self, node: NodeId) {
        self.senders[node.0].send(Envelope::Crash).ok();
    }

    /// Restart a crashed node (no-op envelope if it is up).
    pub fn restart(&self, node: NodeId) {
        self.senders[node.0].send(Envelope::Restart).ok();
    }

    /// Deliver `msg` to `to` as if sent by `from`, bypassing the
    /// transport (harness-driven injection, like
    /// [`sim::Simulation::inject_at`]).
    pub fn inject(&self, to: NodeId, from: NodeId, msg: M) {
        self.senders[to.0].send(Envelope::Msg { from, msg, hop: None, cause: None }).ok();
    }

    /// Run `f` against the node's actor on its own worker thread and
    /// return the result. Blocks until the worker gets to it — do not
    /// call from inside an actor callback.
    ///
    /// # Panics
    /// Panics if the node's actor is not a `T`.
    pub fn inspect<T, R, F>(&self, node: NodeId, f: F) -> R
    where
        T: Actor<M>,
        R: Send + 'static,
        F: FnOnce(&T) -> R + Send + 'static,
    {
        let (tx, rx) = mpsc::channel();
        let probe = Box::new(move |a: &mut dyn Actor<M>| {
            let t = (a as &dyn Any)
                .downcast_ref::<T>()
                .expect("actor type mismatch in Runtime::inspect");
            tx.send(f(t)).ok();
        });
        self.senders[node.0].send(Envelope::Inspect(probe)).expect("node worker exited");
        rx.recv().expect("worker dropped the inspect response")
    }

    /// Run `f` with the engine core locked (metrics, spans, ledger).
    pub fn with_core<R>(&self, f: impl FnOnce(&mut EngineCore) -> R) -> R {
        f(&mut self.shared.lock_core())
    }

    /// Stop every node, join the workers and timer thread, tear down
    /// the transport, and hand back the final state. The telemetry
    /// surface stops first so no request observes a half-torn-down
    /// cluster.
    pub fn shutdown(mut self) -> RuntimeReport<M> {
        // Stop the chaos scheduler first so no crash/restart envelope
        // races a shutdown envelope into a mailbox.
        if let Some(mut c) = self.chaos.take() {
            c.stop();
        }
        self.sweeper_stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.sweeper.take() {
            h.join().ok();
        }
        if let Some(t) = self.telemetry.take() {
            t.shutdown();
        }
        for tx in &self.senders {
            tx.send(Envelope::Shutdown).ok();
        }
        let actors: Vec<BoxedActor<M>> = self
            .workers
            .drain(..)
            .map(|h| h.join().expect("worker thread panicked outside a callback"))
            .collect();
        self.shared.wheel.shutdown();
        if let Some(h) = self.wheel_thread.take() {
            h.join().ok();
        }
        self.shared.transport.shutdown();
        let core = std::mem::replace(&mut *self.shared.lock_core(), EngineCore::new(0));
        RuntimeReport { core, actors }
    }

    /// Tear down without collecting state (failed launch).
    fn abort(self) {
        self.shutdown();
    }
}

/// Everything a run leaves behind: the engine core (metrics, spans,
/// ledger, trace/flight if enabled) and the final actors.
pub struct RuntimeReport<M> {
    /// The run's engine core.
    pub core: EngineCore,
    actors: Vec<BoxedActor<M>>,
}

impl<M: 'static> RuntimeReport<M> {
    /// Downcast a node's final actor state.
    ///
    /// # Panics
    /// Panics if the node's actor is not a `T`.
    pub fn actor<T: Actor<M>>(&self, node: NodeId) -> &T {
        (self.actors[node.0].as_ref() as &dyn Any)
            .downcast_ref::<T>()
            .expect("actor type mismatch in RuntimeReport::actor")
    }
}
