//! Message transports: how a send leaves one node and enters another.
//!
//! The simulator routes sends through its network model; the runtime
//! routes them through a [`Transport`]. Two implementations share the
//! trait:
//!
//! - [`Loopback`]: in-process channels. Zero-copy, zero-serialization —
//!   the fastest way to run a cluster on one machine, and the transport
//!   the cross-validation tests use.
//! - [`TcpTransport`]: real sockets with length-prefixed frames and the
//!   [`quicksand_core::wire`] encoding. Every node listens on its own
//!   ephemeral 127.0.0.1 port; connections are dialed lazily and shared
//!   by all local senders targeting the same destination.
//!
//! A failed send returns `false` and the caller books the loss as a
//! dropped message — the same visibility a partition gets in the sim.

use std::io::{Read, Write};
use std::marker::PhantomData;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;

use quicksand_core::{WireCodec, WireError};
use sim::{Actor, FlightId, NodeId, SpanId};

/// A boxed closure run against a node's actor on its own worker thread.
pub(crate) type InspectFn<M> = Box<dyn FnOnce(&mut dyn Actor<M>) + Send>;

/// One node's mailbox sender, instrumented with a depth counter so the
/// telemetry surface can report backlog per node: every enqueue (from
/// any transport, the timer wheel, or harness injection) increments it,
/// and the owning worker decrements it as envelopes are drained.
pub(crate) struct Inbox<M> {
    tx: mpsc::Sender<Envelope<M>>,
    depth: Arc<AtomicU64>,
}

impl<M> Clone for Inbox<M> {
    fn clone(&self) -> Self {
        Inbox { tx: self.tx.clone(), depth: self.depth.clone() }
    }
}

impl<M> Inbox<M> {
    /// Wrap a raw channel sender.
    pub fn new(tx: mpsc::Sender<Envelope<M>>) -> Self {
        Inbox { tx, depth: Arc::new(AtomicU64::new(0)) }
    }

    /// Enqueue an envelope, counting it toward the mailbox depth. On a
    /// dead receiver the count is rolled back and the envelope returned.
    pub fn send(&self, env: Envelope<M>) -> Result<(), mpsc::SendError<Envelope<M>>> {
        self.depth.fetch_add(1, Ordering::Relaxed);
        match self.tx.send(env) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.depth.fetch_sub(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    /// Envelopes enqueued but not yet drained by the worker.
    pub fn depth(&self) -> u64 {
        self.depth.load(Ordering::Relaxed)
    }

    /// The depth counter, for the worker's decrement side.
    pub fn depth_handle(&self) -> Arc<AtomicU64> {
        self.depth.clone()
    }
}

/// Everything that can land in a node's mailbox. Workers drain these in
/// arrival order; the variants mirror the simulator's event kinds.
pub(crate) enum Envelope<M> {
    /// A delivered message.
    Msg {
        /// Sending node.
        from: NodeId,
        /// The message.
        msg: M,
        /// The sender's `net.hop` span for this delivery.
        hop: Option<SpanId>,
        /// The flight event under which the send was issued.
        cause: Option<FlightId>,
    },
    /// A timer due on this node.
    Timer {
        /// Tag given at arming time.
        tag: u64,
        /// The node's crash epoch at arming time.
        epoch: u64,
        /// Ambient span at arming time.
        span: Option<SpanId>,
        /// The flight event under which the timer was armed.
        cause: Option<FlightId>,
    },
    /// Harness-injected fail-fast crash.
    Crash,
    /// Harness-injected restart.
    Restart,
    /// Run a closure against the node's actor (state inspection).
    Inspect(InspectFn<M>),
    /// Drain and exit the worker.
    Shutdown,
}

/// How sends travel between nodes. `send` returns `false` when the
/// message could not be handed to the destination (dead connection,
/// shut-down node); the caller records the drop.
pub trait Transport<M>: Send + Sync {
    /// Ship `msg` from `from` to `to`, carrying its causal metadata.
    fn send(
        &self,
        from: NodeId,
        to: NodeId,
        hop: Option<SpanId>,
        cause: Option<FlightId>,
        msg: M,
    ) -> bool;

    /// Cut any live connection *to* `to` (fault injection: a partition
    /// onset or crash kills the wire mid-flight). A later send must
    /// lazily re-establish the path — no silent permanent blackhole.
    /// Default no-op for transports with nothing to cut (loopback).
    fn sever(&self, _to: NodeId) {}

    /// Tear down listeners/connections. Idempotent; default no-op.
    fn shutdown(&self) {}
}

/// In-process transport: each node's mailbox is an `mpsc` channel and a
/// send is a channel push.
pub(crate) struct Loopback<M> {
    inboxes: Vec<Inbox<M>>,
}

impl<M> Loopback<M> {
    pub fn new(inboxes: Vec<Inbox<M>>) -> Self {
        Loopback { inboxes }
    }
}

impl<M: Send> Transport<M> for Loopback<M> {
    fn send(
        &self,
        from: NodeId,
        to: NodeId,
        hop: Option<SpanId>,
        cause: Option<FlightId>,
        msg: M,
    ) -> bool {
        self.inboxes[to.0].send(Envelope::Msg { from, msg, hop, cause }).is_ok()
    }
}

/// Upper bound on one frame's payload; a peer announcing more is
/// treated as corrupt and disconnected.
const MAX_FRAME: usize = 64 << 20;

fn encode_frame<M: WireCodec>(
    from: NodeId,
    hop: Option<SpanId>,
    cause: Option<FlightId>,
    msg: &M,
) -> Vec<u8> {
    let mut payload = Vec::new();
    (from.0 as u64).encode(&mut payload);
    hop.map(|s| s.0).encode(&mut payload);
    cause.map(|c| c.0).encode(&mut payload);
    msg.encode(&mut payload);
    let mut frame = Vec::with_capacity(payload.len() + 4);
    (payload.len() as u32).encode(&mut frame);
    frame.extend_from_slice(&payload);
    frame
}

#[allow(clippy::type_complexity)]
fn decode_payload<M: WireCodec>(
    mut buf: &[u8],
) -> Result<(NodeId, Option<SpanId>, Option<FlightId>, M), WireError> {
    let b = &mut buf;
    let from = NodeId(u64::decode(b)? as usize);
    let hop = Option::<u64>::decode(b)?.map(SpanId);
    let cause = Option::<u64>::decode(b)?.map(FlightId);
    let msg = M::decode(b)?;
    if !b.is_empty() {
        return Err(WireError::Truncated);
    }
    Ok((from, hop, cause, msg))
}

/// TCP transport: one listener per node on an ephemeral localhost port,
/// `[u32 length][payload]` frames, payload = sender id + causal ids +
/// the [`WireCodec`] bytes of the message.
pub(crate) struct TcpTransport<M> {
    addrs: Vec<SocketAddr>,
    /// Outgoing connection per destination, dialed lazily and shared by
    /// every local sender (frames carry the true `from`).
    conns: Vec<Mutex<Option<TcpStream>>>,
    down: AtomicBool,
    threads: Mutex<Vec<JoinHandle<()>>>,
    _msg: PhantomData<fn(M) -> M>,
}

impl<M: WireCodec + Send + 'static> TcpTransport<M> {
    /// Bind one listener per inbox and start acceptor threads feeding
    /// decoded frames into the inboxes.
    pub fn bind(inboxes: Vec<Inbox<M>>) -> std::io::Result<Arc<Self>> {
        let mut listeners = Vec::with_capacity(inboxes.len());
        let mut addrs = Vec::with_capacity(inboxes.len());
        for _ in &inboxes {
            let l = TcpListener::bind("127.0.0.1:0")?;
            addrs.push(l.local_addr()?);
            listeners.push(l);
        }
        let transport = Arc::new(TcpTransport {
            conns: addrs.iter().map(|_| Mutex::new(None)).collect(),
            addrs,
            down: AtomicBool::new(false),
            threads: Mutex::new(Vec::new()),
            _msg: PhantomData,
        });
        for (listener, tx) in listeners.into_iter().zip(inboxes) {
            let me = transport.clone();
            let h = std::thread::spawn(move || {
                while let Ok((stream, _)) = listener.accept() {
                    if me.down.load(Ordering::SeqCst) {
                        break;
                    }
                    stream.set_nodelay(true).ok();
                    let tx = tx.clone();
                    let reader = std::thread::spawn(move || read_loop::<M>(stream, tx));
                    me.lock_threads().push(reader);
                }
            });
            transport.lock_threads().push(h);
        }
        Ok(transport)
    }

    fn lock_threads(&self) -> std::sync::MutexGuard<'_, Vec<JoinHandle<()>>> {
        self.threads.lock().unwrap_or_else(|e| e.into_inner())
    }
}

fn read_loop<M: WireCodec>(mut stream: TcpStream, tx: Inbox<M>) {
    loop {
        let mut len_buf = [0u8; 4];
        if stream.read_exact(&mut len_buf).is_err() {
            return;
        }
        let len = u32::from_le_bytes(len_buf) as usize;
        if len > MAX_FRAME {
            return;
        }
        let mut payload = vec![0u8; len];
        if stream.read_exact(&mut payload).is_err() {
            return;
        }
        let Ok((from, hop, cause, msg)) = decode_payload::<M>(&payload) else {
            return; // corrupt peer: drop the connection
        };
        if tx.send(Envelope::Msg { from, msg, hop, cause }).is_err() {
            return; // node shut down
        }
    }
}

impl<M: WireCodec + Send + 'static> Transport<M> for TcpTransport<M> {
    fn send(
        &self,
        from: NodeId,
        to: NodeId,
        hop: Option<SpanId>,
        cause: Option<FlightId>,
        msg: M,
    ) -> bool {
        if self.down.load(Ordering::SeqCst) {
            return false;
        }
        let frame = encode_frame(from, hop, cause, &msg);
        let mut conn = self.conns[to.0].lock().unwrap_or_else(|e| e.into_inner());
        if conn.is_none() {
            *conn = TcpStream::connect(self.addrs[to.0]).ok();
            if let Some(s) = conn.as_ref() {
                s.set_nodelay(true).ok();
            }
        }
        let Some(stream) = conn.as_mut() else { return false };
        if stream.write_all(&frame).is_err() {
            *conn = None; // dead connection; redial on the next send
            return false;
        }
        true
    }

    fn sever(&self, to: NodeId) {
        // Take the shared outgoing conn and slam it; the destination's
        // read loop sees EOF and exits. The next send to `to` (from any
        // local node) finds `None` and redials — the reconnect contract
        // the chaos tests pin down.
        if let Some(s) = self.conns[to.0].lock().unwrap_or_else(|e| e.into_inner()).take() {
            s.shutdown(Shutdown::Both).ok();
        }
    }

    fn shutdown(&self) {
        if self.down.swap(true, Ordering::SeqCst) {
            return;
        }
        // Close every outgoing connection (readers on the other side see
        // EOF and exit)...
        for conn in &self.conns {
            if let Some(s) = conn.lock().unwrap_or_else(|e| e.into_inner()).take() {
                s.shutdown(Shutdown::Both).ok();
            }
        }
        // ... and poke each listener so its acceptor observes `down`.
        for addr in &self.addrs {
            drop(TcpStream::connect(addr));
        }
        let threads = std::mem::take(&mut *self.lock_threads());
        for h in threads {
            h.join().ok();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trips_causal_metadata() {
        let frame = encode_frame(NodeId(3), Some(SpanId(7)), Some(FlightId(9)), &42u64);
        let len = u32::from_le_bytes(frame[..4].try_into().unwrap()) as usize;
        assert_eq!(len, frame.len() - 4);
        let (from, hop, cause, msg) = decode_payload::<u64>(&frame[4..]).expect("decodes");
        assert_eq!(from, NodeId(3));
        assert_eq!(hop, Some(SpanId(7)));
        assert_eq!(cause, Some(FlightId(9)));
        assert_eq!(msg, 42);
    }

    #[test]
    fn trailing_garbage_in_a_payload_is_rejected() {
        let mut frame = encode_frame(NodeId(0), None, None, &1u64);
        frame.push(0xFF);
        assert!(decode_payload::<u64>(&frame[4..]).is_err());
    }

    #[test]
    fn tcp_delivers_frames_end_to_end() {
        let (tx0, rx0) = mpsc::channel();
        let (tx1, rx1) = mpsc::channel();
        let t = TcpTransport::<u64>::bind(vec![Inbox::new(tx0), Inbox::new(tx1)]).expect("bind");
        assert!(t.send(NodeId(0), NodeId(1), Some(SpanId(5)), None, 77));
        match rx1.recv_timeout(std::time::Duration::from_secs(5)).expect("delivered") {
            Envelope::Msg { from, msg, hop, cause } => {
                assert_eq!(from, NodeId(0));
                assert_eq!(msg, 77);
                assert_eq!(hop, Some(SpanId(5)));
                assert_eq!(cause, None);
            }
            _ => panic!("expected a message"),
        }
        // And the reverse direction over its own connection.
        assert!(t.send(NodeId(1), NodeId(0), None, Some(FlightId(2)), 88));
        match rx0.recv_timeout(std::time::Duration::from_secs(5)).expect("delivered") {
            Envelope::Msg { from, msg, cause, .. } => {
                assert_eq!(from, NodeId(1));
                assert_eq!(msg, 88);
                assert_eq!(cause, Some(FlightId(2)));
            }
            _ => panic!("expected a message"),
        }
        t.shutdown();
        assert!(!t.send(NodeId(0), NodeId(1), None, None, 99), "sends fail after shutdown");
    }

    #[test]
    fn severed_connection_redials_lazily_and_delivers_subsequent_frames() {
        let (tx0, _rx0) = mpsc::channel();
        let (tx1, rx1) = mpsc::channel();
        let t = TcpTransport::<u64>::bind(vec![Inbox::new(tx0), Inbox::new(tx1)]).expect("bind");
        // Establish the conn with a first frame.
        assert!(t.send(NodeId(0), NodeId(1), None, None, 1));
        match rx1.recv_timeout(std::time::Duration::from_secs(5)).expect("delivered") {
            Envelope::Msg { msg, .. } => assert_eq!(msg, 1),
            _ => panic!("expected a message"),
        }
        // Sever it: the shared outgoing stream is gone.
        t.sever(NodeId(1));
        assert!(t.conns[1].lock().unwrap().is_none(), "sever cleared the cached conn");
        // The very next send must lazily redial and deliver — a healed
        // link is not a permanent blackhole. (A send racing the sever
        // could also surface as one `false` + drop bookkeeping; sends
        // *after* the sever completes must succeed, which is what this
        // pins down.)
        assert!(t.send(NodeId(0), NodeId(1), None, None, 2), "redial on next send");
        match rx1.recv_timeout(std::time::Duration::from_secs(5)).expect("redelivered") {
            Envelope::Msg { from, msg, .. } => {
                assert_eq!(from, NodeId(0));
                assert_eq!(msg, 2);
            }
            _ => panic!("expected a message"),
        }
        // Sever is idempotent on an already-cut conn.
        t.sever(NodeId(1));
        t.sever(NodeId(1));
        assert!(t.send(NodeId(0), NodeId(1), None, None, 3));
        match rx1.recv_timeout(std::time::Duration::from_secs(5)).expect("redelivered") {
            Envelope::Msg { msg, .. } => assert_eq!(msg, 3),
            _ => panic!("expected a message"),
        }
        t.shutdown();
    }
}
