//! The timer wheel: one thread, a deadline heap, and a condvar.
//!
//! Workers arm timers here while applying [`sim::Action::SetTimer`]
//! effects; a dedicated thread sleeps until the earliest deadline and
//! routes each due timer back to its node's mailbox. Cancellation
//! mirrors the simulator's contract exactly: cancelling a pending timer
//! suppresses it, cancelling an already-fired (or never-armed) timer is
//! a no-op, and a timer armed before a crash never fires afterwards
//! because entries carry the arming epoch and the worker checks it.

use std::collections::{BinaryHeap, HashSet};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

use sim::{FlightId, SpanId};

/// A timer that is due (or was armed): everything the worker needs to
/// run `on_timer` with the right causal bookkeeping.
#[derive(Clone, Copy, Debug)]
pub(crate) struct DueTimer {
    /// Index of the owning node.
    pub node: usize,
    /// The timer id's run-unique sequence number.
    pub seq: u64,
    /// Tag delivered to `on_timer`.
    pub tag: u64,
    /// The owner's crash epoch at arming time.
    pub epoch: u64,
    /// Ambient span at arming time.
    pub span: Option<SpanId>,
    /// Flight event during which the timer was armed.
    pub cause: Option<FlightId>,
}

struct Entry {
    deadline: Instant,
    /// Arming order, to break deadline ties deterministically.
    order: u64,
    timer: DueTimer,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.deadline == other.deadline && self.order == other.order
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    // Reversed: BinaryHeap is a max-heap and we want the earliest deadline.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (other.deadline, other.order).cmp(&(self.deadline, self.order))
    }
}

struct State {
    heap: BinaryHeap<Entry>,
    /// Seqs currently in the heap — lets `cancel` ignore already-fired
    /// ids without unbounded growth of the cancelled set.
    pending: HashSet<u64>,
    cancelled: HashSet<u64>,
    shutdown: bool,
    order: u64,
}

/// Shared deadline heap; see the module docs.
pub(crate) struct TimerWheel {
    state: Mutex<State>,
    cv: Condvar,
}

impl TimerWheel {
    pub fn new() -> Self {
        TimerWheel {
            state: Mutex::new(State {
                heap: BinaryHeap::new(),
                pending: HashSet::new(),
                cancelled: HashSet::new(),
                shutdown: false,
                order: 0,
            }),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Arm `timer` to fire at `deadline`.
    pub fn arm(&self, deadline: Instant, timer: DueTimer) {
        let mut s = self.lock();
        let order = s.order;
        s.order += 1;
        s.pending.insert(timer.seq);
        s.heap.push(Entry { deadline, order, timer });
        self.cv.notify_all();
    }

    /// Suppress a pending timer. No-op if `seq` already fired or never
    /// existed — the documented cross-engine contract.
    pub fn cancel(&self, seq: u64) {
        let mut s = self.lock();
        if s.pending.contains(&seq) {
            s.cancelled.insert(seq);
        }
    }

    /// Block until a timer is due, and return it; `None` means the
    /// wheel was shut down. Cancelled entries are consumed silently.
    pub fn wait_due(&self) -> Option<DueTimer> {
        let mut s = self.lock();
        loop {
            if s.shutdown {
                return None;
            }
            match s.heap.peek().map(|e| e.deadline) {
                Some(deadline) => {
                    let now = Instant::now();
                    if deadline <= now {
                        let e = s.heap.pop().expect("peeked");
                        s.pending.remove(&e.timer.seq);
                        if s.cancelled.remove(&e.timer.seq) {
                            continue;
                        }
                        return Some(e.timer);
                    }
                    let (guard, _) =
                        self.cv.wait_timeout(s, deadline - now).unwrap_or_else(|e| e.into_inner());
                    s = guard;
                }
                None => {
                    s = self.cv.wait(s).unwrap_or_else(|e| e.into_inner());
                }
            }
        }
    }

    /// Timers armed and not yet fired or cancelled (telemetry gauge).
    pub fn pending_len(&self) -> usize {
        let s = self.lock();
        s.pending.len() - s.cancelled.len()
    }

    /// Stop the wheel; `wait_due` returns `None` from now on.
    pub fn shutdown(&self) {
        self.lock().shutdown = true;
        self.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn t(seq: u64) -> DueTimer {
        DueTimer { node: 0, seq, tag: seq, epoch: 0, span: None, cause: None }
    }

    #[test]
    fn due_timers_come_out_in_deadline_order() {
        let wheel = TimerWheel::new();
        let now = Instant::now();
        wheel.arm(now + Duration::from_millis(2), t(2));
        wheel.arm(now, t(1));
        assert_eq!(wheel.wait_due().expect("due").seq, 1);
        assert_eq!(wheel.wait_due().expect("due").seq, 2);
    }

    #[test]
    fn cancelled_pending_timer_never_fires() {
        let wheel = TimerWheel::new();
        let now = Instant::now();
        wheel.arm(now, t(1));
        wheel.arm(now + Duration::from_millis(1), t(2));
        wheel.cancel(1);
        assert_eq!(wheel.wait_due().expect("due").seq, 2);
    }

    #[test]
    fn cancelling_a_fired_or_unknown_timer_is_a_noop() {
        let wheel = TimerWheel::new();
        wheel.arm(Instant::now(), t(1));
        assert_eq!(wheel.wait_due().expect("due").seq, 1);
        wheel.cancel(1); // already fired
        wheel.cancel(99); // never existed
                          // Neither poisons a later timer that reuses nothing.
        wheel.arm(Instant::now(), t(2));
        assert_eq!(wheel.wait_due().expect("due").seq, 2);
        assert!(wheel.lock().cancelled.is_empty(), "no cancelled-set leak");
    }

    #[test]
    fn shutdown_unblocks_waiters() {
        let wheel = std::sync::Arc::new(TimerWheel::new());
        let w = wheel.clone();
        let h = std::thread::spawn(move || w.wait_due());
        std::thread::sleep(Duration::from_millis(10));
        wheel.shutdown();
        assert!(h.join().expect("no panic").is_none());
    }
}
