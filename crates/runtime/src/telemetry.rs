//! The live operator surface: an embedded HTTP/1.1 endpoint over the
//! runtime's own telemetry.
//!
//! *Building on Quicksand* systems run on guesses and apologies, which
//! means an operator needs to see the guesses outstanding and the
//! apologies issued **while traffic flows**, not in a post-mortem
//! export. This module gives every [`crate::Runtime`] an optional,
//! dependency-free HTTP server (std `TcpListener`, a small fixed pool
//! of worker threads behind a bounded accept queue) exposing:
//!
//! - `GET /health` — per-node up/down, crash epoch, restart and
//!   panic-crash counts, mailbox depth; `200` when every node is up,
//!   `503` otherwise (so a probe can alarm without parsing).
//! - `GET /metrics` — Prometheus text exposition by default, JSON with
//!   `?format=json`: every [`sim::EngineCore`] counter/gauge/histogram,
//!   the runtime-only gauges (mailbox depths, timer-wheel size, nodes
//!   up), ledger accounting with per-substrate confirm/apology latency
//!   quantiles, and **snapshot-derived rates** (ops/s and windowed
//!   p50/p99 over roughly the last ten seconds).
//! - `GET /ledger` — the guess/apology books, per substrate, plus every
//!   still-open guess: the §5 accounting, live.
//! - `GET /trace` — a bounded tail of the span store streamed as Chrome
//!   `trace_event` JSON (chunked transfer), loadable in Perfetto with
//!   the exact schema the simulator's exporter emits
//!   ([`sim::SpanRecord::to_chrome_event`]); `?span=S7` narrows to one
//!   request's span subtree.
//! - `GET /incidents` — the black box: every crash post-mortem the
//!   runtime filed ([`sim::IncidentLog`]), as an index with per-incident
//!   guess/crash summaries.
//! - `GET /explain?incident=N` / `?guess=G7` — the causal-slice
//!   rendering for one incident or one guess, as a text timeline by
//!   default, `?format=perfetto` for a Chrome trace, `?format=json` for
//!   the full structured record.
//!
//! Malformed query parameters (`?limit=`, `?format=`, `?incident=`,
//! `?guess=`, `?span=`) are a `400`, never a silent default.
//!
//! ## The snapshot layer
//!
//! Rates and windowed percentiles need two points in time. A background
//! thread captures the counter map and log-bucketed
//! ([`sim::LogHistogram`]) forms of every histogram at a fixed interval
//! into a small ring; request handlers derive `Δcount/Δt` and
//! bucket-wise histogram deltas from the ring instead of touching raw
//! samples. Histogram conversion is incremental — each tick only the
//! samples recorded since the previous tick are folded in — so the
//! capture cost per interval is proportional to new traffic, not run
//! length.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, TrySendError};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sim::{EngineCore, GuessId, LogHistogram, SimTime, SpanId};

/// Live status of one node, updated by its worker thread and read by
/// the telemetry surface without taking the core lock.
#[derive(Debug, Default)]
pub struct NodeStatus {
    up: AtomicBool,
    epoch: AtomicU64,
    crashes: AtomicU64,
    restarts: AtomicU64,
    panic_crashes: AtomicU64,
}

impl NodeStatus {
    pub(crate) fn new() -> Self {
        NodeStatus { up: AtomicBool::new(true), ..Default::default() }
    }

    /// Is the node currently serving?
    pub fn is_up(&self) -> bool {
        self.up.load(Ordering::Relaxed)
    }

    /// Crash epoch (bumped once per crash).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Crashes of any kind (injected or panic).
    pub fn crashes(&self) -> u64 {
        self.crashes.load(Ordering::Relaxed)
    }

    /// Restarts after crashes.
    pub fn restarts(&self) -> u64 {
        self.restarts.load(Ordering::Relaxed)
    }

    /// Crashes caused by a panicking callback (§2.2 fail-fast).
    pub fn panic_crashes(&self) -> u64 {
        self.panic_crashes.load(Ordering::Relaxed)
    }

    pub(crate) fn note_crash(&self, epoch: u64, panicked: bool) {
        self.up.store(false, Ordering::Relaxed);
        self.epoch.store(epoch, Ordering::Relaxed);
        self.crashes.fetch_add(1, Ordering::Relaxed);
        if panicked {
            self.panic_crashes.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn note_restart(&self) {
        self.up.store(true, Ordering::Relaxed);
        self.restarts.fetch_add(1, Ordering::Relaxed);
    }
}

/// What the telemetry surface needs from the runtime, type-erased so
/// the HTTP server is not generic over the message type.
pub(crate) trait CoreHandle: Send + Sync {
    /// Lock the shared engine core.
    fn lock_core(&self) -> MutexGuard<'_, EngineCore>;
    /// Wall time since launch on the sim axis.
    fn uptime(&self) -> SimTime;
    /// Per-node live status.
    fn nodes(&self) -> &[NodeStatus];
    /// Current mailbox depth of `node`.
    fn mailbox_depth(&self, node: usize) -> u64;
    /// Timers armed and not yet fired.
    fn timer_wheel_len(&self) -> usize;
}

/// One periodic capture of the core's counters and histograms.
struct Snapshot {
    taken: Instant,
    counters: BTreeMap<String, u64>,
    hists: BTreeMap<String, LogHistogram>,
}

/// State shared between the snapshot thread and request handlers.
struct SnapRing {
    ring: Vec<Snapshot>,
    /// Samples already folded into the cumulative log histograms, per
    /// histogram name (incremental conversion cursor).
    consumed: BTreeMap<String, usize>,
    cumulative: BTreeMap<String, LogHistogram>,
}

/// How many snapshots the ring retains (at the default 1s interval this
/// comfortably covers the ~10s rate window).
const RING_CAP: usize = 16;

/// The rate/percentile window the surface aims to report over.
const WINDOW_TARGET: Duration = Duration::from_secs(10);

impl SnapRing {
    fn capture(&mut self, core: &dyn CoreHandle) {
        let taken = Instant::now();
        let mut counters = BTreeMap::new();
        {
            let core = core.lock_core();
            for (name, v) in core.metrics.counters() {
                counters.insert(name.to_owned(), v);
            }
            for (name, h) in core.metrics.histograms() {
                let consumed = self.consumed.entry(name.to_owned()).or_insert(0);
                let lh = self.cumulative.entry(name.to_owned()).or_default();
                for v in h.values().skip(*consumed) {
                    lh.record(v);
                }
                *consumed = h.count();
            }
        }
        let snap = Snapshot { taken, counters, hists: self.cumulative.clone() };
        if self.ring.len() == RING_CAP {
            self.ring.remove(0);
        }
        self.ring.push(snap);
    }

    /// The newest snapshot and the retained one whose age is closest to
    /// the target window, for rate derivation.
    fn window(&self) -> Option<(&Snapshot, &Snapshot)> {
        let newest = self.ring.last()?;
        let base = self.ring[..self.ring.len() - 1].iter().min_by_key(|s| {
            let age = newest.taken.saturating_duration_since(s.taken);
            age.abs_diff(WINDOW_TARGET)
        })?;
        Some((newest, base))
    }
}

/// Derived view of the snapshot ring: per-counter rates and windowed
/// histogram deltas over `window_secs`.
struct Derived {
    window_secs: f64,
    rates: BTreeMap<String, f64>,
    window_hists: BTreeMap<String, LogHistogram>,
}

fn derive(ring: &SnapRing) -> Option<Derived> {
    let (newest, base) = ring.window()?;
    let dt = newest.taken.saturating_duration_since(base.taken).as_secs_f64();
    if dt <= 0.0 {
        return None;
    }
    let mut rates = BTreeMap::new();
    for (name, &v) in &newest.counters {
        let prev = base.counters.get(name).copied().unwrap_or(0);
        rates.insert(name.clone(), (v.saturating_sub(prev)) as f64 / dt);
    }
    let mut window_hists = BTreeMap::new();
    for (name, h) in &newest.hists {
        let delta = match base.hists.get(name) {
            Some(earlier) => h.delta_since(earlier),
            None => h.clone(),
        };
        window_hists.insert(name.clone(), delta);
    }
    Some(Derived { window_secs: dt, rates, window_hists })
}

/// Fixed number of request-handling worker threads: enough for a
/// scraper plus a human poking around, small enough that a curl storm
/// cannot exhaust the process's thread budget.
const WORKER_POOL: usize = 4;

/// Accepted-but-unserved connections the pool will queue before the
/// acceptor starts shedding load with `503`s.
const PENDING_CAP: usize = 32;

/// A running telemetry endpoint. Created by
/// [`crate::RuntimeBuilder::telemetry`]; shut down with the runtime.
pub(crate) struct TelemetrySurface {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    snap_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl TelemetrySurface {
    /// Start serving on a pre-bound listener.
    pub fn start(
        listener: TcpListener,
        core: Arc<dyn CoreHandle>,
        interval: Duration,
    ) -> std::io::Result<TelemetrySurface> {
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let ring = Arc::new(Mutex::new(SnapRing {
            ring: Vec::new(),
            consumed: BTreeMap::new(),
            cumulative: BTreeMap::new(),
        }));
        let snap_stop = stop.clone();
        let snap_core = core.clone();
        let snap_ring = ring.clone();
        let snap_thread = std::thread::spawn(move || {
            // First capture immediately so rates exist after one interval.
            lock(&snap_ring).capture(snap_core.as_ref());
            while !snap_stop.load(Ordering::SeqCst) {
                // Chunked sleep so shutdown is prompt.
                let mut slept = Duration::ZERO;
                while slept < interval && !snap_stop.load(Ordering::SeqCst) {
                    let step = (interval - slept).min(Duration::from_millis(50));
                    std::thread::sleep(step);
                    slept += step;
                }
                if snap_stop.load(Ordering::SeqCst) {
                    break;
                }
                lock(&snap_ring).capture(snap_core.as_ref());
            }
        });

        // Bounded worker pool: the acceptor only hands sockets to a
        // fixed-size channel; when every worker is busy and the queue
        // is full it sheds load with a 503 instead of spawning an
        // unbounded thread per connection.
        let (tx, rx) = sync_channel::<TcpStream>(PENDING_CAP);
        let rx = Arc::new(Mutex::new(rx));
        let workers: Vec<JoinHandle<()>> = (0..WORKER_POOL)
            .map(|_| {
                let rx = rx.clone();
                let core = core.clone();
                let ring = ring.clone();
                std::thread::spawn(move || loop {
                    let next = lock(&rx).recv();
                    match next {
                        Ok(stream) => handle_connection(stream, core.clone(), ring.clone()),
                        Err(_) => break, // acceptor gone, pool drains out
                    }
                })
            })
            .collect();

        let accept_stop = stop.clone();
        let accept_thread = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                match tx.try_send(stream) {
                    Ok(()) => {}
                    Err(TrySendError::Full(mut stream)) => {
                        respond(&mut stream, 503, "text/plain", "telemetry worker pool full\n");
                    }
                    Err(TrySendError::Disconnected(_)) => break,
                }
            }
            // Dropping `tx` here unblocks every idle worker's recv().
        });

        Ok(TelemetrySurface {
            addr,
            stop,
            accept_thread: Some(accept_thread),
            snap_thread: Some(snap_thread),
            workers,
        })
    }

    /// The bound address (real port even when bound to `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, join every thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Poke the listener so the acceptor observes the flag.
        drop(TcpStream::connect(self.addr));
        if let Some(h) = self.accept_thread.take() {
            h.join().ok();
        }
        if let Some(h) = self.snap_thread.take() {
            h.join().ok();
        }
        // The acceptor dropped its channel sender on exit, so each
        // worker finishes its in-flight request and sees Disconnected.
        for h in std::mem::take(&mut self.workers) {
            h.join().ok();
        }
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

// ---------------------------------------------------------------------
// HTTP plumbing
// ---------------------------------------------------------------------

fn handle_connection(stream: TcpStream, core: Arc<dyn CoreHandle>, ring: Arc<Mutex<SnapRing>>) {
    stream.set_read_timeout(Some(Duration::from_secs(5))).ok();
    stream.set_write_timeout(Some(Duration::from_secs(30))).ok();
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut request_line = String::new();
    if reader.read_line(&mut request_line).is_err() {
        return;
    }
    // Drain headers (we route on the request line alone).
    loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) if line == "\r\n" || line == "\n" => break,
            Ok(_) => continue,
            Err(_) => return,
        }
    }
    let mut stream = stream;
    let mut parts = request_line.split_whitespace();
    let (method, target) = match (parts.next(), parts.next()) {
        (Some(m), Some(t)) => (m, t),
        _ => return,
    };
    if method != "GET" {
        respond(&mut stream, 405, "text/plain", "method not allowed (GET only)\n");
        return;
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    match path {
        "/" => respond(
            &mut stream,
            200,
            "text/plain",
            "quicksand runtime telemetry\n\
             GET /health     per-node liveness (200 iff all up)\n\
             GET /metrics    Prometheus exposition (?format=json for JSON)\n\
             GET /ledger     guess/apology accounting + open guesses\n\
             GET /trace      span tail as Perfetto/Chrome trace JSON (?limit=N, ?span=S7)\n\
             GET /incidents  crash post-mortem index (the black box)\n\
             GET /explain    ?incident=N or ?guess=G7; ?format=text|perfetto|json\n",
        ),
        "/health" => {
            let (all_up, body) = render_health(core.as_ref());
            respond(&mut stream, if all_up { 200 } else { 503 }, "application/json", &body);
        }
        "/metrics" => {
            let json = match query_param(query, "format") {
                None | Some("prom") => false,
                Some("json") => true,
                Some(other) => {
                    let msg = format!("bad format {:?}: expected json or prom\n", other);
                    respond(&mut stream, 400, "text/plain", &msg);
                    return;
                }
            };
            let derived = derive(&lock(&ring));
            if json {
                let body = render_metrics_json(core.as_ref(), derived.as_ref());
                respond(&mut stream, 200, "application/json", &body);
            } else {
                let body = render_metrics_prom(core.as_ref(), derived.as_ref());
                respond(&mut stream, 200, "text/plain; version=0.0.4", &body);
            }
        }
        "/ledger" => {
            let body = render_ledger(core.as_ref());
            respond(&mut stream, 200, "application/json", &body);
        }
        "/trace" => {
            let limit = match query_param(query, "limit") {
                None => 20_000,
                Some(v) => match v.parse::<usize>() {
                    Ok(n) => n,
                    Err(_) => {
                        let msg = format!("bad limit {:?}: expected a non-negative integer\n", v);
                        respond(&mut stream, 400, "text/plain", &msg);
                        return;
                    }
                },
            };
            let span = match query_param(query, "span") {
                None => None,
                Some(v) => match parse_id(v, 'S') {
                    Some(id) => Some(SpanId(id)),
                    None => {
                        let msg = format!("bad span {:?}: expected S<n> or a span number\n", v);
                        respond(&mut stream, 400, "text/plain", &msg);
                        return;
                    }
                },
            };
            if let Some(id) = span {
                if core.lock_core().spans.get(id).is_none() {
                    let msg = format!("no span S{} recorded\n", id.0);
                    respond(&mut stream, 404, "text/plain", &msg);
                    return;
                }
            }
            stream_trace(&mut stream, core.as_ref(), limit, span);
        }
        "/incidents" => {
            let body = core.lock_core().incidents.index_json();
            respond(&mut stream, 200, "application/json", &body);
        }
        "/explain" => handle_explain(&mut stream, core.as_ref(), query),
        _ => respond(&mut stream, 404, "text/plain", "not found\n"),
    }
}

/// `"G7"`/`"S7"`/`"E7"` (any single-letter prefix matching `tag`,
/// case-insensitive) or a bare `"7"` → `7`.
fn parse_id(v: &str, tag: char) -> Option<u64> {
    let digits =
        v.strip_prefix(tag).or_else(|| v.strip_prefix(tag.to_ascii_lowercase())).unwrap_or(v);
    digits.parse::<u64>().ok()
}

/// `GET /explain?incident=N` or `?guess=G7` — render the causal slice
/// behind one filed incident or one guess, live.
fn handle_explain(stream: &mut TcpStream, core: &dyn CoreHandle, query: &str) {
    let format = match query_param(query, "format") {
        None | Some("text") => "text",
        Some(f @ ("perfetto" | "json")) => f,
        Some(other) => {
            let msg = format!("bad format {:?}: expected text, perfetto, or json\n", other);
            respond(stream, 400, "text/plain", &msg);
            return;
        }
    };
    let incident = query_param(query, "incident");
    let guess = query_param(query, "guess");
    let (code, content_type, body) = match (incident, guess) {
        (Some(_), Some(_)) => {
            (400, "text/plain", "pass either ?incident=N or ?guess=G7, not both\n".to_owned())
        }
        (None, None) => {
            (400, "text/plain", "pass ?incident=N or ?guess=G7 (see /incidents)\n".to_owned())
        }
        (Some(v), None) => match parse_id(v, '#') {
            None => (400, "text/plain", format!("bad incident {:?}: expected a sequence\n", v)),
            Some(seq) => {
                let c = core.lock_core();
                match c.incidents.get(seq) {
                    None => (404, "text/plain", format!("no incident #{} retained\n", seq)),
                    Some(inc) => match format {
                        "perfetto" => (200, "application/json", inc.explanation.perfetto_json()),
                        "json" => (200, "application/json", inc.to_json()),
                        _ => (200, "text/plain", inc.render_text()),
                    },
                }
            }
        },
        (None, Some(v)) => match parse_id(v, 'G') {
            None => (400, "text/plain", format!("bad guess {:?}: expected G<n>\n", v)),
            Some(id) => {
                let c = core.lock_core();
                match c.explain_guess(GuessId(id)) {
                    None => (
                        404,
                        "text/plain",
                        format!("guess G{} has no recorded flight events\n", id),
                    ),
                    Some(e) => match format {
                        "perfetto" => (200, "application/json", e.perfetto_json()),
                        "json" => (200, "application/json", e.to_json()),
                        _ => (200, "text/plain", e.render_text()),
                    },
                }
            }
        },
    };
    respond(stream, code, content_type, &body);
}

fn query_param<'q>(query: &'q str, key: &str) -> Option<&'q str> {
    query.split('&').find_map(|kv| {
        let (k, v) = kv.split_once('=')?;
        (k == key).then_some(v)
    })
}

fn status_text(code: u16) -> &'static str {
    match code {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

fn respond(stream: &mut TcpStream, code: u16, content_type: &str, body: &str) {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        code,
        status_text(code),
        content_type,
        body.len()
    );
    stream.write_all(head.as_bytes()).and_then(|_| stream.write_all(body.as_bytes())).ok();
}

/// Stream the most recent `limit` spans as a Chrome trace array using
/// chunked transfer encoding. With `root` set, only the subtree under
/// that span (the span plus its transitive descendants — one request's
/// causal footprint) is emitted. The span JSON is rendered under the
/// core lock (bounded by `limit`), but socket writes happen after
/// release so a slow reader cannot stall the runtime.
fn stream_trace(stream: &mut TcpStream, core: &dyn CoreHandle, limit: usize, root: Option<SpanId>) {
    let events: Vec<String> = {
        let core = core.lock_core();
        let spans = core.spans.spans();
        match root {
            None => {
                let start = spans.len().saturating_sub(limit);
                spans[start..].iter().map(|s| s.to_chrome_event()).collect()
            }
            Some(root) => {
                // Spans are stored in open order, so a parent always
                // precedes its children: one forward pass with a
                // membership set covers the whole subtree.
                let mut member = vec![false; spans.len()];
                let mut events = Vec::new();
                for s in spans {
                    let in_tree = s.id == root
                        || s.parent.is_some_and(|p| member.get(p.0 as usize) == Some(&true));
                    if let Some(slot) = member.get_mut(s.id.0 as usize) {
                        *slot = in_tree;
                    }
                    if in_tree && events.len() < limit {
                        events.push(s.to_chrome_event());
                    }
                }
                events
            }
        }
    };
    let head = "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\n\
                Transfer-Encoding: chunked\r\nConnection: close\r\n\r\n";
    if stream.write_all(head.as_bytes()).is_err() {
        return;
    }
    let mut write_chunk = |data: &str| -> std::io::Result<()> {
        stream.write_all(format!("{:x}\r\n", data.len()).as_bytes())?;
        stream.write_all(data.as_bytes())?;
        stream.write_all(b"\r\n")
    };
    if write_chunk("[\n").is_err() {
        return;
    }
    for (i, ev) in events.iter().enumerate() {
        let mut piece = String::with_capacity(ev.len() + 2);
        if i > 0 {
            piece.push_str(",\n");
        }
        piece.push_str(ev);
        if write_chunk(&piece).is_err() {
            return;
        }
    }
    write_chunk("\n]\n").ok();
    stream.write_all(b"0\r\n\r\n").ok();
}

// ---------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------

fn jstr(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn jfloat(v: f64) -> String {
    if v.is_finite() {
        if v == v.trunc() && v.abs() < 1e15 {
            format!("{:.1}", v)
        } else {
            format!("{}", v)
        }
    } else {
        "null".to_owned()
    }
}

fn render_health(core: &dyn CoreHandle) -> (bool, String) {
    let nodes = core.nodes();
    let up = nodes.iter().filter(|n| n.is_up()).count();
    let panics: u64 = nodes.iter().map(|n| n.panic_crashes()).sum();
    let mut out = format!(
        "{{\"status\":{},\"uptime_us\":{},\"nodes_total\":{},\"nodes_up\":{},\
         \"panic_crashes\":{},\"nodes\":[",
        jstr(if up == nodes.len() { "ok" } else { "degraded" }),
        core.uptime().as_micros(),
        nodes.len(),
        up,
        panics,
    );
    for (i, n) in nodes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"node\":\"n{}\",\"up\":{},\"epoch\":{},\"crashes\":{},\"restarts\":{},\
             \"panic_crashes\":{},\"mailbox_depth\":{}}}",
            i,
            n.is_up(),
            n.epoch(),
            n.crashes(),
            n.restarts(),
            n.panic_crashes(),
            core.mailbox_depth(i),
        ));
    }
    out.push_str("]}\n");
    (up == nodes.len(), out)
}

/// Runtime-only gauges, as (name, labels-suffix-or-empty, value).
fn runtime_gauges(core: &dyn CoreHandle) -> Vec<(String, f64)> {
    let nodes = core.nodes();
    let mut out = vec![
        ("runtime.nodes_up".to_owned(), nodes.iter().filter(|n| n.is_up()).count() as f64),
        ("runtime.timer_wheel_size".to_owned(), core.timer_wheel_len() as f64),
    ];
    let mut total = 0u64;
    for i in 0..nodes.len() {
        let d = core.mailbox_depth(i);
        total += d;
        out.push((format!("runtime.mailbox_depth{{node=n{i}}}"), d as f64));
    }
    out.push(("runtime.mailbox_depth_total".to_owned(), total as f64));
    out
}

fn render_metrics_json(core: &dyn CoreHandle, derived: Option<&Derived>) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"uptime_us\": {},\n", core.uptime().as_micros()));
    {
        let c = core.lock_core();
        out.push_str("  \"counters\": {");
        for (i, (k, v)) in c.metrics.counters().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    {}: {}", jstr(k), v));
        }
        out.push_str("\n  },\n  \"labeled_counters\": {");
        for (i, (k, v)) in c.metrics.labeled_counters().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    {}: {}", jstr(k), v));
        }
        out.push_str("\n  },\n  \"gauges\": {");
        let mut first = true;
        for (k, v) in c.metrics.gauges().chain(c.metrics.labeled_gauges()) {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\n    {}: {}", jstr(k), jfloat(v)));
        }
        for (k, v) in runtime_gauges(core) {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\n    {}: {}", jstr(&k), jfloat(v)));
        }
        out.push_str("\n  },\n  \"ledger\": ");
        out.push_str(&c.ledger.accounting().to_json());
        out.push_str(",\n");
    }
    match derived {
        Some(d) => {
            out.push_str(&format!("  \"window_secs\": {},\n", jfloat(d.window_secs)));
            out.push_str("  \"rates_per_sec\": {");
            for (i, (k, v)) in d.rates.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\n    {}: {}", jstr(k), jfloat((*v * 10.0).round() / 10.0)));
            }
            out.push_str("\n  },\n  \"window_histograms\": {");
            for (i, (k, h)) in d.window_hists.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\n    {}: {}", jstr(k), h.to_json()));
            }
            out.push_str("\n  },\n");
        }
        None => out.push_str(
            "  \"window_secs\": null,\n  \"rates_per_sec\": {},\n  \"window_histograms\": {},\n",
        ),
    }
    {
        let c = core.lock_core();
        out.push_str("  \"histograms\": {");
        for (i, (k, h)) in c.metrics.histograms().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    {}: {}", jstr(k), LogHistogram::from_exact(h).to_json()));
        }
        out.push_str("\n  }\n}\n");
    }
    out
}

/// `a.b.c` → `quicksand_a_b_c`; anything exotic becomes `_`.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 10);
    out.push_str("quicksand_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Split a canonical `name{k=v,k2=v2}` series key into Prometheus form:
/// `quicksand_name{k="v",k2="v2"}`.
fn prom_series(key: &str) -> String {
    match key.split_once('{') {
        Some((name, labels)) => {
            let labels = labels.trim_end_matches('}');
            let rendered: Vec<String> = labels
                .split(',')
                .filter_map(|kv| kv.split_once('='))
                .map(|(k, v)| format!("{}=\"{}\"", k, v.replace('"', "'")))
                .collect();
            format!("{}{{{}}}", prom_name(name), rendered.join(","))
        }
        None => prom_name(key),
    }
}

fn render_metrics_prom(core: &dyn CoreHandle, derived: Option<&Derived>) -> String {
    let mut out = String::new();
    out.push_str("# TYPE quicksand_uptime_seconds gauge\n");
    out.push_str(&format!("quicksand_uptime_seconds {}\n", core.uptime().as_micros() as f64 / 1e6));
    {
        let c = core.lock_core();
        for (k, v) in c.metrics.counters() {
            out.push_str(&format!("# TYPE {} counter\n{} {}\n", prom_name(k), prom_name(k), v));
        }
        for (k, v) in c.metrics.labeled_counters() {
            out.push_str(&format!("{} {}\n", prom_series(k), v));
        }
        for (k, v) in c.metrics.gauges() {
            out.push_str(&format!(
                "# TYPE {} gauge\n{} {}\n",
                prom_name(k),
                prom_name(k),
                fmt_prom(v)
            ));
        }
        for (k, v) in c.metrics.labeled_gauges() {
            out.push_str(&format!("{} {}\n", prom_series(k), fmt_prom(v)));
        }
        for (k, h) in c.metrics.histograms() {
            let lh = LogHistogram::from_exact(h);
            let base = prom_name(k);
            out.push_str(&format!("# TYPE {base} summary\n"));
            for (q, p) in [("0.5", 50.0), ("0.9", 90.0), ("0.99", 99.0)] {
                out.push_str(&format!(
                    "{base}{{quantile=\"{q}\"}} {}\n",
                    fmt_prom(lh.percentile(p))
                ));
            }
            out.push_str(&format!("{base}_count {}\n", lh.count()));
        }
        for (substrate, a) in &c.ledger.accounting().per_substrate {
            for (what, v) in [
                ("opened", a.opened),
                ("confirmed", a.confirmed),
                ("apologized", a.apologized),
                ("orphaned", a.orphaned),
                ("open", a.open),
            ] {
                out.push_str(&format!(
                    "quicksand_ledger_{what}{{substrate=\"{substrate}\"}} {v}\n"
                ));
            }
            // Open→resolve windows: how long a guess lived before it was
            // confirmed, and how long a customer waited for the apology.
            for (what, h) in
                [("confirm", &a.confirm_latency_us), ("apology", &a.apology_latency_us)]
            {
                let s = h.summary();
                for (q, v) in [("0.5", s.p50), ("0.99", s.p99)] {
                    out.push_str(&format!(
                        "quicksand_ledger_{what}_latency_us{{substrate=\"{substrate}\",\
                         quantile=\"{q}\"}} {}\n",
                        fmt_prom(v)
                    ));
                }
                out.push_str(&format!(
                    "quicksand_ledger_{what}_latency_us_count{{substrate=\"{substrate}\"}} {}\n",
                    s.count
                ));
            }
        }
    }
    for (k, v) in runtime_gauges(core) {
        out.push_str(&format!("{} {}\n", prom_series(&k), fmt_prom(v)));
    }
    if let Some(d) = derived {
        out.push_str("# TYPE quicksand_rate_per_sec gauge\n");
        for (k, v) in &d.rates {
            out.push_str(&format!("quicksand_rate_per_sec{{name=\"{k}\"}} {}\n", fmt_prom(*v)));
        }
        out.push_str(&format!("quicksand_rate_window_seconds {}\n", fmt_prom(d.window_secs)));
        out.push_str("# TYPE quicksand_window_quantile gauge\n");
        for (k, h) in &d.window_hists {
            for (q, p) in [("0.5", 50.0), ("0.99", 99.0)] {
                out.push_str(&format!(
                    "quicksand_window_quantile{{name=\"{k}\",quantile=\"{q}\"}} {}\n",
                    fmt_prom(h.percentile(p))
                ));
            }
        }
    }
    out
}

fn fmt_prom(v: f64) -> String {
    if v.is_finite() {
        format!("{}", (v * 1000.0).round() / 1000.0)
    } else {
        "NaN".to_owned()
    }
}

/// How many open guesses `/ledger` lists in full before truncating
/// (truncation is declared in the payload).
const OPEN_GUESS_LIMIT: usize = 200;

fn render_ledger(core: &dyn CoreHandle) -> String {
    let c = core.lock_core();
    let acc = c.ledger.accounting();
    let open: Vec<&sim::GuessRecord> = c.ledger.records().iter().filter(|r| r.is_open()).collect();
    let mut out = format!(
        "{{\"open\":{},\"opened\":{},\"confirmed\":{},\"apologized\":{},\"orphaned\":{},\
         \"accounting\":{},\"open_guesses\":[",
        acc.open(),
        acc.opened(),
        acc.confirmed(),
        acc.apologized(),
        acc.orphaned(),
        acc.to_json(),
    );
    for (i, rec) in open.iter().take(OPEN_GUESS_LIMIT).enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&rec.to_json());
    }
    out.push(']');
    if open.len() > OPEN_GUESS_LIMIT {
        out.push_str(&format!(",\"open_guesses_truncated\":{}", open.len() - OPEN_GUESS_LIMIT));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prom_mangling_is_exposition_safe() {
        assert_eq!(prom_name("sim.messages_sent"), "quicksand_sim_messages_sent");
        assert_eq!(
            prom_series("ledger.open{substrate=dynamo}"),
            "quicksand_ledger_open{substrate=\"dynamo\"}"
        );
        assert_eq!(prom_series("plain.name"), "quicksand_plain_name");
    }

    #[test]
    fn query_params_parse() {
        assert_eq!(query_param("format=json&limit=5", "format"), Some("json"));
        assert_eq!(query_param("format=json&limit=5", "limit"), Some("5"));
        assert_eq!(query_param("", "format"), None);
    }

    #[test]
    fn id_parsing_accepts_prefixed_and_bare() {
        assert_eq!(parse_id("G7", 'G'), Some(7));
        assert_eq!(parse_id("g7", 'G'), Some(7));
        assert_eq!(parse_id("7", 'G'), Some(7));
        assert_eq!(parse_id("S12", 'S'), Some(12));
        assert_eq!(parse_id("x7", 'G'), None);
        assert_eq!(parse_id("", 'G'), None);
    }

    #[test]
    fn json_string_escaping() {
        assert_eq!(jstr("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }
}
