//! quicksand-runtime: a wall-clock, multi-threaded runtime that serves
//! real traffic with the *same unmodified actors* the simulator runs.
//!
//! "Building on Quicksand" argues the application's job is to keep its
//! promises over fallible machinery — and the machinery here really is
//! fallible: OS threads, real sockets, a host clock, panics as crashes.
//! The actors don't change. Any [`sim::Actor`] — dynamo stores, CRDT
//! carts, the lot — runs under this runtime exactly as written, because
//! both engines drive the same [`sim::EngineCore`] for every effect an
//! actor can express. The simulator explores schedules deterministically;
//! the runtime serves traffic at wall-clock speed; the actor cannot tell
//! which one is underneath except by how fast the clock moves.
//!
//! ```no_run
//! use quicksand_runtime::RuntimeBuilder;
//! # use sim::{Actor, Context, NodeId};
//! # struct Echo;
//! # impl Actor<u64> for Echo {
//! #     fn on_message(&mut self, ctx: &mut Context<'_, u64>, from: NodeId, msg: u64) {
//! #         ctx.send(from, msg);
//! #     }
//! # }
//! let mut b = RuntimeBuilder::new();
//! let a = b.add_node(Echo);
//! let _b2 = b.add_node(Echo);
//! let rt = b.launch(); // or .launch_tcp() for real sockets
//! rt.inject(a, _b2, 42);
//! let report = rt.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod clock;
pub(crate) mod runtime;
pub mod telemetry;
pub(crate) mod timer;
pub mod transport;

pub use chaos::{rendered_timeline, ChaosController, ChaosStats, NetChaos};
pub use clock::WallClock;
pub use runtime::{
    BoxedActor, Runtime, RuntimeBuilder, RuntimeReport, TransportKind, DEFAULT_FLIGHT_CAP,
    DEFAULT_GUESS_DEADLINE,
};
pub use telemetry::NodeStatus;
pub use transport::Transport;
