//! Wall-clock chaos: the simulator's [`FaultPlan`] executed against
//! real threads and real sockets.
//!
//! The simulator schedules a plan's clauses onto its deterministic
//! event queue; this module replays the *same*
//! [`FaultPlan::timeline`] against the host clock. Three pieces:
//!
//! - [`NetChaos`]: the shared fault state a send consults — directional
//!   blocked pairs (partitions), degraded links ([`LinkConfig`]:
//!   latency, loss, duplication) and a seeded [`SimRng`] for the
//!   per-frame draws.
//! - [`ChaosTransport`]: a fault-injecting wrapper over any
//!   [`Transport`]. Blocked or unlucky frames return `false` so the
//!   sending worker books the loss exactly like a failed real send (a
//!   `net.hop` span closed `Dropped` plus `sim.messages_dropped` — the
//!   same visibility a partition gets in the sim). Delayed frames park
//!   on a [`TimerWheel`]-style delay line and ship when due; duplicated
//!   frames ship twice at independently drawn latencies, mirroring the
//!   sim network's `LinkConfig` semantics.
//! - [`ChaosController`]: a scheduler thread that sleeps until each
//!   timeline edge's offset from launch and applies it — partitions
//!   block pairs and sever live TCP connections (the healed link must
//!   lazily redial, like a real switch port flap), crashes and restarts
//!   ride the existing worker envelopes through the same epoch +
//!   `on_crash`/`on_restart` machinery harness injection uses, degrades
//!   install and restore link configs.
//!
//! Runs are **reproducible by seed, not byte-deterministic**: the same
//! plan always applies the same clause edges in the same order (that is
//! [`ChaosController::applied`] and the parity tests' contract), and
//! per-frame drop/delay draws come from the seeded RNG — but which
//! frames exist and when they arrive depends on the OS scheduler, as it
//! must on real hardware.

use std::collections::{BinaryHeap, HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use rand::Rng;
use sim::plan::{ClauseEdge, ClauseEvent};
use sim::{Fault, FaultPlan, FlightId, LinkConfig, NodeId, SimRng, SpanId};

use crate::transport::{Envelope, Inbox, Transport};

/// What [`NetChaos`] decides for one frame crossing a link.
enum Verdict {
    /// Link is clean: hand the frame straight to the inner transport.
    Pass,
    /// Partitioned or unlucky on a lossy link: refuse the send.
    Drop,
    /// Degraded link: deliver after `delay`, plus an optional duplicate
    /// after an independently drawn second delay.
    Delay { delay: Duration, duplicate: Option<Duration> },
}

/// Counters for what the chaos layer did to traffic (monotonic,
/// lock-free reads). Exposed via [`ChaosController::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Frames refused because the directed pair was partitioned.
    pub partition_drops: u64,
    /// Frames refused by a degraded link's `drop_prob` draw.
    pub chance_drops: u64,
    /// Frames parked on the delay line by a degraded link.
    pub delayed: u64,
    /// Extra copies shipped by a degraded link's `duplicate_prob` draw.
    pub duplicated: u64,
}

/// Mutable link state, behind one mutex (consulted per send).
struct NetState {
    /// Directed `(from, to)` pairs currently partitioned.
    blocked: HashSet<(usize, usize)>,
    /// Directed `(from, to)` pairs under a degraded link config.
    degraded: HashMap<(usize, usize), LinkConfig>,
    /// Seeded draws for drop/latency/duplication.
    rng: SimRng,
}

/// The shared fault surface: what the active plan has currently done to
/// the network. [`ChaosTransport`] consults it per frame; the
/// [`ChaosController`] mutates it per clause edge.
pub struct NetChaos {
    state: Mutex<NetState>,
    partition_drops: AtomicU64,
    chance_drops: AtomicU64,
    delayed: AtomicU64,
    duplicated: AtomicU64,
}

impl NetChaos {
    /// A clean network surface drawing per-frame chances from `seed`
    /// (mixed through the same splitmix64 finalizer the plan generator
    /// uses, so plan-seed and draw-seed streams never collide).
    pub fn new(seed: u64) -> Self {
        NetChaos {
            state: Mutex::new(NetState {
                blocked: HashSet::new(),
                degraded: HashMap::new(),
                rng: SimRng::new(sim::mix_seed(seed ^ 0xc4a0_5c0f_fee1_dead)),
            }),
            partition_drops: AtomicU64::new(0),
            chance_drops: AtomicU64::new(0),
            delayed: AtomicU64::new(0),
            duplicated: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, NetState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Current counters.
    pub fn stats(&self) -> ChaosStats {
        ChaosStats {
            partition_drops: self.partition_drops.load(Ordering::Relaxed),
            chance_drops: self.chance_drops.load(Ordering::Relaxed),
            delayed: self.delayed.load(Ordering::Relaxed),
            duplicated: self.duplicated.load(Ordering::Relaxed),
        }
    }

    /// True when `from → to` frames are currently partitioned away.
    pub fn is_blocked(&self, from: NodeId, to: NodeId) -> bool {
        self.lock().blocked.contains(&(from.0, to.0))
    }

    /// Block the directed pairs `left × right` (and optionally the
    /// reverse direction).
    fn block(&self, left: &[NodeId], right: &[NodeId], both_ways: bool) {
        let mut s = self.lock();
        for &a in left {
            for &b in right {
                s.blocked.insert((a.0, b.0));
                if both_ways {
                    s.blocked.insert((b.0, a.0));
                }
            }
        }
    }

    /// Undo [`NetChaos::block`] for the same groups.
    fn unblock(&self, left: &[NodeId], right: &[NodeId], both_ways: bool) {
        let mut s = self.lock();
        for &a in left {
            for &b in right {
                s.blocked.remove(&(a.0, b.0));
                if both_ways {
                    s.blocked.remove(&(b.0, a.0));
                }
            }
        }
    }

    /// Install (or remove, on `None`) a degraded config on `a ↔ b`.
    fn degrade(&self, a: NodeId, b: NodeId, link: Option<LinkConfig>) {
        let mut s = self.lock();
        match link {
            Some(cfg) => {
                s.degraded.insert((a.0, b.0), cfg);
                s.degraded.insert((b.0, a.0), cfg);
            }
            None => {
                s.degraded.remove(&(a.0, b.0));
                s.degraded.remove(&(b.0, a.0));
            }
        }
    }

    /// Decide one frame's fate on the `from → to` link.
    fn judge(&self, from: NodeId, to: NodeId) -> Verdict {
        let mut s = self.lock();
        if s.blocked.contains(&(from.0, to.0)) {
            drop(s);
            self.partition_drops.fetch_add(1, Ordering::Relaxed);
            return Verdict::Drop;
        }
        let Some(link) = s.degraded.get(&(from.0, to.0)).copied() else {
            return Verdict::Pass;
        };
        if link.drop_prob > 0.0 && s.rng.gen_bool(link.drop_prob.clamp(0.0, 1.0)) {
            drop(s);
            self.chance_drops.fetch_add(1, Ordering::Relaxed);
            return Verdict::Drop;
        }
        let draw_latency = |s: &mut NetState| {
            let lo = link.latency_min.as_micros();
            let hi = link.latency_max.as_micros().max(lo);
            Duration::from_micros(if hi > lo { s.rng.gen_range(lo..=hi) } else { lo })
        };
        let delay = draw_latency(&mut s);
        let duplicate = (link.duplicate_prob > 0.0
            && s.rng.gen_bool(link.duplicate_prob.clamp(0.0, 1.0)))
        .then(|| draw_latency(&mut s));
        drop(s);
        self.delayed.fetch_add(1, Ordering::Relaxed);
        if duplicate.is_some() {
            self.duplicated.fetch_add(1, Ordering::Relaxed);
        }
        Verdict::Delay { delay, duplicate }
    }
}

/// A frame parked on the delay line, with everything needed to re-issue
/// the send when due.
struct Parked<M> {
    due: Instant,
    /// Arming order, to break deadline ties deterministically.
    order: u64,
    from: NodeId,
    to: NodeId,
    hop: Option<SpanId>,
    cause: Option<FlightId>,
    msg: M,
}

impl<M> PartialEq for Parked<M> {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.order == other.order
    }
}
impl<M> Eq for Parked<M> {}
impl<M> PartialOrd for Parked<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Parked<M> {
    // Reversed: BinaryHeap is a max-heap and we want the earliest due.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (other.due, other.order).cmp(&(self.due, self.order))
    }
}

struct DelayState<M> {
    heap: BinaryHeap<Parked<M>>,
    shutdown: bool,
    order: u64,
}

/// The delay line: a deadline heap plus one thread that re-issues each
/// parked frame into the inner transport when its latency has elapsed
/// (the wall-clock analogue of the sim network's latency model).
struct DelayLine<M> {
    state: Mutex<DelayState<M>>,
    cv: Condvar,
}

impl<M: Send + 'static> DelayLine<M> {
    fn start(inner: Arc<dyn Transport<M>>) -> (Arc<Self>, JoinHandle<()>) {
        let line = Arc::new(DelayLine {
            state: Mutex::new(DelayState { heap: BinaryHeap::new(), shutdown: false, order: 0 }),
            cv: Condvar::new(),
        });
        let me = line.clone();
        let handle = std::thread::spawn(move || {
            while let Some(p) = me.wait_due() {
                // A frame that dies here (conn refused, node shut down)
                // is a silent wire loss: the hop span stays open and no
                // drop is booked, exactly like a packet lost after the
                // sender's successful write.
                inner.send(p.from, p.to, p.hop, p.cause, p.msg);
            }
        });
        (line, handle)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, DelayState<M>> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn park(
        &self,
        due: Instant,
        from: NodeId,
        to: NodeId,
        hop: Option<SpanId>,
        cause: Option<FlightId>,
        msg: M,
    ) {
        let mut s = self.lock();
        if s.shutdown {
            return;
        }
        let order = s.order;
        s.order += 1;
        s.heap.push(Parked { due, order, from, to, hop, cause, msg });
        self.cv.notify_all();
    }

    fn wait_due(&self) -> Option<Parked<M>> {
        let mut s = self.lock();
        loop {
            if s.shutdown {
                return None;
            }
            match s.heap.peek().map(|p| p.due) {
                Some(due) => {
                    let now = Instant::now();
                    if due <= now {
                        return Some(s.heap.pop().expect("peeked"));
                    }
                    let (guard, _) =
                        self.cv.wait_timeout(s, due - now).unwrap_or_else(|e| e.into_inner());
                    s = guard;
                }
                None => {
                    s = self.cv.wait(s).unwrap_or_else(|e| e.into_inner());
                }
            }
        }
    }

    /// Stop the thread; frames still parked are discarded (the cluster
    /// is tearing down — nobody is listening).
    fn shutdown(&self) {
        let mut s = self.lock();
        s.shutdown = true;
        s.heap.clear();
        self.cv.notify_all();
    }
}

/// A fault-injecting [`Transport`] wrapper: consults [`NetChaos`] per
/// frame and drops, delays, duplicates, or passes through to the inner
/// transport. Severs delegate, so partition onsets can cut real TCP
/// connections through the wrapper.
pub(crate) struct ChaosTransport<M> {
    inner: Arc<dyn Transport<M>>,
    net: Arc<NetChaos>,
    line: Arc<DelayLine<M>>,
    line_thread: Mutex<Option<JoinHandle<()>>>,
}

impl<M: Clone + Send + 'static> ChaosTransport<M> {
    pub fn new(inner: Arc<dyn Transport<M>>, net: Arc<NetChaos>) -> Self {
        let (line, line_thread) = DelayLine::start(inner.clone());
        ChaosTransport { inner, net, line, line_thread: Mutex::new(Some(line_thread)) }
    }
}

impl<M: Clone + Send + 'static> Transport<M> for ChaosTransport<M> {
    fn send(
        &self,
        from: NodeId,
        to: NodeId,
        hop: Option<SpanId>,
        cause: Option<FlightId>,
        msg: M,
    ) -> bool {
        match self.net.judge(from, to) {
            Verdict::Pass => self.inner.send(from, to, hop, cause, msg),
            Verdict::Drop => false,
            Verdict::Delay { delay, duplicate } => {
                let now = Instant::now();
                if let Some(extra) = duplicate {
                    self.line.park(now + extra, from, to, hop, cause, msg.clone());
                }
                self.line.park(now + delay, from, to, hop, cause, msg);
                true
            }
        }
    }

    fn sever(&self, to: NodeId) {
        self.inner.sever(to);
    }

    fn shutdown(&self) {
        self.line.shutdown();
        if let Some(h) = self.line_thread.lock().unwrap_or_else(|e| e.into_inner()).take() {
            h.join().ok();
        }
        self.inner.shutdown();
    }
}

/// Bumps the `runtime.chaos_clauses` metric (labeled by kind and edge)
/// as the controller applies each timeline event; installed by the
/// runtime so the operator surface shows chaos progress live.
pub(crate) type OnApply = Box<dyn Fn(&'static str, &'static str) + Send>;

/// Translates a membership clause into the cluster's own control
/// message: called with the clause kind (`"add_node"` / `"remove_node"`)
/// and the target node, returns the message to inject into that node's
/// inbox (or `None` to skip). Installed via
/// [`crate::RuntimeBuilder::membership_ctl`]; without a hook the
/// controller applies membership edges as accounting-only no-ops, so
/// plans with membership clauses still replay cleanly on clusters that
/// have no membership machinery.
pub type CtlHook<M> = Box<dyn Fn(&'static str, NodeId) -> Option<M> + Send>;

struct Gate {
    stopped: Mutex<bool>,
    cv: Condvar,
}

impl Gate {
    /// Sleep until `deadline` or a stop signal; true means "stopped".
    fn wait_until(&self, deadline: Instant) -> bool {
        let mut stopped = self.stopped.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if *stopped {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) =
                self.cv.wait_timeout(stopped, deadline - now).unwrap_or_else(|e| e.into_inner());
            stopped = guard;
        }
    }

    fn stop(&self) {
        *self.stopped.lock().unwrap_or_else(|e| e.into_inner()) = true;
        self.cv.notify_all();
    }
}

/// The wall-clock clause scheduler: walks [`FaultPlan::timeline`]
/// against the host clock, applying each edge to the [`NetChaos`]
/// surface, the transport (severs), and the node workers
/// (crash/restart envelopes). Owned by the [`crate::Runtime`]; stopped
/// at shutdown.
pub struct ChaosController {
    plan: FaultPlan,
    net: Arc<NetChaos>,
    applied: Arc<Mutex<Vec<String>>>,
    finished: Arc<AtomicBool>,
    gate: Arc<Gate>,
    thread: Option<JoinHandle<()>>,
}

impl ChaosController {
    /// Spawn the scheduler thread. Clause offsets are measured from
    /// this call (which the runtime makes during launch, after workers
    /// exist).
    pub(crate) fn start<M: Send + 'static>(
        plan: FaultPlan,
        net: Arc<NetChaos>,
        transport: Arc<dyn Transport<M>>,
        senders: Vec<Inbox<M>>,
        on_apply: OnApply,
        ctl: Option<CtlHook<M>>,
    ) -> Self {
        let applied = Arc::new(Mutex::new(Vec::new()));
        let finished = Arc::new(AtomicBool::new(false));
        let gate = Arc::new(Gate { stopped: Mutex::new(false), cv: Condvar::new() });
        let thread = {
            let plan = plan.clone();
            let net = net.clone();
            let applied = applied.clone();
            let finished = finished.clone();
            let gate = gate.clone();
            std::thread::spawn(move || {
                let start = Instant::now();
                for ev in plan.timeline() {
                    let deadline = start + Duration::from_micros(ev.at.as_micros());
                    if gate.wait_until(deadline) {
                        return; // runtime is shutting down mid-plan
                    }
                    let fault = &plan.faults[ev.clause];
                    apply_edge(fault, ev.edge, &net, transport.as_ref(), &senders, ctl.as_ref());
                    on_apply(fault.kind(), edge_label(ev.edge));
                    applied.lock().unwrap_or_else(|e| e.into_inner()).push(describe(&ev, fault));
                }
                finished.store(true, Ordering::SeqCst);
            })
        };
        ChaosController { plan, net, applied, finished, gate, thread: Some(thread) }
    }

    /// The plan being executed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The clause edges applied so far, in application order. Two runs
    /// of the same plan produce the same log — the reproducibility
    /// contract wall-clock chaos keeps (and the parity tests check).
    pub fn applied(&self) -> Vec<String> {
        self.applied.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// True once every timeline edge has been applied.
    pub fn finished(&self) -> bool {
        self.finished.load(Ordering::SeqCst)
    }

    /// Traffic counters from the network surface.
    pub fn stats(&self) -> ChaosStats {
        self.net.stats()
    }

    /// Block until the whole timeline has been applied or `timeout`
    /// elapses; true means the plan completed.
    pub fn wait_finished(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while !self.finished() {
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        true
    }

    /// Stop the scheduler (idempotent); pending clause edges are
    /// abandoned. Called by runtime shutdown before workers stop, so no
    /// crash/restart envelope races a shutdown envelope.
    pub(crate) fn stop(&mut self) {
        self.gate.stop();
        if let Some(h) = self.thread.take() {
            h.join().ok();
        }
    }
}

impl Drop for ChaosController {
    fn drop(&mut self) {
        self.stop();
    }
}

fn edge_label(edge: ClauseEdge) -> &'static str {
    match edge {
        ClauseEdge::Onset => "onset",
        ClauseEdge::Heal => "heal",
    }
}

/// Stable rendering of one applied edge for the log (`onset
/// crash#2[n1] @250000us`).
fn describe(ev: &ClauseEvent, fault: &Fault) -> String {
    let target = match fault {
        Fault::Crash { node, .. }
        | Fault::AddNode { node, .. }
        | Fault::RemoveNode { node, .. } => format!("[{node}]"),
        Fault::Degrade { a, b, .. } => format!("[{a}~{b}]"),
        Fault::Partition { .. } | Fault::PartitionOneWay { .. } => String::new(),
    };
    format!(
        "{} {}#{}{} @{}us",
        edge_label(ev.edge),
        fault.kind(),
        ev.clause,
        target,
        ev.at.as_micros()
    )
}

/// The applied-log an uninterrupted run of `plan` produces, in order —
/// the replay contract made checkable: once [`ChaosController::finished`]
/// is true, [`ChaosController::applied`] equals this exactly.
pub fn rendered_timeline(plan: &FaultPlan) -> Vec<String> {
    plan.timeline().iter().map(|ev| describe(ev, &plan.faults[ev.clause])).collect()
}

/// Apply one timeline edge to the live cluster.
fn apply_edge<M: Send + 'static>(
    fault: &Fault,
    edge: ClauseEdge,
    net: &NetChaos,
    transport: &dyn Transport<M>,
    senders: &[Inbox<M>],
    ctl: Option<&CtlHook<M>>,
) {
    match (fault, edge) {
        (Fault::Partition { left, right, .. }, ClauseEdge::Onset) => {
            net.block(left, right, true);
            // Cut live conns so in-flight bytes die with the link; the
            // heal proves lazy redial. (Conns *to* a group member are
            // shared by all senders; same-side peers just redial.)
            for n in left.iter().chain(right) {
                transport.sever(*n);
            }
        }
        (Fault::Partition { left, right, .. }, ClauseEdge::Heal) => {
            net.unblock(left, right, true);
        }
        (Fault::PartitionOneWay { from, to, .. }, ClauseEdge::Onset) => {
            net.block(from, to, false);
            for n in to {
                transport.sever(*n);
            }
        }
        (Fault::PartitionOneWay { from, to, .. }, ClauseEdge::Heal) => {
            net.unblock(from, to, false);
        }
        (Fault::Crash { node, .. }, ClauseEdge::Onset) => {
            // Ride the harness-injection path: same epoch bump, same
            // on_crash, same NodeStatus counters as Runtime::crash.
            senders[node.0].send(Envelope::Crash).ok();
            // A crashed process takes its sockets with it.
            transport.sever(*node);
        }
        (Fault::Crash { node, .. }, ClauseEdge::Heal) => {
            senders[node.0].send(Envelope::Restart).ok();
        }
        (Fault::Degrade { a, b, link, .. }, ClauseEdge::Onset) => {
            net.degrade(*a, *b, Some(*link));
        }
        (Fault::Degrade { a, b, .. }, ClauseEdge::Heal) => {
            net.degrade(*a, *b, None);
        }
        // Membership clauses are onset-only; the hook turns the clause
        // into the cluster's control message, delivered to the target
        // node through its normal inbox (same path a remote peer's
        // frame takes). The self-addressed `from` keeps the envelope
        // shape identity with harness injection.
        (Fault::AddNode { node, .. } | Fault::RemoveNode { node, .. }, ClauseEdge::Onset) => {
            if let Some(msg) = ctl.and_then(|hook| hook(fault.kind(), *node)) {
                senders[node.0]
                    .send(Envelope::Msg { from: *node, msg, hop: None, cause: None })
                    .ok();
            }
        }
        (Fault::AddNode { .. } | Fault::RemoveNode { .. }, ClauseEdge::Heal) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    /// A transport that records sends and sever calls.
    struct Probe {
        sent: Mutex<Vec<(usize, usize, u64)>>,
        severed: Mutex<Vec<usize>>,
    }

    impl Probe {
        fn new() -> Arc<Self> {
            Arc::new(Probe { sent: Mutex::new(Vec::new()), severed: Mutex::new(Vec::new()) })
        }
    }

    impl Transport<u64> for Probe {
        fn send(
            &self,
            from: NodeId,
            to: NodeId,
            _hop: Option<SpanId>,
            _cause: Option<FlightId>,
            msg: u64,
        ) -> bool {
            self.sent.lock().unwrap().push((from.0, to.0, msg));
            true
        }
        fn sever(&self, to: NodeId) {
            self.severed.lock().unwrap().push(to.0);
        }
    }

    #[test]
    fn blocked_pairs_refuse_sends_until_unblocked() {
        let probe = Probe::new();
        let net = Arc::new(NetChaos::new(1));
        let t = ChaosTransport::new(probe.clone() as Arc<dyn Transport<u64>>, net.clone());
        assert!(t.send(NodeId(0), NodeId(1), None, None, 7));
        net.block(&[NodeId(0)], &[NodeId(1)], false);
        assert!(!t.send(NodeId(0), NodeId(1), None, None, 8), "partitioned");
        assert!(t.send(NodeId(1), NodeId(0), None, None, 9), "one-way: reverse flows");
        net.unblock(&[NodeId(0)], &[NodeId(1)], false);
        assert!(t.send(NodeId(0), NodeId(1), None, None, 10), "healed");
        assert_eq!(net.stats().partition_drops, 1);
        assert_eq!(probe.sent.lock().unwrap().len(), 3);
        t.shutdown();
    }

    #[test]
    fn degraded_link_delays_and_can_duplicate() {
        let probe = Probe::new();
        let net = Arc::new(NetChaos::new(2));
        let t = ChaosTransport::new(probe.clone() as Arc<dyn Transport<u64>>, net.clone());
        net.degrade(
            NodeId(0),
            NodeId(1),
            Some(LinkConfig {
                latency_min: sim::SimDuration::from_millis(5),
                latency_max: sim::SimDuration::from_millis(10),
                drop_prob: 0.0,
                duplicate_prob: 1.0,
            }),
        );
        let before = Instant::now();
        assert!(t.send(NodeId(0), NodeId(1), None, None, 42), "delayed, not dropped");
        assert!(probe.sent.lock().unwrap().is_empty(), "not delivered synchronously");
        while probe.sent.lock().unwrap().len() < 2 {
            assert!(before.elapsed() < Duration::from_secs(5), "frames never arrived");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(before.elapsed() >= Duration::from_millis(5), "latency floor respected");
        let sent = probe.sent.lock().unwrap().clone();
        assert_eq!(sent, vec![(0, 1, 42), (0, 1, 42)], "original + duplicate");
        let stats = net.stats();
        assert_eq!((stats.delayed, stats.duplicated), (1, 1));
        t.shutdown();
    }

    #[test]
    fn drop_prob_one_loses_every_frame() {
        let probe = Probe::new();
        let net = Arc::new(NetChaos::new(3));
        let t = ChaosTransport::new(probe.clone() as Arc<dyn Transport<u64>>, net.clone());
        net.degrade(
            NodeId(0),
            NodeId(1),
            Some(LinkConfig {
                latency_min: sim::SimDuration::ZERO,
                latency_max: sim::SimDuration::ZERO,
                drop_prob: 1.0,
                duplicate_prob: 0.0,
            }),
        );
        for i in 0..20 {
            assert!(!t.send(NodeId(0), NodeId(1), None, None, i));
        }
        assert_eq!(net.stats().chance_drops, 20);
        assert!(probe.sent.lock().unwrap().is_empty());
        t.shutdown();
    }

    #[test]
    fn controller_applies_the_timeline_in_order_and_is_replayable() {
        let plan = FaultPlan::from_faults(vec![
            Fault::Crash {
                at: sim::SimTime::from_millis(10),
                node: NodeId(1),
                restart_at: Some(sim::SimTime::from_millis(30)),
            },
            Fault::Partition {
                at: sim::SimTime::from_millis(5),
                until: sim::SimTime::from_millis(20),
                left: vec![NodeId(0)],
                right: vec![NodeId(1)],
            },
        ]);
        let run = |plan: &FaultPlan| {
            let probe = Probe::new();
            let net = Arc::new(NetChaos::new(9));
            let (tx0, _rx0) = mpsc::channel();
            let (tx1, rx1) = mpsc::channel();
            let senders = vec![Inbox::new(tx0), Inbox::new(tx1)];
            let mut c = ChaosController::start(
                plan.clone(),
                net,
                probe.clone() as Arc<dyn Transport<u64>>,
                senders,
                Box::new(|_, _| {}),
                None,
            );
            assert!(c.wait_finished(Duration::from_secs(10)), "plan completes");
            let log = c.applied();
            c.stop();
            // The crashed node got its crash and restart envelopes.
            let mut kinds = Vec::new();
            while let Ok(env) = rx1.try_recv() {
                kinds.push(match env {
                    Envelope::Crash => "crash",
                    Envelope::Restart => "restart",
                    _ => "other",
                });
            }
            let severed = probe.severed.lock().unwrap().clone();
            (log, kinds, severed)
        };
        let (log_a, kinds_a, severed_a) = run(&plan);
        assert_eq!(
            log_a,
            vec![
                "onset partition#0 @5000us",
                "onset crash#1[n1] @10000us",
                "heal partition#0 @20000us",
                "heal crash#1[n1] @30000us",
            ],
            "applied log matches the timeline"
        );
        assert_eq!(kinds_a, vec!["crash", "restart"]);
        // Partition onset severed both sides; crash severed its node.
        assert_eq!(severed_a, vec![0, 1, 1]);
        let (log_b, kinds_b, severed_b) = run(&plan);
        assert_eq!(log_a, log_b, "same plan, same clause sequence");
        assert_eq!(kinds_a, kinds_b);
        assert_eq!(severed_a, severed_b);
    }

    #[test]
    fn membership_clauses_inject_the_hooked_control_message() {
        let plan = FaultPlan::from_faults(vec![
            Fault::AddNode { at: sim::SimTime::from_millis(5), node: NodeId(1) },
            Fault::RemoveNode { at: sim::SimTime::from_millis(10), node: NodeId(0) },
        ]);
        let probe = Probe::new();
        let net = Arc::new(NetChaos::new(11));
        let (tx0, rx0) = mpsc::channel();
        let (tx1, rx1) = mpsc::channel();
        let senders = vec![Inbox::new(tx0), Inbox::new(tx1)];
        let hook: CtlHook<u64> = Box::new(|kind, node| match kind {
            "add_node" => Some(1000 + node.0 as u64),
            _ => Some(2000 + node.0 as u64),
        });
        let mut c = ChaosController::start(
            plan.clone(),
            net,
            probe as Arc<dyn Transport<u64>>,
            senders,
            Box::new(|_, _| {}),
            Some(hook),
        );
        assert!(c.wait_finished(Duration::from_secs(10)), "plan completes");
        assert_eq!(c.applied(), rendered_timeline(&plan));
        assert_eq!(
            c.applied(),
            vec!["onset add_node#0[n1] @5000us", "onset remove_node#1[n0] @10000us"]
        );
        c.stop();
        let msg_of = |rx: &mpsc::Receiver<Envelope<u64>>| match rx.try_recv() {
            Ok(Envelope::Msg { from, msg, .. }) => (from.0, msg),
            other => panic!("expected a control message, got {:?}", other.is_ok()),
        };
        assert_eq!(msg_of(&rx1), (1, 1001), "join ctl delivered to the joiner");
        assert_eq!(msg_of(&rx0), (0, 2000), "leave ctl delivered to the leaver");
        assert!(rx0.try_recv().is_err() && rx1.try_recv().is_err(), "nothing else injected");
    }

    #[test]
    fn stopping_mid_plan_abandons_later_edges() {
        let plan = FaultPlan::from_faults(vec![Fault::Partition {
            at: sim::SimTime::from_secs(3600),
            until: sim::SimTime::from_secs(7200),
            left: vec![NodeId(0)],
            right: vec![NodeId(1)],
        }]);
        let net = Arc::new(NetChaos::new(4));
        let probe = Probe::new();
        let started = Instant::now();
        let mut c = ChaosController::start(
            plan,
            net,
            probe as Arc<dyn Transport<u64>>,
            Vec::new(),
            Box::new(|_, _| {}),
            None,
        );
        c.stop();
        assert!(started.elapsed() < Duration::from_secs(60), "stop does not wait for the clause");
        assert!(c.applied().is_empty());
        assert!(!c.finished());
    }
}
