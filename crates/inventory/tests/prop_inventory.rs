//! Property tests: stock conservation and reconciliation idempotence
//! under arbitrary duplicated order streams.

use inventory::{OrderResponse, Warehouse};
use proptest::prelude::*;
use quicksand_core::resources::Fungibility;
use quicksand_core::uniquifier::Uniquifier;

proptest! {
    /// Units are conserved: whatever the retry pattern, granted stock
    /// equals quota minus remaining, and after reconciliation each order
    /// holds stock at most once across the fleet.
    #[test]
    fn stock_is_conserved_under_duplicated_orders(
        stream in prop::collection::vec((0u64..40, 0u8..2), 1..120)
    ) {
        // An order's quantity is part of the order (functionally
        // dependent on its uniquifier), so retries carry the same qty.
        let qty_of = |order_n: u64| 1 + order_n % 3;
        let quota = 500u64;
        let mut a = Warehouse::new(0, quota, Fungibility::Fungible);
        let mut b = Warehouse::new(1, quota, Fungibility::Fungible);
        let mut granted_orders = std::collections::HashSet::new();
        for (order_n, wh) in &stream {
            let order = Uniquifier::composite("prop-order", *order_n);
            let target = if *wh == 0 { &mut a } else { &mut b };
            if let OrderResponse::Scheduled { .. } = target.process_order(order, qty_of(*order_n)) {
                granted_orders.insert(*order_n);
            }
        }
        // Reconcile (twice: idempotence).
        let rec1 = a.reconcile(&mut b);
        let rec2 = a.reconcile(&mut b);
        prop_assert!(rec2.duplicate_shipments.is_empty(), "reconcile must be idempotent");
        // After returns, the fleet's outstanding stock equals one grant
        // per distinct granted order.
        let outstanding = (quota - a.stock_remaining()) + (quota - b.stock_remaining());
        let expected: u64 = granted_orders.iter().map(|n| qty_of(*n)).sum();
        prop_assert_eq!(
            outstanding, expected,
            "returned {} units across {} dups", rec1.units_returned, rec1.duplicate_shipments.len()
        );
    }
}
