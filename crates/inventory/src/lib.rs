//! # inventory — purchase orders, shipments, and stock policies
//! (§5.4, §7.1, §7.2, §7.4 of *Building on Quicksand*)
//!
//! Two harnesses over the core resource patterns:
//!
//! - [`orders`] — the purchase-order workflow: uniquified orders,
//!   per-replica dedup, effect ledgers that catch "overly enthusiastic"
//!   replicas double-scheduling shipments at reconciliation, and
//!   compensation that respects fungibility: fungible units silently
//!   return to the shelf, the one Gutenberg bible becomes an apology.
//! - [`stock`] — the over-provisioning / over-booking / sliding-policy
//!   sweep (E10), plus the §7.2 forklift: reality breaks promises that
//!   the bookkeeping kept perfectly.
//! - [`pnstock`] — replicated stock as a CRDT: a [`crdt::PNCounter`]
//!   tally whose committed movements replicate as deltas, bounded
//!   locally by the §5.3 escrow watermarks so no replica promises units
//!   it might not have.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod orders;
pub mod pnstock;
pub mod stock;

pub use orders::{OrderResponse, Reconciliation, Warehouse, WAREHOUSE_NAMES};
pub use pnstock::PnStock;
pub use stock::{run_stock, StockConfig, StockPolicy, StockReport};
