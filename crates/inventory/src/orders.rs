//! The purchase-order workflow of §5.4: "Sometimes, incoming work
//! stimulates other work. For example, processing a purchase order may
//! result in scheduling a shipment. Two replicas may get overly
//! enthusiastic about the incoming purchase order and each schedule a
//! shipment. By uniquely identifying the purchase order at its ingress
//! to the system, the irrational exuberance on the part of the replicas
//! can be identified as the knowledge sloshes through the network."
//!
//! A [`Warehouse`] is one replica of the fulfillment system. Orders are
//! deduplicated locally ([`DedupTable`]) and their side effects
//! (scheduled shipments) are recorded in an [`EffectLedger`]; when
//! warehouses reconcile, redundant shipments surface and are compensated
//! — returned to stock if the goods are fungible, apologized for if not
//! (§7.4, §7.5).

use quicksand_core::idempotence::{DedupTable, EffectLedger, RedundantEffect};
use quicksand_core::resources::{AllocOutcome, Fungibility, ProvisionedReplica};
use quicksand_core::uniquifier::Uniquifier;

/// Warehouse names (the effect ledger attributes effects by replica
/// name).
pub const WAREHOUSE_NAMES: [&str; 8] =
    ["wh-a", "wh-b", "wh-c", "wh-d", "wh-e", "wh-f", "wh-g", "wh-h"];

/// The customer-visible answer to a purchase order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OrderResponse {
    /// A shipment was scheduled.
    Scheduled {
        /// Units committed.
        qty: u64,
    },
    /// No stock available under this warehouse's policy.
    OutOfStock,
}

/// The outcome of reconciling two warehouses.
#[derive(Debug, Clone, Default)]
pub struct Reconciliation {
    /// Redundant shipments discovered (same order shipped twice).
    pub duplicate_shipments: Vec<RedundantEffect>,
    /// Units returned to stock (fungible goods).
    pub units_returned: u64,
    /// Apologies owed (unique goods promised twice, §7.4's Gutenberg
    /// bible).
    pub apologies: u64,
}

/// One replica of the fulfillment system, holding a provisioned share of
/// the stock.
#[derive(Debug)]
pub struct Warehouse {
    /// Replica index.
    pub id: u32,
    /// What kind of goods this warehouse ships.
    pub fungibility: Fungibility,
    stock: ProvisionedReplica,
    dedup: DedupTable<OrderResponse>,
    effects: EffectLedger,
    /// order uniquifier → allocation id, so a compensated shipment can
    /// actually be released back to the shelf.
    allocs: std::collections::HashMap<Uniquifier, Uniquifier>,
    /// A1 ablation: with dedup off, retries re-execute.
    dedup_enabled: bool,
}

impl Warehouse {
    /// A warehouse owning `quota` units of stock.
    pub fn new(id: u32, quota: u64, fungibility: Fungibility) -> Self {
        assert!((id as usize) < WAREHOUSE_NAMES.len(), "add more warehouse names");
        Warehouse {
            id,
            fungibility,
            stock: ProvisionedReplica::new(id, quota),
            dedup: DedupTable::new(1 << 16),
            effects: EffectLedger::new(),
            allocs: std::collections::HashMap::new(),
            dedup_enabled: true,
        }
    }

    /// Disable the dedup table (the A1 ablation knob).
    pub fn without_dedup(mut self) -> Self {
        self.dedup_enabled = false;
        self
    }

    /// This warehouse's replica name for effect attribution.
    pub fn name(&self) -> &'static str {
        WAREHOUSE_NAMES[self.id as usize]
    }

    /// Units still on the shelf here.
    pub fn stock_remaining(&self) -> u64 {
        self.stock.remaining()
    }

    /// Orders declined here.
    pub fn declined(&self) -> u64 {
        self.stock.declined_count()
    }

    /// The effect ledger (for audits).
    pub fn effects(&self) -> &EffectLedger {
        &self.effects
    }

    /// Process a purchase order: collapse retries, allocate stock,
    /// schedule the shipment, remember the effect.
    pub fn process_order(&mut self, order: Uniquifier, qty: u64) -> OrderResponse {
        if self.dedup_enabled {
            let stock = &mut self.stock;
            let effects = &mut self.effects;
            let allocs = &mut self.allocs;
            let name = WAREHOUSE_NAMES[self.id as usize];
            self.dedup
                .execute(order, || Self::fulfil(stock, effects, allocs, name, order, qty))
                .into_response()
        } else {
            let name = WAREHOUSE_NAMES[self.id as usize];
            Self::fulfil(&mut self.stock, &mut self.effects, &mut self.allocs, name, order, qty)
        }
    }

    fn fulfil(
        stock: &mut ProvisionedReplica,
        effects: &mut EffectLedger,
        allocs: &mut std::collections::HashMap<Uniquifier, Uniquifier>,
        name: &'static str,
        order: Uniquifier,
        qty: u64,
    ) -> OrderResponse {
        // Without the dedup table, a retried order re-enters here; the
        // allocator's own uniquifier check still collapses *local*
        // retries, so derive a fresh allocation id per attempt when
        // dedup is off — modelling a sloppier system that allocates per
        // request, not per order.
        let alloc_id = Uniquifier::derived_from_fields(&[
            b"alloc",
            &order.as_raw().to_le_bytes(),
            &stock.used().to_le_bytes(),
            &effects.len().to_le_bytes(),
        ]);
        match stock.try_allocate(alloc_id, qty) {
            AllocOutcome::Granted => {
                allocs.insert(order, alloc_id);
                effects.record(order, name, format!("scheduled shipment of {qty}"));
                OrderResponse::Scheduled { qty }
            }
            AllocOutcome::Duplicate => OrderResponse::Scheduled { qty },
            AllocOutcome::Declined { .. } => OrderResponse::OutOfStock,
        }
    }

    /// Reconcile with another warehouse: merge effect knowledge, detect
    /// redundant shipments, compensate per fungibility.
    pub fn reconcile(&mut self, other: &mut Warehouse) -> Reconciliation {
        let mut out = Reconciliation::default();
        let dups = self.effects.merge(other.effects());
        for d in dups {
            // Parse the shipped quantity back out of the effect record.
            let qty: u64 = d
                .redundant
                .what
                .split_whitespace()
                .rev()
                .find_map(|w| w.trim_end_matches(" [compensated]").parse().ok())
                .unwrap_or(1);
            match self.fungibility {
                Fungibility::Fungible => {
                    // The redundant units go back on the shelf of
                    // whichever warehouse shipped redundantly.
                    let holder =
                        if d.redundant.replica == self.name() { &mut *self } else { &mut *other };
                    if let Some(alloc_id) = holder.allocs.remove(&d.redundant.id) {
                        holder.stock.release(alloc_id);
                    }
                    out.units_returned += qty;
                }
                Fungibility::Unique => {
                    out.apologies += 1;
                }
            }
            out.duplicate_shipments.push(d);
        }
        // Share the merged (and compensation-marked) knowledge back, so
        // neither side re-reports these duplicates later.
        other.effects = self.effects.clone();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn order(n: u64) -> Uniquifier {
        Uniquifier::composite("purchase-order", n)
    }

    #[test]
    fn retries_are_collapsed_with_dedup_on() {
        let mut wh = Warehouse::new(0, 10, Fungibility::Fungible);
        let r1 = wh.process_order(order(1), 2);
        let r2 = wh.process_order(order(1), 2); // client retry
        assert_eq!(r1, OrderResponse::Scheduled { qty: 2 });
        assert_eq!(r2, r1);
        assert_eq!(wh.stock_remaining(), 8, "one shipment, not two");
    }

    #[test]
    fn retries_double_allocate_with_dedup_off() {
        let mut wh = Warehouse::new(0, 10, Fungibility::Fungible).without_dedup();
        wh.process_order(order(1), 2);
        wh.process_order(order(1), 2);
        assert_eq!(wh.stock_remaining(), 6, "the ablation must show the damage");
    }

    #[test]
    fn two_enthusiastic_replicas_detected_at_reconciliation() {
        let mut a = Warehouse::new(0, 10, Fungibility::Fungible);
        let mut b = Warehouse::new(1, 10, Fungibility::Fungible);
        // The same purchase order reaches both (retry crossed a replica
        // boundary).
        a.process_order(order(7), 3);
        b.process_order(order(7), 3);
        let rec = a.reconcile(&mut b);
        assert_eq!(rec.duplicate_shipments.len(), 1);
        assert_eq!(rec.units_returned, 3);
        assert_eq!(rec.apologies, 0);
        // Re-reconciling reports nothing new.
        let rec2 = a.reconcile(&mut b);
        assert!(rec2.duplicate_shipments.is_empty());
    }

    #[test]
    fn unique_goods_turn_duplicates_into_apologies() {
        let mut a = Warehouse::new(0, 1, Fungibility::Unique);
        let mut b = Warehouse::new(1, 1, Fungibility::Unique);
        a.process_order(order(9), 1);
        b.process_order(order(9), 1);
        let rec = a.reconcile(&mut b);
        assert_eq!(rec.apologies, 1, "the Gutenberg bible was promised twice");
        assert_eq!(rec.units_returned, 0);
    }

    #[test]
    fn out_of_stock_declines() {
        let mut wh = Warehouse::new(0, 2, Fungibility::Fungible);
        assert_eq!(wh.process_order(order(1), 2), OrderResponse::Scheduled { qty: 2 });
        assert_eq!(wh.process_order(order(2), 1), OrderResponse::OutOfStock);
        assert_eq!(wh.declined(), 1);
    }
}
