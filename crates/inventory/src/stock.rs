//! The stock-allocation policy harness (E10): over-provisioning versus
//! over-booking versus the dynamic sliding position, under skewed demand
//! and real-world faults.
//!
//! "It is possible to be conservative and ensure you NEVER have to
//! apologize to your customers. This will, however, sometimes result in
//! you deciding to decline business you would rather have." (§7.1)
//! And even then: "In preparing the book for shipment, it is run over by
//! the forklift in the warehouse. So, over-provisioning notwithstanding,
//! you need to apologize!" (§7.2)

use quicksand_core::resources::{
    rebalance, settle, AllocOutcome, OverbookedReplica, ProvisionedReplica,
};
use quicksand_core::uniquifier::Uniquifier;
use rand::Rng;
use sim::SimRng;

/// How stock is split across disconnected sales replicas (§7.1).
#[derive(Debug, Clone, PartialEq)]
pub enum StockPolicy {
    /// Each replica owns a fixed share; it can never oversell, but
    /// strands headroom where demand isn't.
    OverProvision,
    /// Replicas sell against their best knowledge of total sales, up to
    /// `capacity × factor` (1.0 = only accidentally oversell; 1.15 = the
    /// airline posture).
    OverBook {
        /// Booking factor (≥ 1.0).
        factor: f64,
    },
    /// Over-provisioned, but while connected the unused quota slides
    /// toward the replicas that have been declining demand.
    Sliding,
}

/// Configuration for one policy run.
#[derive(Debug, Clone)]
pub struct StockConfig {
    /// The policy under test.
    pub policy: StockPolicy,
    /// Sales replicas.
    pub n_replicas: usize,
    /// Total real units in the warehouse.
    pub total_stock: u64,
    /// Rounds of disconnected selling.
    pub rounds: u64,
    /// Orders arriving per round (system-wide), one unit each.
    pub orders_per_round: u64,
    /// Zipf exponent of demand across replicas (0 = uniform; higher =
    /// one storefront sees most of the traffic).
    pub demand_skew: f64,
    /// Probability an allocated unit is destroyed before shipping —
    /// §7.2's forklift.
    pub forklift_prob: f64,
    /// Replicas communicate (sync knowledge / rebalance quota) every
    /// this many rounds.
    pub sync_every: u64,
}

impl Default for StockConfig {
    fn default() -> Self {
        StockConfig {
            policy: StockPolicy::OverProvision,
            n_replicas: 4,
            total_stock: 1000,
            rounds: 100,
            orders_per_round: 12,
            demand_skew: 1.0,
            forklift_prob: 0.0,
            sync_every: 10,
        }
    }
}

/// What a policy run measured.
#[derive(Debug, Clone, Default)]
pub struct StockReport {
    /// Orders that arrived.
    pub orders: u64,
    /// Orders accepted (promised to a customer).
    pub accepted: u64,
    /// Orders declined.
    pub declined: u64,
    /// Promises that exceeded real stock at settlement — each one an
    /// apology (over-booking only).
    pub oversold: u64,
    /// Promises broken by the forklift despite a valid allocation.
    pub forklift_apologies: u64,
}

impl StockReport {
    /// Fraction of demand served.
    pub fn fill_rate(&self) -> f64 {
        if self.orders == 0 {
            0.0
        } else {
            self.accepted as f64 / self.orders as f64
        }
    }

    /// Apologies per accepted order.
    pub fn apology_rate(&self) -> f64 {
        if self.accepted == 0 {
            0.0
        } else {
            (self.oversold + self.forklift_apologies) as f64 / self.accepted as f64
        }
    }
}

enum Fleet {
    Provisioned(Vec<ProvisionedReplica>),
    Overbooked(Vec<OverbookedReplica>),
}

/// Run one policy under one demand pattern.
pub fn run_stock(cfg: &StockConfig, seed: u64) -> StockReport {
    let mut rng = SimRng::new(seed);
    let mut report = StockReport::default();
    let share = cfg.total_stock / cfg.n_replicas as u64;
    let mut fleet = match &cfg.policy {
        StockPolicy::OverProvision | StockPolicy::Sliding => Fleet::Provisioned(
            (0..cfg.n_replicas as u32).map(|i| ProvisionedReplica::new(i, share)).collect(),
        ),
        StockPolicy::OverBook { factor } => Fleet::Overbooked(
            (0..cfg.n_replicas as u32)
                .map(|i| OverbookedReplica::new(i, cfg.total_stock, *factor))
                .collect(),
        ),
    };

    let mut order_seq = 0u64;
    for round in 0..cfg.rounds {
        for _ in 0..cfg.orders_per_round {
            let replica = rng.zipf(cfg.n_replicas, cfg.demand_skew);
            let id = Uniquifier::composite("stock-order", order_seq);
            order_seq += 1;
            report.orders += 1;
            let outcome = match &mut fleet {
                Fleet::Provisioned(rs) => rs[replica].try_allocate(id, 1),
                Fleet::Overbooked(rs) => rs[replica].try_allocate(id, 1),
            };
            match outcome {
                AllocOutcome::Granted => {
                    report.accepted += 1;
                    if cfg.forklift_prob > 0.0 && rng.gen_bool(cfg.forklift_prob) {
                        // The unit is destroyed: the promise is broken no
                        // matter how conservative the bookkeeping was.
                        report.forklift_apologies += 1;
                    }
                }
                AllocOutcome::Declined { .. } => report.declined += 1,
                AllocOutcome::Duplicate => {}
            }
        }
        if (round + 1) % cfg.sync_every == 0 {
            match &mut fleet {
                Fleet::Provisioned(rs) => {
                    if cfg.policy == StockPolicy::Sliding {
                        rebalance(rs);
                    }
                }
                Fleet::Overbooked(rs) => {
                    // All-pairs knowledge sync.
                    for i in 0..rs.len() {
                        for j in (i + 1)..rs.len() {
                            let (a, b) = rs.split_at_mut(j);
                            a[i].sync(&mut b[0]);
                        }
                    }
                }
            }
        }
    }

    if let Fleet::Overbooked(rs) = &fleet {
        report.oversold = settle(rs).oversold;
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scarce(policy: StockPolicy) -> StockConfig {
        StockConfig {
            policy,
            total_stock: 400,
            rounds: 100,
            orders_per_round: 8, // demand 800 vs stock 400: scarcity
            demand_skew: 1.4,
            sync_every: 25,
            ..StockConfig::default()
        }
    }

    #[test]
    fn over_provisioning_never_oversells_but_declines_business() {
        let r = run_stock(&scarce(StockPolicy::OverProvision), 5);
        assert_eq!(r.oversold, 0);
        assert!(r.declined > 0);
        // Skewed demand strands stock at cold replicas: we decline more
        // than the true shortfall (800 - 400 = 400).
        assert!(r.declined > 400, "{r:?}");
    }

    #[test]
    fn over_booking_accepts_more_and_apologizes() {
        let p = run_stock(&scarce(StockPolicy::OverProvision), 5);
        let b = run_stock(&scarce(StockPolicy::OverBook { factor: 1.0 }), 5);
        assert!(b.accepted >= p.accepted, "overbooking serves demand: {b:?} vs {p:?}");
        // With periodic sync the accidental oversell is bounded but can
        // be nonzero; with factor 1.15 it is deliberate.
        let b15 = run_stock(&scarce(StockPolicy::OverBook { factor: 1.15 }), 5);
        assert!(b15.oversold > 0, "deliberate overbooking must oversell: {b15:?}");
        assert!(b15.accepted > b.accepted);
    }

    #[test]
    fn sliding_beats_static_provisioning_under_skew() {
        let static_r = run_stock(&scarce(StockPolicy::OverProvision), 7);
        let sliding_r = run_stock(&scarce(StockPolicy::Sliding), 7);
        assert!(
            sliding_r.accepted > static_r.accepted,
            "sliding {sliding_r:?} vs static {static_r:?}"
        );
        assert_eq!(sliding_r.oversold, 0, "sliding is still conservative");
    }

    #[test]
    fn the_forklift_defeats_conservatism() {
        let cfg = StockConfig { forklift_prob: 0.05, ..scarce(StockPolicy::OverProvision) };
        let r = run_stock(&cfg, 9);
        assert_eq!(r.oversold, 0);
        assert!(r.forklift_apologies > 0, "reality apologizes anyway: {r:?}");
    }

    #[test]
    fn abundant_stock_fills_everything_under_any_policy() {
        for policy in [
            StockPolicy::OverProvision,
            StockPolicy::OverBook { factor: 1.0 },
            StockPolicy::Sliding,
        ] {
            let cfg = StockConfig {
                policy,
                total_stock: 10_000,
                rounds: 50,
                orders_per_round: 10,
                demand_skew: 0.0,
                ..StockConfig::default()
            };
            let r = run_stock(&cfg, 11);
            assert_eq!(r.fill_rate(), 1.0, "{r:?}");
            assert_eq!(r.oversold, 0);
        }
    }

    #[test]
    fn deterministic() {
        let a = run_stock(&scarce(StockPolicy::OverBook { factor: 1.1 }), 13);
        let b = run_stock(&scarce(StockPolicy::OverBook { factor: 1.1 }), 13);
        assert_eq!(a.accepted, b.accepted);
        assert_eq!(a.oversold, b.oversold);
    }
}
