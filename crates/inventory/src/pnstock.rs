//! Replicated stock as a CRDT, bounded by escrow (§5.3 ∘ §8).
//!
//! The paper's two disciplines for commutative counting meet here:
//!
//! - The [`EscrowCounter`] (§5.3 sidebar) is the **crisp, local** half:
//!   it admits a pending stock movement only if the worst-case
//!   watermark stays inside the business rule's `[min, max]` bounds, so
//!   a replica can never locally promise units it might not have.
//! - The [`PNCounter`] (§8's ACID 2.0 "associative, commutative,
//!   idempotent" style) is the **replicated** half: each *committed*
//!   net movement becomes a counter delta that other replicas absorb in
//!   any order, any number of times, with the same result.
//!
//! Only committed effects replicate — an abort applies the inverse
//! operation locally (operation logging) and never leaves the replica,
//! exactly the separation §5.3 draws between pending and committed
//! work. Each replica's escrow bounds *its own share* of stock; the
//! merged counter reads the fleet-wide tally of every share every
//! replica has heard about.

use crdt::{Crdt, PNCounter};
use quicksand_core::escrow::{EscrowCounter, EscrowError, TxnId};

/// One replica's stock position: a locally-escrowed share plus the
/// replicated fleet-wide tally.
#[derive(Debug)]
pub struct PnStock {
    /// This replica's id in the counter's namespace.
    replica: u64,
    /// The replicated tally: every replica's committed net movements.
    counter: PNCounter,
    /// The local admission controller over this replica's share.
    escrow: EscrowCounter,
}

impl PnStock {
    /// A replica holding `share` units of its own, whose local share may
    /// move within `[min, max]`. The share is seeded into the replicated
    /// tally as this replica's contribution (so the fleet-wide value is
    /// the sum of every replica's share).
    ///
    /// # Panics
    /// Panics if `share` is outside `[min, max]` or `min > max` (the
    /// escrow constructor's contract).
    pub fn new(replica: u64, share: i64, min: i64, max: i64) -> Self {
        let mut counter = PNCounter::new();
        counter.add(replica, share);
        PnStock { replica, counter, escrow: EscrowCounter::new(share, min, max) }
    }

    /// Open a local transaction.
    pub fn begin(&mut self) -> TxnId {
        self.escrow.begin()
    }

    /// Reserve a stock movement of `delta` under `txn`. Admitted iff the
    /// escrow's worst-case watermark stays within bounds; a refusal
    /// leaves no trace (retry after other transactions resolve).
    pub fn reserve(&mut self, txn: TxnId, delta: i64) -> Result<(), EscrowError> {
        self.escrow.reserve(txn, delta)
    }

    /// Commit `txn`. The transaction's net movement becomes permanent
    /// locally *and* is minted as a counter delta for the rest of the
    /// fleet to [`absorb`](Self::absorb) — idempotently, so shipping it
    /// twice is harmless.
    pub fn commit(&mut self, txn: TxnId) -> Result<PNCounter, EscrowError> {
        let net = self.escrow.commit(txn)?;
        Ok(self.counter.add(self.replica, net))
    }

    /// Abort `txn`: the escrow applies the inverse operations and the
    /// reserved headroom returns. Nothing replicates — pending work
    /// never left this replica.
    pub fn abort(&mut self, txn: TxnId) -> Result<(), EscrowError> {
        self.escrow.abort(txn)
    }

    /// Absorb a counter delta (or a peer's whole counter — same type,
    /// same join) into the replicated tally.
    pub fn absorb(&mut self, delta: &PNCounter) {
        self.counter.merge(delta);
    }

    /// The replicated tally this replica can ship to a peer wholesale
    /// (full-state fallback).
    pub fn tally(&self) -> &PNCounter {
        &self.counter
    }

    /// The fleet-wide stock as far as this replica knows.
    pub fn fleet_value(&self) -> i64 {
        self.counter.value()
    }

    /// This replica's committed local share.
    pub fn local_committed(&self) -> i64 {
        self.escrow.committed()
    }

    /// The escrow's pessimistic low watermark (all pending decrements
    /// commit, all pending increments abort).
    pub fn low_watermark(&self) -> i64 {
        self.escrow.low_watermark()
    }

    /// The escrow's optimistic high watermark.
    pub fn high_watermark(&self) -> i64 {
        self.escrow.high_watermark()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn committed_movements_replicate_and_converge() {
        let mut a = PnStock::new(1, 100, 0, 500);
        let mut b = PnStock::new(2, 100, 0, 500);
        // Seed exchange: each learns the other's share.
        a.absorb(b.tally());
        b.absorb(a.tally());
        assert_eq!(a.fleet_value(), 200);

        let ta = a.begin();
        a.reserve(ta, -30).unwrap();
        let da = a.commit(ta).unwrap();
        let tb = b.begin();
        b.reserve(tb, 10).unwrap();
        let db = b.commit(tb).unwrap();

        // Deltas cross in both orders; both replicas converge.
        b.absorb(&da);
        a.absorb(&db);
        assert_eq!(a.fleet_value(), 180);
        assert_eq!(b.fleet_value(), 180);
        assert_eq!(a.local_committed(), 70);
        assert_eq!(b.local_committed(), 110);
    }

    #[test]
    fn absorbing_a_delta_twice_is_idempotent() {
        let mut a = PnStock::new(1, 50, 0, 100);
        let mut b = PnStock::new(2, 50, 0, 100);
        let t = a.begin();
        a.reserve(t, -20).unwrap();
        let d = a.commit(t).unwrap();
        b.absorb(&d);
        b.absorb(&d); // a re-delivered delta changes nothing
        b.absorb(a.tally()); // nor does the full state it came from
        assert_eq!(b.fleet_value(), 50 - 20 + 50);
    }

    #[test]
    fn escrow_watermarks_bound_the_counter_locally() {
        let mut s = PnStock::new(1, 10, 0, 100);
        let t1 = s.begin();
        let t2 = s.begin();
        s.reserve(t1, -8).unwrap();
        // t2's decrement MIGHT overdraw the share given t1's pending
        // work: refused crisply, before anything replicates.
        let err = s.reserve(t2, -8).unwrap_err();
        assert!(matches!(err, EscrowError::WouldExceedBounds { bound: 0, .. }));
        assert_eq!(s.low_watermark(), 2);
        // The counter still reads the un-committed share: pending work
        // is local bookkeeping, not replicated state.
        assert_eq!(s.fleet_value(), 10);
        s.commit(t1).unwrap();
        s.abort(t2).unwrap();
        assert_eq!(s.fleet_value(), 2);
    }

    #[test]
    fn aborts_never_replicate() {
        let mut a = PnStock::new(1, 40, 0, 100);
        let b = PnStock::new(2, 40, 0, 100);
        let t = a.begin();
        a.reserve(t, -15).unwrap();
        a.abort(t).unwrap();
        // Nothing to ship: a's tally is exactly its seeded share, so a
        // peer that merges it sees no movement.
        let mut view = b.tally().clone();
        view.merge(a.tally());
        assert_eq!(view.value(), 80);
        assert_eq!(a.local_committed(), 40);
        assert_eq!(a.high_watermark(), 40);
    }
}
