//! The cart *service* on the wall-clock runtime: the same
//! [`dynamo::StoreNode`] + [`cart::CrdtCart`] actors the simulator runs,
//! stood up as real worker threads behind the `serve`/`loadgen` bins and
//! the E19 cross-check.
//!
//! Nothing here is a new implementation of anything — that is the point.
//! The ring construction mirrors [`dynamo::build_crdt_cluster`] verbatim
//! (stores occupy node ids `0..n`, squashing siblings server-side), and
//! the closed-loop [`LoadClient`] speaks the same `ClientGet`/`ClientPut`
//! protocol the sim shoppers use.

use std::collections::BTreeMap;

use cart::{CartAction, CrdtCart};
use dynamo::{standby_view, DynamoConfig, DynamoMsg, StoreNode, VectorClock, Versioned};
use quicksand_runtime::RuntimeBuilder;
use rand::Rng;
use sim::{Actor, Context, NodeId, SimDuration, SimTime};

use crdt::Crdt;

/// The message type the whole service speaks.
pub type ServiceMsg = DynamoMsg<CrdtCart>;

/// Add `n_stores` sibling-squashing CRDT store nodes to a runtime
/// builder — the wall-clock twin of [`dynamo::build_crdt_cluster`].
/// Stores take node ids `0..n_stores`; clients must be added afterwards.
pub fn add_crdt_stores(
    b: &mut RuntimeBuilder<ServiceMsg>,
    n_stores: u32,
    cfg: &DynamoConfig,
) -> Vec<NodeId> {
    add_crdt_stores_with_spares(b, n_stores, 0, cfg)
}

/// Like [`add_crdt_stores`], plus `spares` standby stores (ids
/// `n_stores..n_stores+spares`) provisioned outside the ring, waiting
/// for a `CtlJoin` — the wall-clock twin of
/// [`dynamo::build_crdt_cluster_with_spares`].
pub fn add_crdt_stores_with_spares(
    b: &mut RuntimeBuilder<ServiceMsg>,
    n_stores: u32,
    spares: u32,
    cfg: &DynamoConfig,
) -> Vec<NodeId> {
    let view = standby_view(n_stores, spares);
    let stores: Vec<NodeId> = (0..(n_stores + spares) as usize).map(NodeId).collect();
    for s in 0..n_stores + spares {
        let node = StoreNode::<CrdtCart>::new(s, view.clone(), stores.clone(), cfg.clone())
            .with_sibling_squash();
        let id = b.add_node(node);
        debug_assert_eq!(id, stores[s as usize]);
    }
    stores
}

const TAG_SHIFT: u64 = 48;
const TAG_NEXT: u64 = 1;
const TAG_STUCK: u64 = 2;

fn tag(kind: u64, payload: u64) -> u64 {
    (kind << TAG_SHIFT) | payload
}

#[derive(Debug)]
enum Phase {
    Idle,
    Getting { req: u64 },
    Putting { req: u64 },
}

/// The operation currently in flight (kept across retries).
#[derive(Debug)]
struct CurrentOp {
    key: u64,
    /// `Some(first_item)` for an add-edit op (`items_per_put`
    /// consecutive ids starting here), `None` for a read-only op.
    item: Option<u64>,
    /// Whether the add was already applied into the session cache —
    /// retries re-PUT the session state instead of re-applying (which
    /// would inflate the item's PN-counter quantity).
    applied: bool,
    issued_at: SimTime,
}

/// A closed-loop load-generating client: GET the cart at a random key,
/// optionally apply one unique-item add, PUT it back, repeat. One op
/// completes before the next begins, so offered load self-regulates to
/// what the service sustains — throughput is the measurement, not a
/// knob.
///
/// Per-op latencies land in the shared metric histograms `load.get_us`
/// and `load.put_us`; acked adds are remembered for the loss audit
/// (`loadgen` fails the run if any acked add is missing from the
/// reconciled stores).
#[derive(Debug)]
pub struct LoadClient {
    /// Client id (namespaces items, request ids, and the CRDT replica).
    pub id: u32,
    stores: Vec<NodeId>,
    ops_total: u64,
    keys: u64,
    put_pct: u32,
    think: SimDuration,
    stuck_timeout: SimDuration,
    /// Unique items added per PUT — the payload-size knob: carts (and
    /// wire frames, on TCP) grow proportionally.
    items_per_put: u64,

    phase: Phase,
    current: Option<CurrentOp>,
    req_counter: u64,
    next_item: u64,
    /// Per-key session cache (join of everything this client wrote or
    /// observed) — required for dot uniqueness, exactly as documented on
    /// [`cart::CrdtShopper`]'s session field.
    session: BTreeMap<u64, CrdtCart>,

    /// Completed operations.
    pub ops_done: u64,
    /// Adds acknowledged by the store, as `(key, item)`.
    pub acked_adds: Vec<(u64, u64)>,
    /// GETs that failed (op proceeded on the session view).
    pub get_failures: u64,
    /// PUTs that failed (op retried).
    pub put_failures: u64,
    /// Ops restarted by the stuck-request timeout.
    pub stuck_retries: u64,
}

impl LoadClient {
    /// A client that will run `ops_total` operations against `stores`,
    /// spreading edits over `keys` cart keys, with `put_pct`% of ops
    /// being add-edits (the rest read-only).
    pub fn new(id: u32, stores: Vec<NodeId>, ops_total: u64, keys: u64, put_pct: u32) -> Self {
        LoadClient {
            id,
            stores,
            ops_total,
            keys: keys.max(1),
            put_pct: put_pct.min(100),
            think: SimDuration::ZERO,
            stuck_timeout: SimDuration::from_millis(500),
            items_per_put: 1,
            phase: Phase::Idle,
            current: None,
            req_counter: 0,
            next_item: 0,
            session: BTreeMap::new(),
            ops_done: 0,
            acked_adds: Vec::new(),
            get_failures: 0,
            put_failures: 0,
            stuck_retries: 0,
        }
    }

    /// Think time between ops (default zero: fully closed loop).
    pub fn with_think(mut self, think: SimDuration) -> Self {
        self.think = think;
        self
    }

    /// Unique items added per PUT (default 1). Larger values fatten the
    /// cart payload per op — the payload axis of the BENCH_6 sweep.
    pub fn with_items_per_put(mut self, items: u64) -> Self {
        self.items_per_put = items.max(1);
        self
    }

    /// True when every planned op has completed.
    pub fn done(&self) -> bool {
        self.ops_done >= self.ops_total
    }

    fn replica(&self) -> u64 {
        0x4C_0000 + self.id as u64
    }

    fn new_req(&mut self) -> u64 {
        self.req_counter += 1;
        ((self.id as u64) << 32) | self.req_counter
    }

    fn begin_op(&mut self, ctx: &mut Context<'_, ServiceMsg>) {
        if self.current.is_none() {
            if self.done() {
                return;
            }
            let key = ctx.rng().gen_range(0..self.keys);
            let is_put = ctx.rng().gen_range(0..100) < self.put_pct as u64;
            let item = is_put.then(|| {
                let item = ((self.id as u64) << 32) | self.next_item;
                self.next_item += self.items_per_put;
                item
            });
            self.current = Some(CurrentOp { key, item, applied: false, issued_at: ctx.now() });
        }
        let op_key = self.current.as_ref().expect("op in progress").key;
        let req = self.new_req();
        self.phase = Phase::Getting { req };
        self.current.as_mut().expect("op in progress").issued_at = ctx.now();
        let me = ctx.me();
        let coord = self.stores[ctx.rng().gen_range(0..self.stores.len())];
        ctx.send(coord, DynamoMsg::ClientGet { req, key: op_key, resp_to: me });
        ctx.set_timer(self.stuck_timeout, tag(TAG_STUCK, req));
    }

    fn put_back(
        &mut self,
        ctx: &mut Context<'_, ServiceMsg>,
        mut cart: CrdtCart,
        context: VectorClock,
    ) {
        let (key, item, already_applied) = {
            let op = self.current.as_ref().expect("op in progress");
            (op.key, op.item.expect("put_back only runs for add ops"), op.applied)
        };
        // Fold in the session cache first (dot uniqueness), then apply
        // the add exactly once per op — a retry re-PUTs the session
        // state, which already carries the item.
        if let Some(s) = self.session.get(&key) {
            cart.merge(s);
        }
        if !already_applied {
            for k in 0..self.items_per_put {
                cart.apply(self.replica(), &CartAction::Add { item: item + k, qty: 1 });
            }
            self.current.as_mut().expect("op in progress").applied = true;
        }
        self.session.insert(key, cart.clone());
        let req = self.new_req();
        self.phase = Phase::Putting { req };
        self.current.as_mut().expect("op in progress").issued_at = ctx.now();
        let me = ctx.me();
        let coord = self.stores[ctx.rng().gen_range(0..self.stores.len())];
        ctx.send(coord, DynamoMsg::ClientPut { req, key, value: cart, context, resp_to: me });
        ctx.set_timer(self.stuck_timeout, tag(TAG_STUCK, req));
    }

    fn finish_op(&mut self, ctx: &mut Context<'_, ServiceMsg>) {
        let op = self.current.take().expect("op in progress");
        if let Some(item) = op.item {
            for k in 0..self.items_per_put {
                self.acked_adds.push((op.key, item + k));
            }
        }
        self.ops_done += 1;
        self.phase = Phase::Idle;
        ctx.metrics().inc("load.ops_done");
        if self.done() {
            return;
        }
        if self.think == SimDuration::ZERO {
            self.begin_op(ctx);
        } else {
            let jitter = ctx.rng().gen_range(0..=self.think.as_micros());
            ctx.set_timer(self.think + SimDuration::from_micros(jitter), tag(TAG_NEXT, 0));
        }
    }

    fn retry_op(&mut self, ctx: &mut Context<'_, ServiceMsg>) {
        self.phase = Phase::Idle;
        ctx.metrics().inc("load.retries");
        let backoff = SimDuration::from_micros(ctx.rng().gen_range(1_000..20_000));
        ctx.set_timer(backoff, tag(TAG_NEXT, 0));
    }
}

impl Actor<ServiceMsg> for LoadClient {
    fn on_start(&mut self, ctx: &mut Context<'_, ServiceMsg>) {
        // Small jitter so a fleet of clients does not start in lockstep.
        let jitter = ctx.rng().gen_range(0..5_000);
        ctx.set_timer(SimDuration::from_micros(jitter), tag(TAG_NEXT, 0));
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, ServiceMsg>, t: u64) {
        match t >> TAG_SHIFT {
            TAG_NEXT => {
                if matches!(self.phase, Phase::Idle) {
                    self.begin_op(ctx);
                }
            }
            TAG_STUCK => {
                let req = t & ((1 << TAG_SHIFT) - 1);
                let stuck = match self.phase {
                    Phase::Getting { req: r } | Phase::Putting { req: r } => r == req,
                    Phase::Idle => false,
                };
                if stuck {
                    self.stuck_retries += 1;
                    ctx.metrics().inc("load.stuck_retries");
                    self.retry_op(ctx);
                }
            }
            _ => {}
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_, ServiceMsg>, _from: NodeId, msg: ServiceMsg) {
        match msg {
            DynamoMsg::GetOk { req, versions, .. } => {
                if !matches!(self.phase, Phase::Getting { req: r } if r == req) {
                    return;
                }
                let issued = self.current.as_ref().expect("op in progress").issued_at;
                let lat = (ctx.now() - issued).as_micros() as f64;
                ctx.metrics().record("load.get_us", lat);
                let is_put = self.current.as_ref().expect("op in progress").item.is_some();
                if !is_put {
                    self.finish_op(ctx);
                    return;
                }
                let mut cart = CrdtCart::new();
                let mut context = VectorClock::new();
                for v in &versions {
                    cart.merge(&v.value);
                    context = context.merged(&v.effective_clock());
                }
                self.put_back(ctx, cart, context);
            }
            DynamoMsg::GetFailed { req } => {
                if !matches!(self.phase, Phase::Getting { req: r } if r == req) {
                    return;
                }
                self.get_failures += 1;
                ctx.metrics().inc("load.get_failures");
                if self.current.as_ref().expect("op in progress").item.is_some() {
                    // Availability over consistency: proceed on the
                    // session view (the lattice join absorbs the races).
                    self.put_back(ctx, CrdtCart::new(), VectorClock::new());
                } else {
                    self.finish_op(ctx);
                }
            }
            DynamoMsg::PutOk { req } => {
                if !matches!(self.phase, Phase::Putting { req: r } if r == req) {
                    return;
                }
                let issued = self.current.as_ref().expect("op in progress").issued_at;
                let lat = (ctx.now() - issued).as_micros() as f64;
                ctx.metrics().record("load.put_us", lat);
                self.finish_op(ctx);
            }
            DynamoMsg::PutFailed { req } => {
                if !matches!(self.phase, Phase::Putting { req: r } if r == req) {
                    return;
                }
                self.put_failures += 1;
                ctx.metrics().inc("load.put_failures");
                self.retry_op(ctx);
            }
            _ => {}
        }
    }
}

/// The reconciled view of one key: the join of every store's sibling
/// set, materialized. The loss audit runs against this.
pub fn reconciled_cart(stores: &[&StoreNode<CrdtCart>], key: u64) -> BTreeMap<u64, u32> {
    let mut joined = CrdtCart::new();
    for s in stores {
        for v in s.versions(key) {
            joined.merge(&v.value);
        }
    }
    joined.materialize()
}

/// Every store's versions for `key`, for convergence checks.
pub fn versions_of<'a>(
    stores: &[&'a StoreNode<CrdtCart>],
    key: u64,
) -> Vec<&'a [Versioned<CrdtCart>]> {
    stores.iter().map(|s| s.versions(key)).collect()
}
