//! E21: the wall-clock chaos grid. Seeded [`FaultPlan`]s — the same
//! clause types the deterministic sweeps schedule — run against *live*
//! services on real worker threads, and every cell is audited for the
//! paper's bottom line: an acked operation is a promise, and no fault
//! the plan injects may break it.
//!
//! Three services, all built from unmodified sim actors:
//!
//! - **cart**: an N-store dynamo ring of CRDT carts over real TCP
//!   sockets with closed-loop [`LoadClient`]s. Audit: every acked add is
//!   in the reconciled join of the stores; the guess ledger is settled.
//! - **membership**: the same cart service with a standby store, under
//!   plans that mix `add_node`/`remove_node` clauses (applied through
//!   the chaos controller's membership hook as live `CtlJoin`/`CtlLeave`)
//!   with crashes and partitions. Audit: the spare ends in the ring, the
//!   leaver ends departed, every rebalance transfer acked, and no acked
//!   add was lost across the resize.
//! - **evlog**: a file-backed [`EventLogNode`] broker (OnFsync acks)
//!   with a windowed [`Producer`], on the loopback transport. Audit:
//!   every acked append survives crash-torn recovery in the leader's
//!   log; orphaned guesses (promises the crash voided) are apologized,
//!   not left open.
//!
//! Each row pins its seed with [`FaultPlan::covering_seed`], so every
//! cell exercises a crash, a partition (two-sided or one-way), *and* a
//! degraded link, while remaining a plain `generate` product anyone can
//! replay from the seed.
//!
//! ```text
//! cargo run -p quicksand-bench --release --bin chaos_rt -- --out E21.json
//! cargo run -p quicksand-bench --release --bin chaos_rt -- --quick   # CI smoke
//! ```
//!
//! Exit is nonzero if any cell loses an acked op, leaves a guess open
//! after quiescence, mis-accounts the plan (clause edges applied !=
//! timeline length, restarts != crash clauses), or fails the incident
//! audit: every crash clause must have filed exactly one chaos-crash
//! incident whose causal slice contains the crash edge, and the cell's
//! incident ring must survive a durable round trip through an
//! [`IncidentStream`] under `--dir`.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use cart::CrdtCart;
use dynamo::{DynamoConfig, StoreNode};
use quicksand::eventlog::{AckPolicy, BrokerConfig, DirKind, EventLogNode, LogConfig, Producer};
use quicksand_bench::incidents::IncidentStream;
use quicksand_bench::service::{
    add_crdt_stores, add_crdt_stores_with_spares, LoadClient, ServiceMsg,
};
use quicksand_runtime::{Runtime, RuntimeBuilder};
use sim::{
    EngineCore, FaultPlan, FaultSpec, FlightKind, Incident, IncidentKind, NodeId, SimDuration,
    SimTime,
};

fn arg_value(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let pos = args.iter().position(|a| a == flag)?;
    args.remove(pos);
    if pos >= args.len() {
        eprintln!("{flag} needs a value");
        std::process::exit(2);
    }
    Some(args.remove(pos))
}

/// One audited cell of the grid.
struct Cell {
    service: &'static str,
    base_seed: u64,
    seed: u64,
    clauses: usize,
    crash_clauses: usize,
    acked: u64,
    lost: u64,
    open_guesses: u64,
    orphaned_guesses: u64,
    restarts: u64,
    clause_edges: u64,
    /// Chaos-crash incidents the runtime's black box filed.
    incidents: u64,
    /// Every incident's causal slice contains its own crash edge.
    incident_slices_ok: bool,
    /// Records in the cell's durable incident stream after reopen.
    incidents_durable: u64,
    elapsed_secs: f64,
}

impl Cell {
    /// The invariants every cell must satisfy, as one pass/fail.
    fn ok(&self) -> bool {
        self.lost == 0
            && self.open_guesses == 0
            && self.restarts == self.crash_clauses as u64
            && self.clause_edges > 0
            && self.incidents == self.crash_clauses as u64
            && self.incident_slices_ok
            && self.incidents_durable >= self.incidents
    }
}

/// Audit the black box and make it durable: count the chaos-crash
/// incidents filed, verify each slice contains its own crash edge,
/// persist the whole ring to an [`IncidentStream`] under `dir`, and
/// reopen from disk to prove the records outlive the writer. Returns
/// `(chaos_crash_incidents, slices_ok, durable_records)`.
fn audit_incidents(core: &EngineCore, dir: &Path) -> (u64, bool, u64) {
    let crashes: Vec<&Incident> =
        core.incidents.iter().filter(|i| i.kind == IncidentKind::ChaosCrash).collect();
    let slices_ok = crashes.iter().all(|inc| {
        inc.explanation
            .slice
            .events
            .iter()
            .any(|e| e.id == inc.target && e.kind == FlightKind::Crash)
    });
    let stream_dir = dir.join("incidents");
    let mut s = IncidentStream::open(&stream_dir);
    for inc in core.incidents.iter() {
        s.append(inc);
    }
    drop(s);
    let durable = IncidentStream::open(&stream_dir).replay().len() as u64;
    (crashes.len() as u64, slices_ok, durable)
}

/// Wait for the attached plan to finish, then let anti-entropy settle.
fn drain_chaos<M: Send + 'static>(rt: &Runtime<M>, what: &str, settle: Duration) {
    let chaos = rt.chaos().expect("chaos attached");
    if !chaos.wait_finished(Duration::from_secs(120)) {
        eprintln!("{what}: fault plan still running after 120s");
        std::process::exit(1);
    }
    std::thread::sleep(settle);
}

// ----------------------------------------------------------------- cart

const CART_STORES: u32 = 4;
const CART_CLIENTS: u32 = 3;
const CART_KEYS: u64 = 64;

fn cart_spec(window_ms: u64, clauses: usize) -> FaultSpec {
    let all: Vec<NodeId> = (0..(CART_STORES + CART_CLIENTS) as usize).map(NodeId).collect();
    let stores: Vec<NodeId> = (0..CART_STORES as usize).map(NodeId).collect();
    FaultSpec::new(all)
        .crashable(stores)
        .window(SimTime::from_millis(150), SimTime::from_millis(window_ms))
        .faults(clauses, clauses)
        // covering_seed needs a clause of every enabled kind; with only
        // 3 clauses that leaves room for crash + partition + degrade.
        .oneway(clauses >= 4)
}

fn cart_cell(base_seed: u64, clauses: usize, ops_per_client: u64, dir: &Path) -> Cell {
    let spec = cart_spec(2200, clauses);
    let seed = FaultPlan::covering_seed(base_seed, &spec);
    let plan = FaultPlan::generate(seed, &spec);
    eprintln!("cart cell (seed {seed}, {clauses} clauses):\n{plan}");
    let cell_dir = dir.join(format!("cart-{seed}"));
    let _ = std::fs::remove_dir_all(&cell_dir);

    let mut b = RuntimeBuilder::new().chaos(plan.clone(), seed);
    let store_ids = add_crdt_stores(&mut b, CART_STORES, &DynamoConfig::default());
    let clients: Vec<NodeId> = (0..CART_CLIENTS)
        .map(|c| b.add_node(LoadClient::new(c, store_ids.clone(), ops_per_client, CART_KEYS, 60)))
        .collect();
    let started = Instant::now();
    let rt = b.launch_tcp().expect("tcp launch");
    let deadline = started + Duration::from_secs(120);
    while !clients.iter().all(|&c| rt.inspect::<LoadClient, bool, _>(c, |cl| cl.done())) {
        if Instant::now() > deadline {
            eprintln!("cart cell seed {seed}: clients stalled");
            std::process::exit(1);
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    drain_chaos(&rt, "cart", Duration::from_millis(900));
    let elapsed = started.elapsed().as_secs_f64();
    let report = rt.shutdown();

    let mut acked: Vec<(u64, u64)> = Vec::new();
    for &c in &clients {
        acked.extend(report.actor::<LoadClient>(c).acked_adds.iter().copied());
    }
    let stores: Vec<&StoreNode<CrdtCart>> =
        store_ids.iter().map(|&s| report.actor::<StoreNode<CrdtCart>>(s)).collect();
    let lost = acked
        .iter()
        .filter(|(key, item)| {
            !quicksand_bench::service::reconciled_cart(&stores, *key).contains_key(item)
        })
        .count() as u64;

    let acc = report.core.ledger.accounting();
    let (incidents, incident_slices_ok, incidents_durable) =
        audit_incidents(&report.core, &cell_dir);
    Cell {
        service: "cart/tcp",
        base_seed,
        seed,
        clauses,
        crash_clauses: plan.count_kind("crash"),
        acked: acked.len() as u64,
        lost,
        open_guesses: acc.open(),
        orphaned_guesses: acc.orphaned(),
        restarts: report.core.metrics.counter("runtime.restarts"),
        clause_edges: report.core.metrics.counter("runtime.chaos_clauses"),
        incidents,
        incident_slices_ok,
        incidents_durable,
        elapsed_secs: elapsed,
    }
}

// ----------------------------------------------------------- membership

const MEM_STORES: u32 = 4;
const MEM_SPARES: u32 = 1;
const MEM_CLIENTS: u32 = 3;

/// The membership grid's spec: the founding members may crash and
/// partition, the spare may be directed to join, and one member may be
/// directed to leave. The leaver and the spare are *not* crashable — a
/// control message injected into a crashed inbox is dropped, and this
/// cell audits the rebalance protocol, not message loss on the control
/// path (the sim sweeps cover that interleaving).
fn membership_spec(window_ms: u64, clauses: usize) -> FaultSpec {
    let all: Vec<NodeId> =
        (0..(MEM_STORES + MEM_SPARES + MEM_CLIENTS) as usize).map(NodeId).collect();
    let crashable: Vec<NodeId> = (0..MEM_STORES as usize - 1).map(NodeId).collect();
    FaultSpec::new(all)
        .crashable(crashable)
        .joinable(vec![NodeId(MEM_STORES as usize)])
        .leavable(vec![NodeId(MEM_STORES as usize - 1)])
        .window(SimTime::from_millis(150), SimTime::from_millis(window_ms))
        .faults(clauses, clauses)
        // covering_seed wants one clause of every enabled kind; crash +
        // partition + add_node + remove_node fit in 4 clauses. One-way
        // splits and degrades stay with the other services' cells.
        .oneway(false)
        .degrades(false)
}

fn membership_cell(base_seed: u64, clauses: usize, ops_per_client: u64, dir: &Path) -> Cell {
    let spec = membership_spec(2200, clauses);
    let seed = FaultPlan::covering_seed(base_seed, &spec);
    let plan = FaultPlan::generate(seed, &spec);
    eprintln!("membership cell (seed {seed}, {clauses} clauses):\n{plan}");
    let cell_dir = dir.join(format!("membership-{seed}"));
    let _ = std::fs::remove_dir_all(&cell_dir);

    let mut b =
        RuntimeBuilder::new().chaos(plan.clone(), seed).membership_ctl(|kind, _node| match kind {
            "add_node" => Some(ServiceMsg::CtlJoin),
            "remove_node" => Some(ServiceMsg::CtlLeave),
            _ => None,
        });
    let store_ids =
        add_crdt_stores_with_spares(&mut b, MEM_STORES, MEM_SPARES, &DynamoConfig::default());
    let members: Vec<NodeId> = store_ids[..MEM_STORES as usize].to_vec();
    let clients: Vec<NodeId> = (0..MEM_CLIENTS)
        .map(|c| b.add_node(LoadClient::new(c, members.clone(), ops_per_client, CART_KEYS, 60)))
        .collect();
    let started = Instant::now();
    let rt = b.launch_tcp().expect("tcp launch");
    let deadline = started + Duration::from_secs(120);
    while !clients.iter().all(|&c| rt.inspect::<LoadClient, bool, _>(c, |cl| cl.done())) {
        if Instant::now() > deadline {
            eprintln!("membership cell seed {seed}: clients stalled");
            std::process::exit(1);
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    drain_chaos(&rt, "membership", Duration::from_millis(900));
    // Rebalance settle: every moved key range must be acked before the
    // durability audit is fair — a transfer is a durable guess, and an
    // open one here is a cell failure, not a timing artifact.
    let tdeadline = Instant::now() + Duration::from_secs(60);
    loop {
        let drained = store_ids
            .iter()
            .all(|&s| rt.inspect::<StoreNode<CrdtCart>, bool, _>(s, |n| n.transfer_count() == 0));
        if drained {
            break;
        }
        if Instant::now() > tdeadline {
            eprintln!("membership cell seed {seed}: transfers never drained");
            std::process::exit(1);
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    std::thread::sleep(Duration::from_millis(300));
    let elapsed = started.elapsed().as_secs_f64();
    let report = rt.shutdown();

    // The plan covered both membership kinds, so the end state is
    // unconditional: the spare ends in the ring, the leaver ends
    // departed with every owed key streamed out.
    let joiner = report.actor::<StoreNode<CrdtCart>>(NodeId(MEM_STORES as usize));
    let leaver = report.actor::<StoreNode<CrdtCart>>(NodeId(MEM_STORES as usize - 1));
    if !joiner.gossiper.status().in_ring() || !leaver.gossiper.departed() {
        eprintln!(
            "membership cell seed {seed}: joiner {:?} (in ring: {}), leaver {:?} (departed: {})",
            joiner.gossiper.status(),
            joiner.gossiper.status().in_ring(),
            leaver.gossiper.status(),
            leaver.gossiper.departed(),
        );
        std::process::exit(1);
    }

    let mut acked: Vec<(u64, u64)> = Vec::new();
    for &c in &clients {
        acked.extend(report.actor::<LoadClient>(c).acked_adds.iter().copied());
    }
    let stores: Vec<&StoreNode<CrdtCart>> =
        store_ids.iter().map(|&s| report.actor::<StoreNode<CrdtCart>>(s)).collect();
    let lost = acked
        .iter()
        .filter(|(key, item)| {
            !quicksand_bench::service::reconciled_cart(&stores, *key).contains_key(item)
        })
        .count() as u64;

    let acc = report.core.ledger.accounting();
    let (incidents, incident_slices_ok, incidents_durable) =
        audit_incidents(&report.core, &cell_dir);
    Cell {
        service: "member/tcp",
        base_seed,
        seed,
        clauses,
        crash_clauses: plan.count_kind("crash"),
        acked: acked.len() as u64,
        lost,
        open_guesses: acc.open(),
        orphaned_guesses: acc.orphaned(),
        restarts: report.core.metrics.counter("runtime.restarts"),
        clause_edges: report.core.metrics.counter("runtime.chaos_clauses"),
        incidents,
        incident_slices_ok,
        incidents_durable,
        elapsed_secs: elapsed,
    }
}

// ---------------------------------------------------------------- evlog

fn evlog_cell(base_seed: u64, clauses: usize, appends: u64, dir: &Path) -> Cell {
    // Two nodes: producer (0) holds the promise file in memory and must
    // never crash; the broker (1) takes every crash clause — each one
    // tears its unfsynced tail, which OnFsync acks must survive.
    let spec = FaultSpec::new(vec![NodeId(0), NodeId(1)])
        .crashable(vec![NodeId(1)])
        .window(SimTime::from_millis(100), SimTime::from_millis(1800))
        .faults(clauses, clauses)
        .oneway(clauses >= 4);
    let seed = FaultPlan::covering_seed(base_seed, &spec);
    let plan = FaultPlan::generate(seed, &spec);
    eprintln!("evlog cell (seed {seed}, {clauses} clauses):\n{plan}");

    let cell_dir = dir.join(format!("evlog-{seed}"));
    let _ = std::fs::remove_dir_all(&cell_dir);
    let cfg = BrokerConfig {
        log: LogConfig::default(),
        policy: AckPolicy::OnFsync,
        flush_every: SimDuration::from_millis(5),
        compact_every: 0,
    };
    let mut b = RuntimeBuilder::new().chaos(plan.clone(), seed);
    let leader = NodeId(1);
    let producer = b.add_node(Producer::new(
        0,
        leader,
        appends,
        32,
        64,
        SimDuration::ZERO,
        SimDuration::from_millis(200),
    ));
    let id = b.add_node(EventLogNode::leader(DirKind::new(&cell_dir.join("leader")), cfg, vec![]));
    assert_eq!(id, leader);
    let started = Instant::now();
    let rt = b.launch();
    let deadline = started + Duration::from_secs(120);
    while !rt.inspect::<Producer, _, _>(producer, |p| p.done()) {
        if Instant::now() > deadline {
            eprintln!("evlog cell seed {seed}: producer stalled");
            std::process::exit(1);
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    drain_chaos(&rt, "evlog", Duration::from_millis(400));
    let elapsed = started.elapsed().as_secs_f64();
    let report = rt.shutdown();

    let acked = report.actor::<Producer>(producer).acked_ids();
    let broker = report.actor::<EventLogNode<DirKind>>(leader);
    let lost = acked.iter().filter(|id| broker.log().lookup(**id).is_none()).count() as u64;

    let acc = report.core.ledger.accounting();
    let (incidents, incident_slices_ok, incidents_durable) =
        audit_incidents(&report.core, &cell_dir);
    Cell {
        service: "evlog/fsync",
        base_seed,
        seed,
        clauses,
        crash_clauses: plan.count_kind("crash"),
        acked: acked.len() as u64,
        lost,
        open_guesses: acc.open(),
        orphaned_guesses: acc.orphaned(),
        restarts: report.core.metrics.counter("runtime.restarts"),
        clause_edges: report.core.metrics.counter("runtime.chaos_clauses"),
        incidents,
        incident_slices_ok,
        incidents_durable,
        elapsed_secs: elapsed,
    }
}

// ----------------------------------------------------------------- main

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let out = arg_value(&mut args, "--out");
    let quick = {
        let pos = args.iter().position(|a| a == "--quick");
        if let Some(p) = pos {
            args.remove(p);
        }
        pos.is_some()
    };
    let dir = PathBuf::from(
        arg_value(&mut args, "--dir")
            .unwrap_or_else(|| std::env::temp_dir().join("chaos-rt").display().to_string()),
    );
    if !args.is_empty() {
        eprintln!("unknown args: {args:?}");
        std::process::exit(2);
    }

    // The grid: base seed x clause count, per service. `--quick` runs
    // one cell of each service for the CI smoke.
    let cart_rows: &[(u64, usize, u64)] =
        if quick { &[(1, 3, 500)] } else { &[(1, 3, 800), (1000, 5, 800)] };
    let member_rows: &[(u64, usize, u64)] =
        if quick { &[(1, 4, 400)] } else { &[(1, 4, 600), (1000, 5, 600)] };
    let evlog_rows: &[(u64, usize, u64)] =
        if quick { &[(1, 3, 300)] } else { &[(1, 3, 500), (1000, 5, 500)] };

    let mut cells = Vec::new();
    for &(base, clauses, ops) in cart_rows {
        cells.push(cart_cell(base, clauses, ops, &dir));
    }
    for &(base, clauses, ops) in member_rows {
        cells.push(membership_cell(base, clauses, ops, &dir));
    }
    for &(base, clauses, appends) in evlog_rows {
        cells.push(evlog_cell(base, clauses, appends, &dir));
    }

    println!(
        "{:<12} {:>9} {:>7} {:>7} {:>6} {:>5} {:>5} {:>9} {:>8} {:>6} {:>6} {:>7}",
        "service",
        "seed",
        "clauses",
        "crashes",
        "acked",
        "lost",
        "open",
        "orphaned",
        "restarts",
        "edges",
        "incid",
        "secs"
    );
    let mut failed = false;
    for c in &cells {
        println!(
            "{:<12} {:>9} {:>7} {:>7} {:>6} {:>5} {:>5} {:>9} {:>8} {:>6} {:>6} {:>7.2}{}",
            c.service,
            c.seed,
            c.clauses,
            c.crash_clauses,
            c.acked,
            c.lost,
            c.open_guesses,
            c.orphaned_guesses,
            c.restarts,
            c.clause_edges,
            c.incidents,
            c.elapsed_secs,
            if c.ok() { "" } else { "  <-- FAIL" },
        );
        failed |= !c.ok();
    }

    if let Some(path) = out {
        let mut json = String::from("{\n");
        let _ = writeln!(json, "  \"experiment\": \"E21\",");
        let _ = writeln!(
            json,
            "  \"description\": \"wall-clock chaos grid: seeded FaultPlans vs live services; \
             acked ops must survive every clause\","
        );
        json.push_str("  \"cells\": [\n");
        for (i, c) in cells.iter().enumerate() {
            let comma = if i + 1 < cells.len() { "," } else { "" };
            let _ = writeln!(
                json,
                "    {{\"service\": \"{}\", \"base_seed\": {}, \"seed\": {}, \"clauses\": {}, \
                 \"crash_clauses\": {}, \"acked\": {}, \"lost_acked\": {}, \
                 \"open_guesses\": {}, \"orphaned_guesses\": {}, \"restarts\": {}, \
                 \"clause_edges\": {}, \"incidents\": {}, \"incident_slices_ok\": {}, \
                 \"incidents_durable\": {}}}{comma}",
                c.service,
                c.base_seed,
                c.seed,
                c.clauses,
                c.crash_clauses,
                c.acked,
                c.lost,
                c.open_guesses,
                c.orphaned_guesses,
                c.restarts,
                c.clause_edges,
                c.incidents,
                c.incident_slices_ok,
                c.incidents_durable,
            );
        }
        json.push_str("  ]\n}\n");
        std::fs::write(&path, json).unwrap_or_else(|e| {
            eprintln!("write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("grid written to {path}");
    }

    if failed {
        eprintln!("CHAOS GRID FAILED: see rows above");
        std::process::exit(1);
    }
    eprintln!("chaos grid clean: every acked op survived every plan");
}
