//! Seed-swept chaos driver: runs every substrate's `ChaosRun` over a
//! configurable seed range and emits a deterministic JSON report of
//! seeds swept, faults injected, invariants checked, and — for every
//! failing seed — the shrunk minimal reproducing plan.
//!
//! ```text
//! cargo run -p quicksand-bench --release --bin chaos -- --seeds 500
//! cargo run -p quicksand-bench --release --bin chaos -- --seeds 500 --json-out chaos.json
//! cargo run -p quicksand-bench --release --bin chaos -- --seeds 500 --deny-failures
//! cargo run -p quicksand-bench --release --bin chaos -- --explain 17 --scenario cart_oplog
//! cargo run -p quicksand-bench --release --bin chaos -- --seeds 500 --artifacts-dir artifacts
//! ```
//!
//! Forensics: `--artifacts-dir DIR` makes every failing seed drop
//! `explain-<seed>.txt` / `explain-<seed>.json` causal-slice artifacts
//! under `DIR/<scenario>/` before shrinking. `--explain SEED` skips the
//! sweep entirely and re-runs that one seed through each scenario's
//! explainer, dumping the annotated slice to stdout (restrict with
//! `--scenario NAME`). `--ledger-json PATH` writes the merged
//! guess/apology accounting per scenario. `--deny-failures` exits
//! non-zero when any invariant was violated, `--deny-open-guesses` when
//! any scenario's ledger still holds unresolved guesses after
//! quiescence — the CI nightly job's tripwires. The JSON report depends
//! only on the seed count: same `--seeds N`, same bytes.

use std::path::{Path, PathBuf};
use std::rc::Rc;

use quicksand_bench::artifacts::ArtifactStream;

use quicksand::cart::CartMode;
use quicksand::chaos::{
    bank_chaos, cart_chaos, dynamo_chaos, escrow_chaos, eventlog_harness, logship_chaos,
    membership_chaos, tandem_chaos, ChaosReport, ChaosRun,
};
use quicksand::dynamo::WorkloadConfig;
use quicksand::eventlog::AckPolicy;
use quicksand::logship::ShipMode;
use quicksand::sim::Explanation;
use quicksand::tandem::Mode;

/// A type-erased sweep: seed count + optional artifacts dir in, report out.
type SweepFn = Box<dyn Fn(u64, Option<&Path>) -> ChaosReport>;

/// One substrate scenario, type-erased so the driver can sweep and
/// explain a heterogeneous list.
struct Scenario {
    name: &'static str,
    sweep: SweepFn,
    explain: Box<dyn Fn(u64) -> Option<Explanation>>,
}

fn scenario<R: 'static>(name: &'static str, make: impl Fn() -> ChaosRun<R> + 'static) -> Scenario {
    let make = Rc::new(make);
    let mk = make.clone();
    Scenario {
        name,
        sweep: Box::new(move |n, dir| {
            let run = mk();
            let run = match dir {
                Some(d) => run.artifacts_into(d.join(name)),
                None => run,
            };
            run.sweep(0..n)
        }),
        explain: Box::new(move |seed| make().explain_seed(seed)),
    }
}

/// Every substrate scenario the sweep hammers, in a fixed order so the
/// report is byte-stable.
fn scenarios() -> Vec<Scenario> {
    vec![
        scenario("cart_oplog", || cart_chaos(CartMode::OpLog)),
        scenario("cart_orset", || cart_chaos(CartMode::OrSet)),
        scenario("dynamo_workload", || dynamo_chaos(WorkloadConfig::default())),
        scenario("membership_rebalance", membership_chaos),
        scenario("tandem_dp1", || tandem_chaos(Mode::Dp1)),
        scenario("tandem_dp2", || tandem_chaos(Mode::Dp2)),
        scenario("logship_async", || logship_chaos(ShipMode::Asynchronous)),
        scenario("logship_sync", || logship_chaos(ShipMode::Synchronous)),
        scenario("eventlog_immediate", || eventlog_harness(AckPolicy::Immediate)),
        scenario("eventlog_fsync", || eventlog_harness(AckPolicy::OnFsync)),
        scenario("eventlog_replicate2", || eventlog_harness(AckPolicy::OnReplicate(2))),
        scenario("bank_clearing", bank_chaos),
        scenario("escrow_fleet", escrow_chaos),
    ]
}

fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(pos) = args.iter().position(|a| a == flag) {
        args.remove(pos);
        true
    } else {
        false
    }
}

fn take_value(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let pos = args.iter().position(|a| a == flag)?;
    args.remove(pos);
    if pos >= args.len() {
        eprintln!("{flag} needs a value");
        std::process::exit(2);
    }
    Some(args.remove(pos))
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let seeds: u64 = match take_value(&mut args, "--seeds") {
        Some(s) => s.parse().unwrap_or_else(|_| {
            eprintln!("--seeds needs a number");
            std::process::exit(2);
        }),
        None => 50,
    };
    let deny_failures = take_flag(&mut args, "--deny-failures");
    let deny_open_guesses = take_flag(&mut args, "--deny-open-guesses");
    let json_out = take_value(&mut args, "--json-out");
    let ledger_json = take_value(&mut args, "--ledger-json");
    let artifacts_dir = take_value(&mut args, "--artifacts-dir").map(PathBuf::from);
    let explain_seed: Option<u64> = take_value(&mut args, "--explain").map(|s| {
        s.parse().unwrap_or_else(|_| {
            eprintln!("--explain needs a seed number");
            std::process::exit(2);
        })
    });
    let only_scenario = take_value(&mut args, "--scenario");
    if !args.is_empty() {
        eprintln!("unknown arguments: {args:?}");
        eprintln!(
            "usage: chaos [--seeds N] [--deny-failures] [--deny-open-guesses] \
             [--json-out PATH] [--ledger-json PATH] [--artifacts-dir DIR] \
             [--explain SEED] [--scenario NAME]"
        );
        std::process::exit(2);
    }

    let selected: Vec<Scenario> = scenarios()
        .into_iter()
        .filter(|s| only_scenario.as_deref().is_none_or(|n| n == s.name))
        .collect();
    if selected.is_empty() {
        eprintln!("no scenario named {:?}", only_scenario.unwrap_or_default());
        std::process::exit(2);
    }

    // --explain SEED: no sweep, just the forensic re-run of one seed.
    if let Some(seed) = explain_seed {
        let mut found = false;
        for sc in &selected {
            match (sc.explain)(seed) {
                Some(e) => {
                    found = true;
                    println!("=== [{}] seed {seed} ===", sc.name);
                    println!("{}", e.render_text());
                    if let Some(dir) = &artifacts_dir {
                        match ChaosRun::<()>::write_artifacts(&dir.join(sc.name), &e) {
                            Ok((txt, json)) => {
                                eprintln!("artifacts: {} and {}", txt.display(), json.display())
                            }
                            Err(err) => {
                                eprintln!("writing artifacts for {}: {err}", sc.name);
                                std::process::exit(1);
                            }
                        }
                        ArtifactStream::open(&dir.join("stream")).append(sc.name, &e);
                    }
                }
                None => println!("=== [{}] seed {seed}: no explainer/slice ===", sc.name),
            }
        }
        std::process::exit(if found { 0 } else { 1 });
    }

    // The durable artifact stream rides along with the loose explain
    // files: every failure's causal slice is appended (idempotently,
    // keyed by scenario × seed) to a crash-recoverable event log under
    // `DIR/stream/`. A torn tail from a killed sweep is truncated here,
    // on the next open — and reported, because a forensic channel that
    // silently loses forensics would be its own §5 violation.
    let mut stream = artifacts_dir.as_deref().map(|dir| {
        let s = ArtifactStream::open(&dir.join("stream"));
        let rec = s.recovered();
        if rec.truncated_bytes > 0 {
            eprintln!(
                "artifact stream: recovered, truncated {} torn byte(s) from a previous run",
                rec.truncated_bytes
            );
        }
        s
    });

    println!("chaos sweep: {seeds} seeds per scenario\n");
    let mut json = format!("{{\"seeds_per_scenario\":{seeds},\"scenarios\":[");
    let mut ledgers = String::from("{\"scenarios\":[");
    let mut total_failures = 0usize;
    let mut total_faults = 0u64;
    let mut open_guesses = 0u64;
    for (i, sc) in selected.iter().enumerate() {
        let report = (sc.sweep)(seeds, artifacts_dir.as_deref());
        println!("[{}] {report}", sc.name);
        if let Some(stream) = &mut stream {
            for failure in &report.failures {
                if let Some(e) = &failure.explanation {
                    stream.append(sc.name, e);
                }
            }
        }
        total_failures += report.failures.len();
        total_faults += report.faults_injected.values().sum::<u64>();
        open_guesses += report.ledger.open();
        if i > 0 {
            json.push(',');
            ledgers.push(',');
        }
        json.push_str(&format!("{{\"name\":\"{}\",\"report\":{}}}", sc.name, report.to_json()));
        ledgers.push_str(&format!(
            "{{\"name\":\"{}\",\"ledger\":{}}}",
            sc.name,
            report.ledger.to_json()
        ));
    }
    json.push_str(&format!(
        "],\"total_faults_injected\":{total_faults},\"total_failures\":{total_failures}}}"
    ));
    ledgers.push_str(&format!("],\"open_guesses\":{open_guesses}}}"));

    if let Some(path) = &json_out {
        std::fs::write(path, &json).unwrap_or_else(|e| {
            eprintln!("writing {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("chaos report JSON written to {path}");
    }
    if let Some(path) = &ledger_json {
        std::fs::write(path, &ledgers).unwrap_or_else(|e| {
            eprintln!("writing {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("ledger accounting JSON written to {path}");
    }

    println!(
        "total: {total_faults} faults injected, {total_failures} invariant failure(s), \
         {open_guesses} guess(es) left open across all scenarios"
    );
    let mut fail = false;
    if deny_failures && total_failures > 0 {
        eprintln!("--deny-failures: failing the run");
        fail = true;
    }
    if deny_open_guesses && open_guesses > 0 {
        eprintln!("--deny-open-guesses: a ledger ended with unresolved guesses");
        fail = true;
    }
    if fail {
        std::process::exit(1);
    }
}
