//! Seed-swept chaos driver: runs every substrate's `ChaosRun` over a
//! configurable seed range and emits a deterministic JSON report of
//! seeds swept, faults injected, invariants checked, and — for every
//! failing seed — the shrunk minimal reproducing plan.
//!
//! ```text
//! cargo run -p quicksand-bench --release --bin chaos -- --seeds 500
//! cargo run -p quicksand-bench --release --bin chaos -- --seeds 500 --json-out chaos.json
//! cargo run -p quicksand-bench --release --bin chaos -- --seeds 500 --deny-failures
//! ```
//!
//! `--deny-failures` exits non-zero when any invariant was violated —
//! the CI nightly job's tripwire. The JSON report depends only on the
//! seed count: same `--seeds N`, same bytes.

use quicksand::cart::CartMode;
use quicksand::chaos::{
    bank_chaos, cart_chaos, dynamo_chaos, escrow_chaos, logship_chaos, tandem_chaos, ChaosReport,
};
use quicksand::dynamo::WorkloadConfig;
use quicksand::logship::ShipMode;
use quicksand::tandem::Mode;

/// Every substrate scenario the sweep hammers, in a fixed order so the
/// report is byte-stable.
#[allow(clippy::type_complexity)]
fn scenarios() -> Vec<(&'static str, Box<dyn Fn(u64) -> ChaosReport>)> {
    vec![
        ("cart_oplog", Box::new(|n| cart_chaos(CartMode::OpLog).sweep(0..n)) as _),
        ("cart_orset", Box::new(|n| cart_chaos(CartMode::OrSet).sweep(0..n)) as _),
        ("dynamo_workload", Box::new(|n| dynamo_chaos(WorkloadConfig::default()).sweep(0..n)) as _),
        ("tandem_dp1", Box::new(|n| tandem_chaos(Mode::Dp1).sweep(0..n)) as _),
        ("tandem_dp2", Box::new(|n| tandem_chaos(Mode::Dp2).sweep(0..n)) as _),
        ("logship_async", Box::new(|n| logship_chaos(ShipMode::Asynchronous).sweep(0..n)) as _),
        ("logship_sync", Box::new(|n| logship_chaos(ShipMode::Synchronous).sweep(0..n)) as _),
        ("bank_clearing", Box::new(|n| bank_chaos().sweep(0..n)) as _),
        ("escrow_fleet", Box::new(|n| escrow_chaos().sweep(0..n)) as _),
    ]
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut seeds: u64 = 50;
    if let Some(pos) = args.iter().position(|a| a == "--seeds") {
        args.remove(pos);
        seeds = args.get(pos).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
            eprintln!("--seeds needs a number");
            std::process::exit(2);
        });
        args.remove(pos);
    }
    let deny_failures = if let Some(pos) = args.iter().position(|a| a == "--deny-failures") {
        args.remove(pos);
        true
    } else {
        false
    };
    let json_out = if let Some(pos) = args.iter().position(|a| a == "--json-out") {
        args.remove(pos);
        if pos >= args.len() {
            eprintln!("--json-out needs a path");
            std::process::exit(2);
        }
        Some(args.remove(pos))
    } else {
        None
    };
    if !args.is_empty() {
        eprintln!("unknown arguments: {args:?}");
        eprintln!("usage: chaos [--seeds N] [--deny-failures] [--json-out PATH]");
        std::process::exit(2);
    }

    println!("chaos sweep: {seeds} seeds per scenario\n");
    let mut json = format!("{{\"seeds_per_scenario\":{seeds},\"scenarios\":[");
    let mut total_failures = 0usize;
    let mut total_faults = 0u64;
    for (i, (name, sweep)) in scenarios().into_iter().enumerate() {
        let report = sweep(seeds);
        println!("[{name}] {report}");
        total_failures += report.failures.len();
        total_faults += report.faults_injected.values().sum::<u64>();
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!("{{\"name\":\"{name}\",\"report\":{}}}", report.to_json()));
    }
    json.push_str(&format!(
        "],\"total_faults_injected\":{total_faults},\"total_failures\":{total_failures}}}"
    ));

    if let Some(path) = &json_out {
        std::fs::write(path, &json).unwrap_or_else(|e| {
            eprintln!("writing {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("chaos report JSON written to {path}");
    }

    println!(
        "total: {total_faults} faults injected, {total_failures} invariant failure(s) across all scenarios"
    );
    if deny_failures && total_failures > 0 {
        eprintln!("--deny-failures: failing the run");
        std::process::exit(1);
    }
}
