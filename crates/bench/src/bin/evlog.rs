//! The event-log broker on the wall-clock runtime, end to end over TCP.
//!
//! One binary, four subcommands, so the CI smoke can kill -9 a real
//! broker process mid-stream and audit what survived:
//!
//! ```text
//! evlog serve   --dir DIR --port 0 --policy fsync        # broker process
//!               # prints "listening on 127.0.0.1:PORT" (0 = ephemeral)
//! evlog produce --addr 127.0.0.1:7171 --count 500 \
//!               --acked-out acked.txt                    # client process
//! evlog consume --addr 127.0.0.1:7171 --group smoke \
//!               --expect acked.txt                       # read back over TCP
//! evlog verify  --dir DIR/leader --acked acked.txt       # offline audit
//! evlog bench   --out BENCH_7.json                       # throughput grid
//! ```
//!
//! `serve` hosts an unmodified [`EventLogNode`] (the same actor the
//! deterministic chaos sweeps drive) on `quicksand-runtime` worker
//! threads with file-backed segments; its flush timer is the §3.2
//! group-commit bus running on the host clock. A small gateway thread
//! speaks length-prefixed [`EvMsg`] frames to clients and injects them
//! into the runtime; acks ride back over the same socket when the
//! policy says they have been earned.
//!
//! `produce` keeps a window of appends in flight, retries silence with
//! the *same* uniquifiers (the broker's dedup collapses them), survives
//! the broker dying by reconnecting until `--timeout-secs`, and records
//! every acked id to `--acked-out` — the promise file the other
//! subcommands audit. `verify` reopens the segment directory offline,
//! reports what recovery truncated, and fails if any acked id is gone.
//! `bench` runs the ack-policy × window grid in-process and writes the
//! BENCH_7 JSON artifact.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::Write as _;
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use quicksand::eventlog::{
    AckPolicy, BrokerConfig, DirKind, EvMsg, EventLog, EventLogNode, LogConfig, Producer,
};
use quicksand_core::uniquifier::Uniquifier;
use quicksand_core::wire::{to_bytes, WireCodec};
use quicksand_runtime::RuntimeBuilder;
use sim::{Actor, Context, NodeId, SimDuration};

fn arg_value(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let pos = args.iter().position(|a| a == flag)?;
    args.remove(pos);
    if pos >= args.len() {
        eprintln!("{flag} needs a value");
        std::process::exit(2);
    }
    Some(args.remove(pos))
}

fn parse<T: std::str::FromStr>(v: Option<String>, default: T, flag: &str) -> T {
    match v {
        Some(s) => s.parse().unwrap_or_else(|_| {
            eprintln!("{flag}: bad value {s:?}");
            std::process::exit(2);
        }),
        None => default,
    }
}

// ---------------------------------------------------------------- wire

/// Write one `[len u32 LE][EvMsg]` frame.
fn write_frame(w: &mut impl std::io::Write, msg: &EvMsg) -> std::io::Result<()> {
    let body = to_bytes(msg);
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(&body)?;
    w.flush()
}

/// Read one frame; `Ok(None)` on clean EOF.
fn read_frame(r: &mut impl std::io::Read) -> std::io::Result<Option<EvMsg>> {
    let mut len = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match r.read(&mut len[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => return Err(std::io::ErrorKind::UnexpectedEof.into()),
            Ok(n) => got += n,
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(len) as usize;
    if len > 64 * 1024 * 1024 {
        return Err(std::io::ErrorKind::InvalidData.into());
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    let mut slice = body.as_slice();
    EvMsg::decode(&mut slice)
        .map(Some)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, format!("{e:?}")))
}

// --------------------------------------------------------------- serve

/// Routes broker responses back to the TCP connection that asked.
/// Appends are routed by uniquifier; fetches go to the most recent
/// fetcher (the smoke runs one consumer).
#[derive(Clone, Default)]
struct Gateway {
    acks: Arc<Mutex<HashMap<u128, Sender<EvMsg>>>>,
    fetcher: Arc<Mutex<Option<Sender<EvMsg>>>>,
}

impl Actor<EvMsg> for Gateway {
    fn on_message(&mut self, _ctx: &mut Context<EvMsg>, _from: NodeId, msg: EvMsg) {
        match &msg {
            EvMsg::Ack { id, .. } => {
                if let Some(tx) = self.acks.lock().unwrap().remove(&id.as_raw()) {
                    let _ = tx.send(msg);
                }
            }
            EvMsg::FetchResp { .. } => {
                if let Some(tx) = self.fetcher.lock().unwrap().as_ref() {
                    let _ = tx.send(msg);
                }
            }
            _ => {}
        }
    }
}

fn serve(mut args: Vec<String>) {
    let dir = PathBuf::from(arg_value(&mut args, "--dir").unwrap_or_else(|| {
        eprintln!("serve needs --dir");
        std::process::exit(2);
    }));
    let port: u16 = parse(arg_value(&mut args, "--port"), 7171, "--port");
    let policy: AckPolicy = parse(arg_value(&mut args, "--policy"), AckPolicy::OnFsync, "--policy");
    let flush_ms: u64 = parse(arg_value(&mut args, "--flush-ms"), 5, "--flush-ms");
    let partitions: u32 = parse(arg_value(&mut args, "--partitions"), 2, "--partitions");
    let replicas: usize = match policy {
        AckPolicy::OnReplicate(n) => n as usize,
        _ => 0,
    };
    deny_unknown(&args);

    let cfg = BrokerConfig {
        log: LogConfig { partitions, ..LogConfig::default() },
        policy,
        flush_every: SimDuration::from_millis(flush_ms),
        compact_every: 64,
    };
    let gateway = Gateway::default();
    let acks = gateway.acks.clone();
    let fetcher = gateway.fetcher.clone();

    let mut b = RuntimeBuilder::new();
    let gw = b.add_node(gateway);
    let replica_ids: Vec<NodeId> = (0..replicas).map(|i| NodeId(2 + i)).collect();
    let leader = b.add_node(EventLogNode::leader(
        DirKind::new(&dir.join("leader")),
        cfg.clone(),
        replica_ids.clone(),
    ));
    for (i, expected) in replica_ids.iter().enumerate() {
        let id = b.add_node(EventLogNode::replica(
            DirKind::new(&dir.join(format!("replica-{i}"))),
            cfg.clone(),
        ));
        assert_eq!(id, *expected);
    }
    let rt = b.launch();

    let recovered = rt.inspect::<EventLogNode<DirKind>, _, _>(leader, |n| n.recovered.clone());
    // The CI smoke greps this line: recovery must report what it cut.
    println!(
        "evlog serve: recovered {} records, truncated {} torn byte(s) ({} torn segment(s))",
        recovered.records, recovered.truncated_bytes, recovered.torn_segments
    );
    let listener = TcpListener::bind(("127.0.0.1", port)).unwrap_or_else(|e| {
        eprintln!("bind 127.0.0.1:{port}: {e}");
        std::process::exit(2);
    });
    // With `--port 0` the OS picks the port; print the real address so
    // scripts (and the CI smoke) can grep it instead of racing for a
    // fixed port.
    let addr = listener.local_addr().expect("bound listener has an address");
    println!("evlog serve: policy {policy}, {partitions} partition(s), {replicas} replica(s), listening on {addr}");

    std::thread::scope(|scope| {
        for conn in listener.incoming() {
            let Ok(conn) = conn else { continue };
            let (acks, fetcher, rt) = (acks.clone(), fetcher.clone(), &rt);
            scope.spawn(move || {
                let mut reader = conn.try_clone().expect("clone conn");
                let (out_tx, out_rx): (Sender<EvMsg>, Receiver<EvMsg>) = channel();
                let writer = std::thread::spawn(move || {
                    let mut conn = conn;
                    for msg in out_rx {
                        if write_frame(&mut conn, &msg).is_err() {
                            break;
                        }
                    }
                });
                while let Ok(Some(msg)) = read_frame(&mut reader) {
                    match msg {
                        EvMsg::Append { id, payload, .. } => {
                            acks.lock().unwrap().insert(id.as_raw(), out_tx.clone());
                            rt.inject(leader, gw, EvMsg::Append { id, payload, resp_to: gw });
                        }
                        EvMsg::Fetch { group, .. } => {
                            *fetcher.lock().unwrap() = Some(out_tx.clone());
                            rt.inject(leader, gw, EvMsg::Fetch { group, resp_to: gw });
                        }
                        EvMsg::Commit { .. } => rt.inject(leader, gw, msg),
                        _ => {}
                    }
                }
                drop(out_tx);
                let _ = writer.join();
            });
        }
    });
}

// ------------------------------------------------------------- produce

struct Pending {
    payload: Vec<u8>,
    last_sent: Instant,
}

fn produce(mut args: Vec<String>) {
    let addr = arg_value(&mut args, "--addr").unwrap_or_else(|| "127.0.0.1:7171".into());
    let count: u64 = parse(arg_value(&mut args, "--count"), 500, "--count");
    let payload_bytes: usize =
        parse(arg_value(&mut args, "--payload-bytes"), 64, "--payload-bytes");
    let window: usize = parse(arg_value(&mut args, "--window"), 32, "--window");
    let seed: u64 = parse(arg_value(&mut args, "--seed"), 1, "--seed");
    let timeout =
        Duration::from_secs(parse(arg_value(&mut args, "--timeout-secs"), 60, "--timeout-secs"));
    let acked_out = arg_value(&mut args, "--acked-out");
    deny_unknown(&args);

    let mut acked_file = acked_out.map(|p| {
        std::fs::OpenOptions::new().create(true).append(true).open(&p).unwrap_or_else(|e| {
            eprintln!("open {p}: {e}");
            std::process::exit(2);
        })
    });

    let deadline = Instant::now() + timeout;
    let mut issued = 0u64;
    let mut acked = 0u64;
    let mut in_flight: HashMap<u128, Pending> = HashMap::new();
    let mut conn: Option<TcpStream> = None;

    while acked < count {
        if Instant::now() > deadline {
            eprintln!("evlog produce: TIMEOUT with {acked}/{count} acked");
            std::process::exit(1);
        }
        // (Re)connect; the broker being down mid-stream is expected.
        let stream = match &mut conn {
            Some(s) => s,
            None => match TcpStream::connect(&addr) {
                Ok(s) => {
                    s.set_read_timeout(Some(Duration::from_millis(100))).ok();
                    s.set_nodelay(true).ok();
                    // Everything unacked goes again, same ids: the
                    // broker's dedup makes the resend harmless.
                    for p in in_flight.values_mut() {
                        p.last_sent = Instant::now() - Duration::from_secs(60);
                    }
                    conn.insert(s)
                }
                Err(_) => {
                    std::thread::sleep(Duration::from_millis(200));
                    continue;
                }
            },
        };

        // Fill the window with fresh appends.
        let mut io_err = false;
        while in_flight.len() < window && issued < count {
            let id = Uniquifier::derived_from_fields(&[
                b"evlog-produce",
                &seed.to_le_bytes(),
                &issued.to_le_bytes(),
            ]);
            let mut payload = vec![0u8; payload_bytes.max(16)];
            payload[..16].copy_from_slice(&id.as_raw().to_le_bytes());
            let msg = EvMsg::Append { id, payload: payload.clone(), resp_to: NodeId(0) };
            if write_frame(stream, &msg).is_err() {
                io_err = true;
                break;
            }
            in_flight.insert(id.as_raw(), Pending { payload, last_sent: Instant::now() });
            issued += 1;
        }
        // Nudge anything silent for 500ms.
        if !io_err {
            let stale: Vec<u128> = in_flight
                .iter()
                .filter(|(_, p)| p.last_sent.elapsed() > Duration::from_millis(500))
                .map(|(id, _)| *id)
                .collect();
            for raw in stale {
                let p = &in_flight[&raw];
                let msg = EvMsg::Append {
                    id: Uniquifier::from_raw(raw),
                    payload: p.payload.clone(),
                    resp_to: NodeId(0),
                };
                if write_frame(stream, &msg).is_err() {
                    io_err = true;
                    break;
                }
                in_flight.get_mut(&raw).unwrap().last_sent = Instant::now();
            }
        }
        // Drain acks until the read times out.
        loop {
            match read_frame(stream) {
                Ok(Some(EvMsg::Ack { id, partition, offset })) => {
                    if in_flight.remove(&id.as_raw()).is_some() {
                        acked += 1;
                        if let Some(f) = &mut acked_file {
                            let line = format!("{:032x} {partition} {offset}\n", id.as_raw());
                            f.write_all(line.as_bytes()).expect("write acked-out");
                            f.flush().ok();
                        }
                    }
                }
                Ok(Some(_)) => {}
                Ok(None) => {
                    io_err = true;
                    break;
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    break;
                }
                Err(_) => {
                    io_err = true;
                    break;
                }
            }
        }
        if io_err {
            conn = None;
        }
    }
    println!("evlog produce: {acked}/{count} acked");
}

fn read_acked(path: &str) -> Vec<(u128, u32, u64)> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("read {path}: {e}");
        std::process::exit(2);
    });
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| {
            let mut parts = l.split_whitespace();
            let id = u128::from_str_radix(parts.next().expect("id"), 16).expect("hex id");
            let p: u32 = parts.next().expect("partition").parse().expect("partition");
            let off: u64 = parts.next().expect("offset").parse().expect("offset");
            (id, p, off)
        })
        .collect()
}

// ------------------------------------------------------------- consume

fn consume(mut args: Vec<String>) {
    let addr = arg_value(&mut args, "--addr").unwrap_or_else(|| "127.0.0.1:7171".into());
    let group = arg_value(&mut args, "--group").unwrap_or_else(|| "smoke".into());
    let expect = arg_value(&mut args, "--expect");
    let timeout =
        Duration::from_secs(parse(arg_value(&mut args, "--timeout-secs"), 30, "--timeout-secs"));
    deny_unknown(&args);

    let expected: Vec<u128> = expect
        .as_deref()
        .map_or(Vec::new(), |p| read_acked(p).into_iter().map(|(id, _, _)| id).collect());

    let stream = TcpStream::connect(&addr).unwrap_or_else(|e| {
        eprintln!("connect {addr}: {e}");
        std::process::exit(1);
    });
    stream.set_read_timeout(Some(Duration::from_millis(200))).ok();
    let mut stream = stream;
    let deadline = Instant::now() + timeout;
    let mut seen: HashMap<u128, (u32, u64)> = HashMap::new();
    let mut high: HashMap<u32, u64> = HashMap::new();

    loop {
        write_frame(&mut stream, &EvMsg::Fetch { group: group.clone(), resp_to: NodeId(0) })
            .unwrap_or_else(|e| {
                eprintln!("fetch: {e}");
                std::process::exit(1);
            });
        loop {
            match read_frame(&mut stream) {
                Ok(Some(EvMsg::FetchResp { partition, recs })) => {
                    for rec in recs {
                        if let Some(key) = rec.key {
                            seen.insert(key.as_raw(), (partition, rec.offset));
                        }
                        let h = high.entry(partition).or_insert(0);
                        *h = (*h).max(rec.offset + 1);
                    }
                }
                Ok(Some(_)) => {}
                _ => break,
            }
        }
        for (&p, &upto) in &high {
            let _ = write_frame(
                &mut stream,
                &EvMsg::Commit { group: group.clone(), partition: p, upto },
            );
        }
        let missing = expected.iter().filter(|id| !seen.contains_key(id)).count();
        if !expected.is_empty() && missing == 0 {
            break;
        }
        if Instant::now() > deadline {
            if expected.is_empty() {
                break;
            }
            eprintln!(
                "evlog consume: TIMEOUT, {missing} of {} acked record(s) never arrived",
                expected.len()
            );
            std::process::exit(1);
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    println!(
        "evlog consume: saw {} distinct record(s); all {} expected acked id(s) present",
        seen.len(),
        expected.len()
    );
}

// -------------------------------------------------------------- verify

fn verify(mut args: Vec<String>) {
    let dir = PathBuf::from(arg_value(&mut args, "--dir").unwrap_or_else(|| {
        eprintln!("verify needs --dir (the leader's segment directory)");
        std::process::exit(2);
    }));
    let acked = arg_value(&mut args, "--acked").unwrap_or_else(|| {
        eprintln!("verify needs --acked FILE");
        std::process::exit(2);
    });
    let partitions: u32 = parse(arg_value(&mut args, "--partitions"), 2, "--partitions");
    deny_unknown(&args);

    let cfg = LogConfig { partitions, ..LogConfig::default() };
    let (log, report) = EventLog::open(DirKind::new(&dir), cfg);
    println!(
        "evlog verify: recovered {} record(s), truncated {} torn byte(s) ({} torn segment(s), {} corrupt)",
        report.records, report.truncated_bytes, report.torn_segments, report.corrupt_segments
    );
    let promises = read_acked(&acked);
    let mut missing = 0usize;
    for (raw, p, off) in &promises {
        match log.lookup(Uniquifier::from_raw(*raw)) {
            Some(_) => {}
            None => {
                missing += 1;
                eprintln!("MISSING acked record {raw:032x} (acked at p{p}@{off})");
            }
        }
    }
    if missing > 0 {
        eprintln!("evlog verify: FAILED — {missing} of {} acked record(s) lost", promises.len());
        std::process::exit(1);
    }
    println!("evlog verify: all {} acked record(s) present", promises.len());
}

// --------------------------------------------------------------- bench

fn bench(mut args: Vec<String>) {
    let out = arg_value(&mut args, "--out").unwrap_or_else(|| "BENCH_7.json".into());
    let appends: u64 = parse(arg_value(&mut args, "--appends"), 600, "--appends");
    let payload_bytes: usize =
        parse(arg_value(&mut args, "--payload-bytes"), 64, "--payload-bytes");
    let flush_ms: u64 = parse(arg_value(&mut args, "--flush-ms"), 5, "--flush-ms");
    let base = PathBuf::from(
        arg_value(&mut args, "--dir")
            .unwrap_or_else(|| std::env::temp_dir().join("evlog-bench").display().to_string()),
    );
    deny_unknown(&args);

    let policies = [AckPolicy::Immediate, AckPolicy::OnFsync, AckPolicy::OnReplicate(2)];
    let windows = [1usize, 8, 64];
    let mut cells = Vec::new();
    for policy in policies {
        for window in windows {
            let cell = bench_cell(&base, policy, window, appends, payload_bytes, flush_ms);
            eprintln!(
                "cell policy={policy} window={window}: {:.0} appends/s (p50 {}µs, p99 {}µs)",
                cell.appends_per_sec, cell.ack_p50_us, cell.ack_p99_us
            );
            cells.push(cell);
        }
    }

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"BENCH_7\",");
    let _ = writeln!(
        json,
        "  \"description\": \"wall-clock event-log broker, closed loop: ack policy x producer window -> appends/s and ack latency; the flush timer is the group-commit bus\","
    );
    let _ = writeln!(json, "  \"transport\": \"Loopback\",");
    let _ = writeln!(json, "  \"appends_per_cell\": {appends},");
    let _ = writeln!(json, "  \"payload_bytes\": {payload_bytes},");
    let _ = writeln!(json, "  \"flush_interval_ms\": {flush_ms},");
    let _ = writeln!(json, "  \"cells\": [");
    for (i, c) in cells.iter().enumerate() {
        let comma = if i + 1 < cells.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"policy\": \"{}\", \"window\": {}, \"acked\": {}, \"elapsed_secs\": {:.3}, \"appends_per_sec\": {:.0}, \"ack_p50_us\": {}, \"ack_p99_us\": {}, \"fsyncs\": {}, \"bus_wait_mean_us\": {}}}{comma}",
            c.policy, c.window, c.acked, c.elapsed_secs, c.appends_per_sec, c.ack_p50_us,
            c.ack_p99_us, c.fsyncs, c.bus_wait_mean_us
        );
    }
    let _ = writeln!(json, "  ]");
    json.push_str("}\n");
    std::fs::write(&out, &json).unwrap_or_else(|e| {
        eprintln!("write {out}: {e}");
        std::process::exit(1);
    });
    eprintln!("evlog bench: grid written to {out}");
}

struct Cell {
    policy: AckPolicy,
    window: usize,
    acked: u64,
    elapsed_secs: f64,
    appends_per_sec: f64,
    ack_p50_us: u64,
    ack_p99_us: u64,
    fsyncs: u64,
    bus_wait_mean_us: u64,
}

fn bench_cell(
    base: &Path,
    policy: AckPolicy,
    window: usize,
    appends: u64,
    payload_bytes: usize,
    flush_ms: u64,
) -> Cell {
    let dir = base.join(format!("{policy}-w{window}").replace(':', "_"));
    let _ = std::fs::remove_dir_all(&dir);
    let replicas = match policy {
        AckPolicy::OnReplicate(n) => n as usize,
        _ => 0,
    };
    let cfg = BrokerConfig {
        log: LogConfig::default(),
        policy,
        flush_every: SimDuration::from_millis(flush_ms),
        compact_every: 0,
    };
    let mut b = RuntimeBuilder::new();
    let leader = NodeId(1);
    let producer = b.add_node(Producer::new(
        0,
        leader,
        appends,
        window,
        payload_bytes,
        SimDuration::ZERO,
        SimDuration::from_millis(200),
    ));
    let replica_ids: Vec<NodeId> = (0..replicas).map(|i| NodeId(2 + i)).collect();
    let id = b.add_node(EventLogNode::leader(
        DirKind::new(&dir.join("leader")),
        cfg.clone(),
        replica_ids.clone(),
    ));
    assert_eq!(id, leader);
    for i in 0..replicas {
        b.add_node(EventLogNode::replica(
            DirKind::new(&dir.join(format!("replica-{i}"))),
            cfg.clone(),
        ));
    }
    let started = Instant::now();
    let rt = b.launch();
    let deadline = started + Duration::from_secs(120);
    while !rt.inspect::<Producer, _, _>(producer, |p| p.done()) {
        if Instant::now() > deadline {
            eprintln!("bench cell policy={policy} window={window}: stalled");
            std::process::exit(1);
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let elapsed = started.elapsed().as_secs_f64();
    let acked = rt.inspect::<Producer, _, _>(producer, |p| p.acked.len() as u64);
    let mut report = rt.shutdown();
    let m = &mut report.core.metrics;
    let ack = m.histogram("eventlog.producer_ack_us");
    let (p50, p99) = (ack.percentile(50.0), ack.percentile(99.0));
    // OnFsync acks wait on the bus; OnReplicate acks wait on replica
    // confirmations (which the bus still paces) — report whichever
    // window this policy actually parked acks in.
    let mut bus = m.histogram("eventlog.group_commit_wait_us").mean();
    if bus == 0.0 {
        bus = m.histogram("eventlog.replicate_wait_us").mean();
    }
    Cell {
        policy,
        window,
        acked,
        elapsed_secs: elapsed,
        appends_per_sec: acked as f64 / elapsed.max(1e-9),
        ack_p50_us: p50 as u64,
        ack_p99_us: p99 as u64,
        fsyncs: report.core.metrics.counter("eventlog.fsyncs"),
        bus_wait_mean_us: bus as u64,
    }
}

// ---------------------------------------------------------------- main

fn deny_unknown(args: &[String]) {
    if !args.is_empty() {
        eprintln!("unknown arguments: {args:?}");
        std::process::exit(2);
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!(
            "usage: evlog <serve|produce|consume|verify|bench> [flags]\n\
             see the module docs at the top of crates/bench/src/bin/evlog.rs"
        );
        std::process::exit(2);
    }
    match args.remove(0).as_str() {
        "serve" => serve(args),
        "produce" => produce(args),
        "consume" => consume(args),
        "verify" => verify(args),
        "bench" => bench(args),
        other => {
            eprintln!("unknown subcommand {other:?} (serve|produce|consume|verify|bench)");
            std::process::exit(2);
        }
    }
}
