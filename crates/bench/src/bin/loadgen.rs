//! Closed-loop load generator for the wall-clock cart service.
//!
//! Launches an N-store dynamo ring of CRDT carts plus C closed-loop
//! clients (every node is its own OS worker thread), drives a
//! configurable get/put mix, then audits the run: every acknowledged
//! add must be present in the reconciled store state — a lost acked op
//! is a nonzero exit, not a log line.
//!
//! ```text
//! cargo run -p quicksand-bench --release --bin loadgen -- \
//!     --stores 4 --clients 8 --ops 6250 --keys 512 --put-pct 50 \
//!     --transport loopback --json-out loadgen.json
//! ```
//!
//! Reported: total ops, wall-clock throughput, and p50/p99 GET/PUT
//! latencies from the log-bucketed [`sim::LogHistogram`]s — the same
//! estimator the telemetry endpoint serves, so `loadgen` and a `curl`
//! of `/metrics` report the same shape. The `--json-out` file is
//! byte-stable across runs except for the timing fields
//! (`elapsed_secs`, `throughput_ops_per_sec`, `*_us` percentiles).
//!
//! ## Watch mode
//!
//! `--watch` attaches the live telemetry surface (binding
//! `--telemetry-addr`, or an ephemeral port if unset) and polls it over
//! real HTTP while the run is in flight, rendering a one-line dashboard
//! — ops/s and windowed p99 from `/metrics`, open guesses and the
//! worst per-substrate apology p99 from `/ledger`, node liveness from
//! `/health`. After the clients finish and the run quiesces, watch
//! mode re-reads `/ledger` and **exits nonzero if any guess is still
//! open**: a promise somebody made and never reconciled (§5).
//!
//! ## Incident forensics
//!
//! Under `--fault-plan`, the run audits the runtime's black box after
//! the plan completes: every planned crash clause must have filed
//! exactly one incident whose causal slice contains the crash edge,
//! and (when telemetry is up) `/incidents` and `/explain?incident=N`
//! must serve the post-mortems live — text and Perfetto both. With
//! `--incidents-dir DIR` the incident ring is drained to a durable
//! [`IncidentStream`] under `DIR/stream/`, reopened to prove the
//! records survive the process, and rendered to `incidents.json` plus
//! one `incident-*.txt` per record for the CI artifact tab.
//!
//! ## Membership mode
//!
//! `--spares N` provisions N standby stores outside the ring, and
//! `--join-at MS` / `--leave-at MS` fire a live `CtlJoin` (first
//! spare) / `CtlLeave` (last member) at the given wall-clock offsets
//! while the clients drive load. The run then audits the whole
//! rebalance before exiting: every acked add must be present in the
//! **final** ring's reconciled stores, every key-transfer guess must
//! settle, the joiner must end in-ring with zero open transfers, the
//! leaver must drain and depart, and `membership.ring_version` —
//! sampled via HTTP `/metrics` before and after the change when
//! telemetry is up — must advance. Any miss is a nonzero exit.
//! Composes with `--watch` (the ledger audit covers the transfer
//! guesses too); `--leave-at` requires `--stores 4` or more so an
//! N=3 quorum survives the departure.
//!
//! ## Sweep mode
//!
//! `--sweep-out BENCH_6.json` runs the threads × payload grid (clients
//! × items-per-put) and writes one JSON table with throughput and
//! latency percentiles per cell — the repo's BENCH_6 artifact. Key
//! order and all non-timing fields are deterministic.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cart::CrdtCart;
use dynamo::{DynamoConfig, StoreNode};
use quicksand_bench::http::{http_get, json_number};
use quicksand_bench::incidents::IncidentStream;
use quicksand_bench::service::{add_crdt_stores_with_spares, LoadClient, ServiceMsg};
use quicksand_runtime::{RuntimeBuilder, TransportKind};
use sim::{
    FaultPlan, FaultSpec, FlightKind, Incident, IncidentKind, LogHistogram, NodeId, SimDuration,
    SimTime,
};

use crdt::Crdt;

fn arg_value(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let pos = args.iter().position(|a| a == flag)?;
    args.remove(pos);
    if pos >= args.len() {
        eprintln!("{flag} needs a value");
        std::process::exit(2);
    }
    Some(args.remove(pos))
}

fn arg_flag(args: &mut Vec<String>, flag: &str) -> bool {
    let pos = args.iter().position(|a| a == flag);
    if let Some(pos) = pos {
        args.remove(pos);
        true
    } else {
        false
    }
}

#[derive(Clone)]
struct Config {
    stores: u32,
    /// Standby stores provisioned outside the ring (`--join-at` targets).
    spares: u32,
    /// Wall-clock ms after launch at which the first spare joins.
    join_at_ms: Option<u64>,
    /// Wall-clock ms after launch at which the last member leaves.
    leave_at_ms: Option<u64>,
    clients: u32,
    ops_per_client: Option<u64>,
    keys: u64,
    put_pct: u32,
    think_us: u64,
    items_per_put: u64,
    transport: TransportKind,
    seed: Option<u64>,
    timeout_secs: u64,
    json_out: Option<String>,
    sweep_out: Option<String>,
    telemetry_addr: Option<String>,
    watch: bool,
    /// Seed for a generated [`FaultPlan`] run under the load (chaos).
    fault_plan: Option<u64>,
    fault_clauses: usize,
    fault_window_ms: u64,
    /// Persist the run's incident ring to a durable [`IncidentStream`]
    /// under this directory (plus text/index artifacts for CI).
    incidents_dir: Option<String>,
}

fn parse_args() -> Config {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = Config {
        stores: arg_value(&mut args, "--stores").map_or(4, |v| v.parse().expect("--stores")),
        spares: arg_value(&mut args, "--spares").map_or(0, |v| v.parse().expect("--spares")),
        join_at_ms: arg_value(&mut args, "--join-at").map(|v| v.parse().expect("--join-at")),
        leave_at_ms: arg_value(&mut args, "--leave-at").map(|v| v.parse().expect("--leave-at")),
        clients: arg_value(&mut args, "--clients").map_or(8, |v| v.parse().expect("--clients")),
        ops_per_client: arg_value(&mut args, "--ops").map(|v| v.parse().expect("--ops")),
        keys: arg_value(&mut args, "--keys").map_or(512, |v| v.parse().expect("--keys")),
        put_pct: arg_value(&mut args, "--put-pct").map_or(50, |v| v.parse().expect("--put-pct")),
        think_us: arg_value(&mut args, "--think-us").map_or(0, |v| v.parse().expect("--think-us")),
        items_per_put: arg_value(&mut args, "--items-per-put")
            .map_or(1, |v| v.parse().expect("--items-per-put")),
        transport: arg_value(&mut args, "--transport")
            .map_or(TransportKind::Loopback, |v| v.parse().unwrap_or_else(|e| panic!("{e}"))),
        seed: arg_value(&mut args, "--seed").map(|v| v.parse().expect("--seed")),
        timeout_secs: arg_value(&mut args, "--timeout-secs")
            .map_or(300, |v| v.parse().expect("--timeout-secs")),
        json_out: arg_value(&mut args, "--json-out"),
        sweep_out: arg_value(&mut args, "--sweep-out"),
        telemetry_addr: arg_value(&mut args, "--telemetry-addr"),
        watch: arg_flag(&mut args, "--watch"),
        fault_plan: arg_value(&mut args, "--fault-plan").map(|v| v.parse().expect("--fault-plan")),
        fault_clauses: arg_value(&mut args, "--fault-clauses")
            .map_or(3, |v| v.parse().expect("--fault-clauses")),
        fault_window_ms: arg_value(&mut args, "--fault-window-ms")
            .map_or(2500, |v| v.parse().expect("--fault-window-ms")),
        incidents_dir: arg_value(&mut args, "--incidents-dir"),
    };
    if !args.is_empty() {
        eprintln!("unknown args: {args:?}");
        std::process::exit(2);
    }
    if cfg.join_at_ms.is_some() && cfg.spares == 0 {
        eprintln!("--join-at needs at least one standby store (--spares N)");
        std::process::exit(2);
    }
    if cfg.leave_at_ms.is_some() && cfg.stores < 4 {
        eprintln!("--leave-at needs --stores >= 4 so an N=3 quorum survives the leave");
        std::process::exit(2);
    }
    cfg
}

/// The chaos spec for a stores+clients topology: any node can be
/// partitioned or degraded, but only *stores* are crashable — the
/// clients hold the audit's ground truth (acked adds) in process
/// memory, and the invariant under test is "the service never loses an
/// acked op", not "the auditor survives".
fn fault_spec(cfg: &Config) -> FaultSpec {
    let all: Vec<NodeId> =
        (0..(cfg.stores + cfg.spares + cfg.clients) as usize).map(NodeId).collect();
    let stores: Vec<NodeId> = (0..cfg.stores as usize).map(NodeId).collect();
    FaultSpec::new(all)
        .crashable(stores)
        .window(SimTime::from_millis(150), SimTime::from_millis(cfg.fault_window_ms))
        .faults(cfg.fault_clauses, cfg.fault_clauses)
        // A 3-clause plan should be able to cover crash + partition +
        // degrade (the CI smoke pins such a seed); one-way partitions
        // join the pool once there is room for a fourth kind.
        .oneway(cfg.fault_clauses >= 4)
}

/// Everything one closed-loop run produces.
struct RunResult {
    total_ops: u64,
    elapsed: Duration,
    throughput: f64,
    gets: u64,
    puts: u64,
    get_p50: f64,
    get_p99: f64,
    put_p50: f64,
    put_p99: f64,
    acked: usize,
    lost: Vec<(u64, u64)>,
    get_failures: u64,
    put_failures: u64,
    stuck: u64,
    /// Open guesses after quiescence (from the final engine core).
    open_guesses: u64,
    /// Last ops/s the telemetry endpoint reported, when watching.
    telemetry_rate: Option<f64>,
    /// Open-guess count `/ledger` reported after quiescence, when
    /// watching (the endpoint's answer, cross-checked against the core).
    ledger_open_via_http: Option<u64>,
    /// `membership.ring_version` before and after a `--join-at` /
    /// `--leave-at` change, as the metrics surface reported it.
    ring_versions: Option<(f64, f64)>,
}

/// Poll the telemetry surface and keep a one-line dashboard fresh on
/// stderr until `stop` flips. Records the last observed ops/s so the
/// caller can cross-check it against its own measurement.
fn watch_loop(addr: SocketAddr, stop: Arc<AtomicBool>, last_rate_bits: Arc<AtomicU64>) {
    // A section-scoped numeric read: the first `"key"` match *after*
    // `section` (plain `json_number` would hit the counters section).
    fn section_number(body: &str, section: &str, key: &str) -> Option<f64> {
        let at = body.find(&format!("\"{section}\""))?;
        json_number(&body[at..], key)
    }
    while !stop.load(Ordering::SeqCst) {
        let metrics = http_get(addr, "/metrics?format=json").ok();
        let ledger = http_get(addr, "/ledger").ok();
        let health = http_get(addr, "/health").ok();
        let rate =
            metrics.as_ref().and_then(|(_, b)| section_number(b, "rates_per_sec", "load.ops_done"));
        let p99_us = metrics.as_ref().and_then(|(_, b)| {
            let at = b.find("\"window_histograms\"")?;
            section_number(&b[at..], "load.get_us", "p99")
        });
        let open = ledger.as_ref().and_then(|(_, b)| json_number(b, "open"));
        // Worst-case apology p99 across substrates, from the ledger's
        // per-substrate open→apology histograms (§5: how long did a
        // customer wait to hear "sorry"?).
        let apology_p99 = ledger.as_ref().and_then(|(_, b)| {
            b.match_indices("\"apology_latency_us\"")
                .filter_map(|(at, _)| json_number(&b[at..], "p99"))
                .fold(None, |best: Option<f64>, v| Some(best.map_or(v, |b| b.max(v))))
        });
        let (up, total) = health
            .as_ref()
            .map(|(_, b)| (json_number(b, "nodes_up"), json_number(b, "nodes_total")))
            .unwrap_or((None, None));
        if let Some(r) = rate {
            last_rate_bits.store(r.to_bits(), Ordering::SeqCst);
        }
        let mut line = String::from("watch:");
        match rate {
            Some(r) => {
                let _ = write!(line, " {r:7.0} ops/s");
            }
            None => line.push_str(" (rates warming up)"),
        }
        if let Some(p) = p99_us {
            let _ = write!(line, " | get p99 {:.1}ms", p / 1000.0);
        }
        if let Some(o) = open {
            let _ = write!(line, " | open guesses {o:.0}");
        }
        if let Some(p) = apology_p99 {
            let _ = write!(line, " | apology p99 {:.1}ms", p / 1000.0);
        }
        if let (Some(u), Some(t)) = (up, total) {
            let _ = write!(line, " | nodes {u:.0}/{t:.0} up");
        }
        eprint!("\r{line}    ");
        let mut slept = Duration::ZERO;
        while slept < Duration::from_millis(500) && !stop.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(50));
            slept += Duration::from_millis(50);
        }
    }
    eprintln!();
}

fn run_once(cfg: &Config, ops_per_client: u64) -> RunResult {
    let mut b = RuntimeBuilder::new();
    if let Some(s) = cfg.seed {
        b = b.seed(s);
    }
    if cfg.watch || cfg.telemetry_addr.is_some() {
        let addr = cfg.telemetry_addr.clone().unwrap_or_else(|| "127.0.0.1:0".to_owned());
        b = b
            .telemetry(addr.as_str())
            .unwrap_or_else(|e| {
                eprintln!("cannot bind telemetry on {addr}: {e}");
                std::process::exit(2);
            })
            .snapshot_interval(Duration::from_millis(500));
    }
    let chaos_plan = match cfg.fault_plan {
        Some(fseed) => {
            let plan = FaultPlan::generate(fseed, &fault_spec(cfg));
            eprintln!("fault plan (seed {fseed}, {} clauses): {plan}", plan.len());
            b = b.chaos(plan.clone(), fseed);
            Some(plan)
        }
        None => None,
    };
    let store_ids =
        add_crdt_stores_with_spares(&mut b, cfg.stores, cfg.spares, &DynamoConfig::default());
    // Clients route through the founding members only; a spare becomes
    // reachable through *them* once it joins the ring (that's the point
    // of the audit — no client ever learns the spare's address).
    let member_ids: Vec<NodeId> = store_ids[..cfg.stores as usize].to_vec();
    let mut client_ids = Vec::new();
    for c in 0..cfg.clients {
        let client = LoadClient::new(c, member_ids.clone(), ops_per_client, cfg.keys, cfg.put_pct)
            .with_think(SimDuration::from_micros(cfg.think_us))
            .with_items_per_put(cfg.items_per_put);
        client_ids.push(b.add_node(client));
    }

    let total_ops = cfg.clients as u64 * ops_per_client;
    let started = Instant::now();
    let rt = b.launch_transport(cfg.transport).expect("launch");
    if let Some(addr) = rt.telemetry_addr() {
        eprintln!(
            "telemetry: http://{addr}  (/health /metrics /ledger /trace /incidents /explain)"
        );
    }

    let stop = Arc::new(AtomicBool::new(false));
    let last_rate_bits = Arc::new(AtomicU64::new(f64::NAN.to_bits()));
    let watcher = (cfg.watch && rt.telemetry_addr().is_some()).then(|| {
        let addr = rt.telemetry_addr().expect("telemetry enabled for watch");
        let stop = stop.clone();
        let bits = last_rate_bits.clone();
        std::thread::spawn(move || watch_loop(addr, stop, bits))
    });

    // The ring digest every store publishes as `membership.ring_version`
    // — read through the live `/metrics` endpoint when it's up (the
    // operator's view), falling back to the engine core's gauge.
    let ring_version_now = |rt: &quicksand_runtime::Runtime<ServiceMsg>| -> f64 {
        if let Some(addr) = rt.telemetry_addr() {
            if let Ok((_, body)) = http_get(addr, "/metrics?format=json") {
                if let Some(v) = json_number(&body, "membership.ring_version") {
                    return v;
                }
            }
        }
        rt.with_core(|c| c.metrics.gauge("membership.ring_version"))
    };
    let joiner = NodeId(cfg.stores as usize); // first spare
    let leaver = NodeId(cfg.stores as usize - 1); // last founding member
    let mut join_fired = false;
    let mut leave_fired = false;
    let mut ring_before: Option<f64> = None;

    // Closed loop: poll until every client has worked through its ops,
    // firing any scheduled membership changes at their wall-clock marks.
    let deadline = started + Duration::from_secs(cfg.timeout_secs);
    loop {
        std::thread::sleep(Duration::from_millis(50));
        let elapsed_ms = started.elapsed().as_millis() as u64;
        if !join_fired && cfg.join_at_ms.is_some_and(|at| elapsed_ms >= at) {
            let v = *ring_before.get_or_insert_with(|| ring_version_now(&rt));
            eprintln!("  membership: CtlJoin -> n{} at {elapsed_ms}ms (ring v{v:.0})", joiner.0);
            rt.inject(joiner, joiner, ServiceMsg::CtlJoin);
            join_fired = true;
        }
        if !leave_fired && cfg.leave_at_ms.is_some_and(|at| elapsed_ms >= at) {
            let v = *ring_before.get_or_insert_with(|| ring_version_now(&rt));
            eprintln!("  membership: CtlLeave -> n{} at {elapsed_ms}ms (ring v{v:.0})", leaver.0);
            rt.inject(leaver, leaver, ServiceMsg::CtlLeave);
            leave_fired = true;
        }
        let done = client_ids.iter().all(|&c| rt.inspect::<LoadClient, bool, _>(c, |cl| cl.done()));
        if done {
            break;
        }
        if Instant::now() > deadline {
            eprintln!("TIMEOUT: clients still running after {}s", cfg.timeout_secs);
            std::process::exit(1);
        }
    }
    // A mark past the end of client work still fires — the audit wants
    // the join/leave to happen, not to silently miss the window.
    if cfg.join_at_ms.is_some() && !join_fired {
        ring_before.get_or_insert_with(|| ring_version_now(&rt));
        eprintln!("  membership: CtlJoin -> n{} (after client work)", joiner.0);
        rt.inject(joiner, joiner, ServiceMsg::CtlJoin);
    }
    if cfg.leave_at_ms.is_some() && !leave_fired {
        ring_before.get_or_insert_with(|| ring_version_now(&rt));
        eprintln!("  membership: CtlLeave -> n{} (after client work)", leaver.0);
        rt.inject(leaver, leaver, ServiceMsg::CtlLeave);
    }
    let elapsed = started.elapsed();

    // Under chaos, the plan's clauses may outlive the client work: wait
    // for the controller to finish (every heal applied) before auditing,
    // then give anti-entropy longer to repair what the faults tore.
    if chaos_plan.is_some() {
        let chaos = rt.chaos().expect("chaos attached");
        if !chaos.wait_finished(Duration::from_secs(cfg.timeout_secs)) {
            eprintln!("TIMEOUT: fault plan still running after {}s", cfg.timeout_secs);
            std::process::exit(1);
        }
        for line in chaos.applied() {
            eprintln!("  fault: {line}");
        }
    }

    // Membership settle: the joiner must reach the ring, the leaver must
    // drain its transfers and depart, and every rebalance transfer
    // anywhere must ack — only then is the durability audit fair.
    let mut ring_after: Option<f64> = None;
    if cfg.join_at_ms.is_some() || cfg.leave_at_ms.is_some() {
        let mdeadline = Instant::now() + Duration::from_secs(cfg.timeout_secs);
        loop {
            let drained = store_ids.iter().all(|&s| {
                rt.inspect::<StoreNode<CrdtCart>, bool, _>(s, |n| n.transfer_count() == 0)
            });
            let joined = cfg.join_at_ms.is_none()
                || rt.inspect::<StoreNode<CrdtCart>, bool, _>(joiner, |n| {
                    n.gossiper.status().in_ring()
                });
            let departed = cfg.leave_at_ms.is_none()
                || rt.inspect::<StoreNode<CrdtCart>, bool, _>(leaver, |n| n.gossiper.departed());
            if drained && joined && departed {
                break;
            }
            if Instant::now() > mdeadline {
                eprintln!("TIMEOUT: membership change did not settle in {}s", cfg.timeout_secs);
                for &s in &store_ids {
                    let line = rt.inspect::<StoreNode<CrdtCart>, String, _>(s, move |n| {
                        format!(
                            "n{} {:?} departed={} transfers={} keys={} ring v{}",
                            s.0,
                            n.gossiper.status(),
                            n.gossiper.departed(),
                            n.transfer_count(),
                            n.key_count(),
                            n.ring_version()
                        )
                    });
                    eprintln!("    {line}");
                }
                std::process::exit(1);
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        // One more gossip round so every survivor converges on the new
        // view, then read the operator-visible ring version back.
        std::thread::sleep(Duration::from_millis(300));
        ring_after = Some(ring_version_now(&rt));
        let (before, after) = (ring_before.unwrap_or(0.0), ring_after.unwrap_or(0.0));
        if before == after {
            eprintln!("RING VERSION DID NOT ADVANCE: v{before:.0} before and after the change");
            std::process::exit(1);
        }
        eprintln!("  membership settled: ring v{before:.0} -> v{after:.0}, all transfers acked");
    }

    // Let a final round of anti-entropy spread the tail, then audit.
    std::thread::sleep(Duration::from_millis(if chaos_plan.is_some() { 900 } else { 300 }));
    // The quiescent ledger as the *endpoint* sees it, before teardown.
    let ledger_open_via_http = rt
        .telemetry_addr()
        .and_then(|addr| http_get(addr, "/ledger").ok())
        .and_then(|(_, body)| json_number(&body, "open"))
        .map(|v| v as u64);
    // After the plan has fully run out, every crashed node is back up:
    // `/health` must say 200 and its per-node crash counters must sum
    // to exactly the plan's crash clauses.
    if let (Some(plan), Some(addr)) = (&chaos_plan, rt.telemetry_addr()) {
        match http_get(addr, "/health") {
            Ok((status, body)) => {
                let total: u64 = body
                    .match_indices("\"crashes\":")
                    .map(|(i, pat)| {
                        body[i + pat.len()..]
                            .chars()
                            .take_while(char::is_ascii_digit)
                            .collect::<String>()
                            .parse()
                            .unwrap_or(0)
                    })
                    .sum();
                let want = plan.count_kind("crash") as u64;
                if status != 200 || total != want {
                    eprintln!(
                        "HEALTH CHECK FAILED after chaos: status {status}, \
                         node crash counters sum to {total} (want {want})"
                    );
                    std::process::exit(1);
                }
                eprintln!(
                    "  /health 200 after heal; node crash counters sum to {total} \
                     (= plan's crash clauses)"
                );
            }
            Err(e) => {
                eprintln!("/health after chaos: {e}");
                std::process::exit(1);
            }
        }
    }
    // Live forensics check: while the surface is still up (and traffic
    // may still be settling), the black box must already hold every
    // chaos crash, and `/explain` must serve both renderings for each.
    if let (Some(_), Some(addr)) = (&chaos_plan, rt.telemetry_addr()) {
        let crash_seqs: Vec<u64> = rt.with_core(|c| {
            c.incidents
                .iter()
                .filter(|i| i.kind == IncidentKind::ChaosCrash)
                .map(|i| i.seq)
                .collect()
        });
        match http_get(addr, "/incidents") {
            Ok((200, body)) => {
                let count = json_number(&body, "count").unwrap_or(-1.0) as i64;
                if count < crash_seqs.len() as i64 {
                    eprintln!(
                        "/incidents reports {count} incidents; core holds {} chaos crashes",
                        crash_seqs.len()
                    );
                    std::process::exit(1);
                }
            }
            other => {
                eprintln!("/incidents did not serve the index: {other:?}");
                std::process::exit(1);
            }
        }
        for &seq in &crash_seqs {
            match http_get(addr, &format!("/explain?incident={seq}")) {
                Ok((200, text)) if text.contains("crash") => {}
                other => {
                    eprintln!("/explain?incident={seq} bad text rendering: {other:?}");
                    std::process::exit(1);
                }
            }
            match http_get(addr, &format!("/explain?incident={seq}&format=perfetto")) {
                Ok((200, body)) if body.trim_start().starts_with('[') => {}
                other => {
                    eprintln!("/explain?incident={seq}&format=perfetto not a trace: {other:?}");
                    std::process::exit(1);
                }
            }
        }
        eprintln!(
            "  /incidents + /explain serve {} chaos-crash post-mortem(s) live",
            crash_seqs.len()
        );
    }
    stop.store(true, Ordering::SeqCst);
    if let Some(w) = watcher {
        w.join().ok();
    }
    let report = rt.shutdown();

    // Gather client-side truth.
    let mut acked: Vec<(u64, u64)> = Vec::new();
    let (mut get_failures, mut put_failures, mut stuck) = (0u64, 0u64, 0u64);
    for &c in &client_ids {
        let cl = report.actor::<LoadClient>(c);
        acked.extend(cl.acked_adds.iter().copied());
        get_failures += cl.get_failures;
        put_failures += cl.put_failures;
        stuck += cl.stuck_retries;
    }

    // Reconcile every store's state per key and audit acked adds.
    let stores: Vec<&StoreNode<CrdtCart>> =
        store_ids.iter().map(|&s| report.actor::<StoreNode<CrdtCart>>(s)).collect();
    let mut reconciled: BTreeMap<u64, BTreeMap<u64, u32>> = BTreeMap::new();
    for key in 0..cfg.keys {
        let mut joined = CrdtCart::new();
        for s in &stores {
            for v in s.versions(key) {
                joined.merge(&v.value);
            }
        }
        reconciled.insert(key, joined.materialize());
    }
    let lost: Vec<(u64, u64)> = acked
        .iter()
        .copied()
        .filter(|(key, item)| !reconciled.get(key).is_some_and(|c| c.contains_key(item)))
        .collect();

    // Post-mortem membership audit against the actors' final state.
    if cfg.join_at_ms.is_some() {
        let spare = report.actor::<StoreNode<CrdtCart>>(joiner);
        if !spare.gossiper.status().in_ring() || spare.transfer_count() != 0 {
            eprintln!(
                "JOIN AUDIT FAILED: n{} ended {:?} with {} transfer(s) unacked",
                joiner.0,
                spare.gossiper.status(),
                spare.transfer_count()
            );
            std::process::exit(1);
        }
        eprintln!(
            "  join audit: n{} is {:?} in the ring holding {} key(s)",
            joiner.0,
            spare.gossiper.status(),
            spare.key_count()
        );
    }
    if cfg.leave_at_ms.is_some() {
        let gone = report.actor::<StoreNode<CrdtCart>>(leaver);
        if gone.gossiper.status().in_ring()
            || !gone.gossiper.departed()
            || gone.transfer_count() != 0
        {
            eprintln!(
                "LEAVE AUDIT FAILED: n{} ended {:?} (departed: {}) with {} transfer(s) unacked",
                leaver.0,
                gone.gossiper.status(),
                gone.gossiper.departed(),
                gone.transfer_count()
            );
            std::process::exit(1);
        }
        eprintln!("  leave audit: n{} departed cleanly, every owed key streamed out", leaver.0);
    }

    let mut core = report.core;
    // Percentiles via the log-bucketed estimator — the exact same shape
    // the telemetry endpoint serves for these histograms.
    let (gets, get_p50, get_p99) = {
        let lh = LogHistogram::from_exact(core.metrics.histogram("load.get_us"));
        (lh.count(), lh.percentile(50.0), lh.percentile(99.0))
    };
    let (puts, put_p50, put_p99) = {
        let lh = LogHistogram::from_exact(core.metrics.histogram("load.put_us"));
        (lh.count(), lh.percentile(50.0), lh.percentile(99.0))
    };
    let open_guesses = core.ledger.open_count();
    if let Some(plan) = &chaos_plan {
        // The injected faults must be accounted for: every clause edge
        // bumped `runtime.chaos_clauses`, and every crash clause came
        // back as exactly one restart. A mismatch means the chaos layer
        // skipped or double-applied a clause — fail loudly.
        let restarts = core.metrics.counter("runtime.restarts");
        let clauses = core.metrics.counter("runtime.chaos_clauses");
        let want_restarts = plan.count_kind("crash") as u64;
        let want_clauses = plan.timeline().len() as u64;
        if restarts != want_restarts || clauses != want_clauses {
            eprintln!(
                "CHAOS ACCOUNTING MISMATCH: {restarts} restarts (want {want_restarts}), \
                 {clauses} clause edges (want {want_clauses})"
            );
            std::process::exit(1);
        }
        eprintln!(
            "  chaos accounted: {clauses} clause edges applied, {restarts} crash/restart cycles"
        );
        // The tentpole invariant: every planned crash produced exactly
        // one incident whose causal slice contains the crash edge
        // itself. Fewer means the black box missed a crash; more means
        // something double-filed; a slice without its own crash edge
        // would be a post-mortem that cannot explain the death.
        let crashes: Vec<&Incident> =
            core.incidents.iter().filter(|i| i.kind == IncidentKind::ChaosCrash).collect();
        let want = plan.count_kind("crash");
        if crashes.len() != want {
            eprintln!(
                "INCIDENT AUDIT FAILED: {} chaos-crash incident(s) filed (want {want})",
                crashes.len()
            );
            std::process::exit(1);
        }
        for inc in &crashes {
            let has_edge = inc
                .explanation
                .slice
                .events
                .iter()
                .any(|e| e.id == inc.target && e.kind == FlightKind::Crash);
            if !has_edge {
                eprintln!(
                    "INCIDENT AUDIT FAILED: incident #{} (node n{}) slice is missing its \
                     crash edge E{}",
                    inc.seq, inc.node.0, inc.target.0
                );
                std::process::exit(1);
            }
        }
        eprintln!(
            "  incident audit: {want} planned crash(es), {want} incident(s), every slice \
             contains its crash edge"
        );
    }
    if let Some(dir) = &cfg.incidents_dir {
        let dir = std::path::Path::new(dir);
        std::fs::create_dir_all(dir).unwrap_or_else(|e| {
            eprintln!("creating {}: {e}", dir.display());
            std::process::exit(1);
        });
        let all: Vec<Incident> = core.incidents.iter().cloned().collect();
        let mut stream = IncidentStream::open(&dir.join("stream"));
        let fresh = all.iter().filter(|i| stream.append(i)).count();
        drop(stream);
        // Reopen from disk: the black box must survive the process
        // that wrote it, and a re-drain must be a pure dedup no-op.
        let mut reopened = IncidentStream::open(&dir.join("stream"));
        let redrained = all.iter().filter(|i| reopened.append(i)).count();
        if redrained != 0 {
            eprintln!("INCIDENT STREAM NOT IDEMPOTENT: {redrained} records re-appended");
            std::process::exit(1);
        }
        let held = reopened.replay();
        if held.len() < all.len() {
            eprintln!(
                "INCIDENT STREAM LOST RECORDS: appended {} but only {} survive reopen",
                all.len(),
                held.len()
            );
            std::process::exit(1);
        }
        std::fs::write(dir.join("incidents.json"), reopened.index_json()).unwrap_or_else(|e| {
            eprintln!("writing incidents.json: {e}");
            std::process::exit(1);
        });
        for rec in &held {
            let name = format!("incident-n{}-e{}-{}.txt", rec.node, rec.epoch, rec.seq);
            std::fs::write(dir.join(name), &rec.text).unwrap_or_else(|e| {
                eprintln!("writing incident text: {e}");
                std::process::exit(1);
            });
        }
        eprintln!(
            "  incidents: {} durable under {} ({} new this run, reopen verified)",
            held.len(),
            dir.display(),
            fresh
        );
    }
    let throughput = total_ops as f64 / elapsed.as_secs_f64();
    let watched_rate = f64::from_bits(last_rate_bits.load(Ordering::SeqCst));

    RunResult {
        total_ops,
        elapsed,
        throughput,
        gets,
        puts,
        get_p50,
        get_p99,
        put_p50,
        put_p99,
        acked: acked.len(),
        lost,
        get_failures,
        put_failures,
        stuck,
        open_guesses,
        telemetry_rate: watched_rate.is_finite().then_some(watched_rate),
        ledger_open_via_http,
        ring_versions: ring_before.zip(ring_after),
    }
}

/// The BENCH_6 grid: worker-thread count (clients) × payload size
/// (unique items per PUT).
const SWEEP_CLIENTS: [u32; 3] = [1, 4, 8];
const SWEEP_ITEMS: [u64; 2] = [1, 8];
/// Total ops per sweep cell (split across that cell's clients).
const SWEEP_OPS_PER_CELL: u64 = 4000;

fn run_sweep(cfg: &Config, path: &str) {
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"BENCH_6\",");
    let _ = writeln!(
        json,
        "  \"description\": \"wall-clock cart service, closed loop: worker threads (clients) x payload (items per PUT)\","
    );
    let _ = writeln!(json, "  \"transport\": \"{:?}\",", cfg.transport);
    let _ = writeln!(json, "  \"stores\": {},", cfg.stores);
    let _ = writeln!(json, "  \"keys\": {},", cfg.keys);
    let _ = writeln!(json, "  \"put_pct\": {},", cfg.put_pct);
    let _ = writeln!(json, "  \"ops_per_cell\": {SWEEP_OPS_PER_CELL},");
    json.push_str("  \"cells\": [\n");
    let mut first = true;
    for &clients in &SWEEP_CLIENTS {
        for &items in &SWEEP_ITEMS {
            let cell_cfg = Config { clients, items_per_put: items, watch: false, ..cfg.clone() };
            let ops_per_client = (SWEEP_OPS_PER_CELL / clients as u64).max(1);
            eprintln!("sweep cell: {clients} clients x {items} items/put");
            let r = run_once(&cell_cfg, ops_per_client);
            eprintln!(
                "  {:>6.0} ops/s | get p99 {:>7.0} us | put p99 {:>7.0} us | lost {} | open {}",
                r.throughput,
                r.get_p99,
                r.put_p99,
                r.lost.len(),
                r.open_guesses
            );
            if r.open_guesses > 0 || !r.lost.is_empty() {
                eprintln!(
                    "SWEEP CELL FAILED: {} lost acked adds, {} open guesses",
                    r.lost.len(),
                    r.open_guesses
                );
                std::process::exit(1);
            }
            if !first {
                json.push_str(",\n");
            }
            first = false;
            let _ = write!(
                json,
                "    {{\"clients\": {clients}, \"items_per_put\": {items}, \
                 \"worker_threads\": {}, \"ops_total\": {}, \"acked_adds\": {}, \
                 \"lost_acked_adds\": {}, \"open_guesses_after_quiescence\": {}, \
                 \"elapsed_secs\": {:.3}, \"throughput_ops_per_sec\": {:.0}, \
                 \"get_p50_us\": {:.0}, \"get_p99_us\": {:.0}, \
                 \"put_p50_us\": {:.0}, \"put_p99_us\": {:.0}}}",
                cfg.stores + clients,
                r.total_ops,
                r.acked,
                r.lost.len(),
                r.open_guesses,
                r.elapsed.as_secs_f64(),
                r.throughput,
                r.get_p50,
                r.get_p99,
                r.put_p50,
                r.put_p99,
            );
        }
    }
    json.push_str("\n  ]\n}\n");
    std::fs::write(path, json).unwrap_or_else(|e| {
        eprintln!("writing {path}: {e}");
        std::process::exit(1);
    });
    eprintln!("sweep table written to {path}");
}

fn main() {
    let cfg = parse_args();
    if let Some(path) = cfg.sweep_out.clone() {
        run_sweep(&cfg, &path);
        return;
    }

    let ops_per_client = cfg.ops_per_client.unwrap_or(6250);
    let total_ops = cfg.clients as u64 * ops_per_client;
    eprintln!(
        "loadgen: {} stores + {} clients on {:?} ({} worker threads), {} ops total, {}% puts, {} items/put",
        cfg.stores,
        cfg.clients,
        cfg.transport,
        cfg.stores + cfg.clients,
        total_ops,
        cfg.put_pct,
        cfg.items_per_put,
    );

    let r = run_once(&cfg, ops_per_client);

    eprintln!(
        "completed {} ops in {:.2}s — {:.0} ops/s across {} worker threads",
        r.total_ops,
        r.elapsed.as_secs_f64(),
        r.throughput,
        cfg.stores + cfg.clients,
    );
    eprintln!("  GET ({}): p50 {:.0} us, p99 {:.0} us", r.gets, r.get_p50, r.get_p99);
    eprintln!("  PUT ({}): p50 {:.0} us, p99 {:.0} us", r.puts, r.put_p50, r.put_p99);
    eprintln!(
        "  acked adds {} | lost {} | get failures {} | put failures {} | stuck retries {}",
        r.acked,
        r.lost.len(),
        r.get_failures,
        r.put_failures,
        r.stuck,
    );
    if let Some(rate) = r.telemetry_rate {
        eprintln!(
            "  telemetry endpoint saw {rate:.0} ops/s (loadgen measured {:.0} ops/s overall)",
            r.throughput
        );
    }

    if let Some(path) = &cfg.json_out {
        // Key order is fixed and all non-timing fields are functions of
        // the workload, so two runs of the same config differ only in
        // the timing values.
        let mut json = String::from("{\n");
        let _ = writeln!(json, "  \"stores\": {},", cfg.stores);
        let _ = writeln!(json, "  \"clients\": {},", cfg.clients);
        let _ = writeln!(json, "  \"worker_threads\": {},", cfg.stores + cfg.clients);
        let _ = writeln!(json, "  \"transport\": \"{:?}\",", cfg.transport);
        let _ = writeln!(json, "  \"ops_total\": {},", r.total_ops);
        let _ = writeln!(json, "  \"put_pct\": {},", cfg.put_pct);
        let _ = writeln!(json, "  \"items_per_put\": {},", cfg.items_per_put);
        let _ = writeln!(json, "  \"acked_adds\": {},", r.acked);
        let _ = writeln!(json, "  \"lost_acked_adds\": {},", r.lost.len());
        let _ = writeln!(json, "  \"open_guesses_after_quiescence\": {},", r.open_guesses);
        let _ = writeln!(json, "  \"elapsed_secs\": {:.3},", r.elapsed.as_secs_f64());
        let _ = writeln!(json, "  \"throughput_ops_per_sec\": {:.0},", r.throughput);
        let _ = writeln!(json, "  \"get_p50_us\": {:.0},", r.get_p50);
        let _ = writeln!(json, "  \"get_p99_us\": {:.0},", r.get_p99);
        let _ = writeln!(json, "  \"put_p50_us\": {:.0},", r.put_p50);
        let _ = writeln!(json, "  \"put_p99_us\": {:.0}", r.put_p99);
        json.push_str("}\n");
        std::fs::write(path, json).unwrap_or_else(|e| {
            eprintln!("writing {path}: {e}");
            std::process::exit(1);
        });
    }

    if !r.lost.is_empty() {
        eprintln!("LOST ACKED ADDS (first 10): {:?}", &r.lost[..r.lost.len().min(10)]);
        std::process::exit(1);
    }
    if cfg.fault_plan.is_some() {
        // A chaos run is only a pass if the ledger settled too: a guess
        // left open after quiescence is a promise nobody reconciled.
        if r.open_guesses > 0 {
            eprintln!("OPEN GUESSES AFTER CHAOS QUIESCENCE: {}", r.open_guesses);
            std::process::exit(1);
        }
        eprintln!("  chaos run clean: 0 lost acked adds, 0 open guesses");
    }
    if cfg.join_at_ms.is_some() || cfg.leave_at_ms.is_some() {
        // A membership run passes only if the rebalance settled its
        // books: an open guess here is a key range somebody promised to
        // move and never confirmed.
        if r.open_guesses > 0 {
            eprintln!("OPEN GUESSES AFTER MEMBERSHIP CHANGE: {}", r.open_guesses);
            std::process::exit(1);
        }
        if let Some((before, after)) = r.ring_versions {
            eprintln!(
                "  membership run clean: ring v{before:.0} -> v{after:.0}, \
                 0 lost acked adds, 0 open guesses"
            );
        }
    }
    if cfg.watch {
        // The §5 invariant, enforced from the *outside*: the endpoint's
        // post-quiescence ledger must show zero open guesses.
        let open = r.ledger_open_via_http.unwrap_or(r.open_guesses);
        if open > 0 || r.open_guesses > 0 {
            eprintln!(
                "OPEN GUESSES AFTER QUIESCENCE: endpoint saw {}, core has {}",
                open, r.open_guesses
            );
            std::process::exit(1);
        }
        eprintln!("  ledger settled: 0 open guesses after quiescence");
    }
}
