//! Closed-loop load generator for the wall-clock cart service.
//!
//! Launches an N-store dynamo ring of CRDT carts plus C closed-loop
//! clients (every node is its own OS worker thread), drives a
//! configurable get/put mix, then audits the run: every acknowledged
//! add must be present in the reconciled store state — a lost acked op
//! is a nonzero exit, not a log line.
//!
//! ```text
//! cargo run -p quicksand-bench --release --bin loadgen -- \
//!     --stores 4 --clients 8 --ops 6250 --keys 512 --put-pct 50 \
//!     --transport loopback --json-out loadgen.json
//! ```
//!
//! Reported: total ops, wall-clock throughput, and p50/p99 GET/PUT
//! latencies from the shared `MetricSet` histograms. The `--json-out`
//! file is byte-stable across runs except for the timing fields
//! (`elapsed_secs`, `throughput_ops_per_sec`, `*_us` percentiles).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

use cart::CrdtCart;
use dynamo::{DynamoConfig, StoreNode};
use quicksand_bench::service::{add_crdt_stores, LoadClient};
use quicksand_runtime::{RuntimeBuilder, TransportKind};
use sim::SimDuration;

use crdt::Crdt;

fn arg_value(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let pos = args.iter().position(|a| a == flag)?;
    args.remove(pos);
    if pos >= args.len() {
        eprintln!("{flag} needs a value");
        std::process::exit(2);
    }
    Some(args.remove(pos))
}

struct Config {
    stores: u32,
    clients: u32,
    ops_per_client: u64,
    keys: u64,
    put_pct: u32,
    think_us: u64,
    transport: TransportKind,
    seed: Option<u64>,
    timeout_secs: u64,
    json_out: Option<String>,
}

fn parse_args() -> Config {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = Config {
        stores: arg_value(&mut args, "--stores").map_or(4, |v| v.parse().expect("--stores")),
        clients: arg_value(&mut args, "--clients").map_or(8, |v| v.parse().expect("--clients")),
        ops_per_client: arg_value(&mut args, "--ops").map_or(6250, |v| v.parse().expect("--ops")),
        keys: arg_value(&mut args, "--keys").map_or(512, |v| v.parse().expect("--keys")),
        put_pct: arg_value(&mut args, "--put-pct").map_or(50, |v| v.parse().expect("--put-pct")),
        think_us: arg_value(&mut args, "--think-us").map_or(0, |v| v.parse().expect("--think-us")),
        transport: arg_value(&mut args, "--transport")
            .map_or(TransportKind::Loopback, |v| v.parse().unwrap_or_else(|e| panic!("{e}"))),
        seed: arg_value(&mut args, "--seed").map(|v| v.parse().expect("--seed")),
        timeout_secs: arg_value(&mut args, "--timeout-secs")
            .map_or(300, |v| v.parse().expect("--timeout-secs")),
        json_out: arg_value(&mut args, "--json-out"),
    };
    if !args.is_empty() {
        eprintln!("unknown args: {args:?}");
        std::process::exit(2);
    }
    cfg
}

fn main() {
    let cfg = parse_args();
    let mut b = RuntimeBuilder::new();
    if let Some(s) = cfg.seed {
        b = b.seed(s);
    }
    let store_ids = add_crdt_stores(&mut b, cfg.stores, &DynamoConfig::default());
    let mut client_ids = Vec::new();
    for c in 0..cfg.clients {
        let client =
            LoadClient::new(c, store_ids.clone(), cfg.ops_per_client, cfg.keys, cfg.put_pct)
                .with_think(SimDuration::from_micros(cfg.think_us));
        client_ids.push(b.add_node(client));
    }

    let total_ops = cfg.clients as u64 * cfg.ops_per_client;
    eprintln!(
        "loadgen: {} stores + {} clients on {:?} ({} worker threads), {} ops total, {}% puts",
        cfg.stores,
        cfg.clients,
        cfg.transport,
        cfg.stores + cfg.clients,
        total_ops,
        cfg.put_pct,
    );

    let started = Instant::now();
    let rt = b.launch_transport(cfg.transport).expect("launch");

    // Closed loop: poll until every client has worked through its ops.
    let deadline = started + Duration::from_secs(cfg.timeout_secs);
    loop {
        std::thread::sleep(Duration::from_millis(50));
        let done = client_ids.iter().all(|&c| rt.inspect::<LoadClient, bool, _>(c, |cl| cl.done()));
        if done {
            break;
        }
        if Instant::now() > deadline {
            eprintln!("TIMEOUT: clients still running after {}s", cfg.timeout_secs);
            std::process::exit(1);
        }
    }
    let elapsed = started.elapsed();

    // Let a final round of anti-entropy spread the tail, then audit.
    std::thread::sleep(Duration::from_millis(300));
    let report = rt.shutdown();

    // Gather client-side truth.
    let mut acked: Vec<(u64, u64)> = Vec::new();
    let (mut get_failures, mut put_failures, mut stuck) = (0u64, 0u64, 0u64);
    for &c in &client_ids {
        let cl = report.actor::<LoadClient>(c);
        acked.extend(cl.acked_adds.iter().copied());
        get_failures += cl.get_failures;
        put_failures += cl.put_failures;
        stuck += cl.stuck_retries;
    }

    // Reconcile every store's state per key and audit acked adds.
    let stores: Vec<&StoreNode<CrdtCart>> =
        store_ids.iter().map(|&s| report.actor::<StoreNode<CrdtCart>>(s)).collect();
    let mut reconciled: BTreeMap<u64, BTreeMap<u64, u32>> = BTreeMap::new();
    for key in 0..cfg.keys {
        let mut joined = CrdtCart::new();
        for s in &stores {
            for v in s.versions(key) {
                joined.merge(&v.value);
            }
        }
        reconciled.insert(key, joined.materialize());
    }
    let lost: Vec<(u64, u64)> = acked
        .iter()
        .copied()
        .filter(|(key, item)| !reconciled.get(key).is_some_and(|c| c.contains_key(item)))
        .collect();

    let mut core = report.core;
    let p = |core: &mut sim::EngineCore, name: &str, pct: f64| -> f64 {
        core.metrics.histogram(name).percentile(pct)
    };
    let gets = core.metrics.histogram("load.get_us").count() as u64;
    let puts = core.metrics.histogram("load.put_us").count() as u64;
    let (get_p50, get_p99) = (p(&mut core, "load.get_us", 50.0), p(&mut core, "load.get_us", 99.0));
    let (put_p50, put_p99) = (p(&mut core, "load.put_us", 50.0), p(&mut core, "load.put_us", 99.0));
    let throughput = total_ops as f64 / elapsed.as_secs_f64();

    eprintln!(
        "completed {total_ops} ops in {:.2}s — {throughput:.0} ops/s across {} worker threads",
        elapsed.as_secs_f64(),
        cfg.stores + cfg.clients,
    );
    eprintln!("  GET ({gets}): p50 {get_p50:.0} us, p99 {get_p99:.0} us");
    eprintln!("  PUT ({puts}): p50 {put_p50:.0} us, p99 {put_p99:.0} us");
    eprintln!(
        "  acked adds {} | lost {} | get failures {get_failures} | put failures {put_failures} | stuck retries {stuck}",
        acked.len(),
        lost.len(),
    );

    if let Some(path) = &cfg.json_out {
        // Key order is fixed and all non-timing fields are functions of
        // the workload, so two runs of the same config differ only in
        // the timing values.
        let mut json = String::from("{\n");
        let _ = writeln!(json, "  \"stores\": {},", cfg.stores);
        let _ = writeln!(json, "  \"clients\": {},", cfg.clients);
        let _ = writeln!(json, "  \"worker_threads\": {},", cfg.stores + cfg.clients);
        let _ = writeln!(json, "  \"transport\": \"{:?}\",", cfg.transport);
        let _ = writeln!(json, "  \"ops_total\": {total_ops},");
        let _ = writeln!(json, "  \"put_pct\": {},", cfg.put_pct);
        let _ = writeln!(json, "  \"acked_adds\": {},", acked.len());
        let _ = writeln!(json, "  \"lost_acked_adds\": {},", lost.len());
        let _ = writeln!(json, "  \"elapsed_secs\": {:.3},", elapsed.as_secs_f64());
        let _ = writeln!(json, "  \"throughput_ops_per_sec\": {throughput:.0},");
        let _ = writeln!(json, "  \"get_p50_us\": {get_p50:.0},");
        let _ = writeln!(json, "  \"get_p99_us\": {get_p99:.0},");
        let _ = writeln!(json, "  \"put_p50_us\": {put_p50:.0},");
        let _ = writeln!(json, "  \"put_p99_us\": {put_p99:.0}");
        json.push_str("}\n");
        std::fs::write(path, json).unwrap_or_else(|e| {
            eprintln!("writing {path}: {e}");
            std::process::exit(1);
        });
    }

    if !lost.is_empty() {
        eprintln!("LOST ACKED ADDS (first 10): {:?}", &lost[..lost.len().min(10)]);
        std::process::exit(1);
    }
}
