//! Stand up the cart service on the wall-clock runtime and keep it
//! serving for a while: an N-node dynamo ring of CRDT cart stores (one
//! OS worker thread per node), with a probe client exercising a
//! put/get round trip so the run proves end-to-end liveness.
//!
//! ```text
//! cargo run -p quicksand-bench --release --bin serve -- \
//!     --stores 4 --transport tcp --duration-secs 5 \
//!     --telemetry-addr 127.0.0.1:9090
//! ```
//!
//! With `--telemetry-addr` the runtime serves its live operator surface
//! over HTTP while traffic flows — `curl` `/health`, `/metrics`,
//! `/ledger`, and `/trace` against the printed address (see the
//! "Operator surface" section of DESIGN.md). The flight recorder and
//! event trace are enabled alongside so `/trace` has spans to stream.
//!
//! Exits nonzero if the probe's PUT or GET fails — a served ring that
//! cannot answer a client is not serving.

use cart::CrdtCart;
use dynamo::{DynamoConfig, DynamoMsg, Probe, ProbeResult, VectorClock};
use quicksand_bench::service::add_crdt_stores;
use quicksand_runtime::{RuntimeBuilder, TransportKind};

fn arg_value(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let pos = args.iter().position(|a| a == flag)?;
    args.remove(pos);
    if pos >= args.len() {
        eprintln!("{flag} needs a value");
        std::process::exit(2);
    }
    Some(args.remove(pos))
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let stores: u32 = arg_value(&mut args, "--stores").map_or(4, |v| v.parse().expect("--stores"));
    // --threads is an alias for --stores: one worker thread per node.
    let stores =
        arg_value(&mut args, "--threads").map_or(stores, |v| v.parse().expect("--threads"));
    let transport: TransportKind = arg_value(&mut args, "--transport")
        .map_or(TransportKind::Loopback, |v| v.parse().unwrap_or_else(|e| panic!("{e}")));
    let duration: u64 =
        arg_value(&mut args, "--duration-secs").map_or(5, |v| v.parse().expect("--duration-secs"));
    let seed: Option<u64> = arg_value(&mut args, "--seed").map(|v| v.parse().expect("--seed"));
    let telemetry_addr = arg_value(&mut args, "--telemetry-addr");
    if !args.is_empty() {
        eprintln!("unknown args: {args:?}");
        std::process::exit(2);
    }

    let mut b = RuntimeBuilder::new();
    if let Some(s) = seed {
        b = b.seed(s);
    }
    if let Some(addr) = &telemetry_addr {
        // Flight + trace ride along so /trace has forensics to stream.
        b = b
            .telemetry(addr.as_str())
            .unwrap_or_else(|e| {
                eprintln!("cannot bind telemetry on {addr}: {e}");
                std::process::exit(2);
            })
            .flight(4096)
            .trace(4096);
    }
    let store_ids = add_crdt_stores(&mut b, stores, &DynamoConfig::default());
    let probe = b.add_node(Probe::<CrdtCart>::new());
    let rt = b.launch_transport(transport).expect("launch");
    eprintln!(
        "serving: {stores} store nodes + 1 probe on {transport:?} ({} worker threads)",
        rt.node_count()
    );
    if let Some(addr) = rt.telemetry_addr() {
        eprintln!("telemetry: http://{addr}  (/health /metrics /ledger /trace)");
    }

    // One probe round trip: PUT a small cart, then read it back from a
    // different coordinator.
    let mut cart = CrdtCart::new();
    cart.apply(0x5E17E, &cart::CartAction::Add { item: 1, qty: 1 });
    rt.inject(
        store_ids[0],
        probe,
        DynamoMsg::ClientPut {
            req: 1,
            key: 42,
            value: cart,
            context: VectorClock::new(),
            resp_to: probe,
        },
    );
    std::thread::sleep(std::time::Duration::from_millis(200));
    rt.inject(
        store_ids[store_ids.len() - 1],
        probe,
        DynamoMsg::ClientGet { req: 2, key: 42, resp_to: probe },
    );

    std::thread::sleep(std::time::Duration::from_secs(duration));

    let probe_ok = rt.inspect::<Probe<CrdtCart>, _, _>(probe, |p| {
        let put_ok = matches!(p.result(1), Some(ProbeResult::PutOk));
        let get_ok = matches!(p.result(2), Some(ProbeResult::GetOk(vs)) if !vs.is_empty());
        (put_ok, get_ok)
    });
    let report = rt.shutdown();
    let sent = report.core.metrics.counter("sim.messages_sent");
    let gossip = report.core.metrics.counter("dynamo.gossip_pushes");
    eprintln!("served for {duration}s: {sent} messages, {gossip} gossip pushes");
    match probe_ok {
        (true, true) => eprintln!("probe round trip: ok"),
        (put, get) => {
            eprintln!("probe round trip FAILED (put ok: {put}, get ok: {get})");
            std::process::exit(1);
        }
    }
}
