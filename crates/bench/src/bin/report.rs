//! Regenerates the experiment tables of EXPERIMENTS.md.
//!
//! ```text
//! cargo run -p quicksand-bench --release --bin report            # all tables
//! cargo run -p quicksand-bench --release --bin report -- e7 e8   # a subset
//! cargo run -p quicksand-bench --release --bin report -- --seed 7 e1
//! cargo run -p quicksand-bench --release --bin report -- --metrics
//! cargo run -p quicksand-bench --release --bin report -- --metrics-json out.json
//! ```

use quicksand_bench::{all_tables, observability_report, table_by_id, DEFAULT_SEED};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed = DEFAULT_SEED;
    if let Some(pos) = args.iter().position(|a| a == "--seed") {
        args.remove(pos);
        seed = args.get(pos).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
            eprintln!("--seed needs a number");
            std::process::exit(2);
        });
        args.remove(pos);
    }
    let metrics = if let Some(pos) = args.iter().position(|a| a == "--metrics") {
        args.remove(pos);
        true
    } else {
        false
    };
    let metrics_json = if let Some(pos) = args.iter().position(|a| a == "--metrics-json") {
        args.remove(pos);
        if pos >= args.len() {
            eprintln!("--metrics-json needs a path");
            std::process::exit(2);
        }
        Some(args.remove(pos))
    } else {
        None
    };
    if metrics || metrics_json.is_some() {
        let (appendix, json) = observability_report(seed);
        if metrics {
            println!("Observability appendix (seed {seed})\n");
            println!("{appendix}");
        }
        if let Some(path) = metrics_json {
            std::fs::write(&path, json).unwrap_or_else(|e| {
                eprintln!("writing {path}: {e}");
                std::process::exit(1);
            });
            eprintln!("bank-run MetricSet JSON written to {path}");
        }
        if args.is_empty() {
            return;
        }
    }
    println!("Building on Quicksand — derived experiment report (seed {seed})");
    println!("(see DESIGN.md for the experiment index, EXPERIMENTS.md for analysis)\n");
    if args.is_empty() {
        for t in all_tables(seed) {
            println!("{t}");
        }
    } else {
        for id in &args {
            match table_by_id(id, seed) {
                Some(t) => println!("{t}"),
                None => {
                    eprintln!("unknown experiment id: {id} (try e1..e16, e18, e19, a1..a3)");
                    std::process::exit(2);
                }
            }
        }
    }
}
