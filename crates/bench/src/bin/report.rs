//! Regenerates the experiment tables of EXPERIMENTS.md.
//!
//! ```text
//! cargo run -p bench --release --bin report            # all tables
//! cargo run -p bench --release --bin report -- e7 e8   # a subset
//! cargo run -p bench --release --bin report -- --seed 7 e1
//! ```

use bench::{all_tables, table_by_id, DEFAULT_SEED};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed = DEFAULT_SEED;
    if let Some(pos) = args.iter().position(|a| a == "--seed") {
        args.remove(pos);
        seed = args
            .get(pos)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| {
                eprintln!("--seed needs a number");
                std::process::exit(2);
            });
        args.remove(pos);
    }
    println!("Building on Quicksand — derived experiment report (seed {seed})");
    println!("(see DESIGN.md for the experiment index, EXPERIMENTS.md for analysis)\n");
    if args.is_empty() {
        for t in all_tables(seed) {
            println!("{t}");
        }
    } else {
        for id in &args {
            match table_by_id(id, seed) {
                Some(t) => println!("{t}"),
                None => {
                    eprintln!("unknown experiment id: {id} (try e1..e12, a1, a2)");
                    std::process::exit(2);
                }
            }
        }
    }
}
