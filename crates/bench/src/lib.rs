//! # bench — the experiment harness for the *Building on Quicksand*
//! reproduction.
//!
//! The paper is a position essay with no tables or figures, so the
//! evaluation here is the derived suite defined in DESIGN.md: every
//! qualitative claim becomes a table (E1–E16 plus ablations), and
//! EXPERIMENTS.md records each table alongside the paper's prediction.
//!
//! Regenerate everything with `cargo run -p quicksand-bench --release --bin report`
//! or a single table with `... --bin report -- e7`. Criterion
//! micro-benchmarks of the hot data structures live in `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifacts;
pub mod experiments;
pub mod http;
pub mod incidents;
pub mod service;
pub mod table;

pub use table::{metrics_appendix, Table};

/// The default seed used by the report binary (any seed works; tables
/// are deterministic per seed).
pub const DEFAULT_SEED: u64 = 20090107; // CIDR '09: January 7, 2009

/// Run every experiment and return the tables in report order.
pub fn all_tables(seed: u64) -> Vec<Table> {
    use experiments::*;
    vec![
        tandem_exp::e1(seed),
        tandem_exp::e2(seed),
        tandem_exp::e3(seed),
        logship_exp::e4(seed),
        logship_exp::e5(seed),
        cart_exp::e6(seed),
        bank_exp::e7(seed),
        bank_exp::e8(seed),
        escrow_exp::e9(seed),
        stock_exp::e10(seed),
        seats_exp::e11(seed),
        mga_exp::e12(seed),
        deposits_exp::e13(seed),
        twopc_exp::e14(seed),
        quorum_exp::e15(seed),
        crdt_exp::e16(seed),
        forensics_exp::e18(seed),
        e19::e19(seed),
        eventlog_exp::e20(seed),
        ablations::a1(seed),
        ablations::a2(seed),
        gossip_exp::a3(seed),
    ]
}

/// The observability appendix: one representative run per substrate,
/// each rendered through `MetricSet`'s own `Display` (see
/// [`metrics_appendix`]) so the report shows the same `p50/p99/max`
/// lines the metrics layer computes. Returns `(appendix_text, json)`
/// where `json` is the bank run's `MetricSet::to_json()` export —
/// the run whose `guess.outstanding_us` histogram measures the paper's
/// act-on-guess → confirmation/apology window.
pub fn observability_report(seed: u64) -> (String, String) {
    let bank_run = bank::run_clearing(&bank::ClearingConfig::default(), seed);
    let json = bank_run.metrics.to_json();
    let mut out = metrics_appendix(
        "M1",
        "bank clearing observability (guess windows per §5.5/§6.2)",
        &bank_run.metrics,
    );
    out.push('\n');
    let cart_run = cart::run(&cart::CartScenario::default(), seed);
    out.push_str(&metrics_appendix(
        "M2",
        "shopping-cart observability (dynamo + cart spans)",
        &cart_run.metrics,
    ));
    (out, json)
}

/// Run one experiment by id ("e1".."e16", "e18".."e20", "a1".."a3"), if it
/// exists. ("e17" is the chaos sweep — a driver, not a table; run it
/// with the `chaos` bin.)
pub fn table_by_id(id: &str, seed: u64) -> Option<Table> {
    use experiments::*;
    let t = match id.to_ascii_lowercase().as_str() {
        "e1" => tandem_exp::e1(seed),
        "e2" => tandem_exp::e2(seed),
        "e3" => tandem_exp::e3(seed),
        "e4" => logship_exp::e4(seed),
        "e5" => logship_exp::e5(seed),
        "e6" => cart_exp::e6(seed),
        "e7" => bank_exp::e7(seed),
        "e8" => bank_exp::e8(seed),
        "e9" => escrow_exp::e9(seed),
        "e10" => stock_exp::e10(seed),
        "e11" => seats_exp::e11(seed),
        "e12" => mga_exp::e12(seed),
        "e13" => deposits_exp::e13(seed),
        "e14" => twopc_exp::e14(seed),
        "e15" => quorum_exp::e15(seed),
        "e16" => crdt_exp::e16(seed),
        "e18" => forensics_exp::e18(seed),
        "e19" => e19::e19(seed),
        "e20" => eventlog_exp::e20(seed),
        "a1" => ablations::a1(seed),
        "a2" => ablations::a2(seed),
        "a3" => gossip_exp::a3(seed),
        _ => return None,
    };
    Some(t)
}
