//! Fixed-width text tables for the experiment report.
//!
//! The paper has no tables of its own, so these are the derived tables
//! defined in DESIGN.md; EXPERIMENTS.md records a captured copy of each
//! alongside the paper's qualitative prediction.

use std::fmt;

use sim::MetricSet;

/// One experiment's output table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Experiment id ("E1", "A2", ...).
    pub id: String,
    /// What the table shows.
    pub title: String,
    /// The paper claim being tested (section reference included).
    pub claim: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        claim: impl Into<String>,
        headers: &[&str],
    ) -> Self {
        Table {
            id: id.into(),
            title: title.into(),
            claim: claim.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "ragged table row");
        self.rows.push(cells);
    }
}

/// Format a float tersely for table cells.
pub fn f(v: f64) -> String {
    if v == 0.0 {
        "0".to_owned()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

/// Render a metrics appendix for one run.
///
/// All statistics (per-histogram `n`/`mean`/`p50`/`p99`/`max`, labeled
/// counters, gauges) come straight from `MetricSet`'s `Display`; this
/// wrapper only adds the report framing, so bench never re-derives a
/// percentile the metrics layer already computes.
pub fn metrics_appendix(id: &str, title: &str, metrics: &MetricSet) -> String {
    let mut out = format!("== {id} — {title}\n");
    for line in metrics.to_string().lines() {
        out.push_str("   ");
        out.push_str(line);
        out.push('\n');
    }
    out
}

impl fmt::Display for Table {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        writeln!(out, "== {} — {}", self.id, self.title)?;
        writeln!(out, "   claim: {}", self.claim)?;
        let line = |out: &mut fmt::Formatter<'_>| -> fmt::Result {
            write!(out, "   +")?;
            for w in &widths {
                write!(out, "{}+", "-".repeat(w + 2))?;
            }
            writeln!(out)
        };
        line(out)?;
        write!(out, "   |")?;
        for (h, w) in self.headers.iter().zip(&widths) {
            write!(out, " {h:<w$} |")?;
        }
        writeln!(out)?;
        line(out)?;
        for row in &self.rows {
            write!(out, "   |")?;
            for (c, w) in row.iter().zip(&widths) {
                write!(out, " {c:>w$} |")?;
            }
            writeln!(out)?;
        }
        line(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("E0", "demo", "none (§0)", &["a", "long-header"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["100".into(), "2000000".into()]);
        let s = t.to_string();
        assert!(s.contains("== E0 — demo"));
        assert!(s.contains("| long-header |"));
        assert!(s.lines().count() >= 7);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_are_rejected() {
        let mut t = Table::new("E0", "demo", "none", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn metrics_appendix_reuses_metricset_display() {
        let mut m = MetricSet::new();
        m.inc("ops");
        for v in 1..=100 {
            m.record("lat_us", v as f64);
        }
        let s = metrics_appendix("M1", "demo metrics", &m);
        assert!(s.starts_with("== M1 — demo metrics\n"));
        // The percentile lines are MetricSet's own rendering, indented.
        assert_eq!(
            s,
            format!("== M1 — demo metrics\n{}", {
                let mut indented = String::new();
                for line in m.to_string().lines() {
                    indented.push_str("   ");
                    indented.push_str(line);
                    indented.push('\n');
                }
                indented
            })
        );
        assert!(s.contains("p50=50.50"));
        assert!(s.contains("p99=99.01"));
        assert!(s.contains("max=100.00"));
    }

    #[test]
    fn float_formatting_is_tidy() {
        assert_eq!(f(0.0), "0");
        assert_eq!(f(1234.5), "1234"); // ties-to-even
        assert_eq!(f(4.25971), "4.26");
        assert_eq!(f(0.0123), "0.0123");
    }
}
