//! E6: the shopping cart over Dynamo under partition (§6.1).

use cart::{run, CartAction, CartScenario};
use dynamo::DynamoConfig;
use sim::{SimDuration, SimTime};

use crate::table::{f, Table};

fn busy_plans(n_shoppers: usize, edits_each: usize) -> Vec<Vec<CartAction>> {
    // Deterministic interleaved add/remove traffic on a small SKU set so
    // concurrent removes and adds actually collide.
    (0..n_shoppers)
        .map(|s| {
            (0..edits_each)
                .map(|i| {
                    let item = ((s * edits_each + i) % 5) as u64;
                    match i % 4 {
                        0 | 1 => CartAction::Add { item, qty: 1 },
                        2 => CartAction::ChangeQty { item, qty: 3 },
                        _ => CartAction::Remove { item },
                    }
                })
                .collect()
        })
        .collect()
}

/// E6: write availability, lost edits, siblings, and resurrections —
/// sloppy-quorum AP store vs strict-quorum baseline, with and without a
/// partition.
pub fn e6(seed: u64) -> Table {
    let mut t = Table::new(
        "E6",
        "Cart over Dynamo: availability vs consistency under partition",
        "\"Dynamo always accepts a PUT... items added to the cart will not be lost... \
         occasionally deleted items will reappear\" (§6.1, §6.4); the application, not the \
         store, supplies the commutativity (§6.4)",
        &[
            "store",
            "partition",
            "edits acked",
            "PUT avail %",
            "lost edits",
            "sibling merges",
            "resurrections",
            "converged",
        ],
    );
    for (label, sloppy) in [("sloppy (AP)", true), ("strict (CP)", false)] {
        for (plabel, partition) in
            [("none", None), ("10s", Some((SimTime::from_millis(50), SimTime::from_secs(10))))]
        {
            let scenario = CartScenario {
                dynamo: DynamoConfig { sloppy, ..DynamoConfig::default() },
                n_stores: 5,
                plans: busy_plans(4, 6),
                think: SimDuration::from_millis(40),
                partition,
                horizon: SimTime::from_secs(60),
                ..CartScenario::default()
            };
            let r = run(&scenario, seed);
            t.row(vec![
                label.to_string(),
                plabel.to_string(),
                r.edits_acked.to_string(),
                f(r.put_availability() * 100.0),
                r.lost_edits.to_string(),
                r.sibling_reconciliations.to_string(),
                r.resurrected_items.to_string(),
                if r.converged { "yes" } else { "NO" }.to_string(),
            ]);
        }
    }
    t
}
