//! E13: the deposit-hold policy (§6.2) — standing-based optimism.

use bank::{run_deposit_risk, DepositRiskConfig};

use crate::table::{f, Table};

/// E13: overdraft damage and declined spending, with and without holds.
pub fn e13(seed: u64) -> Table {
    let mut t = Table::new(
        "E13",
        "Deposit holds: risky checks, bounces, and spendable funds",
        "\"since you've been a good customer, there is no hold on the money... Later, when \
         the check bounces, your account is debited $130\"; a poor-standing customer \"would \
         have a hold placed on the money (reserving for a potential bounce)\" (§6.2)",
        &[
            "hold policy",
            "deposits",
            "bounced back",
            "spends cleared",
            "spends refused",
            "overdraft episodes",
            "overdraft $ total",
        ],
    );
    for (label, hold) in [
        ("no holds (everyone trusted)", None),
        ("hold 10 rounds (poor standing)", Some(10u64)),
        ("hold 10 rounds, everyone poor", Some(10)),
    ] {
        let cfg = DepositRiskConfig {
            hold_rounds: hold,
            poor_fraction: if label.contains("everyone") { 1.0 } else { 0.5 },
            ..DepositRiskConfig::default()
        };
        let r = run_deposit_risk(&cfg, seed);
        t.row(vec![
            label.to_string(),
            r.deposits.to_string(),
            r.bounced_deposits.to_string(),
            r.spends_cleared.to_string(),
            r.spends_refused.to_string(),
            r.overdraft_episodes.to_string(),
            f(r.overdraft_cents as f64 / 100.0),
        ]);
    }
    t
}
