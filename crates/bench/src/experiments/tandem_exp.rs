//! E1–E3: the Tandem story (§3).

use sim::{SimDuration, SimTime};
use tandem::{run, Mode, TandemConfig};

use crate::table::{f, Table};

fn base(mode: Mode, writes: u32) -> TandemConfig {
    TandemConfig {
        mode,
        n_dps: 2,
        n_apps: 4,
        txns_per_app: 50,
        writes_per_txn: writes,
        mean_interarrival: SimDuration::from_millis(8),
        horizon: SimTime::from_secs(120),
        ..TandemConfig::default()
    }
}

/// E1: DP1's per-WRITE checkpoint vs DP2's log-as-checkpoint — message
/// cost and WRITE latency per transaction size.
pub fn e1(seed: u64) -> Table {
    let mut t = Table::new(
        "E1",
        "DP1 (1984) vs DP2 (1986): checkpoint cost per WRITE",
        "\"A WRITE to DP2 could be performed without checkpointing to the backup... a \
         dramatic savings in CPU cost and an even more dramatic savings in latency\" (§3.2)",
        &[
            "writes/txn",
            "mode",
            "ckpt msgs/txn",
            "write ack ms (mean)",
            "commit ms (mean)",
            "msgs total",
        ],
    );
    for writes in [1u32, 4, 16] {
        for mode in [Mode::Dp1, Mode::Dp2] {
            let r = run(&base(mode, writes), seed);
            assert_eq!(r.lost_committed, 0);
            t.row(vec![
                writes.to_string(),
                mode.to_string(),
                f(r.checkpoint_msgs as f64 / r.committed.max(1) as f64),
                f(r.write_ack_mean_ms),
                f(r.commit_mean_ms),
                r.messages.to_string(),
            ]);
        }
    }
    t
}

/// E2: takeover semantics — DP1 transparent, DP2 aborts in-flight work,
/// neither loses committed work.
pub fn e2(seed: u64) -> Table {
    let mut t = Table::new(
        "E2",
        "Primary disk-process crash mid-workload: takeover semantics",
        "\"a processor failure may result in the loss of the ongoing transaction\" under DP2, \
         never under DP1; committed work survives both (§3.1–3.3)",
        &["mode", "committed", "aborted", "unresolved", "lost committed"],
    );
    for mode in [Mode::Dp1, Mode::Dp2] {
        let mut cfg = base(mode, 4);
        cfg.txns_per_app = 60;
        cfg.mean_interarrival = SimDuration::from_millis(3);
        cfg.crash_primary_at = Some(SimTime::from_millis(100));
        let r = run(&cfg, seed);
        t.row(vec![
            mode.to_string(),
            r.committed.to_string(),
            r.aborted.to_string(),
            r.unresolved.to_string(),
            r.lost_committed.to_string(),
        ]);
    }
    t
}

/// E3: group commit at the audit disk — the city bus vs the car.
pub fn e3(seed: u64) -> Table {
    let mut t = Table::new(
        "E3",
        "Audit-disk group commit under increasing load",
        "\"a city bus sweeping up all the passengers\" reduces total work and, under load, \
         latency (§3.2, citing [11])",
        &[
            "interarrival ms",
            "adp batching",
            "throughput txn/s",
            "commit ms (mean)",
            "commit ms (p99)",
            "adp IOs",
        ],
    );
    for inter_ms in [10u64, 4, 2] {
        for bus in [true, false] {
            let mut cfg = base(Mode::Dp2, 4);
            cfg.mean_interarrival = SimDuration::from_millis(inter_ms);
            cfg.adp_group_commit = bus;
            cfg.txns_per_app = 80;
            let r = run(&cfg, seed);
            t.row(vec![
                inter_ms.to_string(),
                if bus { "bus (group)" } else { "car (per-append)" }.to_string(),
                f(r.throughput()),
                f(r.commit_mean_ms),
                f(r.commit_p99_ms),
                r.adp_ios.to_string(),
            ]);
        }
    }
    t
}
