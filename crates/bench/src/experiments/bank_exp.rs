//! E7–E8: replicated check clearing (§6.2) and the risk threshold
//! (§5.5).

use bank::{run_clearing, ClearingConfig};

use crate::table::{f, Table};

fn base() -> ClearingConfig {
    ClearingConfig {
        n_branches: 3,
        n_accounts: 30,
        initial_deposit: 40_000, // $400: scarcity makes rules bind
        rounds: 400,
        checks_per_round: 15,
        amount_mu: 8.8,
        amount_sigma: 1.1,
        coordinate_threshold: None,
        ..ClearingConfig::default()
    }
}

/// E7: overdraft probability vs the disconnection window.
pub fn e7(seed: u64) -> Table {
    let mut t = Table::new(
        "E7",
        "Replicated clearing: overdrafts vs reconciliation interval",
        "\"multiple checks presented to different replicas will cause an overdraft that is \
         not detected in time to bounce one of the checks\" (§6.2); longer disconnection ⇒ \
         more slippage (§5.2)",
        &[
            "exchange every (rounds)",
            "cleared",
            "refused",
            "overdraft episodes",
            "bounced checks",
            "double-posted",
            "converged",
        ],
    );
    for window in [1u64, 5, 20, 50, 100] {
        let cfg = ClearingConfig { exchange_every: window, ..base() };
        let r = run_clearing(&cfg, seed);
        t.row(vec![
            window.to_string(),
            (r.cleared_local + r.cleared_coordinated).to_string(),
            r.refused.to_string(),
            r.overdraft_episodes.to_string(),
            r.bounced.to_string(),
            if r.no_double_posting { "0".into() } else { "SOME".into() },
            if r.converged { "yes" } else { "NO" }.to_string(),
        ]);
    }
    t
}

/// E8: the "stomach for risk" dial — coordinate above a value threshold.
pub fn e8(seed: u64) -> Table {
    let mut t = Table::new(
        "E8",
        "Risk threshold: clearing latency vs overdraft risk",
        "\"Locally clear a check if the face value is less than $10,000. If it exceeds \
         $10,000, double check with all the replicas\" (§5.5) — per-operation consistency \
         choice inside one application",
        &[
            "threshold",
            "cleared local",
            "cleared coordinated",
            "mean clear latency ms",
            "overdraft episodes",
            "bounced",
        ],
    );
    let cases: [(&str, Option<i64>); 4] = [
        ("never coordinate", None),
        ("$100", Some(10_000)),
        ("$20", Some(2_000)),
        ("always coordinate", Some(0)),
    ];
    for (label, threshold) in cases {
        let cfg = ClearingConfig { exchange_every: 40, coordinate_threshold: threshold, ..base() };
        let r = run_clearing(&cfg, seed);
        t.row(vec![
            label.to_string(),
            r.cleared_local.to_string(),
            r.cleared_coordinated.to_string(),
            f(r.mean_clear_latency_us / 1000.0),
            r.overdraft_episodes.to_string(),
            r.bounced.to_string(),
        ]);
    }
    t
}
