//! A1–A2: ablations of the two load-bearing mechanisms — uniquifiers
//! and operation commutativity.

use inventory::Warehouse;
use quicksand_core::acid2::examples::{CounterAdd, RegisterWrite};
use quicksand_core::acid2::replay_raw;
use quicksand_core::op::OpLog;
use quicksand_core::resources::Fungibility;
use quicksand_core::uniquifier::Uniquifier;
use rand::seq::SliceRandom;
use rand::Rng;
use sim::SimRng;

use crate::table::Table;

/// A1: a retry storm against a flaky order service, with the dedup table
/// on and off.
pub fn a1(seed: u64) -> Table {
    let mut t = Table::new(
        "A1",
        "Retry storm vs the uniquifier dedup table",
        "\"The fault tolerant server system had better make this work idempotent or the \
         retries would occasionally result in duplicative work\" (§2.1); uniquifiers make \
         the collapse possible (§5.4, §7.5)",
        &["dedup", "orders", "requests (with retries)", "units shipped", "excess units"],
    );
    for dedup in [true, false] {
        let mut rng = SimRng::new(seed);
        let mut wh = Warehouse::new(0, 100_000, Fungibility::Fungible);
        if !dedup {
            wh = wh.without_dedup();
        }
        let orders = 500u64;
        let mut requests = 0u64;
        for o in 0..orders {
            let id = Uniquifier::composite("storm-order", o);
            // Each order is delivered 1–4 times (client retries on a
            // flaky network).
            let attempts = rng.gen_range(1..=4);
            for _ in 0..attempts {
                requests += 1;
                let _ = wh.process_order(id, 1);
            }
        }
        let shipped = 100_000 - wh.stock_remaining();
        t.row(vec![
            if dedup { "on" } else { "off" }.to_string(),
            orders.to_string(),
            requests.to_string(),
            shipped.to_string(),
            (shipped - orders).to_string(),
        ]);
    }
    t
}

/// A2: arrival-order sensitivity of commutative operations vs raw
/// overwriting WRITEs, with and without the op-log discipline.
pub fn a2(seed: u64) -> Table {
    let mut t = Table::new(
        "A2",
        "ACID 2.0 order-independence: ops vs WRITEs",
        "\"Replicas that have seen the same work should see the same result, independent of \
         the order in which the work has arrived\" (§7.6); \"WRITE is not commutative\" (§5.3)",
        &[
            "state discipline",
            "ops",
            "arrival orders tried",
            "distinct outcomes",
            "order-independent",
        ],
    );
    let mut rng = SimRng::new(seed);
    let n_ops = 60u64;
    let trials = 50;

    // Commutative counter ops, raw replay.
    let adds: Vec<CounterAdd> =
        (0..n_ops).map(|i| CounterAdd::new(i, rng.gen_range(-50..=50))).collect();
    let mut outcomes = std::collections::BTreeSet::new();
    let mut work = adds.clone();
    for _ in 0..trials {
        work.shuffle(&mut rng);
        outcomes.insert(replay_raw(&work));
    }
    t.row(vec![
        "commutative ops (raw replay)".into(),
        n_ops.to_string(),
        trials.to_string(),
        outcomes.len().to_string(),
        if outcomes.len() == 1 { "yes" } else { "NO" }.to_string(),
    ]);

    // Raw register writes, raw replay: last writer wins, so the outcome
    // is whatever arrived last.
    let writes: Vec<RegisterWrite> =
        (0..n_ops).map(|i| RegisterWrite::new(i, i as i64 * 7)).collect();
    let mut outcomes = std::collections::BTreeSet::new();
    let mut work = writes.clone();
    for _ in 0..trials {
        work.shuffle(&mut rng);
        outcomes.insert(replay_raw(&work));
    }
    let raw_distinct = outcomes.len();
    t.row(vec![
        "register WRITEs (raw replay)".into(),
        n_ops.to_string(),
        trials.to_string(),
        raw_distinct.to_string(),
        if raw_distinct == 1 { "yes" } else { "NO" }.to_string(),
    ]);

    // The same writes through an OpLog: canonical replay restores
    // determinism (though not the writer's wall-clock intent).
    let mut outcomes = std::collections::BTreeSet::new();
    let mut work = writes;
    for _ in 0..trials {
        work.shuffle(&mut rng);
        let mut log = OpLog::new();
        for w in &work {
            log.record(w.clone());
        }
        outcomes.insert(log.materialize());
    }
    t.row(vec![
        "register WRITEs (op-log canonical replay)".into(),
        n_ops.to_string(),
        trials.to_string(),
        outcomes.len().to_string(),
        if outcomes.len() == 1 { "yes" } else { "NO" }.to_string(),
    ]);
    t
}
