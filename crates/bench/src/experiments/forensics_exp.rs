//! E18: the guess/apology audit ledger under chaos (§5).
//!
//! Every substrate now books each optimistic action — an ack before the
//! backup has the tail, a hint parked for a down store, a check cleared
//! on a stale balance — as a **guess** in one [`sim::Ledger`], resolved
//! later as confirmed or apologized (or orphaned by a crash). E18 sweeps
//! each substrate's chaos harness and audits the merged accounting: a
//! healthy substrate settles every guess by quiescence; the planted
//! `rearm_gossip_on_restart` defect shows up as durable guesses still
//! open — the exact signature the nightly `--deny-open-guesses` gate
//! trips on.

use quicksand::cart::CartMode;
use quicksand::chaos::{
    bank_chaos, cart_chaos, dynamo_chaos, escrow_chaos, logship_chaos, ChaosReport,
};
use quicksand::dynamo::WorkloadConfig;
use quicksand::logship::ShipMode;
use quicksand::sim::LedgerAccounting;

use crate::table::{f, Table};

/// Seeds swept per scenario. Small enough to keep the report fast,
/// large enough that every fault class fires.
const SEEDS: u64 = 25;

fn ledger_row(t: &mut Table, label: &str, report: &ChaosReport) {
    let l: &LedgerAccounting = &report.ledger;
    let settled = l.confirmed() + l.apologized();
    let apology_rate =
        if settled == 0 { 0.0 } else { l.apologized() as f64 / settled as f64 * 100.0 };
    t.row(vec![
        label.into(),
        SEEDS.to_string(),
        l.opened().to_string(),
        l.confirmed().to_string(),
        l.apologized().to_string(),
        l.orphaned().to_string(),
        l.open().to_string(),
        format!("{}%", f(apology_rate)),
    ]);
}

/// E18: guess/apology accounting across every substrate's chaos sweep,
/// plus the planted stranded-hint bug as the open-guess counterexample.
pub fn e18(_seed: u64) -> Table {
    let mut t = Table::new(
        "E18",
        "Guess/apology audit ledger under chaos sweeps",
        "\"the system is on quicksand: each node acts on its local memory — a guess — and when \
         the authoritative answer differs, an apology must follow\" (§5); every guess must be \
         confirmed, apologized for, or honestly recorded as orphaned by a crash — never silently \
         dropped",
        &[
            "scenario",
            "seeds",
            "guesses opened",
            "confirmed",
            "apologized",
            "orphaned (crash)",
            "open after quiescence",
            "apology rate",
        ],
    );
    // Healthy sweeps: every substrate settles its books. (Sweeps run the
    // fixed internal seed-mixing stream, so the rows are deterministic
    // regardless of the report seed.)
    ledger_row(&mut t, "cart (op-log)", &cart_chaos(CartMode::OpLog).sweep(0..SEEDS));
    ledger_row(&mut t, "dynamo workload", &dynamo_chaos(WorkloadConfig::default()).sweep(0..SEEDS));
    ledger_row(&mut t, "logship (async)", &logship_chaos(ShipMode::Asynchronous).sweep(0..SEEDS));
    ledger_row(&mut t, "bank clearing", &bank_chaos().sweep(0..SEEDS));
    ledger_row(&mut t, "escrow fleet", &escrow_chaos().sweep(0..SEEDS));
    // The counterexample: strand hints by not re-arming gossip after a
    // restart, and the durable guesses stay open for the gate to catch.
    let mut buggy = WorkloadConfig::default();
    buggy.dynamo.rearm_gossip_on_restart = false;
    ledger_row(&mut t, "dynamo (planted rearm bug)", &dynamo_chaos(buggy).sweep(0..SEEDS));
    t
}
