//! E16: delta-state vs full-state anti-entropy over the CRDT subsystem
//! (§8's ACID 2.0 made concrete).

use crdt::{run_orset_replication, ReplicationScenario, ShipMode};
use sim::SimTime;

use crate::table::{f, Table};

/// E16: a fleet of OR-Set replicas converging through lossy links —
/// full-state versus delta-group anti-entropy, calm and partitioned, at
/// the same seed. Delta shipping must reach the same converged state
/// while putting measurably fewer bytes on the wire; a partition that
/// outlives the delta buffer forces the full-state fallback.
pub fn e16(seed: u64) -> Table {
    let mut t = Table::new(
        "E16",
        "CRDT anti-entropy: delta-state vs full-state shipping",
        "\"Storage systems alone cannot provide the commutativity we need... We need\n\
         designs that support merging of divergent histories\" (§6.4, §8): the merge is\n\
         the lattice join, so anti-entropy may ship deltas — or whole states — and\n\
         converge identically; only the bytes differ",
        &[
            "ship mode",
            "partition",
            "converged",
            "at (ms)",
            "delta ships",
            "full ships",
            "fallbacks",
            "bytes shipped",
        ],
    );
    for (plabel, partition) in
        [("none", None), ("300ms", Some((SimTime::from_millis(50), SimTime::from_millis(350))))]
    {
        for (label, ship_mode) in [("full-state", ShipMode::FullState), ("delta", ShipMode::Delta)]
        {
            let scenario = ReplicationScenario {
                ship_mode,
                partition,
                // A buffer smaller than a partition's worth of deltas, so
                // the partitioned delta rows must fall back at heal time.
                max_buffer: if partition.is_some() { 8 } else { 1024 },
                ..ReplicationScenario::default()
            };
            let r = run_orset_replication(&scenario, seed);
            t.row(vec![
                label.to_string(),
                plabel.to_string(),
                if r.converged { "yes" } else { "NO" }.to_string(),
                r.converged_at.map(|at| f(at.as_millis_f64())).unwrap_or("-".into()),
                r.delta_ships.to_string(),
                r.full_ships.to_string(),
                r.full_fallbacks.to_string(),
                r.bytes_shipped.to_string(),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_ships_fewer_bytes_at_equal_convergence() {
        // The acceptance check behind E16, pinned at the report's seed:
        // both modes converge, delta puts fewer bytes on the wire, and
        // the numbers come out of the deterministic metrics export.
        let seed = crate::DEFAULT_SEED;
        let full = run_orset_replication(
            &ReplicationScenario { ship_mode: ShipMode::FullState, ..Default::default() },
            seed,
        );
        let delta = run_orset_replication(
            &ReplicationScenario { ship_mode: ShipMode::Delta, ..Default::default() },
            seed,
        );
        assert!(full.converged && delta.converged, "{full:?}\n{delta:?}");
        assert!(
            delta.bytes_shipped < full.bytes_shipped,
            "delta {} >= full {}",
            delta.bytes_shipped,
            full.bytes_shipped
        );
        // The report's numbers are the metrics' numbers: the JSON export
        // carries the same counter the table is built from.
        let json = delta.metrics.to_json();
        assert!(json.contains("crdt.bytes_sent"), "{json}");
        let again = run_orset_replication(
            &ReplicationScenario { ship_mode: ShipMode::Delta, ..Default::default() },
            seed,
        );
        assert_eq!(again.metrics.to_json(), json, "metrics export must be deterministic");
    }

    #[test]
    fn e16_is_deterministic() {
        let a = e16(7);
        let b = e16(7);
        assert_eq!(a.rows, b.rows);
        let fallbacks: u64 = a.rows.iter().map(|r| r[6].parse::<u64>().unwrap()).sum();
        assert!(fallbacks > 0, "the partitioned delta row must fall back: {:?}", a.rows);
    }
}
