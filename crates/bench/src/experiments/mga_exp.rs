//! E12: synchronous checkpoints OR apologies (§5.7, §5.8) — the full
//! tradeoff curve.

use quicksand_core::acid2::examples::CounterAdd;
use quicksand_core::mga::{coordinated_accept, Replica, ReplicaId};
use quicksand_core::rules::{BusinessRule, PredicateRule};
use rand::Rng;
use sim::SimRng;

use crate::table::{f, Table};

struct MgaRun {
    accepted: u64,
    refused: u64,
    apology_episodes: u64,
    /// Total deficit repaid across episodes — the dollars apologized for.
    apology_magnitude: i64,
    mean_latency_ms: f64,
}

const LOCAL_MS: f64 = 0.5;
const COORD_MS: f64 = 40.0;

/// Two replicas of a bounded balance admit signed operations.
/// `exchange_every = 0` means every admission coordinates (a synchronous
/// checkpoint); otherwise admissions are local guesses and knowledge is
/// exchanged every k operations. Joint overdrafts discovered at exchange
/// are apology episodes, repaired by a compensating deposit (so later
/// episodes remain comparable).
fn mga_run(exchange_every: u64, total_ops: u64, seed: u64) -> MgaRun {
    let rule = PredicateRule::min_bound("no-overdraft", |b: &i64| *b, 0);
    let rules: [&dyn BusinessRule<i64>; 1] = [&rule];
    let mut rng = SimRng::new(seed);
    let mut replicas = vec![Replica::new(ReplicaId(0)), Replica::new(ReplicaId(1))];
    let mut run = MgaRun {
        accepted: 0,
        refused: 0,
        apology_episodes: 0,
        apology_magnitude: 0,
        mean_latency_ms: 0.0,
    };
    let mut latency_total = 0.0;
    let mut op_seq = 0u64;
    let mk = |seq: &mut u64, delta: i64| {
        let op = CounterAdd::new(*seq, delta);
        *seq += 1;
        op
    };
    // Seed balance, known everywhere.
    let seed_op = mk(&mut op_seq, 1_000);
    for r in replicas.iter_mut() {
        r.learn(seed_op.clone());
    }

    for i in 0..total_ops {
        // Withdraw-heavy traffic keeps the rule binding.
        let delta =
            if rng.gen_bool(0.45) { rng.gen_range(1..=100) } else { -rng.gen_range(1..=100) };
        let op = mk(&mut op_seq, delta);
        if exchange_every == 0 {
            latency_total += LOCAL_MS + COORD_MS;
            if coordinated_accept(&mut replicas, op, &rules).accepted() {
                run.accepted += 1;
            } else {
                run.refused += 1;
            }
        } else {
            latency_total += LOCAL_MS;
            let r = (i % 2) as usize;
            if replicas[r].try_accept(op, &rules).accepted() {
                run.accepted += 1;
            } else {
                run.refused += 1;
            }
            if (i + 1) % exchange_every == 0 {
                let (left, right) = replicas.split_at_mut(1);
                left[0].exchange(&mut right[0]);
                if *left[0].local_opinion() < 0 {
                    run.apology_episodes += 1;
                    // Apologize and make the customer whole so the run
                    // continues from a clean slate.
                    let fix = -*left[0].local_opinion();
                    run.apology_magnitude += fix;
                    let comp = mk(&mut op_seq, fix);
                    left[0].learn(comp.clone());
                    right[0].learn(comp);
                }
            }
        }
    }
    // Final reconciliation.
    let (left, right) = replicas.split_at_mut(1);
    left[0].exchange(&mut right[0]);
    if exchange_every != 0 && *left[0].local_opinion() < 0 {
        run.apology_episodes += 1;
        run.apology_magnitude += -*left[0].local_opinion();
    }
    run.mean_latency_ms = latency_total / total_ops as f64;
    run
}

/// E12: apology rate vs admission latency across checkpoint intervals.
pub fn e12(seed: u64) -> Table {
    let mut t = Table::new(
        "E12",
        "Memories, guesses, apologies: the checkpoint-interval curve",
        "\"Either you have synchronous checkpoints to your backup or you must sometimes \
         apologize for your behavior\" (§5.8); guessing buys latency at a quantified apology \
         rate (§5.7)",
        &[
            "exchange every (ops)",
            "accepted",
            "refused",
            "apology episodes",
            "apologized units total",
            "mean admit latency ms",
        ],
    );
    let total = 4_000;
    for k in [0u64, 1, 4, 16, 64, 256] {
        let r = mga_run(k, total, seed);
        let label = if k == 0 { "0 (synchronous)".to_owned() } else { k.to_string() };
        t.row(vec![
            label,
            r.accepted.to_string(),
            r.refused.to_string(),
            r.apology_episodes.to_string(),
            r.apology_magnitude.to_string(),
            f(r.mean_latency_ms),
        ]);
    }
    t
}
