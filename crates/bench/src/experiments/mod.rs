//! One module per experiment; each function returns its [`crate::table::Table`].

pub mod ablations;
pub mod bank_exp;
pub mod cart_exp;
pub mod crdt_exp;
pub mod deposits_exp;
pub mod e19;
pub mod escrow_exp;
pub mod eventlog_exp;
pub mod forensics_exp;
pub mod gossip_exp;
pub mod logship_exp;
pub mod mga_exp;
pub mod quorum_exp;
pub mod seats_exp;
pub mod stock_exp;
pub mod tandem_exp;
pub mod twopc_exp;
