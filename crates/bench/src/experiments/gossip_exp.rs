//! A3: anti-entropy traffic — full-store push vs digests.

use dynamo::{build_cluster, DynamoConfig, DynamoMsg, GossipMode, Probe, StoreNode, VectorClock};
use sim::{SimTime, Simulation};

use crate::table::Table;

/// A3: versions shipped by anti-entropy to reach (and then maintain)
/// convergence, full-store vs digest gossip.
pub fn a3(seed: u64) -> Table {
    let mut t = Table::new(
        "A3",
        "Anti-entropy cost: full-store push vs digest exchange",
        "Design-choice ablation (DESIGN.md): once replicas are nearly in sync, advertising \
         what you have (a digest) and shipping only the delta does the same convergence work \
         for a fraction of the traffic",
        &[
            "gossip mode",
            "keys",
            "gossip rounds",
            "versions shipped",
            "digest dots sent",
            "converged",
        ],
    );
    for (label, mode) in [("full-store", GossipMode::FullStore), ("digest", GossipMode::Digest)] {
        let cfg = DynamoConfig { gossip_mode: mode, ..DynamoConfig::default() };
        let mut sim: Simulation<DynamoMsg<u64>> = Simulation::new(seed);
        let cluster = build_cluster(&mut sim, 5, &cfg);
        let probe = sim.add_node(Probe::<u64>::new());
        // Write 40 keys through scattered coordinators, then let gossip
        // run for a long quiet period (where digests should shine).
        for k in 0..40u64 {
            sim.inject_at(
                SimTime::from_millis(k),
                cluster.stores[(k % 5) as usize],
                probe,
                DynamoMsg::ClientPut {
                    req: k,
                    key: k,
                    value: k * 7,
                    context: VectorClock::new(),
                    resp_to: probe,
                },
            );
        }
        sim.run_until(SimTime::from_secs(30));
        let converged = (0..40u64).all(|k| {
            let reference = sim.actor::<StoreNode<u64>>(cluster.stores[0]).versions(k).to_vec();
            !reference.is_empty()
                && cluster.stores.iter().all(|s| {
                    dynamo::same_versions(sim.actor::<StoreNode<u64>>(*s).versions(k), &reference)
                })
        });
        let m = sim.metrics();
        t.row(vec![
            label.to_string(),
            "40".to_string(),
            m.counter("dynamo.gossip_pushes").to_string(),
            m.counter("dynamo.gossip_versions_sent").to_string(),
            m.counter("dynamo.gossip_digest_dots").to_string(),
            if converged { "yes" } else { "NO" }.to_string(),
        ]);
    }
    t
}
