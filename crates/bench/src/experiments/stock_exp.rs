//! E10: over-provisioning vs over-booking vs sliding (§7.1, §7.2).

use inventory::{run_stock, StockConfig, StockPolicy};

use crate::table::{f, Table};

/// E10: declined business vs apologies across allocation policies and
/// demand skew.
pub fn e10(seed: u64) -> Table {
    let mut t = Table::new(
        "E10",
        "Stock allocation policy under disconnection and skewed demand",
        "\"You may accept the business on a disconnected replica without the confidence that \
         you will be able to keep your commitments. You can dynamically slide between these \
         positions\" (§7.1); and reality (§7.2's forklift) apologizes regardless",
        &[
            "policy",
            "demand skew",
            "orders",
            "accepted",
            "declined",
            "oversold",
            "forklift",
            "fill %",
            "apology %",
        ],
    );
    for skew in [0.0f64, 1.0, 2.0] {
        for (label, policy) in [
            ("over-provision", StockPolicy::OverProvision),
            ("over-book 1.00", StockPolicy::OverBook { factor: 1.0 }),
            ("over-book 1.15", StockPolicy::OverBook { factor: 1.15 }),
            ("sliding", StockPolicy::Sliding),
        ] {
            let cfg = StockConfig {
                policy,
                n_replicas: 4,
                total_stock: 400,
                rounds: 100,
                orders_per_round: 8,
                demand_skew: skew,
                forklift_prob: 0.01,
                sync_every: 5,
            };
            let r = run_stock(&cfg, seed);
            t.row(vec![
                label.to_string(),
                f(skew),
                r.orders.to_string(),
                r.accepted.to_string(),
                r.declined.to_string(),
                r.oversold.to_string(),
                r.forklift_apologies.to_string(),
                f(r.fill_rate() * 100.0),
                f(r.apology_rate() * 100.0),
            ]);
        }
    }
    t
}
