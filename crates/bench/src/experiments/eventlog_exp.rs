//! E20: producer ack policy × fault plan → loss window and apology
//! count, on the event-log substrate (§4 at event-stream scale).
//!
//! §4's asynchronous-checkpointing spectrum says durability is a knob,
//! not a boolean: acknowledge before the fsync bus departs
//! (`Immediate`) and a crash retracts the tail you promised; wait for
//! the local fsync (`OnFsync`) and a crash costs nothing but a disk
//! fire still does; wait for n replicas (`OnReplicate`) and even the
//! leader's disk is expendable. E20 drives the same producer workload
//! through each policy, calm and under a leader crash landing squarely
//! inside the group-commit window, and reads out both loss numbers plus
//! the ledger's account of every optimistic ack.

use quicksand::chaos::FaultPlan;
use quicksand::eventlog::{run, AckPolicy, EventLogScenario};
use quicksand::sim::chaos::Fault;
use quicksand::sim::{SimDuration, SimTime};

use crate::table::{f, Table};

use quicksand::eventlog::harness::layout;

/// The workload every cell runs: 3 producers × 40 appends over a
/// deliberately lazy 200ms bus, so a 60ms crash lands before the first
/// departure and the policies' promises diverge as far as they can.
fn scenario(policy: AckPolicy, crash: bool) -> EventLogScenario {
    let n_replicas = match policy {
        AckPolicy::OnReplicate(n) => n as usize,
        _ => 0,
    };
    let mut sc = EventLogScenario {
        policy,
        n_replicas,
        flush_every: SimDuration::from_millis(200),
        ..EventLogScenario::default()
    };
    if crash {
        let leader = layout(&sc).leader;
        sc.faults = FaultPlan::from_faults(vec![Fault::Crash {
            at: SimTime::from_millis(60),
            node: leader,
            restart_at: Some(SimTime::from_millis(90)),
        }]);
    }
    sc
}

/// E20: the ack-policy × fault-plan grid.
pub fn e20(seed: u64) -> Table {
    let mut t = Table::new(
        "E20",
        "Event log: ack policy x fault plan -> loss window / apologies",
        "\"the cost of durability can be placed on a spectrum: how much work might be lost when \
         a failure happens is a business decision, not an absolute\" (§4); Immediate buys latency \
         by pricing in a crash-loss window the ledger must apologize for, OnFsync closes the \
         crash window but not the disk, OnReplicate(n) closes both",
        &[
            "policy",
            "fault plan",
            "planned",
            "acked",
            "acked lost (crash)",
            "acked lost if leader disk dies",
            "guesses orphaned",
            "apologies owed",
            "ack p99 ms",
            "bus wait mean ms",
        ],
    );
    let policies = [AckPolicy::Immediate, AckPolicy::OnFsync, AckPolicy::OnReplicate(2)];
    for crash in [false, true] {
        for policy in policies {
            let sc = scenario(policy, crash);
            let r = run(&sc, seed);
            // An apology is owed for every acked append the crash
            // retracted: the guess the ledger orphaned at the moment of
            // the crash, minus the ones re-established by retry.
            t.row(vec![
                policy.to_string(),
                if crash { "leader crash @60ms (bus @200ms)" } else { "calm" }.into(),
                r.planned.to_string(),
                r.acked.to_string(),
                r.lost_acked.to_string(),
                r.lost_without_leader_disk.to_string(),
                r.ledger.orphaned().to_string(),
                r.lost_acked.to_string(),
                f(r.ack_p99_ms),
                f(r.group_commit_mean_ms),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance claim for the PR: under the crash plan where
    /// Immediate apologizes, OnReplicate(2)'s loss window is zero on
    /// *both* axes — no acked append lost to the crash, and none that
    /// would die with the leader's disk.
    #[test]
    fn replicate_has_zero_loss_window_where_immediate_apologizes() {
        let seed = crate::DEFAULT_SEED;
        let immediate = run(&scenario(AckPolicy::Immediate, true), seed);
        assert!(
            immediate.lost_acked > 0,
            "the crash must land inside Immediate's ack-to-bus window: {immediate:?}"
        );
        assert!(immediate.ledger.orphaned() >= immediate.lost_acked);

        let replicated = run(&scenario(AckPolicy::OnReplicate(2), true), seed);
        assert_eq!(replicated.lost_acked, 0);
        assert_eq!(replicated.lost_without_leader_disk, 0);

        let fsync = run(&scenario(AckPolicy::OnFsync, true), seed);
        assert_eq!(fsync.lost_acked, 0, "fsynced acks survive the crash");
    }
}
