//! E11: the seat-reservation pattern vs untrusted agents (§7.3).

use quicksand_core::reservation::{BuyerId, SeatId, SeatMap, SessionId};
use rand::Rng;
use sim::SimRng;

use crate::table::{f, Table};

struct SeatRun {
    honest_bought: u64,
    honest_turned_away: u64,
    adversary_holds: u64,
    avg_available: f64,
    invariant_ok: bool,
}

/// Drive a venue for `ticks` with adversarial hold-and-abandon sessions
/// and honest buyers.
fn seat_run(ttl: Option<u64>, ticks: u64, seed: u64) -> SeatRun {
    const SEATS: u32 = 100;
    const ADVERSARIES: u64 = 5;
    let effective_ttl = ttl.unwrap_or(u64::MAX / 4);
    let mut map = SeatMap::new(SEATS);
    let mut rng = SimRng::new(seed);
    let mut honest_bought = 0;
    let mut honest_turned_away = 0;
    let mut adversary_holds = 0;
    let mut available_sum: u64 = 0;
    let mut next_session: u64 = 1;
    let mut invariant_ok = true;

    for now in 0..ticks {
        // Cleanup worker drains the durable queue each tick.
        map.expire(now);

        // Interleave the arrivals within the tick: scalpers ("quickly
        // start a set of transactions against prime seats" and never
        // complete them) race honest buyers for whatever is available.
        let mut actions = vec![true; ADVERSARIES as usize]; // true = adversary
        actions.extend([false, false]);
        use rand::seq::SliceRandom;
        actions.shuffle(&mut rng);
        for adversarial in actions {
            if adversarial {
                if let Some(seat) = map.best_available() {
                    let session = SessionId(next_session);
                    next_session += 1;
                    if map.hold(seat, session, now, effective_ttl).is_ok() {
                        adversary_holds += 1;
                    }
                }
            } else if rng.gen_bool(0.9) {
                match map.best_available() {
                    Some(seat) => {
                        let session = SessionId(next_session);
                        next_session += 1;
                        if map.hold(seat, session, now, effective_ttl).is_ok()
                            && map.purchase(seat, session, BuyerId(next_session), now).is_ok()
                        {
                            honest_bought += 1;
                        }
                    }
                    None => honest_turned_away += 1,
                }
            }
        }

        let (available, _, _) = map.census();
        available_sum += available as u64;
        if map.check_invariant(now, ttl.map_or(u64::MAX / 2, |t| t + 2)).is_err() {
            invariant_ok = false;
        }
        let _ = SeatId(0);
    }
    SeatRun {
        honest_bought,
        honest_turned_away,
        adversary_holds,
        avg_available: available_sum as f64 / ticks as f64,
        invariant_ok,
    }
}

/// E11: how the bounded-pending-state pattern restores availability.
pub fn e11(seed: u64) -> Table {
    let mut t = Table::new(
        "E11",
        "Seat reservation under adversarial hold-and-abandon load",
        "\"untrusted agents could exploit these aspects of the system to quickly start a set \
         of transactions against prime seats, making them unavailable to others\" — bounded \
         purchase-pending time plus durable cleanup restores them (§7.3)",
        &[
            "pending TTL (ticks)",
            "honest purchases",
            "turned away",
            "scalper holds",
            "avg seats available",
            "invariant",
        ],
    );
    for (label, ttl) in [
        ("unbounded (no pattern)", None),
        ("300", Some(300u64)),
        ("60", Some(60)),
        ("10", Some(10)),
    ] {
        let r = seat_run(ttl, 2_000, seed);
        t.row(vec![
            label.to_string(),
            r.honest_bought.to_string(),
            r.honest_turned_away.to_string(),
            r.adversary_holds.to_string(),
            f(r.avg_available),
            if r.invariant_ok { "ok" } else { "VIOLATED" }.to_string(),
        ]);
    }
    t
}
