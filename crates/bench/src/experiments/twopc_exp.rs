//! E14: the fragility of distributed transactions (§2.3).

use quicksand_core::acid2::examples::CounterAdd;
use quicksand_core::mga::{Replica, ReplicaId};
use quicksand_core::rules::{BusinessRule, PredicateRule};
use sim::{SimDuration, SimTime};
use twopc::{run, TpcConfig};

use crate::table::{f, Table};

/// E14: lock blocking under coordinator outage, versus the lock-free
/// op-centric alternative.
pub fn e14(seed: u64) -> Table {
    let mut t = Table::new(
        "E14",
        "Two-Phase Commit under coordinator failure vs op-centric",
        "\"Distributed transactions (especially using the Two Phase Commit protocol) result \
         in fragile systems and reduced availability\" (§2.3); the ACID 2.0 alternative holds \
         no locks and keeps accepting work (§8.2)",
        &[
            "system",
            "outage",
            "committed/accepted",
            "conflict aborts",
            "max lock hold ms",
            "blocked forever",
            "commit ms (mean)",
        ],
    );
    let base = TpcConfig {
        txns: 150,
        mean_interarrival: SimDuration::from_millis(3),
        horizon: SimTime::from_secs(60),
        ..TpcConfig::default()
    };
    type Outage = Option<(u64, Option<u64>)>;
    let cases: [(&str, Outage); 3] = [
        ("none", None),
        ("500ms, recovers", Some((60, Some(560)))),
        ("permanent", Some((60, None))),
    ];
    for (label, outage) in cases {
        let mut cfg = base.clone();
        if let Some((at, restart)) = outage {
            cfg.crash_coordinator_at = Some(SimTime::from_millis(at));
            cfg.restart_coordinator_at = restart.map(SimTime::from_millis);
        }
        let r = run(&cfg, seed);
        t.row(vec![
            "2PC".to_string(),
            label.to_string(),
            r.committed.to_string(),
            r.aborted_conflict.to_string(),
            f(r.in_doubt_max_ms),
            r.unresolved.to_string(),
            f(r.commit_mean_ms),
        ]);
    }
    // The op-centric row: the same 150 operations admitted as guesses on
    // two replicas, no locks, no coordinator to lose. Violations become
    // apologies (quantified in E12); availability never dips.
    {
        let rule = PredicateRule::min_bound("bound", |v: &i64| *v, i64::MIN + 1);
        let rules: [&dyn BusinessRule<i64>; 1] = [&rule];
        let mut a = Replica::new(ReplicaId(0));
        let mut b = Replica::new(ReplicaId(1));
        let mut accepted = 0u64;
        for i in 0..150u64 {
            let op = CounterAdd::new(i, 1);
            let r = if i % 2 == 0 { &mut a } else { &mut b };
            if r.try_accept(op, &rules).accepted() {
                accepted += 1;
            }
        }
        a.exchange(&mut b);
        t.row(vec![
            "op-centric (no locks)".to_string(),
            "any".to_string(),
            accepted.to_string(),
            "0".to_string(),
            "0".to_string(),
            "0".to_string(),
            "0.50".to_string(), // local admission, from the E12 latency model
        ]);
    }
    let _ = seed;
    t
}
