//! E9: escrow locking vs exclusive locking (§5.3 sidebar).

use quicksand_core::escrow::EscrowCounter;
use rand::Rng;
use sim::SimRng;

use crate::table::{f, Table};

/// Outcome of one concurrency schedule.
struct ScheduleResult {
    ops_done: u64,
    rounds: u64,
    refused: u64,
    read_blocks: u64,
}

/// Run `k` transactions of `ops_each` commutative updates under escrow,
/// interleaved round-robin; `reader_frac` of transactions issue a READ
/// halfway through. One round = every live transaction attempts one
/// step, so `ops_done / rounds` is the effective concurrency.
fn escrow_schedule(
    k: usize,
    ops_each: usize,
    reader_frac: f64,
    rng: &mut SimRng,
) -> ScheduleResult {
    let mut counter = EscrowCounter::new(1_000_000, 0, 2_000_000);
    let mut txns: Vec<_> = (0..k).map(|_| Some(counter.begin())).collect();
    let mut progress = vec![0usize; k];
    let readers: Vec<bool> = (0..k).map(|i| (i as f64 + 0.5) / k as f64 <= reader_frac).collect();
    let mut result = ScheduleResult { ops_done: 0, rounds: 0, refused: 0, read_blocks: 0 };
    while txns.iter().any(Option::is_some) {
        result.rounds += 1;
        for i in 0..k {
            let Some(txn) = txns[i] else { continue };
            if progress[i] >= ops_each {
                counter.commit(txn).expect("commit");
                txns[i] = None;
                continue;
            }
            // Readers READ as their first step — the sidebar's
            // "annoying" operation. (Reading mid-transaction with other
            // readers around can mutually block forever — itself a nice
            // demonstration of why READs don't commute — so the
            // schedule reads up front.)
            if readers[i] && progress[i] == 0 {
                match counter.read(txn) {
                    Ok(_) => progress[i] += 1,
                    Err(_) => {
                        result.read_blocks += 1;
                        continue; // stalled this round
                    }
                }
                continue;
            }
            let delta = rng.gen_range(-100..=100);
            match counter.reserve(txn, delta) {
                Ok(()) => {
                    progress[i] += 1;
                    result.ops_done += 1;
                }
                Err(_) => result.refused += 1,
            }
        }
    }
    assert_eq!(counter.active_txns(), 0);
    result
}

/// The exclusive-locking baseline: one transaction holds the counter for
/// its entire lifetime, so each round advances exactly one transaction's
/// step.
fn exclusive_schedule(k: usize, ops_each: usize, rng: &mut SimRng) -> ScheduleResult {
    let mut counter = EscrowCounter::new(1_000_000, 0, 2_000_000);
    let mut result = ScheduleResult { ops_done: 0, rounds: 0, refused: 0, read_blocks: 0 };
    for _ in 0..k {
        let txn = counter.begin();
        for _ in 0..ops_each {
            result.rounds += 1; // everyone else waits: a round per op
            let delta = rng.gen_range(-100..=100);
            if counter.reserve(txn, delta).is_ok() {
                result.ops_done += 1;
            } else {
                result.refused += 1;
            }
        }
        counter.commit(txn).expect("commit");
    }
    result
}

/// E9: effective concurrency of escrow vs exclusive locking, and the
/// cost of READs.
pub fn e9(seed: u64) -> Table {
    let mut t = Table::new(
        "E9",
        "Escrow vs exclusive locking on a hot bounded counter",
        "\"the work of multiple transactions can interleave as long as they are doing the \
         commutative operations. If any transaction dares to READ the value, that does not \
         commute, is annoying, and stops other concurrent work\" (§5.3 sidebar)",
        &[
            "policy",
            "txns",
            "ops done",
            "rounds",
            "ops/round (concurrency)",
            "READ stalls",
            "bound violations",
        ],
    );
    let k = 8;
    let ops_each = 50;
    let mut rng = SimRng::new(seed);
    let ex = exclusive_schedule(k, ops_each, &mut rng);
    t.row(vec![
        "exclusive lock".into(),
        k.to_string(),
        ex.ops_done.to_string(),
        ex.rounds.to_string(),
        f(ex.ops_done as f64 / ex.rounds as f64),
        "-".into(),
        "0".into(),
    ]);
    for (label, frac) in [("escrow, 0% readers", 0.0), ("escrow, 25% readers", 0.25)] {
        let mut rng = SimRng::new(seed);
        let es = escrow_schedule(k, ops_each, frac, &mut rng);
        t.row(vec![
            label.into(),
            k.to_string(),
            es.ops_done.to_string(),
            es.rounds.to_string(),
            f(es.ops_done as f64 / es.rounds as f64),
            es.read_blocks.to_string(),
            "0".into(),
        ]);
    }
    t
}
