//! E15: quorum choice vs GET staleness (§6.1).
//!
//! "Dynamo always accepts a PUT to the store even if this may result in
//! an inconsistent GET later on." How inconsistent is a knob: with
//! R + W > N a read quorum must intersect the latest write quorum; with
//! R + W ≤ N reads can miss it. A serial writer and a polling reader
//! measure the stale-read rate per configuration — exactly, because the
//! simulator's clock lets us pair every read with the set of writes that
//! had been acknowledged when it was issued.

use dynamo::{build_cluster, DynamoConfig, DynamoMsg, VectorClock};
use sim::{Actor, Context, LinkConfig, NodeId, SimDuration, SimTime, Simulation};

use crate::table::{f, Table};

const KEY: u64 = 42;
const TAG_TICK: u64 = 1;

/// Writes 1, 2, 3, ... through GET→PUT cycles, one at a time, recording
/// when each value's PUT was acknowledged.
struct SerialWriter {
    coordinators: Vec<NodeId>,
    total: u64,
    next_value: u64,
    req: u64,
    getting: bool,
    /// (ack time, value) for every acknowledged write.
    acks: Vec<(SimTime, u64)>,
}

impl SerialWriter {
    fn begin_cycle(&mut self, ctx: &mut Context<'_, DynamoMsg<u64>>) {
        if self.next_value > self.total {
            return;
        }
        self.req += 1;
        self.getting = true;
        let me = ctx.me();
        let coord = self.coordinators[(self.req % self.coordinators.len() as u64) as usize];
        ctx.send(coord, DynamoMsg::ClientGet { req: self.req, key: KEY, resp_to: me });
    }
}

impl Actor<DynamoMsg<u64>> for SerialWriter {
    fn on_start(&mut self, ctx: &mut Context<'_, DynamoMsg<u64>>) {
        self.begin_cycle(ctx);
    }

    fn on_message(
        &mut self,
        ctx: &mut Context<'_, DynamoMsg<u64>>,
        _from: NodeId,
        msg: DynamoMsg<u64>,
    ) {
        match msg {
            DynamoMsg::GetOk { req, versions, .. } if req == self.req && self.getting => {
                self.getting = false;
                let context =
                    versions.iter().fold(VectorClock::new(), |c, v| c.merged(&v.effective_clock()));
                let value = self.next_value;
                self.req += 1;
                let me = ctx.me();
                let coord = self.coordinators[(self.req % self.coordinators.len() as u64) as usize];
                ctx.send(
                    coord,
                    DynamoMsg::ClientPut { req: self.req, key: KEY, value, context, resp_to: me },
                );
            }
            DynamoMsg::GetFailed { req } if req == self.req && self.getting => {
                self.getting = false;
                self.begin_cycle(ctx); // retry the whole cycle
            }
            DynamoMsg::PutOk { req } if req == self.req && !self.getting => {
                self.acks.push((ctx.now(), self.next_value));
                self.next_value += 1;
                self.begin_cycle(ctx);
            }
            DynamoMsg::PutFailed { req } if req == self.req && !self.getting => {
                self.begin_cycle(ctx);
            }
            _ => {}
        }
    }
}

/// Polls the key, recording (issue time, highest value seen).
struct PollingReader {
    coordinators: Vec<NodeId>,
    every: SimDuration,
    req: u64,
    /// req → issue time for in-flight reads.
    issued: std::collections::HashMap<u64, SimTime>,
    /// (issue time, max value returned) per completed read.
    samples: Vec<(SimTime, u64)>,
    failed: u64,
}

impl Actor<DynamoMsg<u64>> for PollingReader {
    fn on_start(&mut self, ctx: &mut Context<'_, DynamoMsg<u64>>) {
        ctx.set_timer(self.every, TAG_TICK);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, DynamoMsg<u64>>, _tag: u64) {
        self.req += 1;
        self.issued.insert(self.req, ctx.now());
        let me = ctx.me();
        let coord = self.coordinators[(self.req % self.coordinators.len() as u64) as usize];
        ctx.send(coord, DynamoMsg::ClientGet { req: self.req, key: KEY, resp_to: me });
        ctx.set_timer(self.every, TAG_TICK);
    }

    fn on_message(
        &mut self,
        _ctx: &mut Context<'_, DynamoMsg<u64>>,
        _from: NodeId,
        msg: DynamoMsg<u64>,
    ) {
        match msg {
            DynamoMsg::GetOk { req, versions, .. } => {
                if let Some(at) = self.issued.remove(&req) {
                    let seen = versions.iter().map(|v| v.value).max().unwrap_or(0);
                    self.samples.push((at, seen));
                }
            }
            DynamoMsg::GetFailed { req } if self.issued.remove(&req).is_some() => {
                self.failed += 1;
            }
            _ => {}
        }
    }
}

struct QuorumRun {
    writes: u64,
    reads: u64,
    stale: u64,
    reads_failed: u64,
}

fn run_quorum(r: usize, w: usize, seed: u64) -> QuorumRun {
    let cfg = DynamoConfig {
        n: 3,
        r,
        w,
        gossip_interval: None, // isolate the quorum effect from anti-entropy
        sloppy: false,         // strict quorums: the textbook property
        request_timeout: SimDuration::from_millis(40),
        ..DynamoConfig::default()
    };
    let mut sim: Simulation<DynamoMsg<u64>> = Simulation::new(seed);
    let cluster = build_cluster(&mut sim, 5, &cfg);
    // Inter-store links are slow, jittery, and lossy (replication lag is
    // what staleness is made of); client links stay crisp so the
    // measurement itself is clean.
    let lossy = LinkConfig::lossy(SimDuration::from_millis(1), SimDuration::from_millis(12), 0.10);
    for i in 0..cluster.stores.len() {
        for j in (i + 1)..cluster.stores.len() {
            sim.network_mut().set_link(cluster.stores[i], cluster.stores[j], lossy);
        }
    }
    let writer = sim.add_node(SerialWriter {
        coordinators: cluster.stores.clone(),
        total: 60,
        next_value: 1,
        req: 0,
        getting: false,
        acks: Vec::new(),
    });
    let reader = sim.add_node(PollingReader {
        coordinators: cluster.stores.clone(),
        every: SimDuration::from_millis(7),
        req: 1 << 32,
        issued: std::collections::HashMap::new(),
        samples: Vec::new(),
        failed: 0,
    });
    sim.run_until(SimTime::from_secs(20));

    let w_actor: &SerialWriter = sim.actor(writer);
    let r_actor: &PollingReader = sim.actor(reader);
    // Exact staleness: a read issued at time t is stale iff it returned
    // less than the highest value acknowledged strictly before t (the
    // writer had been told that write was durable; a fresh quorum read
    // must see it).
    let mut stale = 0u64;
    for (at, seen) in &r_actor.samples {
        let acked_before = w_actor
            .acks
            .iter()
            .filter(|(ack_at, _)| ack_at < at)
            .map(|(_, v)| *v)
            .max()
            .unwrap_or(0);
        if *seen < acked_before {
            stale += 1;
        }
    }
    QuorumRun {
        writes: w_actor.acks.len() as u64,
        reads: r_actor.samples.len() as u64,
        stale,
        reads_failed: r_actor.failed,
    }
}

/// E15: stale reads per quorum configuration.
pub fn e15(seed: u64) -> Table {
    let mut t = Table::new(
        "E15",
        "Quorum configuration vs stale GETs (N=3)",
        "\"Dynamo always accepts a PUT to the store even if this may result in an \
         inconsistent GET later on\" (§6.1) — R+W>N makes read and write quorums intersect; \
         R+W≤N trades freshness for latency",
        &["R", "W", "R+W>N", "writes acked", "reads ok", "reads failed", "stale reads", "stale %"],
    );
    for (r, w) in [(1usize, 1usize), (1, 2), (2, 2), (3, 1), (1, 3)] {
        let run = run_quorum(r, w, seed);
        t.row(vec![
            r.to_string(),
            w.to_string(),
            if r + w > 3 { "yes" } else { "no" }.to_string(),
            run.writes.to_string(),
            run.reads.to_string(),
            run.reads_failed.to_string(),
            run.stale.to_string(),
            f(run.stale as f64 * 100.0 / run.reads.max(1) as f64),
        ]);
    }
    t
}
