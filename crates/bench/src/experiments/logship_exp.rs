//! E4–E5: log shipping (§4) and stuck-tail recovery (§5.1).

use logship::{run, LogshipConfig, RecoveryPolicy, ShipMode};
use sim::{SimDuration, SimTime};

use crate::table::{f, Table};

fn base() -> LogshipConfig {
    LogshipConfig {
        n_clients: 4,
        ops_per_client: 40,
        mean_interarrival: SimDuration::from_millis(4),
        horizon: SimTime::from_secs(120),
        ..LogshipConfig::default()
    }
}

/// E4: the latency-vs-loss trade of asynchronous shipping.
pub fn e4(seed: u64) -> Table {
    let mut t = Table::new(
        "E4",
        "Log shipping: commit latency vs work lost on takeover",
        "\"This delay is unacceptable in most installations and they deal with the low \
         probability chance of losing recent work\" (§4.1); the async window strands acked \
         work in the failed primary (§4.2)",
        &[
            "WAN 1-way ms",
            "ship every ms",
            "mode",
            "commit ms (mean)",
            "acked",
            "lost on takeover",
            "stuck in WAL",
        ],
    );
    for wan_ms in [1u64, 10, 50] {
        for (mode, ship_ms) in [
            (ShipMode::Synchronous, 10u64),
            (ShipMode::Asynchronous, 1),
            (ShipMode::Asynchronous, 10),
            (ShipMode::Asynchronous, 100),
        ] {
            let mut cfg = base();
            cfg.mode = mode;
            cfg.wan_one_way = SimDuration::from_millis(wan_ms);
            cfg.ship_interval = SimDuration::from_millis(ship_ms);
            cfg.mean_interarrival = SimDuration::from_millis(2);
            // Steady-state latency from a failure-free run (post-takeover
            // commits run in degraded local mode and would dilute the
            // figure); loss from an identical run with a mid-workload
            // crash.
            let calm = run(&cfg, seed);
            cfg.crash_primary_at = Some(SimTime::from_millis(120));
            cfg.recovery = RecoveryPolicy::Discard;
            let crashed = run(&cfg, seed);
            t.row(vec![
                wan_ms.to_string(),
                if mode == ShipMode::Synchronous { "-".into() } else { ship_ms.to_string() },
                if mode == ShipMode::Synchronous { "sync" } else { "async" }.to_string(),
                f(calm.commit_mean_ms),
                crashed.acked.to_string(),
                crashed.lost_acked.to_string(),
                crashed.stuck_tail.to_string(),
            ]);
        }
    }
    t
}

/// E5: what reorderable, uniquified operations buy you at recovery time.
pub fn e5(seed: u64) -> Table {
    let mut t = Table::new(
        "E5",
        "Stuck-tail recovery policy after the failed primary returns",
        "\"the pending work is simply discarded due to lack of designed mechanisms to \
         reclaim it\" (§5.1) — unless the ops are uniquified and commutative, in which case \
         out-of-order resurrection is safe (§5.3, §5.4)",
        &["policy", "dedup", "acked", "lost acked", "resurrected", "double-applied"],
    );
    let cases: [(&str, RecoveryPolicy, bool); 3] = [
        ("discard", RecoveryPolicy::Discard, true),
        ("resurrect", RecoveryPolicy::Resurrect, true),
        ("resurrect (no uniquifiers)", RecoveryPolicy::Resurrect, false),
    ];
    for (label, policy, dedup) in cases {
        let mut cfg = base();
        cfg.mean_interarrival = SimDuration::from_millis(2);
        cfg.ship_interval = SimDuration::from_millis(50);
        cfg.crash_primary_at = Some(SimTime::from_millis(120));
        cfg.restart_primary_at = Some(SimTime::from_secs(3));
        cfg.recovery = policy;
        cfg.dedup = dedup;
        let r = run(&cfg, seed);
        t.row(vec![
            label.to_string(),
            if dedup { "on" } else { "off" }.to_string(),
            r.acked.to_string(),
            r.lost_acked.to_string(),
            r.resurrected.to_string(),
            r.duplicate_applications.to_string(),
        ]);
    }
    t
}
