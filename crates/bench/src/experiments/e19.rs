//! E19: the same unmodified cart actors on both engines.
//!
//! The tentpole claim of the runtime subsystem: a [`sim::Actor`] written
//! once runs under the deterministic simulator *and* under the
//! wall-clock multi-threaded runtime with no `#[cfg]` forks, and the
//! application-level outcome — which acked edits survive into the
//! reconciled cart — is the same. E19 runs one fixed add-only workload
//! (distinct items, so the reconciled view is schedule-independent)
//! through [`cart::harness::run`] on the simulator and through the same
//! [`dynamo::StoreNode`]/[`cart::CrdtShopper`] actors on the runtime's
//! loopback transport, then compares the reconciled item sets.
//!
//! Only schedule-independent columns are reported (counts and set
//! equality, never timings), so the table stays byte-deterministic even
//! though the runtime half really runs on OS threads and a host clock.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use cart::{CartAction, CartMode, CartScenario, CrdtCart, CrdtShopper, CART_KEY};
use dynamo::{DynamoConfig, StoreNode};
use quicksand_runtime::RuntimeBuilder;
use sim::{SimDuration, SimTime};

use crate::service::add_crdt_stores;
use crate::table::Table;

use crdt::Crdt;

/// The fixed workload: three shoppers, eight adds each, all items
/// distinct (shopper `i` adds `100*i + j` with quantity `j + 1`).
/// Add-only keeps the reconciled view schedule-independent: the OR-Set
/// join is commutative and no remove can race an add.
fn plans() -> Vec<Vec<CartAction>> {
    (0..3u64)
        .map(|i| {
            (0..8u64).map(|j| CartAction::Add { item: 100 * i + j, qty: j as u32 + 1 }).collect()
        })
        .collect()
}

const N_STORES: u32 = 4;

/// Run the workload on the wall-clock runtime (loopback transport) and
/// return (edits acked, reconciled materialized cart).
fn runtime_run(seed: u64) -> (u64, BTreeMap<u64, u32>) {
    let mut b = RuntimeBuilder::new().seed(seed);
    let stores = add_crdt_stores(&mut b, N_STORES, &DynamoConfig::default());
    let shoppers: Vec<_> = plans()
        .into_iter()
        .enumerate()
        .map(|(i, plan)| {
            b.add_node(CrdtShopper::new(
                i as u32,
                CART_KEY,
                stores.clone(),
                plan,
                SimDuration::from_millis(5),
            ))
        })
        .collect();
    let rt = b.launch();

    // Closed loop: wait (wall time) until every shopper has acked its
    // plan, then let anti-entropy converge the stores.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        std::thread::sleep(Duration::from_millis(20));
        let done = shoppers.iter().all(|&s| rt.inspect::<CrdtShopper, bool, _>(s, |sh| sh.done()));
        if done {
            break;
        }
        assert!(Instant::now() < deadline, "E19 runtime half did not finish in 60s");
    }
    std::thread::sleep(Duration::from_millis(300));

    let report = rt.shutdown();
    let mut acked = 0u64;
    for &s in &shoppers {
        acked += report.actor::<CrdtShopper>(s).acked.len() as u64;
    }
    let mut joined = CrdtCart::new();
    for &s in &stores {
        for v in report.actor::<StoreNode<CrdtCart>>(s).versions(CART_KEY) {
            joined.merge(&v.value);
        }
    }
    (acked, joined.materialize())
}

/// E19: sim-vs-runtime cross-check on the shared actor contract.
pub fn e19(seed: u64) -> Table {
    let mut t = Table::new(
        "E19",
        "One actor contract, two engines: sim vs wall-clock runtime",
        "\"the application is responsible for its own consistency\" — and that responsibility is \
         engine-independent: the same unmodified store and shopper actors must keep the §6.4 \
         no-lost-adds promise whether the machinery underneath is a deterministic simulation or \
         OS threads, sockets, and a host clock",
        &["engine", "edits acked", "lost acked adds", "cart items", "item set matches sim"],
    );

    let scenario = CartScenario {
        mode: CartMode::OrSet,
        n_stores: N_STORES,
        plans: plans(),
        think: SimDuration::from_millis(5),
        horizon: SimTime::from_secs(30),
        ..CartScenario::default()
    };
    let sim_report = cart::run(&scenario, seed);
    let sim_items: Vec<u64> = sim_report.final_cart.keys().copied().collect();
    t.row(vec![
        "sim (deterministic)".into(),
        sim_report.edits_acked.to_string(),
        sim_report.lost_edits.to_string(),
        sim_report.final_cart.len().to_string(),
        "-".into(),
    ]);

    let (rt_acked, rt_cart) = runtime_run(seed);
    let rt_items: Vec<u64> = rt_cart.keys().copied().collect();
    // Acked adds must all survive; with distinct add-only items the two
    // engines' reconciled item sets must be identical.
    let total_planned: u64 = plans().iter().map(|p| p.len() as u64).sum();
    let lost = total_planned.saturating_sub(rt_cart.len() as u64);
    t.row(vec![
        "runtime (wall-clock)".into(),
        rt_acked.to_string(),
        lost.to_string(),
        rt_cart.len().to_string(),
        if rt_items == sim_items { "yes" } else { "NO" }.to_string(),
    ]);
    t
}
