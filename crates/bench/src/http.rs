//! A minimal HTTP/1.1 GET client for the runtime's telemetry endpoint —
//! std `TcpStream` only, mirroring the dependency-free server in
//! `quicksand-runtime`. Used by `loadgen --watch`, the CI smoke curl
//! tour, and the telemetry integration tests.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// `GET path` from the telemetry server at `addr`; returns the status
/// code and the body. Handles both `Content-Length` and chunked
/// transfer encoding (the `/trace` endpoint streams chunked).
pub fn http_get(addr: SocketAddr, path: &str) -> std::io::Result<(u16, String)> {
    let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5))?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    let mut writer = stream.try_clone()?;
    writer.write_all(
        format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n").as_bytes(),
    )?;
    let mut reader = BufReader::new(stream);

    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let code: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::other(format!("bad status line {status_line:?}")))?;

    let mut content_length: Option<usize> = None;
    let mut chunked = false;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 || line == "\r\n" || line == "\n" {
            break;
        }
        let lower = line.to_ascii_lowercase();
        if let Some(v) = lower.strip_prefix("content-length:") {
            content_length = v.trim().parse().ok();
        } else if lower.starts_with("transfer-encoding:") && lower.contains("chunked") {
            chunked = true;
        }
    }

    let mut body = Vec::new();
    if chunked {
        loop {
            let mut size_line = String::new();
            if reader.read_line(&mut size_line)? == 0 {
                break;
            }
            let size = usize::from_str_radix(size_line.trim(), 16)
                .map_err(|_| std::io::Error::other(format!("bad chunk size {size_line:?}")))?;
            if size == 0 {
                break;
            }
            let mut chunk = vec![0u8; size];
            reader.read_exact(&mut chunk)?;
            body.extend_from_slice(&chunk);
            let mut crlf = [0u8; 2];
            reader.read_exact(&mut crlf)?;
        }
    } else if let Some(n) = content_length {
        body.resize(n, 0);
        reader.read_exact(&mut body)?;
    } else {
        reader.read_to_end(&mut body)?;
    }
    String::from_utf8(body)
        .map(|b| (code, b))
        .map_err(|e| std::io::Error::other(format!("non-utf8 body: {e}")))
}

/// Pull the first `"key":<number>` out of a JSON body without a parser
/// (whitespace after the colon is tolerated; the telemetry JSON is
/// machine-written). Returns `None` if the key is absent.
pub fn json_number(body: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = body.find(&needle)? + needle.len();
    let rest = body[at..].trim_start();
    let end = rest
        .find(|c: char| {
            !(c.is_ascii_digit() || c == '-' || c == '+' || c == '.' || c == 'e' || c == 'E')
        })
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_number_extracts_values() {
        let body = r#"{"open":3,"rate": 12.5,"nested":{"x":-4}}"#;
        assert_eq!(json_number(body, "open"), Some(3.0));
        assert_eq!(json_number(body, "rate"), Some(12.5));
        assert_eq!(json_number(body, "x"), Some(-4.0));
        assert_eq!(json_number(body, "missing"), None);
    }
}
