//! The durable incident stream: crash post-mortems appended to an
//! [`eventlog`](quicksand::eventlog) so the black box survives the
//! process that wrote it.
//!
//! The runtime files every crash post-mortem into its in-memory
//! [`sim::IncidentLog`] — a bounded ring that dies with the process.
//! That is exactly backwards for forensics: the incidents you most
//! want are the ones the process did *not* survive. This stream is the
//! bench-side fix: each incident becomes one CRC-framed record in a
//! file-backed event log under `<dir>/`, keyed by a uniquifier derived
//! from `(node, epoch, incident_seq)`. The key makes persistence
//! idempotent — a driver that drains the ring after every fault-plan
//! run re-appends old incidents as no-ops, and a restarted driver
//! recovers its own earlier records (torn tail truncated, never
//! replayed) before adding new ones.

use quicksand::eventlog::{DirKind, EventLog, LogConfig, RecoveryReport};
use quicksand_core::uniquifier::Uniquifier;
use quicksand_core::wire::{from_bytes, to_bytes, WireCodec, WireError};
use sim::Incident;
use std::path::Path;

/// One stream entry: the identifying key fields plus both renderings
/// of the incident (structured JSON for tooling, the text timeline for
/// a human grepping the artifact tab).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IncidentRecord {
    /// Node index the incident happened on.
    pub node: u64,
    /// Crash epoch of that node when the incident was filed.
    pub epoch: u64,
    /// Dense sequence number from the in-memory [`sim::IncidentLog`].
    pub seq: u64,
    /// Incident kind (`"panic-crash"`, `"chaos-crash"`,
    /// `"guess-deadline"`).
    pub kind: String,
    /// [`sim::Incident::to_json`] output.
    pub json: Vec<u8>,
    /// [`sim::Incident::render_text`] output.
    pub text: Vec<u8>,
}

impl WireCodec for IncidentRecord {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.node.encode(buf);
        self.epoch.encode(buf);
        self.seq.encode(buf);
        self.kind.encode(buf);
        self.json.encode(buf);
        self.text.encode(buf);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(IncidentRecord {
            node: u64::decode(buf)?,
            epoch: u64::decode(buf)?,
            seq: u64::decode(buf)?,
            kind: String::decode(buf)?,
            json: Vec::<u8>::decode(buf)?,
            text: Vec::<u8>::decode(buf)?,
        })
    }
}

/// A durable, compacting log of crash post-mortems. Open with
/// [`IncidentStream::open`], feed with [`IncidentStream::append`],
/// read back with [`IncidentStream::replay`].
pub struct IncidentStream {
    log: EventLog<DirKind>,
    recovered: RecoveryReport,
}

impl IncidentStream {
    /// Key for one `(node, epoch, seq)` incident.
    fn key(node: u64, epoch: u64, seq: u64) -> Uniquifier {
        Uniquifier::derived_from_fields(&[
            b"incident",
            &node.to_le_bytes(),
            &epoch.to_le_bytes(),
            &seq.to_le_bytes(),
        ])
    }

    /// Open (or create) the stream under `dir`, recovering any torn
    /// tail a crashed previous run left behind.
    pub fn open(dir: &Path) -> Self {
        let cfg = LogConfig { partitions: 1, ..LogConfig::default() };
        let (log, recovered) = EventLog::open(DirKind::new(dir), cfg);
        IncidentStream { log, recovered }
    }

    /// What recovery found on open (truncated bytes, torn segments).
    pub fn recovered(&self) -> &RecoveryReport {
        &self.recovered
    }

    /// Append one incident; fsyncs before returning so a filed
    /// incident, once reported, survives the process. Returns `false`
    /// when the `(node, epoch, seq)` key was already present — the
    /// idempotent re-drain path.
    pub fn append(&mut self, incident: &Incident) -> bool {
        let rec = IncidentRecord {
            node: incident.node.0 as u64,
            epoch: incident.epoch,
            seq: incident.seq,
            kind: incident.kind.as_str().to_owned(),
            json: incident.to_json().into_bytes(),
            text: incident.render_text().into_bytes(),
        };
        let (_, _, fresh) =
            self.log.append(Self::key(rec.node, rec.epoch, rec.seq), to_bytes(&rec));
        if fresh {
            self.log.fsync();
        }
        fresh
    }

    /// Every record the stream holds, oldest first. Records that fail
    /// to decode (a stream written by a future layout) are skipped
    /// rather than fatal — forensics should never block forensics.
    pub fn replay(&self) -> Vec<IncidentRecord> {
        let mut out = Vec::new();
        for p in 0..self.log.partitions() {
            for rec in self.log.read(p, 0, usize::MAX) {
                if let Ok(entry) = from_bytes::<IncidentRecord>(&rec.payload) {
                    out.push(entry);
                }
            }
        }
        out
    }

    /// An index of the stream as one JSON object, mirroring the shape
    /// of the live `GET /incidents` endpoint closely enough for the
    /// same tooling to consume either.
    pub fn index_json(&self) -> String {
        let recs = self.replay();
        let mut out = format!("{{\"count\":{},\"incidents\":[", recs.len());
        for (i, r) in recs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"node\":\"n{}\",\"epoch\":{},\"seq\":{},\"kind\":\"{}\"}}",
                r.node, r.epoch, r.seq, r.kind
            ));
        }
        out.push_str("]}");
        out
    }

    /// Compact sealed segments (newest record per key). Returns freed
    /// bytes.
    pub fn compact(&mut self) -> u64 {
        self.log.compact().bytes_reclaimed
    }

    /// Records currently held.
    pub fn len(&self) -> usize {
        self.log.record_count()
    }

    /// True when the stream holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quicksand::chaos::FaultPlan;
    use sim::{CausalSlice, Explanation, FlightId, IncidentKind, NodeId, SimTime, SpanStore};

    fn fake_incident(seq: u64, node: usize, epoch: u64) -> Incident {
        let slice = CausalSlice {
            target: FlightId(7),
            events: Vec::new(),
            truncated: false,
            missing_ancestors: 0,
            total_recorded: 0,
        };
        Incident {
            seq,
            node: NodeId(node),
            epoch,
            kind: IncidentKind::ChaosCrash,
            at: SimTime::from_micros(250),
            target: FlightId(7),
            orphaned_guesses: vec!["cart.add".to_owned()],
            explanation: Explanation::new(9, slice, FaultPlan::none(), SpanStore::default()),
        }
    }

    #[test]
    fn stream_survives_reopen_and_dedups_redrains() {
        let dir = std::env::temp_dir().join(format!("incstream-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut s = IncidentStream::open(&dir);
            assert!(s.is_empty());
            assert!(s.append(&fake_incident(0, 2, 1)));
            assert!(s.append(&fake_incident(1, 0, 1)));
            assert!(!s.append(&fake_incident(0, 2, 1)), "re-drain is a dup");
            assert_eq!(s.len(), 2);
        }
        {
            let s = IncidentStream::open(&dir);
            assert_eq!(s.recovered().truncated_bytes, 0);
            let recs = s.replay();
            assert_eq!(recs.len(), 2);
            assert_eq!(recs[0].node, 2);
            assert_eq!(recs[0].kind, "chaos-crash");
            assert!(String::from_utf8_lossy(&recs[0].text).contains("incident #0"));
            assert!(s.index_json().contains("\"count\":2"));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn same_seq_different_epoch_is_a_distinct_incident() {
        let dir = std::env::temp_dir().join(format!("incstream-epoch-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut s = IncidentStream::open(&dir);
        assert!(s.append(&fake_incident(0, 1, 1)));
        assert!(s.append(&fake_incident(0, 1, 2)), "epoch is part of the key");
        assert_eq!(s.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
