//! The flight-recorder artifact stream: causal-slice explanations
//! appended to a durable [`eventlog`] instead of (only) loose files.
//!
//! The chaos driver used to persist forensics purely as
//! `explain-<seed>.{txt,json}` files — fine for a CI artifact tab, but
//! with no recovery story: a crash mid-write leaves a half file, and
//! nothing dedups the same failure re-explained across sweeps. The
//! stream rebases that on the event-log substrate this repo now ships:
//! each explanation is one CRC-framed record in a file-backed
//! [`EventLog`] under `<artifacts>/stream/`, keyed by a uniquifier
//! derived from `(scenario, seed)`. That buys, for free:
//!
//! - **Crash consistency**: a torn final record is truncated on the
//!   next open ([`RecoveryReport`] says how many bytes were cut), so
//!   the stream never replays garbage.
//! - **Idempotence**: explanations are deterministic per seed, so the
//!   `(scenario, seed)` key makes re-running a sweep a no-op append —
//!   the dedup index collapses the retry exactly like any other
//!   uniquified operation (§5.4).
//! - **Compaction**: old sealed segments keep only the newest record
//!   per key, bounding the stream across many nightly runs.

use quicksand::eventlog::{DirKind, EventLog, LogConfig, RecoveryReport};
use quicksand_core::uniquifier::Uniquifier;
use quicksand_core::wire::{from_bytes, to_bytes, WireCodec, WireError};
use sim::Explanation;
use std::path::Path;

/// One stream entry: which scenario failed, which seed, and the full
/// explanation JSON (the same bytes the loose `explain-<seed>.json`
/// file holds).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArtifactEntry {
    /// Scenario name (e.g. `"eventlog_fsync"`).
    pub scenario: String,
    /// The failing sweep seed.
    pub seed: u64,
    /// `Explanation::to_json()` output.
    pub json: Vec<u8>,
}

impl WireCodec for ArtifactEntry {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.scenario.encode(buf);
        self.seed.encode(buf);
        self.json.encode(buf);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(ArtifactEntry {
            scenario: String::decode(buf)?,
            seed: u64::decode(buf)?,
            json: Vec::<u8>::decode(buf)?,
        })
    }
}

/// A durable, compacting log of chaos explanations. See the module
/// docs; open with [`ArtifactStream::open`], feed with
/// [`ArtifactStream::append`], read back with
/// [`ArtifactStream::replay`].
pub struct ArtifactStream {
    log: EventLog<DirKind>,
    recovered: RecoveryReport,
}

impl ArtifactStream {
    /// Key for one `(scenario, seed)` failure.
    fn key(scenario: &str, seed: u64) -> Uniquifier {
        Uniquifier::derived_from_fields(&[b"artifact", scenario.as_bytes(), &seed.to_le_bytes()])
    }

    /// Open (or create) the stream under `dir`, recovering any torn
    /// tail a crashed previous run left behind.
    pub fn open(dir: &Path) -> Self {
        let cfg = LogConfig { partitions: 1, ..LogConfig::default() };
        let (log, recovered) = EventLog::open(DirKind::new(dir), cfg);
        ArtifactStream { log, recovered }
    }

    /// What recovery found on open (truncated bytes, torn segments).
    pub fn recovered(&self) -> &RecoveryReport {
        &self.recovered
    }

    /// Append one explanation; fsyncs before returning so a stream
    /// entry, once reported, survives the process. Returns `false` when
    /// the `(scenario, seed)` pair was already present (the idempotent
    /// re-run path).
    pub fn append(&mut self, scenario: &str, e: &Explanation) -> bool {
        let entry = ArtifactEntry {
            scenario: scenario.to_owned(),
            seed: e.seed,
            json: e.to_json().into_bytes(),
        };
        let (_, _, fresh) = self.log.append(Self::key(scenario, e.seed), to_bytes(&entry));
        if fresh {
            self.log.fsync();
        }
        fresh
    }

    /// Every entry the stream holds, oldest first. Records that fail to
    /// decode (a stream written by a future layout) are skipped rather
    /// than fatal — forensics should never block forensics.
    pub fn replay(&self) -> Vec<ArtifactEntry> {
        let mut out = Vec::new();
        for p in 0..self.log.partitions() {
            for rec in self.log.read(p, 0, usize::MAX) {
                if let Ok(entry) = from_bytes::<ArtifactEntry>(&rec.payload) {
                    out.push(entry);
                }
            }
        }
        out
    }

    /// Compact sealed segments (newest record per key). Returns freed
    /// bytes.
    pub fn compact(&mut self) -> u64 {
        self.log.compact().bytes_reclaimed
    }

    /// Records currently held.
    pub fn len(&self) -> usize {
        self.log.record_count()
    }

    /// True when the stream holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quicksand::chaos::FaultPlan;
    use sim::{CausalSlice, FlightId, SpanStore};

    fn fake_explanation(seed: u64) -> Explanation {
        let slice = CausalSlice {
            target: FlightId(0),
            events: Vec::new(),
            truncated: false,
            missing_ancestors: 0,
            total_recorded: 0,
        };
        Explanation::new(seed, slice, FaultPlan::none(), SpanStore::default())
    }

    #[test]
    fn stream_survives_reopen_and_dedups_reruns() {
        let dir = std::env::temp_dir().join(format!("evstream-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut s = ArtifactStream::open(&dir);
            assert!(s.is_empty());
            assert!(s.append("cart_oplog", &fake_explanation(3)));
            assert!(s.append("cart_oplog", &fake_explanation(9)));
            assert!(!s.append("cart_oplog", &fake_explanation(3)), "re-run is a dup");
            assert_eq!(s.len(), 2);
        }
        {
            let s = ArtifactStream::open(&dir);
            assert_eq!(s.recovered().truncated_bytes, 0);
            let entries = s.replay();
            assert_eq!(entries.len(), 2);
            assert_eq!(entries[0].scenario, "cart_oplog");
            assert_eq!(entries[0].seed, 3);
            assert!(!entries[1].json.is_empty());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_not_replayed() {
        let dir = std::env::temp_dir().join(format!("evstream-torn-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut s = ArtifactStream::open(&dir);
            s.append("tandem_dp2", &fake_explanation(1));
            s.append("tandem_dp2", &fake_explanation(2));
        }
        // Simulate a crash mid-append: garbage bytes on the active
        // segment of the single data partition.
        let seg_dir = dir.join("p0");
        let mut segs: Vec<_> = std::fs::read_dir(&seg_dir)
            .expect("segment dir")
            .map(|e| e.expect("entry").path())
            .collect();
        segs.sort();
        let last = segs.last().expect("at least one segment");
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new().append(true).open(last).expect("open segment");
        f.write_all(&[0xde, 0xad, 0xbe, 0xef, 0x01]).expect("tear");
        drop(f);

        let s = ArtifactStream::open(&dir);
        assert!(s.recovered().truncated_bytes >= 5, "the tear was cut: {:?}", s.recovered());
        let entries = s.replay();
        assert_eq!(entries.len(), 2, "intact records survive the torn tail");
        assert_eq!(entries.iter().map(|e| e.seed).collect::<Vec<_>>(), vec![1, 2]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
