//! Criterion micro-benchmarks of the pattern library's hot paths: the
//! op log, the dedup table, uniquifier derivation, vector clocks, and —
//! the headline — escrow locking versus an exclusive lock under real
//! thread contention (E9's wall-clock companion).

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use parking_lot::Mutex;
use quicksand_core::acid2::examples::CounterAdd;
use quicksand_core::escrow::EscrowCounter;
use quicksand_core::idempotence::DedupTable;
use quicksand_core::op::OpLog;
use quicksand_core::uniquifier::Uniquifier;

fn bench_uniquifier(c: &mut Criterion) {
    let payload = b"POST /orders {customer: 42, sku: 7, qty: 1}";
    c.bench_function("uniquifier/derive_from_request", |b| {
        b.iter(|| Uniquifier::derived(black_box(payload)))
    });
    c.bench_function("uniquifier/composite", |b| {
        b.iter(|| Uniquifier::composite(black_box("bank:acct:42"), black_box(1001)))
    });
}

fn bench_oplog(c: &mut Criterion) {
    c.bench_function("oplog/record_1k", |b| {
        b.iter(|| {
            let mut log = OpLog::new();
            for i in 0..1_000u64 {
                log.record(CounterAdd::new(i, i as i64));
            }
            black_box(log.len())
        })
    });

    let mut left = OpLog::new();
    let mut right = OpLog::new();
    for i in 0..1_000u64 {
        if i % 2 == 0 {
            left.record(CounterAdd::new(i, 1));
        } else {
            right.record(CounterAdd::new(i, 1));
        }
    }
    c.bench_function("oplog/merge_500_into_500", |b| {
        b.iter(|| {
            let mut l = left.clone();
            black_box(l.merge(&right))
        })
    });

    let mut full = left.clone();
    full.merge(&right);
    c.bench_function("oplog/materialize_1k", |b| b.iter(|| black_box(full.materialize())));
    c.bench_function("oplog/diff_disjoint_500", |b| b.iter(|| black_box(left.diff(&right))));
}

fn bench_dedup(c: &mut Criterion) {
    c.bench_function("dedup/first_sight", |b| {
        let mut table: DedupTable<u64> = DedupTable::new(1 << 20);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            table.execute(Uniquifier::from_parts(1, i), || i)
        })
    });
    c.bench_function("dedup/retry_hit", |b| {
        let mut table: DedupTable<u64> = DedupTable::new(1 << 20);
        let id = Uniquifier::from_parts(1, 1);
        table.execute(id, || 7);
        b.iter(|| table.execute(black_box(id), || unreachable!("must dedup")))
    });
}

/// The wall-clock companion to E9, with an honest caveat: on a single
/// counter, raw throughput *favors* the exclusive variant (one lock
/// acquisition per transaction vs one per operation). What escrow buys
/// is not counter throughput but *interleaving*: under the exclusive
/// scheme every other transaction's first operation waits an entire
/// transaction lifetime, while under escrow it waits one short critical
/// section — the fairness/latency effect E9 measures as ops/round.
/// Escrow: all transactions begin up front and interleave per-op.
/// Exclusive: one global lock held for a whole transaction at a time.
fn contended_escrow(threads: usize, ops: usize) -> i64 {
    let counter = Arc::new(Mutex::new(EscrowCounter::new(1_000_000, 0, 2_000_000)));
    crossbeam::scope(|s| {
        for t in 0..threads {
            let counter = Arc::clone(&counter);
            s.spawn(move |_| {
                let txn = counter.lock().begin();
                for i in 0..ops {
                    let delta = if (t + i) % 2 == 0 { 3 } else { -3 };
                    // Short critical section per operation — that's the
                    // whole point of escrow.
                    let _ = counter.lock().reserve(txn, delta);
                }
                counter.lock().commit(txn).expect("commit");
            });
        }
    })
    .expect("threads");
    let guard = counter.lock();
    guard.committed()
}

fn contended_exclusive(threads: usize, ops: usize) -> i64 {
    let counter = Arc::new(Mutex::new(EscrowCounter::new(1_000_000, 0, 2_000_000)));
    crossbeam::scope(|s| {
        for t in 0..threads {
            let counter = Arc::clone(&counter);
            s.spawn(move |_| {
                // The lock is held for the entire transaction: nobody
                // else interleaves.
                let mut guard = counter.lock();
                let txn = guard.begin();
                for i in 0..ops {
                    let delta = if (t + i) % 2 == 0 { 3 } else { -3 };
                    let _ = guard.reserve(txn, delta);
                }
                guard.commit(txn).expect("commit");
            });
        }
    })
    .expect("threads");
    let guard = counter.lock();
    guard.committed()
}

fn bench_escrow(c: &mut Criterion) {
    let mut group = c.benchmark_group("escrow_vs_exclusive");
    group.sample_size(20);
    for threads in [2usize, 8] {
        group.bench_with_input(
            BenchmarkId::new("escrow_interleaved", threads),
            &threads,
            |b, &t| b.iter(|| black_box(contended_escrow(t, 2_000))),
        );
        group.bench_with_input(BenchmarkId::new("exclusive_lock", threads), &threads, |b, &t| {
            b.iter(|| black_box(contended_exclusive(t, 2_000)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_uniquifier, bench_oplog, bench_dedup, bench_escrow);
criterion_main!(benches);
