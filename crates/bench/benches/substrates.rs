//! Criterion benchmarks of the simulated substrates: end-to-end
//! simulation throughput for the Tandem cluster (DP1 vs DP2, bus vs
//! car), the Dynamo ring/clock primitives, and a full cart
//! partition-heal scenario. These measure *simulator* wall-clock — the
//! cost of regenerating the experiment tables — and double as
//! regressions on protocol message complexity.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dynamo::{Ring, VectorClock};
use sim::{SimDuration, SimTime};
use tandem::{run as run_tandem, Mode, TandemConfig};

fn tandem_cfg(mode: Mode, group_commit: bool) -> TandemConfig {
    TandemConfig {
        mode,
        n_dps: 2,
        n_apps: 2,
        txns_per_app: 25,
        writes_per_txn: 4,
        mean_interarrival: SimDuration::from_millis(4),
        adp_group_commit: group_commit,
        horizon: SimTime::from_secs(30),
        ..TandemConfig::default()
    }
}

fn bench_tandem(c: &mut Criterion) {
    let mut group = c.benchmark_group("tandem_sim");
    group.sample_size(10);
    for (label, mode, gc) in
        [("dp1", Mode::Dp1, true), ("dp2_bus", Mode::Dp2, true), ("dp2_car", Mode::Dp2, false)]
    {
        group.bench_function(BenchmarkId::new("run_100_txns", label), |b| {
            b.iter(|| {
                let r = run_tandem(&tandem_cfg(mode, gc), 7);
                assert_eq!(r.lost_committed, 0);
                black_box(r.committed)
            })
        });
    }
    group.finish();
}

fn bench_ring(c: &mut Criterion) {
    let ring = Ring::new(16, 128);
    c.bench_function("ring/preference_list_n3", |b| {
        let mut key = 0u64;
        b.iter(|| {
            key = key.wrapping_add(1);
            black_box(ring.preference_list(key, 3))
        })
    });
}

fn bench_vclock(c: &mut Criterion) {
    let mut a = VectorClock::new();
    let mut b_clock = VectorClock::new();
    for i in 0..16u32 {
        a = a.incremented(i);
        if i % 2 == 0 {
            b_clock = b_clock.incremented(i);
        }
    }
    c.bench_function("vclock/compare_16_entries", |bch| {
        bch.iter(|| black_box(a.compare(&b_clock)))
    });
    c.bench_function("vclock/merge_16_entries", |bch| bch.iter(|| black_box(a.merged(&b_clock))));
}

fn bench_cart(c: &mut Criterion) {
    use cart::{run as run_cart, CartAction, CartScenario};
    let scenario = CartScenario {
        plans: vec![
            vec![CartAction::Add { item: 1, qty: 1 }, CartAction::Remove { item: 1 }],
            vec![CartAction::Add { item: 2, qty: 1 }, CartAction::Add { item: 3, qty: 1 }],
        ],
        partition: Some((SimTime::from_millis(20), SimTime::from_secs(3))),
        horizon: SimTime::from_secs(20),
        ..CartScenario::default()
    };
    let mut group = c.benchmark_group("cart_sim");
    group.sample_size(10);
    group.bench_function("partition_heal_scenario", |b| {
        b.iter(|| {
            let r = run_cart(&scenario, 5);
            assert_eq!(r.lost_edits, 0);
            black_box(r.edits_acked)
        })
    });
    group.finish();
}

fn bench_bank(c: &mut Criterion) {
    use bank::{run_clearing, ClearingConfig};
    let cfg = ClearingConfig {
        rounds: 60,
        checks_per_round: 10,
        n_accounts: 30,
        ..ClearingConfig::default()
    };
    let mut group = c.benchmark_group("bank_sim");
    group.sample_size(10);
    group.bench_function("clearing_600_checks", |b| {
        b.iter(|| {
            let r = run_clearing(&cfg, 3);
            assert!(r.converged && r.no_double_posting);
            black_box(r.presented)
        })
    });
    group.finish();
}

fn bench_inventory(c: &mut Criterion) {
    use inventory::{run_stock, StockConfig, StockPolicy};
    let mut group = c.benchmark_group("inventory_sim");
    group.sample_size(10);
    for (label, policy) in [
        ("provisioned", StockPolicy::OverProvision),
        ("overbooked", StockPolicy::OverBook { factor: 1.15 }),
    ] {
        let cfg = StockConfig { policy, ..StockConfig::default() };
        group.bench_function(BenchmarkId::new("policy_run", label), |b| {
            b.iter(|| black_box(run_stock(&cfg, 5).accepted))
        });
    }
    group.finish();
}

fn bench_twopc(c: &mut Criterion) {
    use twopc::{run as run_tpc, TpcConfig};
    let cfg = TpcConfig { txns: 100, horizon: SimTime::from_secs(30), ..TpcConfig::default() };
    let mut group = c.benchmark_group("twopc_sim");
    group.sample_size(10);
    group.bench_function("run_100_dtx", |b| {
        b.iter(|| {
            let r = run_tpc(&cfg, 7);
            assert_eq!(r.unresolved, 0);
            black_box(r.committed)
        })
    });
    group.finish();
}

fn bench_logship(c: &mut Criterion) {
    use logship::{run as run_ship, LogshipConfig};
    let cfg = LogshipConfig { horizon: SimTime::from_secs(30), ..LogshipConfig::default() };
    let mut group = c.benchmark_group("logship_sim");
    group.sample_size(10);
    group.bench_function("run_200_commits", |b| {
        b.iter(|| {
            let r = run_ship(&cfg, 7);
            assert_eq!(r.lost_acked, 0);
            black_box(r.acked)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_tandem,
    bench_ring,
    bench_vclock,
    bench_cart,
    bench_bank,
    bench_inventory,
    bench_twopc,
    bench_logship
);
criterion_main!(benches);
