//! Integration test for the live operator surface: boot the cart
//! service on the wall-clock runtime with the telemetry endpoint
//! enabled, drive a loadgen burst, and hit every route over real HTTP —
//! both metric formats, schema stability, counter monotonicity, crash /
//! restart visibility, and span-schema parity between `/trace` and the
//! simulator's Perfetto exporter.

use std::time::{Duration, Instant};

use dynamo::DynamoConfig;
use quicksand_bench::http::{http_get, json_number};
use quicksand_bench::service::{add_crdt_stores, LoadClient};
use quicksand_runtime::RuntimeBuilder;
use sim::{Actor, Context, NodeId};

/// Poll `f` every 20ms until it returns true or ~5s elapse.
fn wait_for(mut f: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline {
        if f() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    false
}

#[test]
fn telemetry_surface_serves_all_endpoints_under_load() {
    let mut b = RuntimeBuilder::new()
        .seed(11)
        .telemetry("127.0.0.1:0")
        .expect("bind telemetry")
        .snapshot_interval(Duration::from_millis(100))
        .flight(2048)
        .trace(2048);
    let stores = add_crdt_stores(&mut b, 3, &DynamoConfig::default());
    let mut clients = Vec::new();
    for c in 0..2 {
        clients.push(b.add_node(LoadClient::new(c, stores.clone(), 300, 64, 50)));
    }
    let rt = b.launch();
    let addr = rt.telemetry_addr().expect("telemetry enabled");

    // Route index.
    let (code, body) = http_get(addr, "/").expect("GET /");
    assert_eq!(code, 200);
    assert!(body.contains("/metrics") && body.contains("/ledger"), "{body}");

    // Unknown route: 404, server keeps serving.
    let (code, _) = http_get(addr, "/nope").expect("GET /nope");
    assert_eq!(code, 404);

    // Health while everything is up: 200, every node present and up.
    let (code, health) = http_get(addr, "/health").expect("GET /health");
    assert_eq!(code, 200, "{health}");
    assert!(health.contains("\"status\":\"ok\""), "{health}");
    assert_eq!(json_number(&health, "nodes_total"), Some(5.0), "{health}");
    assert_eq!(json_number(&health, "nodes_up"), Some(5.0), "{health}");
    for n in 0..5 {
        assert!(health.contains(&format!("\"node\":\"n{n}\"")), "{health}");
    }

    // Counters mid-burst, then after the burst: strictly monotone.
    // (Poll: the counter is born with the first send.)
    let mut sent1 = 0.0;
    assert!(
        wait_for(|| {
            http_get(addr, "/metrics?format=json").is_ok_and(|(_, m)| {
                match json_number(&m, "sim.messages_sent") {
                    Some(v) => {
                        sent1 = v;
                        true
                    }
                    None => false,
                }
            })
        }),
        "sim.messages_sent never appeared in /metrics"
    );
    assert!(
        wait_for(|| {
            clients.iter().all(|&c| rt.inspect::<LoadClient, bool, _>(c, |cl| cl.done()))
        }),
        "load burst did not complete"
    );
    let (_, m2) = http_get(addr, "/metrics?format=json").expect("GET /metrics json again");
    let sent2 = json_number(&m2, "sim.messages_sent").expect("messages_sent in JSON");
    assert!(sent2 > sent1, "counter went {sent1} -> {sent2}, not monotone-increasing");

    // JSON exposition schema: every top-level section present, braces
    // balanced, runtime gauges included.
    for key in [
        "\"uptime_us\"",
        "\"counters\"",
        "\"labeled_counters\"",
        "\"gauges\"",
        "\"ledger\"",
        "\"rates_per_sec\"",
        "\"window_histograms\"",
        "\"histograms\"",
    ] {
        assert!(m2.contains(key), "missing {key} in {m2}");
    }
    assert_eq!(m2.matches('{').count(), m2.matches('}').count(), "unbalanced JSON");
    assert_eq!(json_number(&m2, "runtime.nodes_up"), Some(5.0), "{m2}");
    assert!(m2.contains("\"runtime.mailbox_depth{node=n0}\""), "{m2}");
    assert!(m2.contains("\"load.get_us\""), "{m2}");

    // Prometheus exposition: well-formed families, histogram summaries
    // with quantile labels, runtime gauges as labeled series.
    let (code, prom) = http_get(addr, "/metrics").expect("GET /metrics");
    assert_eq!(code, 200);
    assert!(prom.contains("# TYPE quicksand_sim_messages_sent counter"), "{prom}");
    assert!(prom.contains("quicksand_uptime_seconds"), "{prom}");
    assert!(prom.contains("quicksand_load_get_us{quantile=\"0.99\"}"), "{prom}");
    assert!(prom.contains("quicksand_load_get_us_count"), "{prom}");
    assert!(prom.contains("quicksand_runtime_mailbox_depth{node=\"n0\"}"), "{prom}");
    for line in prom.lines() {
        assert!(
            line.starts_with('#')
                || line.is_empty()
                || line.split_once(' ').is_some_and(|(_, v)| v.parse::<f64>().is_ok()),
            "malformed exposition line: {line:?}"
        );
    }

    // Ledger: accounting present; nothing left open on a healthy run.
    let (code, ledger) = http_get(addr, "/ledger").expect("GET /ledger");
    assert_eq!(code, 200);
    assert!(ledger.contains("\"accounting\""), "{ledger}");
    assert!(ledger.contains("\"open_guesses\""), "{ledger}");
    assert_eq!(json_number(&ledger, "open"), Some(0.0), "{ledger}");

    // Trace: a JSON array of Chrome trace events in exactly the sim
    // exporter's span schema (complete events with span/trace/status
    // args; `cat` marks them as spans).
    let (code, trace) = http_get(addr, "/trace?limit=500").expect("GET /trace");
    assert_eq!(code, 200);
    let trimmed = trace.trim();
    assert!(trimmed.starts_with('[') && trimmed.ends_with(']'), "{trimmed}");
    assert!(trace.contains("\"ph\":\"X\""), "no completed spans in {trace}");
    assert!(trace.contains("\"cat\":\"span\""), "{trace}");
    for key in ["\"name\":", "\"ts\":", "\"dur\":", "\"pid\":", "\"tid\":", "\"args\":"] {
        assert!(trace.contains(key), "span schema missing {key} in {trace}");
    }
    assert!(trace.contains("\"span\":") && trace.contains("\"status\":"), "{trace}");

    // Malformed query params are a 400, never a silent default.
    for bad in [
        "/trace?limit=abc",
        "/trace?span=xyz",
        "/metrics?format=yaml",
        "/explain",
        "/explain?incident=abc",
        "/explain?guess=x9",
        "/explain?incident=0&guess=1",
        "/explain?incident=0&format=protobuf",
    ] {
        let (code, body) = http_get(addr, bad).expect(bad);
        assert_eq!(code, 400, "{bad} should be a 400, got {code}: {body}");
    }

    // `?span=` narrows /trace to one span's subtree: the root and its
    // child are both present, and the filtered view is a strict subset
    // of the full tail. An unknown span is a 404.
    let (root, child) = rt.with_core(|c| {
        let spans = c.spans.spans();
        let child = spans.iter().find(|s| s.parent.is_some()).expect("a child span under load");
        (child.parent.unwrap(), child.id)
    });
    let (code, sub) = http_get(addr, &format!("/trace?span=S{}", root.0)).expect("GET /trace?span");
    assert_eq!(code, 200);
    assert!(sub.contains(&format!("\"span\":\"S{}\"", root.0)), "{sub}");
    assert!(sub.contains(&format!("\"span\":\"S{}\"", child.0)), "{sub}");
    let (_, full) = http_get(addr, "/trace").expect("GET /trace full");
    let count = |s: &str| s.matches("\"ph\":\"X\"").count();
    assert!(count(&sub) < count(&full), "subtree filter did not narrow the trace");
    let (code, _) = http_get(addr, "/trace?span=S99999999").expect("unknown span");
    assert_eq!(code, 404);

    // The ledger's open→resolve latency quantiles are exposed per
    // substrate in the Prometheus text (satellite of the apology-
    // latency surfacing; the JSON side carries them inside "ledger").
    // A healthy cart burst opens no guesses (hinted handoff needs a
    // down node), so settle one each way directly on the core ledger.
    rt.with_core(|c| {
        let t0 = sim::SimTime::from_micros(0);
        let a = c.ledger.open("probe.write", None, "quorum ack pending", t0);
        c.ledger.resolve(a, sim::SimTime::from_micros(1500), sim::GuessOutcome::Confirmed);
        let b = c.ledger.open("probe.write", None, "quorum ack pending", t0);
        c.ledger.resolve(b, sim::SimTime::from_micros(2500), sim::GuessOutcome::Apologized);
    });
    let (_, prom2) = http_get(addr, "/metrics").expect("GET /metrics for latency series");
    assert!(
        prom2.contains("quicksand_ledger_confirm_latency_us{substrate=\"probe\",quantile=\"0.5\"}"),
        "{prom2}"
    );
    assert!(
        prom2
            .contains("quicksand_ledger_apology_latency_us{substrate=\"probe\",quantile=\"0.99\"}"),
        "{prom2}"
    );
    assert!(
        prom2.contains("quicksand_ledger_apology_latency_us_count{substrate=\"probe\"} 1"),
        "{prom2}"
    );
    let (_, ledger2) = http_get(addr, "/ledger").expect("GET /ledger with latency");
    assert!(ledger2.contains("\"apology_latency_us\""), "{ledger2}");

    // Crash a store: /health flips to 503 with the node marked down,
    // restart flips it back and the labeled restart counter appears.
    rt.crash(stores[2]);
    assert!(
        wait_for(|| http_get(addr, "/health").is_ok_and(|(c, _)| c == 503)),
        "health never reported the crash"
    );
    let (_, degraded) = http_get(addr, "/health").expect("GET /health degraded");
    assert!(degraded.contains("\"status\":\"degraded\""), "{degraded}");
    assert_eq!(json_number(&degraded, "nodes_up"), Some(4.0), "{degraded}");
    rt.restart(stores[2]);
    assert!(
        wait_for(|| http_get(addr, "/health").is_ok_and(|(c, _)| c == 200)),
        "health never recovered after restart"
    );
    let (_, prom) = http_get(addr, "/metrics").expect("GET /metrics after restart");
    assert!(prom.contains("quicksand_runtime_restarts{node=\"n2\"} 1"), "{prom}");

    rt.shutdown();
}

/// An actor that panics on its first message — the fail-fast path.
struct Boom;
impl Actor<u64> for Boom {
    fn on_message(&mut self, _ctx: &mut Context<'_, u64>, _from: NodeId, msg: u64) {
        panic!("boom on {msg}");
    }
}

#[test]
fn panic_crashes_show_up_in_health_and_labeled_metrics() {
    let mut b = RuntimeBuilder::new()
        .telemetry("127.0.0.1:0")
        .expect("bind telemetry")
        .snapshot_interval(Duration::from_millis(100));
    let a = b.add_node(Boom);
    let z = b.add_node(Boom);
    let rt = b.launch();
    let addr = rt.telemetry_addr().expect("telemetry enabled");

    rt.inject(a, z, 7);
    assert!(
        wait_for(|| http_get(addr, "/health").is_ok_and(|(c, _)| c == 503)),
        "panic crash never reached /health"
    );
    let (_, health) = http_get(addr, "/health").expect("GET /health");
    assert_eq!(json_number(&health, "panic_crashes"), Some(1.0), "{health}");
    assert!(health.contains("\"up\":false"), "{health}");

    let (_, prom) = http_get(addr, "/metrics").expect("GET /metrics");
    assert!(prom.contains("quicksand_runtime_panic_crashes{node=\"n0\"} 1"), "{prom}");
    assert!(prom.contains("# TYPE quicksand_runtime_panic_crashes counter"), "{prom}");

    let (_, json) = http_get(addr, "/metrics?format=json").expect("GET /metrics json");
    assert_eq!(json_number(&json, "runtime.panic_crashes"), Some(1.0), "{json}");
    assert!(json.contains("\"runtime.panic_crashes{node=n0}\""), "{json}");

    // The black box filed the panic as an incident, and /explain serves
    // the post-mortem in all three renderings while the node is down.
    let (code, idx) = http_get(addr, "/incidents").expect("GET /incidents");
    assert_eq!(code, 200);
    assert!(json_number(&idx, "count").unwrap_or(0.0) >= 1.0, "{idx}");
    assert!(idx.contains("\"kind\":\"panic-crash\""), "{idx}");
    let (code, text) = http_get(addr, "/explain?incident=0").expect("GET /explain text");
    assert_eq!(code, 200);
    assert!(text.contains("panic-crash"), "{text}");
    assert!(text.contains("causal slice"), "{text}");
    let (code, pf) =
        http_get(addr, "/explain?incident=0&format=perfetto").expect("GET /explain perfetto");
    assert_eq!(code, 200);
    assert!(pf.trim_start().starts_with('['), "{pf}");
    let (code, j) = http_get(addr, "/explain?incident=0&format=json").expect("GET /explain json");
    assert_eq!(code, 200);
    assert!(j.contains("\"explanation\""), "{j}");
    let (code, _) = http_get(addr, "/explain?incident=99").expect("missing incident");
    assert_eq!(code, 404);
    let (code, _) = http_get(addr, "/explain?guess=G999999").expect("unknown guess");
    assert_eq!(code, 404);

    rt.shutdown();
}

/// The accept loop hands sockets to a small fixed worker pool — a
/// burst of concurrent clients must all get served (queued, not
/// dropped, and no thread-per-connection explosion).
#[test]
fn worker_pool_serves_a_concurrent_burst() {
    let mut b = RuntimeBuilder::new()
        .telemetry("127.0.0.1:0")
        .expect("bind telemetry")
        .snapshot_interval(Duration::from_millis(100));
    b.add_node(Boom);
    let rt = b.launch();
    let addr = rt.telemetry_addr().expect("telemetry enabled");

    let handles: Vec<_> =
        (0..16).map(|_| std::thread::spawn(move || http_get(addr, "/health"))).collect();
    for h in handles {
        let (code, _) = h.join().expect("client thread").expect("request served");
        assert!(code == 200 || code == 503, "unexpected status {code}");
    }
    rt.shutdown();
}
