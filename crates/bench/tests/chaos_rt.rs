//! The wall-clock chaos acceptance test: a [`FaultPlan`] with one store
//! crash, one partition, and one degraded link runs against the *live*
//! TCP cart service under closed-loop client traffic, and the paper's
//! invariant holds — no acked add is lost, no guess stays open after
//! quiescence — while the chaos layer accounts for every clause it
//! applied. Ephemeral ports only (`launch_tcp` binds port 0 per node),
//! so these run in parallel with the other service tests.

use std::time::{Duration, Instant};

use cart::CrdtCart;
use dynamo::{DynamoConfig, StoreNode};
use quicksand_bench::service::{add_crdt_stores, reconciled_cart, LoadClient, ServiceMsg};
use quicksand_runtime::{Runtime, RuntimeBuilder};
use sim::{Fault, FaultPlan, FaultSpec, LinkConfig, NodeId, SimDuration, SimTime};

const STORES: u32 = 4;
const CLIENTS: u32 = 2;
const KEYS: u64 = 32;

/// Launch the TCP cart service under `plan`, drive `ops_per_client`
/// closed-loop ops per client, wait for the plan and the tail of
/// anti-entropy, and return the runtime ready to audit.
fn run_service(
    plan: FaultPlan,
    seed: u64,
    ops_per_client: u64,
) -> (Runtime<ServiceMsg>, Vec<NodeId>, Vec<NodeId>) {
    let mut b = RuntimeBuilder::new().chaos(plan, seed);
    let store_ids = add_crdt_stores(&mut b, STORES, &DynamoConfig::default());
    let clients: Vec<NodeId> = (0..CLIENTS)
        .map(|c| b.add_node(LoadClient::new(c, store_ids.clone(), ops_per_client, KEYS, 60)))
        .collect();
    let rt = b.launch_tcp().expect("tcp launch on ephemeral ports");
    let deadline = Instant::now() + Duration::from_secs(90);
    while !clients.iter().all(|&c| rt.inspect::<LoadClient, bool, _>(c, |cl| cl.done())) {
        assert!(Instant::now() < deadline, "clients stalled under the fault plan");
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(
        rt.chaos().expect("chaos attached").wait_finished(Duration::from_secs(60)),
        "fault plan never finished"
    );
    // Let anti-entropy spread the tail the faults interrupted.
    std::thread::sleep(Duration::from_millis(800));
    (rt, store_ids, clients)
}

/// Audit the shut-down service: every acked add present in the
/// reconciled join, ledger settled. Returns (acked, restarts, edges).
fn audit(
    report: &quicksand_runtime::RuntimeReport<ServiceMsg>,
    store_ids: &[NodeId],
    clients: &[NodeId],
) -> (u64, u64, u64) {
    let mut acked: Vec<(u64, u64)> = Vec::new();
    for &c in clients {
        acked.extend(report.actor::<LoadClient>(c).acked_adds.iter().copied());
    }
    assert!(!acked.is_empty(), "the workload acked nothing — test proves nothing");
    let stores: Vec<&StoreNode<CrdtCart>> =
        store_ids.iter().map(|&s| report.actor::<StoreNode<CrdtCart>>(s)).collect();
    let lost: Vec<&(u64, u64)> = acked
        .iter()
        .filter(|(key, item)| !reconciled_cart(&stores, *key).contains_key(item))
        .collect();
    assert!(lost.is_empty(), "acked adds missing after reconciliation: {lost:?}");
    assert_eq!(report.core.ledger.open_count(), 0, "guesses left open after quiescence");
    (
        acked.len() as u64,
        report.core.metrics.counter("runtime.restarts"),
        report.core.metrics.counter("runtime.chaos_clauses"),
    )
}

/// The ISSUE's acceptance plan, written out clause by clause: crash a
/// store (with restart), partition the ring down the middle, and run a
/// lossy duplicating link — all overlapping the client traffic.
fn explicit_plan() -> FaultPlan {
    FaultPlan::from_faults(vec![
        Fault::Crash {
            at: SimTime::from_millis(200),
            node: NodeId(1),
            restart_at: Some(SimTime::from_millis(650)),
        },
        Fault::Partition {
            at: SimTime::from_millis(300),
            until: SimTime::from_millis(850),
            left: vec![NodeId(0), NodeId(1)],
            right: vec![NodeId(2), NodeId(3)],
        },
        Fault::Degrade {
            at: SimTime::from_millis(350),
            until: SimTime::from_millis(950),
            a: NodeId(0),
            b: NodeId(3),
            link: LinkConfig {
                latency_min: SimDuration::from_millis(1),
                latency_max: SimDuration::from_millis(8),
                drop_prob: 0.4,
                duplicate_prob: 0.2,
            },
        },
    ])
}

#[test]
fn acked_adds_survive_crash_partition_and_degrade_on_live_tcp() {
    let plan = explicit_plan();
    let edges_expected = plan.timeline().len() as u64;
    let (rt, store_ids, clients) = run_service(plan, 0xACCE97, 900);
    let report = rt.shutdown();
    let (acked, restarts, edges) = audit(&report, &store_ids, &clients);
    assert!(acked > 0);
    assert_eq!(restarts, 1, "exactly the plan's one crash clause restarted");
    assert_eq!(edges, edges_expected, "every clause edge (onset+heal) applied exactly once");
}

#[test]
fn generated_covering_plan_replays_identically_and_stays_lossless() {
    // A generated plan (reproducible from its seed alone) that is
    // guaranteed to exercise crash, partition, and degrade.
    let all: Vec<NodeId> = (0..(STORES + CLIENTS) as usize).map(NodeId).collect();
    let stores: Vec<NodeId> = (0..STORES as usize).map(NodeId).collect();
    let spec = FaultSpec::new(all)
        .crashable(stores)
        .window(SimTime::from_millis(150), SimTime::from_millis(1000))
        .faults(3, 3)
        .oneway(false);
    let seed = FaultPlan::covering_seed(0, &spec);
    let plan = FaultPlan::generate(seed, &spec);
    assert!(plan.count_kind("crash") >= 1);
    assert!(plan.count_kind("partition") >= 1);
    assert!(plan.count_kind("degrade") >= 1);

    let run = |ops| {
        let (rt, store_ids, clients) = run_service(plan.clone(), seed, ops);
        let applied = rt.chaos().expect("chaos").applied();
        let report = rt.shutdown();
        audit(&report, &store_ids, &clients);
        applied
    };
    let first = run(500);
    // The reproducibility contract: same seed, same plan, same applied
    // clause sequence — and both runs keep every promise.
    assert_eq!(first, quicksand_runtime::rendered_timeline(&plan));
    assert_eq!(first, run(300));
}
