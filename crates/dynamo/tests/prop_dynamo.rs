//! Property-based tests of the store's causal machinery: vector-clock
//! laws, dotted-version merge convergence, and consistent-hash ring
//! stability.

use dynamo::{
    merge_version, merge_versions, same_versions, Causality, Dot, Ring, VectorClock, Versioned,
};
use proptest::prelude::*;

fn clock_strategy() -> impl Strategy<Value = VectorClock> {
    prop::collection::vec((0u32..6, 1u64..8), 0..6).prop_map(|entries| {
        let mut c = VectorClock::new();
        for (id, n) in entries {
            c = c.with_entry(id, n);
        }
        c
    })
}

proptest! {
    #[test]
    fn merge_is_commutative_associative_idempotent(
        a in clock_strategy(), b in clock_strategy(), c in clock_strategy()
    ) {
        prop_assert_eq!(a.merged(&b), b.merged(&a));
        prop_assert_eq!(a.merged(&b).merged(&c), a.merged(&b.merged(&c)));
        prop_assert_eq!(a.merged(&a), a);
    }

    /// The vector clock certified through the CRDT crate's own law
    /// checker — the same harness every `crdt` type passes — via its
    /// retrofit `crdt::Crdt` impl.
    #[test]
    fn clock_passes_the_acid_2_0_law_checker(
        a in clock_strategy(), b in clock_strategy(), c in clock_strategy()
    ) {
        crdt::check_merge_laws(&[a, b, c]).map_err(TestCaseError::Fail)?;
    }

    #[test]
    fn merge_dominates_both_inputs(a in clock_strategy(), b in clock_strategy()) {
        let m = a.merged(&b);
        prop_assert!(m.descends(&a));
        prop_assert!(m.descends(&b));
    }

    #[test]
    fn compare_is_antisymmetric(a in clock_strategy(), b in clock_strategy()) {
        match a.compare(&b) {
            Causality::Equal => prop_assert_eq!(b.compare(&a), Causality::Equal),
            Causality::Before => prop_assert_eq!(b.compare(&a), Causality::After),
            Causality::After => prop_assert_eq!(b.compare(&a), Causality::Before),
            Causality::Concurrent => prop_assert_eq!(b.compare(&a), Causality::Concurrent),
        }
    }

    #[test]
    fn increment_strictly_advances(a in clock_strategy(), id in 0u32..6) {
        let b = a.incremented(id);
        prop_assert_eq!(b.compare(&a), Causality::After);
        prop_assert_eq!(b.get(id), a.get(id) + 1);
    }

    /// The system's delivery discipline — reads return whole sibling
    /// sets, writes replicate the coordinator's whole reconciled slot,
    /// gossip merges whole slots — converges every replica to the same
    /// sibling set regardless of the final merge order. (Delivering
    /// *individual* versions out of their origin sets is exactly what
    /// breaks dotted-version coverage; the store never does it.)
    #[test]
    fn slot_merge_converges_regardless_of_order(
        // Each step: (kind, node, peer). kind 0 = blind write at node;
        // kind 1 = read peer's slot then write at node; kind 2 = gossip
        // node's slot to peer.
        script in prop::collection::vec((0u8..3, 0usize..4, 0usize..4), 1..24),
        seed in 0u64..1000
    ) {
        let n_nodes = 4usize;
        let mut slots: Vec<Vec<Versioned<u32>>> = vec![Vec::new(); n_nodes];
        let mut counters = vec![0u64; n_nodes];
        let mut val = 0u32;
        for (kind, node, peer) in script {
            match kind {
                0 | 1 => {
                    let ctx = if kind == 1 {
                        // A read returns the peer's entire sibling set;
                        // the writeback context merges all of it.
                        slots[peer].iter().fold(VectorClock::new(), |c, v| {
                            c.merged(&v.effective_clock())
                        })
                    } else {
                        VectorClock::new()
                    };
                    counters[node] = counters[node].max(ctx.get(node as u32)) + 1;
                    let dot = Dot { node: node as u32, counter: counters[node] };
                    val += 1;
                    merge_version(&mut slots[node], Versioned::new(ctx, dot, val));
                }
                _ => {
                    // Gossip: node's whole slot merges into peer's.
                    let set = slots[node].clone();
                    merge_versions(&mut slots[peer], &set);
                }
            }
        }
        // Final anti-entropy: all-pairs slot merges, in two different
        // orders, until quiescent.
        let converge = |mut slots: Vec<Vec<Versioned<u32>>>, rev: bool| {
            for _ in 0..n_nodes {
                for i in 0..n_nodes {
                    for j in 0..n_nodes {
                        let (a, b) = if rev { (n_nodes - 1 - i, n_nodes - 1 - j) } else { (i, j) };
                        if a != b {
                            let set = slots[a].clone();
                            merge_versions(&mut slots[b], &set);
                        }
                    }
                }
            }
            slots
        };
        let fwd = converge(slots.clone(), false);
        let rev = converge(slots, true);
        let _ = seed;
        for i in 0..n_nodes {
            prop_assert!(
                same_versions(&fwd[i], &fwd[0]),
                "forward order diverged: {:?} vs {:?}", fwd[i], fwd[0]
            );
            prop_assert!(
                same_versions(&fwd[i], &rev[i]),
                "order-dependent convergence: {:?} vs {:?}", fwd[i], rev[i]
            );
        }
    }

    /// No version in a maintained slot ever supersedes another.
    #[test]
    fn sibling_sets_are_antichains(
        script in prop::collection::vec((0u32..4, 0u16..u16::MAX), 1..12)
    ) {
        let mut slot: Vec<Versioned<u32>> = Vec::new();
        let mut versions: Vec<Versioned<u32>> = Vec::new();
        let mut counters = [0u64; 4];
        for (node, mask) in script {
            let mut ctx = VectorClock::new();
            for (j, earlier) in versions.iter().enumerate() {
                if mask & (1 << (j % 16)) != 0 {
                    ctx = ctx.merged(&earlier.effective_clock());
                }
            }
            counters[node as usize] = counters[node as usize].max(ctx.get(node)) + 1;
            let v = Versioned::new(ctx, Dot { node, counter: counters[node as usize] }, 0);
            versions.push(v.clone());
            merge_version(&mut slot, v);
        }
        for (i, a) in slot.iter().enumerate() {
            for (j, b) in slot.iter().enumerate() {
                if i != j {
                    prop_assert!(!a.supersedes(b), "slot holds a dominated version");
                }
            }
        }
    }

    /// Preference lists are stable, distinct, and only the removed
    /// store's keys remap.
    #[test]
    fn ring_remaps_minimally(keys in prop::collection::vec(any::<u64>(), 1..100)) {
        let before = Ring::new(6, 64);
        let mut after = before.clone();
        after.remove_store(3);
        for key in keys {
            let pb = before.preference_list(key, 3);
            let pa = after.preference_list(key, 3);
            let mut dedup = pb.clone();
            dedup.dedup();
            prop_assert_eq!(dedup.len(), pb.len());
            prop_assert!(!pa.contains(&3));
            if !pb.contains(&3) {
                // Keys that never touched store 3 keep their coordinator.
                prop_assert_eq!(pa[0], pb[0]);
            }
        }
    }
}
