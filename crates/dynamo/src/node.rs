//! The storage node: replica, coordinator, hint holder, and gossip peer
//! in one actor — any node can coordinate any request, as in Dynamo.
//!
//! The availability posture is the paper's: **a PUT is never refused for
//! consistency reasons**. If the preferred replicas are unreachable, the
//! coordinator walks further around the ring and parks the write on
//! whoever answers, with a hint naming the store it was meant for
//! (sloppy quorum + hinted handoff). GETs gather R replies and surface
//! every concurrent sibling to the application, which owns
//! reconciliation (§6.1, §6.4).
//!
//! Membership is no longer a fixed peer list: each node embeds a
//! [`membership::Gossiper`] and derives its [`membership::HashRing`]
//! from the gossiped view. Joins and leaves arrive as
//! [`DynamoMsg::CtlJoin`] / [`DynamoMsg::CtlLeave`] control messages;
//! every ring change streams the moved key ranges to their new owners
//! as [`DynamoMsg::TransferKeys`] batches, each booked as a durable
//! ledger guess and settled on [`DynamoMsg::TransferAck`] — an acked
//! write survives any join/leave interleaved with the transfer, or the
//! ledger shows an open guess (an apology owed, never silent loss).

use std::collections::{BTreeMap, HashMap, HashSet};

use eventlog::{EventLog, LogConfig, MemKind, RecoveryReport};
use membership::{Gossiper, HashRing, MemberStatus, MembershipView};
use quicksand_core::uniquifier::Uniquifier;
use quicksand_core::wire::{from_bytes, to_bytes};
use rand::Rng;
use sim::{Actor, Context, GuessId, NodeId, SimDuration, SimTime, SpanId, SpanStatus};

use crate::msg::DynamoMsg;
use crate::vclock::{StoreId, VectorClock};
use crate::version::{merge_version, merge_versions, Dot, Versioned};

/// How anti-entropy advertises state (the A3 ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GossipMode {
    /// Push the entire store to a random peer each tick — simple,
    /// convergent, and wasteful once replicas are nearly in sync.
    FullStore,
    /// Send a digest (key → dots); the peer replies with exactly the
    /// versions the sender lacks.
    Digest,
}

const TAG_SHIFT: u64 = 48;
const TAG_DEADLINE: u64 = 1;
const TAG_GOSSIP: u64 = 2;

fn tag(kind: u64, payload: u64) -> u64 {
    (kind << TAG_SHIFT) | (payload & ((1 << TAG_SHIFT) - 1))
}

/// Quorum and timing parameters.
#[derive(Debug, Clone)]
pub struct DynamoConfig {
    /// Replication factor.
    pub n: usize,
    /// Read quorum.
    pub r: usize,
    /// Write quorum.
    pub w: usize,
    /// Virtual nodes per store.
    pub vnodes: usize,
    /// How long a coordinator waits before widening / failing a request.
    pub request_timeout: SimDuration,
    /// Gossip period for anti-entropy and hint delivery; `None` disables.
    pub gossip_interval: Option<SimDuration>,
    /// Anti-entropy style (see [`GossipMode`]).
    pub gossip_mode: GossipMode,
    /// Sloppy quorum: when the preferred replicas don't answer in time,
    /// widen the walk and park hinted writes on whoever answers. With
    /// `false` the store behaves like a strict-quorum (CP-leaning)
    /// system: unreachable preferred replicas fail the request — the E6
    /// comparison baseline.
    pub sloppy: bool,
    /// Re-arm the gossip timer when a crashed store restarts. Timers do
    /// not survive a crash, so without this a restarted store never
    /// gossips again: anti-entropy stops and any hints it holds stay
    /// parked forever. Always `true` in real deployments; the chaos
    /// acceptance test plants `false` here to prove the seed sweep
    /// catches the resulting stranded-hint divergence and shrinks it to
    /// a minimal crash schedule.
    pub rearm_gossip_on_restart: bool,
    /// Gossip rounds of membership silence before a peer is declared
    /// `Down` (see [`membership::GossipConfig::suspicion_ticks`]).
    /// `0` (the default) disables suspicion: the ring changes only on
    /// explicit joins and leaves, so transient partitions never evict a
    /// store — the availability-first posture the quorum tests assume.
    pub suspicion_ticks: u32,
}

impl Default for DynamoConfig {
    fn default() -> Self {
        DynamoConfig {
            n: 3,
            r: 2,
            w: 2,
            vnodes: 64,
            request_timeout: SimDuration::from_millis(20),
            gossip_interval: Some(SimDuration::from_millis(100)),
            gossip_mode: GossipMode::FullStore,
            sloppy: true,
            rearm_gossip_on_restart: true,
            suspicion_ticks: 0,
        }
    }
}

/// One in-flight rebalance batch: keys owed to `target`'s store under an
/// open durable guess. Modelled as durable alongside the store (the keys
/// themselves are on disk; the transfer obligation is replayed from the
/// ring diff), so it survives this node's crash and is retried on every
/// gossip tick until acked.
#[derive(Debug)]
struct Transfer {
    target: StoreId,
    keys: Vec<u64>,
    span: SpanId,
    guess: GuessId,
}

#[derive(Debug)]
enum PendingOp<V> {
    Put {
        key: u64,
        versions: Vec<Versioned<V>>,
        acks: usize,
        contacted: usize,
        widened: bool,
        resp_to: NodeId,
        span: SpanId,
    },
    Get {
        key: u64,
        responses: usize,
        merged: Vec<Versioned<V>>,
        contacted: usize,
        widened: bool,
        resp_to: NodeId,
        span: SpanId,
    },
}

/// One Dynamo storage node.
#[derive(Debug)]
pub struct StoreNode<V> {
    /// This node's store id on the ring.
    pub store_id: StoreId,
    /// The membership engine: owns the gossiped view this node's ring is
    /// derived from. Public for harness and test inspection.
    pub gossiper: Gossiper,
    /// The consistent-hash ring the current view prescribes.
    ring: HashRing,
    /// The view digest `ring` was last rebuilt at.
    view_version: u64,
    /// store id → engine node, for every store that may ever exist
    /// (ring members *and* pre-provisioned spares).
    peers: Vec<NodeId>,
    cfg: DynamoConfig,
    /// key → sibling set. Modelled as durable (Dynamo persists to local
    /// disk); survives crashes.
    store: BTreeMap<u64, Vec<Versioned<V>>>,
    /// Writes held for unreachable preferred stores: hint id → (intended
    /// store, key, handoff span — open until the hint is delivered, and
    /// the durable ledger guess it represents). The durable matter
    /// behind this index is `hint_log`: a crash rebuilds the parked set
    /// from whatever the log's recovery scan kept. If a guess is still
    /// open after quiescence, a promised handoff never happened.
    hints: HashMap<u64, (StoreId, u64, SpanId, GuessId)>,
    /// The hint WAL: one [`eventlog`] partition, fsynced per park so a
    /// hint's durability rides the same CRC-framed, torn-tail-truncating
    /// recovery path as every other WAL in the workspace. Parks append a
    /// record keyed by the hint's uniquifier; deliveries append a
    /// tombstone under the same key, so compaction collapses settled
    /// hints to nothing.
    hint_log: EventLog<MemKind>,
    /// What hint-log recovery cut across this node's crashes so far.
    pub hint_recovery: RecoveryReport,
    next_hint_id: u64,
    /// In-flight rebalance batches: transfer id → obligation. Durable,
    /// like the hints — an open transfer survives a crash and keeps
    /// retrying until the new owner acks.
    transfers: HashMap<u64, Transfer>,
    next_xfer_id: u64,
    pending: HashMap<u64, PendingOp<V>>,
    /// Monotonic per-node write counter: guarantees that two writes
    /// coordinated here carry distinct clocks even when their causal
    /// contexts are identical. Modelled as durable alongside the store.
    events: u64,
    /// When set (via [`StoreNode::with_sibling_squash`]), concurrent
    /// siblings are joined with this function instead of accumulating —
    /// server-side reconciliation, sound only for values whose merge is
    /// ACID 2.0 (a `crdt::Crdt`). Stored as a plain fn pointer so the
    /// node stays usable for arbitrary blob types.
    merger: Option<fn(&mut V, &V)>,
}

impl<V: Clone + std::fmt::Debug + 'static> StoreNode<V> {
    /// Build a node from a membership view. `peers[s]` must be the
    /// engine node of store `s` for **every** store the view may ever
    /// name (including pre-provisioned spares). A store whose own record
    /// starts `Down` boots as a standby outside the ring and enters only
    /// on [`DynamoMsg::CtlJoin`].
    pub fn new(
        store_id: StoreId,
        view: MembershipView,
        peers: Vec<NodeId>,
        cfg: DynamoConfig,
    ) -> Self {
        let ring = HashRing::from_view(&view, cfg.vnodes as u32);
        let view_version = view.ring_version();
        let gossiper = Gossiper::new(store_id, view, cfg.suspicion_ticks);
        StoreNode {
            store_id,
            gossiper,
            ring,
            view_version,
            peers,
            cfg,
            store: BTreeMap::new(),
            hints: HashMap::new(),
            hint_log: EventLog::open(MemKind, LogConfig { partitions: 1, segment_bytes: 4 * 1024 })
                .0,
            hint_recovery: RecoveryReport::default(),
            next_hint_id: 0,
            transfers: HashMap::new(),
            next_xfer_id: 0,
            pending: HashMap::new(),
            events: 0,
            merger: None,
        }
    }

    /// Enable automatic sibling squashing: the stored value is a
    /// [`crdt::Crdt`], so whenever a slot accumulates concurrent
    /// siblings the node joins them into a single version whose context
    /// covers them all. The application never sees sibling sets; the
    /// merge laws (§8) guarantee nothing is lost.
    pub fn with_sibling_squash(mut self) -> Self
    where
        V: crdt::Crdt,
    {
        self.merger = Some(|acc, next| crdt::Crdt::merge(acc, next));
        self
    }

    /// Join a multi-sibling slot into one version. The squashed version
    /// gets a fresh dot minted here and a context covering every
    /// sibling's effective clock, so it supersedes them wherever it
    /// travels; repeated squashes at different nodes converge because
    /// later squashes cover earlier squash dots.
    fn maybe_squash(&mut self, ctx: &mut Context<'_, DynamoMsg<V>>, key: u64) {
        let Some(merge) = self.merger else { return };
        let Some(slot) = self.store.get_mut(&key) else { return };
        if slot.len() < 2 {
            return;
        }
        let mut context = VectorClock::new();
        let mut value = slot[0].value.clone();
        context = context.merged(&slot[0].effective_clock());
        for v in &slot[1..] {
            merge(&mut value, &v.value);
            context = context.merged(&v.effective_clock());
        }
        let squashed = slot.len() as u64 - 1;
        self.events = self.events.max(context.get(self.store_id)) + 1;
        let dot = Dot { node: self.store_id, counter: self.events };
        *slot = vec![Versioned::new(context, dot, value)];
        ctx.metrics().add("dynamo.siblings_squashed", squashed);
    }

    /// The node's local sibling set for a key (inspection in tests).
    pub fn versions(&self, key: u64) -> &[Versioned<V>] {
        self.store.get(&key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of keys stored locally.
    pub fn key_count(&self) -> usize {
        self.store.len()
    }

    /// Number of undelivered hints held.
    pub fn hint_count(&self) -> usize {
        self.hints.len()
    }

    /// Number of unacked rebalance transfers in flight.
    pub fn transfer_count(&self) -> usize {
        self.transfers.len()
    }

    /// Records currently in the hint WAL (parks + undelivered
    /// tombstones; compaction trims settled pairs).
    pub fn hint_log_records(&self) -> usize {
        self.hint_log.record_count()
    }

    fn hint_uniquifier(&self, hint_id: u64) -> Uniquifier {
        Uniquifier::derived_from_fields(&[
            b"dynamo.hint",
            &self.store_id.to_le_bytes(),
            &hint_id.to_le_bytes(),
        ])
    }

    /// Append one hint event (`done = false` parks, `true` settles) and
    /// fsync — the ack that follows a park is only sent once the hint is
    /// actually durable, same contract the old "hints are on disk" model
    /// asserted by fiat.
    fn log_hint(&mut self, hint_id: u64, intended: StoreId, key: u64, done: bool) {
        let payload = to_bytes(&((hint_id, intended), (key, done)));
        self.hint_log.append_to(0, Some(self.hint_uniquifier(hint_id)), payload);
        self.hint_log.fsync();
    }

    /// The consistent-hash ring this node currently routes by.
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// This node's view digest (the `membership.ring_version` gauge).
    pub fn ring_version(&self) -> u64 {
        self.gossiper.view.ring_version()
    }

    fn publish_membership(&self, ctx: &mut Context<'_, DynamoMsg<V>>) {
        let m = ctx.metrics();
        m.set_gauge("membership.ring_version", self.gossiper.view.ring_version() as f64);
        let me = format!("s{}", self.store_id);
        m.set_gauge_with(
            "membership.status",
            self.gossiper.status().rank() as f64,
            &[("store", me.as_str())],
        );
    }

    /// Send (or resend) one transfer batch, re-reading the entries from
    /// the live store so retries carry the freshest sibling sets.
    fn send_transfer(&mut self, ctx: &mut Context<'_, DynamoMsg<V>>, xfer_id: u64) {
        let Some(t) = self.transfers.get(&xfer_id) else { return };
        let entries: Vec<(u64, Vec<Versioned<V>>)> =
            t.keys.iter().filter_map(|k| self.store.get(k).map(|v| (*k, v.clone()))).collect();
        let me = ctx.me();
        ctx.set_current_span(Some(t.span));
        ctx.send(
            self.peers[t.target as usize],
            DynamoMsg::TransferKeys { xfer_id, entries, resp_to: me },
        );
        ctx.set_current_span(None);
    }

    /// Push our view to every known member — used when a membership move
    /// must not wait a gossip period (joins, leaves, departures).
    fn broadcast_view(&mut self, ctx: &mut Context<'_, DynamoMsg<V>>) {
        for (_, node) in self.gossiper.gossip_targets() {
            ctx.send(
                NodeId(node as usize),
                DynamoMsg::ViewGossip { view: self.gossiper.view.clone() },
            );
        }
    }

    /// A graceful leave is complete once every transfer it opened has
    /// been acked: mark ourselves `Down` (by choice) and tell the world.
    fn maybe_depart(&mut self, ctx: &mut Context<'_, DynamoMsg<V>>) {
        if self.gossiper.status() == MemberStatus::Leaving && self.transfers.is_empty() {
            self.gossiper.depart();
            ctx.metrics().inc("membership.departures");
            self.broadcast_view(ctx);
            self.refresh_ring(ctx);
        }
    }

    /// Rebuild the ring if the view moved, and stream every held key
    /// whose ownership changed to its **new** owners. Each batch is a
    /// durable guess settled on ack; keys are never dropped here (a
    /// stale extra replica is harmless — reads route by the new ring),
    /// so the transfer can only add coverage, never lose it.
    fn refresh_ring(&mut self, ctx: &mut Context<'_, DynamoMsg<V>>) {
        let vv = self.gossiper.view.ring_version();
        if vv == self.view_version {
            return;
        }
        self.view_version = vv;
        self.publish_membership(ctx);
        let new_ring = HashRing::from_view(&self.gossiper.view, self.cfg.vnodes as u32);
        if new_ring.version() == self.ring.version() {
            return; // status-rank move only (e.g. Joining → Up): same tokens
        }
        let old = std::mem::replace(&mut self.ring, new_ring);
        // Every holder streams, not just the old owners: replicas of a
        // moved range may outlive its former coordinator, and the merge
        // is idempotent, so redundancy costs bandwidth, not correctness.
        let mut moved: BTreeMap<StoreId, Vec<u64>> = BTreeMap::new();
        for &key in self.store.keys() {
            let prefs_new = self.ring.preference_list(key, self.cfg.n);
            let prefs_old = old.preference_list(key, self.cfg.n);
            for s in prefs_new {
                if s != self.store_id && !prefs_old.contains(&s) {
                    moved.entry(s).or_default().push(key);
                }
            }
        }
        for (target, keys) in moved {
            let xfer_id = self.next_xfer_id;
            self.next_xfer_id += 1;
            let span = ctx.start_span("dynamo.transfer");
            ctx.span_field(span, "target", format!("s{target}"));
            ctx.span_field(span, "keys", keys.len());
            let guess = ctx.open_durable_guess(
                "membership.transfer",
                &format!("rebalance {} keys to s{target}", keys.len()),
            );
            ctx.metrics().inc("dynamo.transfers_started");
            self.transfers.insert(xfer_id, Transfer { target, keys, span, guess });
            self.send_transfer(ctx, xfer_id);
        }
    }

    fn local_merge(&mut self, key: u64, version: Versioned<V>) {
        let slot = self.store.entry(key).or_default();
        merge_version(slot, version);
    }

    /// Contact the next `count` stores in the key's ring walk beyond the
    /// already-contacted prefix, hinting writes for the preferred stores
    /// they stand in for.
    fn widen_put(&mut self, ctx: &mut Context<'_, DynamoMsg<V>>, req: u64) {
        let me = ctx.me();
        let Some(PendingOp::Put { key, versions, contacted, widened, .. }) =
            self.pending.get_mut(&req)
        else {
            return;
        };
        *widened = true;
        let key = *key;
        let versions = versions.clone();
        let start = *contacted;
        // Walk the whole ring membership beyond the preferred set.
        let walk = self.ring.preference_list(key, self.peers.len());
        let prefs = &walk[..self.cfg.n.min(walk.len())];
        let extension: Vec<StoreId> = walk.iter().skip(start).take(self.cfg.n).copied().collect();
        if let Some(PendingOp::Put { contacted, .. }) = self.pending.get_mut(&req) {
            *contacted += extension.len();
        }
        for (i, s) in extension.iter().enumerate() {
            let hint_for = prefs.get((start + i) % self.cfg.n.max(1)).copied();
            ctx.metrics().inc("dynamo.sloppy_writes");
            ctx.send(
                self.peers[*s as usize],
                DynamoMsg::ReplicaPut {
                    req: Some(req),
                    key,
                    versions: versions.clone(),
                    hint_for,
                    resp_to: me,
                },
            );
        }
    }

    fn widen_get(&mut self, ctx: &mut Context<'_, DynamoMsg<V>>, req: u64) {
        let me = ctx.me();
        let Some(PendingOp::Get { key, contacted, widened, .. }) = self.pending.get_mut(&req)
        else {
            return;
        };
        *widened = true;
        let key = *key;
        let start = *contacted;
        let walk = self.ring.preference_list(key, self.peers.len());
        let extension: Vec<StoreId> = walk.iter().skip(start).take(self.cfg.n).copied().collect();
        if let Some(PendingOp::Get { contacted, .. }) = self.pending.get_mut(&req) {
            *contacted += extension.len();
        }
        for s in extension {
            ctx.send(self.peers[s as usize], DynamoMsg::ReplicaGet { req, key, resp_to: me });
        }
    }

    fn finish_get(&mut self, ctx: &mut Context<'_, DynamoMsg<V>>, req: u64) {
        let Some(PendingOp::Get { key, merged, resp_to, span, .. }) = self.pending.remove(&req)
        else {
            return;
        };
        // Re-enter the get's span so the read repair and the client reply
        // are attributed to it, then close it.
        ctx.set_current_span(Some(span));
        if merged.len() > 1 {
            ctx.metrics().inc("dynamo.sibling_gets");
            ctx.span_field(span, "siblings", merged.len());
        }
        let me = ctx.me().to_string();
        ctx.metrics().inc_with("dynamo.gets_ok", &[("node", me.as_str())]);
        // Read repair: push the merged set back to the preferred replicas.
        let prefs = self.ring.preference_list(key, self.cfg.n);
        for s in prefs {
            if s != self.store_id {
                ctx.send(
                    self.peers[s as usize],
                    DynamoMsg::SyncPush { entries: vec![(key, merged.clone())] },
                );
            }
        }
        merge_versions(self.store.entry(key).or_default(), &merged);
        self.maybe_squash(ctx, key);
        // With squashing on, answer with the (single) squashed version
        // rather than the raw quorum merge — a superset is always sound.
        let reply = if self.merger.is_some() { self.versions(key).to_vec() } else { merged };
        ctx.send(resp_to, DynamoMsg::GetOk { req, key, versions: reply });
        ctx.finish_span(span);
    }
}

impl<V: Clone + std::fmt::Debug + 'static> Actor<DynamoMsg<V>> for StoreNode<V> {
    fn on_start(&mut self, ctx: &mut Context<'_, DynamoMsg<V>>) {
        self.publish_membership(ctx);
        if let Some(interval) = self.cfg.gossip_interval {
            // Desynchronize gossip across nodes.
            let jitter =
                SimDuration::from_micros(ctx.rng().gen_range(0..interval.as_micros().max(1)));
            ctx.set_timer(interval + jitter, tag(TAG_GOSSIP, 0));
        }
    }

    fn on_restart(&mut self, ctx: &mut Context<'_, DynamoMsg<V>>) {
        // A crash killed every pending timer, including the gossip tick
        // that re-arms itself. Without this re-arm the node would never
        // again run anti-entropy or deliver the hints it still holds —
        // exactly the stranded-hint bug the chaos sweep first caught
        // (seed 4: crash + partition left one hint parked forever).
        if self.cfg.rearm_gossip_on_restart {
            if let Some(interval) = self.cfg.gossip_interval {
                let jitter =
                    SimDuration::from_micros(ctx.rng().gen_range(0..interval.as_micros().max(1)));
                ctx.set_timer(interval + jitter, tag(TAG_GOSSIP, 0));
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, DynamoMsg<V>>, t: u64) {
        let kind = t >> TAG_SHIFT;
        let payload = t & ((1 << TAG_SHIFT) - 1);
        match kind {
            TAG_DEADLINE => {
                let req = payload;
                match self.pending.get(&req) {
                    Some(PendingOp::Put { acks, widened, resp_to, span, .. }) => {
                        let (acks, widened, resp_to, span) = (*acks, *widened, *resp_to, *span);
                        if acks >= self.cfg.w {
                            return; // already answered
                        }
                        if !widened && self.cfg.sloppy {
                            self.widen_put(ctx, req);
                            ctx.set_timer(self.cfg.request_timeout, tag(TAG_DEADLINE, req));
                        } else {
                            self.pending.remove(&req);
                            let me = ctx.me().to_string();
                            ctx.metrics().inc_with("dynamo.puts_failed", &[("node", me.as_str())]);
                            ctx.set_current_span(Some(span));
                            ctx.send(resp_to, DynamoMsg::PutFailed { req });
                            ctx.finish_span_with(span, SpanStatus::Failed);
                        }
                    }
                    Some(PendingOp::Get { responses, widened, resp_to, span, .. }) => {
                        let (responses, widened, resp_to, span) =
                            (*responses, *widened, *resp_to, *span);
                        if responses >= self.cfg.r {
                            return;
                        }
                        if !widened && self.cfg.sloppy {
                            self.widen_get(ctx, req);
                            ctx.set_timer(self.cfg.request_timeout, tag(TAG_DEADLINE, req));
                        } else {
                            self.pending.remove(&req);
                            let me = ctx.me().to_string();
                            ctx.metrics().inc_with("dynamo.gets_failed", &[("node", me.as_str())]);
                            ctx.set_current_span(Some(span));
                            ctx.send(resp_to, DynamoMsg::GetFailed { req });
                            ctx.finish_span_with(span, SpanStatus::Failed);
                        }
                    }
                    None => {}
                }
            }
            TAG_GOSSIP => {
                // Hint delivery: try every held hint. Each attempt is sent
                // under the hint's handoff span so retries and the final
                // delivery hop all land in one tree. Runs whatever our
                // membership status — a leaving (or even departed) holder
                // still owes its parked writes to their homes.
                let mut hints: Vec<(u64, StoreId, u64, SpanId)> =
                    self.hints.iter().map(|(id, (s, k, sp, _))| (*id, *s, *k, *sp)).collect();
                hints.sort_unstable_by_key(|(id, ..)| *id);
                for (hint_id, intended, key, hspan) in hints {
                    let versions = self.versions(key).to_vec();
                    if !versions.is_empty() {
                        ctx.set_current_span(Some(hspan));
                        ctx.send(
                            self.peers[intended as usize],
                            DynamoMsg::HintDeliver { hint_id, key, versions },
                        );
                        ctx.set_current_span(None);
                    }
                }
                // Rebalance retry: every unacked transfer goes out again
                // (same guess, same span) until its new owner acks.
                let mut xfer_ids: Vec<u64> = self.transfers.keys().copied().collect();
                xfer_ids.sort_unstable();
                for id in xfer_ids {
                    self.send_transfer(ctx, id);
                }
                // Membership round: age suspicion counters, settle a
                // fresh join into `Up`, and exchange views with one
                // random member. Spares that never joined (departed) stay
                // silent — they only listen.
                for _ in self.gossiper.tick() {
                    ctx.metrics().inc("membership.suspicions");
                }
                self.gossiper.promote();
                self.refresh_ring(ctx);
                if !self.gossiper.departed() {
                    let targets = self.gossiper.gossip_targets();
                    if !targets.is_empty() {
                        let (_, node) = targets[ctx.rng().gen_range(0..targets.len())];
                        ctx.send(
                            NodeId(node as usize),
                            DynamoMsg::ViewGossip { view: self.gossiper.view.clone() },
                        );
                    }
                }
                // Anti-entropy with one random in-ring peer. Routing by
                // the gossiper (not the full peer table) keeps data off
                // standbys and departed stores.
                let ae_peers = self.gossiper.peers();
                if self.gossiper.status().in_ring()
                    && !ae_peers.is_empty()
                    && !self.store.is_empty()
                {
                    let (_, node) = ae_peers[ctx.rng().gen_range(0..ae_peers.len())];
                    let peer = NodeId(node as usize);
                    ctx.metrics().inc("dynamo.gossip_pushes");
                    match self.cfg.gossip_mode {
                        GossipMode::FullStore => {
                            let entries: Vec<(u64, Vec<Versioned<V>>)> =
                                self.store.iter().map(|(k, v)| (*k, v.clone())).collect();
                            let versions: usize = entries.iter().map(|(_, v)| v.len()).sum();
                            ctx.metrics().add("dynamo.gossip_versions_sent", versions as u64);
                            ctx.send(peer, DynamoMsg::SyncPush { entries });
                        }
                        GossipMode::Digest => {
                            let me = ctx.me();
                            let entries: Vec<(u64, Vec<Dot>)> = self
                                .store
                                .iter()
                                .map(|(k, v)| (*k, v.iter().map(|ver| ver.dot).collect()))
                                .collect();
                            let dots: usize = entries.iter().map(|(_, d)| d.len()).sum();
                            ctx.metrics().add("dynamo.gossip_digest_dots", dots as u64);
                            ctx.send(peer, DynamoMsg::SyncDigest { entries, resp_to: me });
                        }
                    }
                }
                if let Some(interval) = self.cfg.gossip_interval {
                    ctx.set_timer(interval, tag(TAG_GOSSIP, 0));
                }
            }
            _ => {}
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_, DynamoMsg<V>>, from: NodeId, msg: DynamoMsg<V>) {
        match msg {
            // ----- coordination: PUT -----
            DynamoMsg::ClientPut { req, key, value, context, resp_to } => {
                let me = ctx.me();
                let span = ctx.start_span("dynamo.put");
                ctx.span_field(span, "key", key);
                self.events = self.events.max(context.get(self.store_id)) + 1;
                let dot = Dot { node: self.store_id, counter: self.events };
                let version = Versioned::new(context, dot, value);
                // Reconcile into the local slot first, then replicate the
                // *whole* sibling set: versions minted here always travel
                // together, which is what keeps dot coverage sound (see
                // the message's docs).
                self.local_merge(key, version);
                self.maybe_squash(ctx, key);
                let versions = self.versions(key).to_vec();
                let prefs = self.ring.preference_list(key, self.cfg.n);
                for s in &prefs {
                    if *s == self.store_id {
                        // Already stored locally; count the ack directly.
                        ctx.send(me, DynamoMsg::ReplicaPutAck { req });
                        continue;
                    }
                    ctx.send(
                        self.peers[*s as usize],
                        DynamoMsg::ReplicaPut {
                            req: Some(req),
                            key,
                            versions: versions.clone(),
                            hint_for: None,
                            resp_to: me,
                        },
                    );
                }
                self.pending.insert(
                    req,
                    PendingOp::Put {
                        key,
                        versions,
                        acks: 0,
                        contacted: prefs.len(),
                        widened: false,
                        resp_to,
                        span,
                    },
                );
                ctx.set_timer(self.cfg.request_timeout, tag(TAG_DEADLINE, req));
            }
            DynamoMsg::ReplicaPutAck { req } => {
                let done = {
                    let Some(PendingOp::Put { acks, .. }) = self.pending.get_mut(&req) else {
                        return;
                    };
                    *acks += 1;
                    *acks >= self.cfg.w
                };
                if done {
                    if let Some(PendingOp::Put { resp_to, span, .. }) = self.pending.remove(&req) {
                        let me = ctx.me().to_string();
                        ctx.metrics().inc_with("dynamo.puts_ok", &[("node", me.as_str())]);
                        ctx.set_current_span(Some(span));
                        ctx.send(resp_to, DynamoMsg::PutOk { req });
                        ctx.finish_span(span);
                    }
                }
            }

            // ----- coordination: GET -----
            DynamoMsg::ClientGet { req, key, resp_to } => {
                let me = ctx.me();
                let span = ctx.start_span("dynamo.get");
                ctx.span_field(span, "key", key);
                let prefs = self.ring.preference_list(key, self.cfg.n);
                for s in &prefs {
                    ctx.send(
                        self.peers[*s as usize],
                        DynamoMsg::ReplicaGet { req, key, resp_to: me },
                    );
                }
                self.pending.insert(
                    req,
                    PendingOp::Get {
                        key,
                        responses: 0,
                        merged: Vec::new(),
                        contacted: prefs.len(),
                        widened: false,
                        resp_to,
                        span,
                    },
                );
                ctx.set_timer(self.cfg.request_timeout, tag(TAG_DEADLINE, req));
            }
            DynamoMsg::ReplicaGetResp { req, key: _, versions } => {
                let done = {
                    let Some(PendingOp::Get { responses, merged, .. }) = self.pending.get_mut(&req)
                    else {
                        return;
                    };
                    *responses += 1;
                    merge_versions(merged, &versions);
                    *responses >= self.cfg.r
                };
                if done {
                    self.finish_get(ctx, req);
                }
            }

            // ----- replica duties -----
            DynamoMsg::ReplicaPut { req, key, versions, hint_for, resp_to } => {
                merge_versions(self.store.entry(key).or_default(), &versions);
                self.maybe_squash(ctx, key);
                if let Some(intended) = hint_for {
                    if intended != self.store_id {
                        let hint_id = self.next_hint_id;
                        self.next_hint_id += 1;
                        // The handoff span stays open while the hint is
                        // parked here: its duration is how long the write
                        // sat away from its intended home.
                        let hspan = ctx.child_span(ctx.current_span(), "dynamo.hint_handoff");
                        ctx.span_field(hspan, "intended", format!("s{intended}"));
                        ctx.span_field(hspan, "key", key);
                        // The parked hint is a durable guess: "I will
                        // deliver this write to its home store." It
                        // survives our crash (the hint is on disk) and
                        // stays open in the ledger until the HintAck.
                        let guess = ctx.open_durable_guess(
                            "dynamo.hint_handoff",
                            &format!("hint parked for s{intended}"),
                        );
                        self.log_hint(hint_id, intended, key, false);
                        self.hints.insert(hint_id, (intended, key, hspan, guess));
                        let me = ctx.me().to_string();
                        ctx.metrics().inc_with("dynamo.hints_stored", &[("node", me.as_str())]);
                    }
                }
                if let Some(req) = req {
                    ctx.send(resp_to, DynamoMsg::ReplicaPutAck { req });
                }
            }
            DynamoMsg::ReplicaGet { req, key, resp_to } => {
                let versions = self.versions(key).to_vec();
                ctx.send(resp_to, DynamoMsg::ReplicaGetResp { req, key, versions });
            }
            DynamoMsg::HintDeliver { hint_id, key, versions } => {
                merge_versions(self.store.entry(key).or_default(), &versions);
                self.maybe_squash(ctx, key);
                ctx.send(from, DynamoMsg::HintAck { hint_id });
            }
            DynamoMsg::HintAck { hint_id } => {
                if let Some((intended, key, hspan, guess)) = self.hints.remove(&hint_id) {
                    ctx.metrics().inc("dynamo.hints_delivered");
                    // Tombstone the park under the same uniquifier;
                    // compaction then erases the settled pair entirely.
                    self.log_hint(hint_id, intended, key, true);
                    self.hint_log.compact();
                    ctx.resolve_durable_guess(guess, true);
                    ctx.finish_span(hspan);
                }
            }
            DynamoMsg::SyncPush { entries } => {
                for (key, versions) in entries {
                    merge_versions(self.store.entry(key).or_default(), &versions);
                    self.maybe_squash(ctx, key);
                }
            }
            DynamoMsg::SyncDigest { entries, resp_to } => {
                // Reply with exactly what the sender is missing: our
                // versions whose dots are absent from its digest, plus
                // whole keys it doesn't know.
                use std::collections::HashMap as Map;
                let theirs: Map<u64, &Vec<Dot>> = entries.iter().map(|(k, d)| (*k, d)).collect();
                let mut missing: Vec<(u64, Vec<Versioned<V>>)> = Vec::new();
                for (key, versions) in &self.store {
                    let have = theirs.get(key);
                    let novel: Vec<Versioned<V>> = versions
                        .iter()
                        .filter(|v| have.is_none_or(|dots| !dots.contains(&v.dot)))
                        .cloned()
                        .collect();
                    if !novel.is_empty() {
                        missing.push((*key, novel));
                    }
                }
                if !missing.is_empty() {
                    let versions: usize = missing.iter().map(|(_, v)| v.len()).sum();
                    ctx.metrics().add("dynamo.gossip_versions_sent", versions as u64);
                    ctx.send(resp_to, DynamoMsg::SyncPush { entries: missing });
                }
            }

            // ----- membership & rebalancing -----
            DynamoMsg::CtlJoin => {
                ctx.metrics().inc("membership.joins");
                self.gossiper.join();
                self.refresh_ring(ctx);
                // Announce eagerly: the sooner the cluster learns, the
                // sooner old owners stream our range over.
                self.broadcast_view(ctx);
                self.publish_membership(ctx);
            }
            DynamoMsg::CtlLeave => {
                if self.gossiper.leave() {
                    ctx.metrics().inc("membership.leaves");
                    // The shrunken ring no longer names us: refresh_ring
                    // streams every key we hold to its new owners, each
                    // batch under a durable guess.
                    self.refresh_ring(ctx);
                    self.broadcast_view(ctx);
                    self.publish_membership(ctx);
                    // Nothing to drain? Depart immediately.
                    self.maybe_depart(ctx);
                }
            }
            DynamoMsg::ViewGossip { view } => {
                if let Some(peer) = self.gossiper.member_on(from.0 as u64) {
                    self.gossiper.heard_from(peer);
                }
                let outcome = self.gossiper.absorb(&view);
                if outcome.refuted {
                    ctx.metrics().inc("membership.refutations");
                }
                if outcome.sender_stale {
                    ctx.send(from, DynamoMsg::ViewGossip { view: self.gossiper.view.clone() });
                }
                if outcome.changed || outcome.refuted {
                    self.refresh_ring(ctx);
                }
            }
            DynamoMsg::TransferKeys { xfer_id, entries, resp_to } => {
                for (key, versions) in entries {
                    merge_versions(self.store.entry(key).or_default(), &versions);
                    self.maybe_squash(ctx, key);
                }
                // The store is durable, so once merged the batch is safe:
                // ack so the sender settles its guess.
                ctx.send(resp_to, DynamoMsg::TransferAck { xfer_id });
            }
            DynamoMsg::TransferAck { xfer_id } => {
                if let Some(t) = self.transfers.remove(&xfer_id) {
                    ctx.metrics().inc("dynamo.transfers_completed");
                    ctx.resolve_durable_guess(t.guess, true);
                    ctx.finish_span(t.span);
                    self.maybe_depart(ctx);
                }
            }

            // Client-facing responses are not for us.
            DynamoMsg::PutOk { .. }
            | DynamoMsg::PutFailed { .. }
            | DynamoMsg::GetOk { .. }
            | DynamoMsg::GetFailed { .. } => {}
        }
    }

    fn on_crash(&mut self, now: SimTime) {
        // The store itself is on disk; coordination state is volatile.
        self.pending.clear();
        // The hint queue's durable matter is its event log: crash it
        // with a pseudo-random torn tail and let the recovery scan
        // decide which parks survived — the same CRC-framed truncation
        // path every WAL in the workspace goes through. Every park is
        // fsynced before the replica ack, so recovery keeps them all;
        // the torn tail can only cut a mid-write frame.
        let torn = (now.as_micros() ^ self.hint_log.byte_len()) % 23;
        let report = self.hint_log.crash(torn);
        self.hint_recovery.absorb(&report);
        let mut parked: HashSet<u64> = HashSet::new();
        for rec in self.hint_log.part(0).all_records() {
            if let Ok(((hint_id, _), (_, done))) =
                from_bytes::<((u64, StoreId), (u64, bool))>(&rec.payload)
            {
                if done {
                    parked.remove(&hint_id);
                } else {
                    parked.insert(hint_id);
                }
            }
        }
        // A hint the log lost keeps its ledger guess open — the crash
        // cost a promised handoff, and the ledger says so.
        self.hints.retain(|id, _| parked.contains(id));
    }
}
