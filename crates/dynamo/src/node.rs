//! The storage node: replica, coordinator, hint holder, and gossip peer
//! in one actor — any node can coordinate any request, as in Dynamo.
//!
//! The availability posture is the paper's: **a PUT is never refused for
//! consistency reasons**. If the preferred replicas are unreachable, the
//! coordinator walks further around the ring and parks the write on
//! whoever answers, with a hint naming the store it was meant for
//! (sloppy quorum + hinted handoff). GETs gather R replies and surface
//! every concurrent sibling to the application, which owns
//! reconciliation (§6.1, §6.4).

use std::collections::{BTreeMap, HashMap};

use rand::Rng;
use sim::{Actor, Context, GuessId, NodeId, SimDuration, SimTime, SpanId, SpanStatus};

use crate::msg::DynamoMsg;
use crate::ring::Ring;
use crate::vclock::{StoreId, VectorClock};
use crate::version::{merge_version, merge_versions, Dot, Versioned};

/// How anti-entropy advertises state (the A3 ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GossipMode {
    /// Push the entire store to a random peer each tick — simple,
    /// convergent, and wasteful once replicas are nearly in sync.
    FullStore,
    /// Send a digest (key → dots); the peer replies with exactly the
    /// versions the sender lacks.
    Digest,
}

const TAG_SHIFT: u64 = 48;
const TAG_DEADLINE: u64 = 1;
const TAG_GOSSIP: u64 = 2;

fn tag(kind: u64, payload: u64) -> u64 {
    (kind << TAG_SHIFT) | (payload & ((1 << TAG_SHIFT) - 1))
}

/// Quorum and timing parameters.
#[derive(Debug, Clone)]
pub struct DynamoConfig {
    /// Replication factor.
    pub n: usize,
    /// Read quorum.
    pub r: usize,
    /// Write quorum.
    pub w: usize,
    /// Virtual nodes per store.
    pub vnodes: usize,
    /// How long a coordinator waits before widening / failing a request.
    pub request_timeout: SimDuration,
    /// Gossip period for anti-entropy and hint delivery; `None` disables.
    pub gossip_interval: Option<SimDuration>,
    /// Anti-entropy style (see [`GossipMode`]).
    pub gossip_mode: GossipMode,
    /// Sloppy quorum: when the preferred replicas don't answer in time,
    /// widen the walk and park hinted writes on whoever answers. With
    /// `false` the store behaves like a strict-quorum (CP-leaning)
    /// system: unreachable preferred replicas fail the request — the E6
    /// comparison baseline.
    pub sloppy: bool,
    /// Re-arm the gossip timer when a crashed store restarts. Timers do
    /// not survive a crash, so without this a restarted store never
    /// gossips again: anti-entropy stops and any hints it holds stay
    /// parked forever. Always `true` in real deployments; the chaos
    /// acceptance test plants `false` here to prove the seed sweep
    /// catches the resulting stranded-hint divergence and shrinks it to
    /// a minimal crash schedule.
    pub rearm_gossip_on_restart: bool,
}

impl Default for DynamoConfig {
    fn default() -> Self {
        DynamoConfig {
            n: 3,
            r: 2,
            w: 2,
            vnodes: 64,
            request_timeout: SimDuration::from_millis(20),
            gossip_interval: Some(SimDuration::from_millis(100)),
            gossip_mode: GossipMode::FullStore,
            sloppy: true,
            rearm_gossip_on_restart: true,
        }
    }
}

#[derive(Debug)]
enum PendingOp<V> {
    Put {
        key: u64,
        versions: Vec<Versioned<V>>,
        acks: usize,
        contacted: usize,
        widened: bool,
        resp_to: NodeId,
        span: SpanId,
    },
    Get {
        key: u64,
        responses: usize,
        merged: Vec<Versioned<V>>,
        contacted: usize,
        widened: bool,
        resp_to: NodeId,
        span: SpanId,
    },
}

/// One Dynamo storage node.
#[derive(Debug)]
pub struct StoreNode<V> {
    /// This node's store id on the ring.
    pub store_id: StoreId,
    ring: Ring,
    /// store id → simulation node.
    peers: Vec<NodeId>,
    cfg: DynamoConfig,
    /// key → sibling set. Modelled as durable (Dynamo persists to local
    /// disk); survives crashes.
    store: BTreeMap<u64, Vec<Versioned<V>>>,
    /// Writes held for unreachable preferred stores: hint id → (intended
    /// store, key, handoff span — open until the hint is delivered, and
    /// the durable ledger guess it represents). Hints are on disk, so
    /// the guess survives this node's crash: if it is still open after
    /// quiescence, a promised handoff never happened.
    hints: HashMap<u64, (StoreId, u64, SpanId, GuessId)>,
    next_hint_id: u64,
    pending: HashMap<u64, PendingOp<V>>,
    /// Monotonic per-node write counter: guarantees that two writes
    /// coordinated here carry distinct clocks even when their causal
    /// contexts are identical. Modelled as durable alongside the store.
    events: u64,
    /// When set (via [`StoreNode::with_sibling_squash`]), concurrent
    /// siblings are joined with this function instead of accumulating —
    /// server-side reconciliation, sound only for values whose merge is
    /// ACID 2.0 (a `crdt::Crdt`). Stored as a plain fn pointer so the
    /// node stays usable for arbitrary blob types.
    merger: Option<fn(&mut V, &V)>,
}

impl<V: Clone + std::fmt::Debug + 'static> StoreNode<V> {
    /// Build a node. `peers[s]` must be the simulation node of store `s`.
    pub fn new(store_id: StoreId, ring: Ring, peers: Vec<NodeId>, cfg: DynamoConfig) -> Self {
        StoreNode {
            store_id,
            ring,
            peers,
            cfg,
            store: BTreeMap::new(),
            hints: HashMap::new(),
            next_hint_id: 0,
            pending: HashMap::new(),
            events: 0,
            merger: None,
        }
    }

    /// Enable automatic sibling squashing: the stored value is a
    /// [`crdt::Crdt`], so whenever a slot accumulates concurrent
    /// siblings the node joins them into a single version whose context
    /// covers them all. The application never sees sibling sets; the
    /// merge laws (§8) guarantee nothing is lost.
    pub fn with_sibling_squash(mut self) -> Self
    where
        V: crdt::Crdt,
    {
        self.merger = Some(|acc, next| crdt::Crdt::merge(acc, next));
        self
    }

    /// Join a multi-sibling slot into one version. The squashed version
    /// gets a fresh dot minted here and a context covering every
    /// sibling's effective clock, so it supersedes them wherever it
    /// travels; repeated squashes at different nodes converge because
    /// later squashes cover earlier squash dots.
    fn maybe_squash(&mut self, ctx: &mut Context<'_, DynamoMsg<V>>, key: u64) {
        let Some(merge) = self.merger else { return };
        let Some(slot) = self.store.get_mut(&key) else { return };
        if slot.len() < 2 {
            return;
        }
        let mut context = VectorClock::new();
        let mut value = slot[0].value.clone();
        context = context.merged(&slot[0].effective_clock());
        for v in &slot[1..] {
            merge(&mut value, &v.value);
            context = context.merged(&v.effective_clock());
        }
        let squashed = slot.len() as u64 - 1;
        self.events = self.events.max(context.get(self.store_id)) + 1;
        let dot = Dot { node: self.store_id, counter: self.events };
        *slot = vec![Versioned::new(context, dot, value)];
        ctx.metrics().add("dynamo.siblings_squashed", squashed);
    }

    /// The node's local sibling set for a key (inspection in tests).
    pub fn versions(&self, key: u64) -> &[Versioned<V>] {
        self.store.get(&key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of keys stored locally.
    pub fn key_count(&self) -> usize {
        self.store.len()
    }

    /// Number of undelivered hints held.
    pub fn hint_count(&self) -> usize {
        self.hints.len()
    }

    fn local_merge(&mut self, key: u64, version: Versioned<V>) {
        let slot = self.store.entry(key).or_default();
        merge_version(slot, version);
    }

    /// Contact the next `count` stores in the key's ring walk beyond the
    /// already-contacted prefix, hinting writes for the preferred stores
    /// they stand in for.
    fn widen_put(&mut self, ctx: &mut Context<'_, DynamoMsg<V>>, req: u64) {
        let me = ctx.me();
        let Some(PendingOp::Put { key, versions, contacted, widened, .. }) =
            self.pending.get_mut(&req)
        else {
            return;
        };
        *widened = true;
        let key = *key;
        let versions = versions.clone();
        let start = *contacted;
        // Walk the whole ring membership beyond the preferred set.
        let walk = self.ring.preference_list(key, self.peers.len());
        let prefs = &walk[..self.cfg.n.min(walk.len())];
        let extension: Vec<StoreId> = walk.iter().skip(start).take(self.cfg.n).copied().collect();
        if let Some(PendingOp::Put { contacted, .. }) = self.pending.get_mut(&req) {
            *contacted += extension.len();
        }
        for (i, s) in extension.iter().enumerate() {
            let hint_for = prefs.get((start + i) % self.cfg.n.max(1)).copied();
            ctx.metrics().inc("dynamo.sloppy_writes");
            ctx.send(
                self.peers[*s as usize],
                DynamoMsg::ReplicaPut {
                    req: Some(req),
                    key,
                    versions: versions.clone(),
                    hint_for,
                    resp_to: me,
                },
            );
        }
    }

    fn widen_get(&mut self, ctx: &mut Context<'_, DynamoMsg<V>>, req: u64) {
        let me = ctx.me();
        let Some(PendingOp::Get { key, contacted, widened, .. }) = self.pending.get_mut(&req)
        else {
            return;
        };
        *widened = true;
        let key = *key;
        let start = *contacted;
        let walk = self.ring.preference_list(key, self.peers.len());
        let extension: Vec<StoreId> = walk.iter().skip(start).take(self.cfg.n).copied().collect();
        if let Some(PendingOp::Get { contacted, .. }) = self.pending.get_mut(&req) {
            *contacted += extension.len();
        }
        for s in extension {
            ctx.send(self.peers[s as usize], DynamoMsg::ReplicaGet { req, key, resp_to: me });
        }
    }

    fn finish_get(&mut self, ctx: &mut Context<'_, DynamoMsg<V>>, req: u64) {
        let Some(PendingOp::Get { key, merged, resp_to, span, .. }) = self.pending.remove(&req)
        else {
            return;
        };
        // Re-enter the get's span so the read repair and the client reply
        // are attributed to it, then close it.
        ctx.set_current_span(Some(span));
        if merged.len() > 1 {
            ctx.metrics().inc("dynamo.sibling_gets");
            ctx.span_field(span, "siblings", merged.len());
        }
        let me = ctx.me().to_string();
        ctx.metrics().inc_with("dynamo.gets_ok", &[("node", me.as_str())]);
        // Read repair: push the merged set back to the preferred replicas.
        let prefs = self.ring.preference_list(key, self.cfg.n);
        for s in prefs {
            if s != self.store_id {
                ctx.send(
                    self.peers[s as usize],
                    DynamoMsg::SyncPush { entries: vec![(key, merged.clone())] },
                );
            }
        }
        merge_versions(self.store.entry(key).or_default(), &merged);
        self.maybe_squash(ctx, key);
        // With squashing on, answer with the (single) squashed version
        // rather than the raw quorum merge — a superset is always sound.
        let reply = if self.merger.is_some() { self.versions(key).to_vec() } else { merged };
        ctx.send(resp_to, DynamoMsg::GetOk { req, key, versions: reply });
        ctx.finish_span(span);
    }
}

impl<V: Clone + std::fmt::Debug + 'static> Actor<DynamoMsg<V>> for StoreNode<V> {
    fn on_start(&mut self, ctx: &mut Context<'_, DynamoMsg<V>>) {
        if let Some(interval) = self.cfg.gossip_interval {
            // Desynchronize gossip across nodes.
            let jitter =
                SimDuration::from_micros(ctx.rng().gen_range(0..interval.as_micros().max(1)));
            ctx.set_timer(interval + jitter, tag(TAG_GOSSIP, 0));
        }
    }

    fn on_restart(&mut self, ctx: &mut Context<'_, DynamoMsg<V>>) {
        // A crash killed every pending timer, including the gossip tick
        // that re-arms itself. Without this re-arm the node would never
        // again run anti-entropy or deliver the hints it still holds —
        // exactly the stranded-hint bug the chaos sweep first caught
        // (seed 4: crash + partition left one hint parked forever).
        if self.cfg.rearm_gossip_on_restart {
            if let Some(interval) = self.cfg.gossip_interval {
                let jitter =
                    SimDuration::from_micros(ctx.rng().gen_range(0..interval.as_micros().max(1)));
                ctx.set_timer(interval + jitter, tag(TAG_GOSSIP, 0));
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, DynamoMsg<V>>, t: u64) {
        let kind = t >> TAG_SHIFT;
        let payload = t & ((1 << TAG_SHIFT) - 1);
        match kind {
            TAG_DEADLINE => {
                let req = payload;
                match self.pending.get(&req) {
                    Some(PendingOp::Put { acks, widened, resp_to, span, .. }) => {
                        let (acks, widened, resp_to, span) = (*acks, *widened, *resp_to, *span);
                        if acks >= self.cfg.w {
                            return; // already answered
                        }
                        if !widened && self.cfg.sloppy {
                            self.widen_put(ctx, req);
                            ctx.set_timer(self.cfg.request_timeout, tag(TAG_DEADLINE, req));
                        } else {
                            self.pending.remove(&req);
                            let me = ctx.me().to_string();
                            ctx.metrics().inc_with("dynamo.puts_failed", &[("node", me.as_str())]);
                            ctx.set_current_span(Some(span));
                            ctx.send(resp_to, DynamoMsg::PutFailed { req });
                            ctx.finish_span_with(span, SpanStatus::Failed);
                        }
                    }
                    Some(PendingOp::Get { responses, widened, resp_to, span, .. }) => {
                        let (responses, widened, resp_to, span) =
                            (*responses, *widened, *resp_to, *span);
                        if responses >= self.cfg.r {
                            return;
                        }
                        if !widened && self.cfg.sloppy {
                            self.widen_get(ctx, req);
                            ctx.set_timer(self.cfg.request_timeout, tag(TAG_DEADLINE, req));
                        } else {
                            self.pending.remove(&req);
                            let me = ctx.me().to_string();
                            ctx.metrics().inc_with("dynamo.gets_failed", &[("node", me.as_str())]);
                            ctx.set_current_span(Some(span));
                            ctx.send(resp_to, DynamoMsg::GetFailed { req });
                            ctx.finish_span_with(span, SpanStatus::Failed);
                        }
                    }
                    None => {}
                }
            }
            TAG_GOSSIP => {
                // Hint delivery: try every held hint. Each attempt is sent
                // under the hint's handoff span so retries and the final
                // delivery hop all land in one tree.
                let mut hints: Vec<(u64, StoreId, u64, SpanId)> =
                    self.hints.iter().map(|(id, (s, k, sp, _))| (*id, *s, *k, *sp)).collect();
                hints.sort_unstable_by_key(|(id, ..)| *id);
                for (hint_id, intended, key, hspan) in hints {
                    let versions = self.versions(key).to_vec();
                    if !versions.is_empty() {
                        ctx.set_current_span(Some(hspan));
                        ctx.send(
                            self.peers[intended as usize],
                            DynamoMsg::HintDeliver { hint_id, key, versions },
                        );
                        ctx.set_current_span(None);
                    }
                }
                // Anti-entropy with one random peer.
                if self.peers.len() > 1 && !self.store.is_empty() {
                    let mut peer = ctx.rng().gen_range(0..self.peers.len());
                    if peer == self.store_id as usize {
                        peer = (peer + 1) % self.peers.len();
                    }
                    ctx.metrics().inc("dynamo.gossip_pushes");
                    match self.cfg.gossip_mode {
                        GossipMode::FullStore => {
                            let entries: Vec<(u64, Vec<Versioned<V>>)> =
                                self.store.iter().map(|(k, v)| (*k, v.clone())).collect();
                            let versions: usize = entries.iter().map(|(_, v)| v.len()).sum();
                            ctx.metrics().add("dynamo.gossip_versions_sent", versions as u64);
                            ctx.send(self.peers[peer], DynamoMsg::SyncPush { entries });
                        }
                        GossipMode::Digest => {
                            let me = ctx.me();
                            let entries: Vec<(u64, Vec<Dot>)> = self
                                .store
                                .iter()
                                .map(|(k, v)| (*k, v.iter().map(|ver| ver.dot).collect()))
                                .collect();
                            let dots: usize = entries.iter().map(|(_, d)| d.len()).sum();
                            ctx.metrics().add("dynamo.gossip_digest_dots", dots as u64);
                            ctx.send(
                                self.peers[peer],
                                DynamoMsg::SyncDigest { entries, resp_to: me },
                            );
                        }
                    }
                }
                if let Some(interval) = self.cfg.gossip_interval {
                    ctx.set_timer(interval, tag(TAG_GOSSIP, 0));
                }
            }
            _ => {}
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_, DynamoMsg<V>>, from: NodeId, msg: DynamoMsg<V>) {
        match msg {
            // ----- coordination: PUT -----
            DynamoMsg::ClientPut { req, key, value, context, resp_to } => {
                let me = ctx.me();
                let span = ctx.start_span("dynamo.put");
                ctx.span_field(span, "key", key);
                self.events = self.events.max(context.get(self.store_id)) + 1;
                let dot = Dot { node: self.store_id, counter: self.events };
                let version = Versioned::new(context, dot, value);
                // Reconcile into the local slot first, then replicate the
                // *whole* sibling set: versions minted here always travel
                // together, which is what keeps dot coverage sound (see
                // the message's docs).
                self.local_merge(key, version);
                self.maybe_squash(ctx, key);
                let versions = self.versions(key).to_vec();
                let prefs = self.ring.preference_list(key, self.cfg.n);
                for s in &prefs {
                    if *s == self.store_id {
                        // Already stored locally; count the ack directly.
                        ctx.send(me, DynamoMsg::ReplicaPutAck { req });
                        continue;
                    }
                    ctx.send(
                        self.peers[*s as usize],
                        DynamoMsg::ReplicaPut {
                            req: Some(req),
                            key,
                            versions: versions.clone(),
                            hint_for: None,
                            resp_to: me,
                        },
                    );
                }
                self.pending.insert(
                    req,
                    PendingOp::Put {
                        key,
                        versions,
                        acks: 0,
                        contacted: prefs.len(),
                        widened: false,
                        resp_to,
                        span,
                    },
                );
                ctx.set_timer(self.cfg.request_timeout, tag(TAG_DEADLINE, req));
            }
            DynamoMsg::ReplicaPutAck { req } => {
                let done = {
                    let Some(PendingOp::Put { acks, .. }) = self.pending.get_mut(&req) else {
                        return;
                    };
                    *acks += 1;
                    *acks >= self.cfg.w
                };
                if done {
                    if let Some(PendingOp::Put { resp_to, span, .. }) = self.pending.remove(&req) {
                        let me = ctx.me().to_string();
                        ctx.metrics().inc_with("dynamo.puts_ok", &[("node", me.as_str())]);
                        ctx.set_current_span(Some(span));
                        ctx.send(resp_to, DynamoMsg::PutOk { req });
                        ctx.finish_span(span);
                    }
                }
            }

            // ----- coordination: GET -----
            DynamoMsg::ClientGet { req, key, resp_to } => {
                let me = ctx.me();
                let span = ctx.start_span("dynamo.get");
                ctx.span_field(span, "key", key);
                let prefs = self.ring.preference_list(key, self.cfg.n);
                for s in &prefs {
                    ctx.send(
                        self.peers[*s as usize],
                        DynamoMsg::ReplicaGet { req, key, resp_to: me },
                    );
                }
                self.pending.insert(
                    req,
                    PendingOp::Get {
                        key,
                        responses: 0,
                        merged: Vec::new(),
                        contacted: prefs.len(),
                        widened: false,
                        resp_to,
                        span,
                    },
                );
                ctx.set_timer(self.cfg.request_timeout, tag(TAG_DEADLINE, req));
            }
            DynamoMsg::ReplicaGetResp { req, key: _, versions } => {
                let done = {
                    let Some(PendingOp::Get { responses, merged, .. }) = self.pending.get_mut(&req)
                    else {
                        return;
                    };
                    *responses += 1;
                    merge_versions(merged, &versions);
                    *responses >= self.cfg.r
                };
                if done {
                    self.finish_get(ctx, req);
                }
            }

            // ----- replica duties -----
            DynamoMsg::ReplicaPut { req, key, versions, hint_for, resp_to } => {
                merge_versions(self.store.entry(key).or_default(), &versions);
                self.maybe_squash(ctx, key);
                if let Some(intended) = hint_for {
                    if intended != self.store_id {
                        let hint_id = self.next_hint_id;
                        self.next_hint_id += 1;
                        // The handoff span stays open while the hint is
                        // parked here: its duration is how long the write
                        // sat away from its intended home.
                        let hspan = ctx.child_span(ctx.current_span(), "dynamo.hint_handoff");
                        ctx.span_field(hspan, "intended", format!("s{intended}"));
                        ctx.span_field(hspan, "key", key);
                        // The parked hint is a durable guess: "I will
                        // deliver this write to its home store." It
                        // survives our crash (the hint is on disk) and
                        // stays open in the ledger until the HintAck.
                        let guess = ctx.open_durable_guess(
                            "dynamo.hint_handoff",
                            &format!("hint parked for s{intended}"),
                        );
                        self.hints.insert(hint_id, (intended, key, hspan, guess));
                        let me = ctx.me().to_string();
                        ctx.metrics().inc_with("dynamo.hints_stored", &[("node", me.as_str())]);
                    }
                }
                if let Some(req) = req {
                    ctx.send(resp_to, DynamoMsg::ReplicaPutAck { req });
                }
            }
            DynamoMsg::ReplicaGet { req, key, resp_to } => {
                let versions = self.versions(key).to_vec();
                ctx.send(resp_to, DynamoMsg::ReplicaGetResp { req, key, versions });
            }
            DynamoMsg::HintDeliver { hint_id, key, versions } => {
                merge_versions(self.store.entry(key).or_default(), &versions);
                self.maybe_squash(ctx, key);
                ctx.send(from, DynamoMsg::HintAck { hint_id });
            }
            DynamoMsg::HintAck { hint_id } => {
                if let Some((_, _, hspan, guess)) = self.hints.remove(&hint_id) {
                    ctx.metrics().inc("dynamo.hints_delivered");
                    ctx.resolve_durable_guess(guess, true);
                    ctx.finish_span(hspan);
                }
            }
            DynamoMsg::SyncPush { entries } => {
                for (key, versions) in entries {
                    merge_versions(self.store.entry(key).or_default(), &versions);
                    self.maybe_squash(ctx, key);
                }
            }
            DynamoMsg::SyncDigest { entries, resp_to } => {
                // Reply with exactly what the sender is missing: our
                // versions whose dots are absent from its digest, plus
                // whole keys it doesn't know.
                use std::collections::HashMap as Map;
                let theirs: Map<u64, &Vec<Dot>> = entries.iter().map(|(k, d)| (*k, d)).collect();
                let mut missing: Vec<(u64, Vec<Versioned<V>>)> = Vec::new();
                for (key, versions) in &self.store {
                    let have = theirs.get(key);
                    let novel: Vec<Versioned<V>> = versions
                        .iter()
                        .filter(|v| have.is_none_or(|dots| !dots.contains(&v.dot)))
                        .cloned()
                        .collect();
                    if !novel.is_empty() {
                        missing.push((*key, novel));
                    }
                }
                if !missing.is_empty() {
                    let versions: usize = missing.iter().map(|(_, v)| v.len()).sum();
                    ctx.metrics().add("dynamo.gossip_versions_sent", versions as u64);
                    ctx.send(resp_to, DynamoMsg::SyncPush { entries: missing });
                }
            }

            // Client-facing responses are not for us.
            DynamoMsg::PutOk { .. }
            | DynamoMsg::PutFailed { .. }
            | DynamoMsg::GetOk { .. }
            | DynamoMsg::GetFailed { .. } => {}
        }
    }

    fn on_crash(&mut self, _now: SimTime) {
        // The store itself is on disk; coordination state is volatile.
        self.pending.clear();
    }
}
