//! Protocol messages of the Dynamo-style store.

use quicksand_core::{WireCodec, WireError};
use sim::NodeId;

use crate::vclock::{StoreId, VectorClock};
use crate::version::{Dot, Versioned};

/// Messages between clients, coordinators, and replicas. Generic over
/// the application blob type `V` — the store is "a storage substrate
/// independent of the application layered on top of it" (§6.1).
#[derive(Debug, Clone)]
pub enum DynamoMsg<V> {
    // ----- client ↔ coordinator -----
    /// Client PUT: store `value` under `key`, given the causal `context`
    /// from a previous GET (empty for a blind write).
    ClientPut {
        /// Client correlation id.
        req: u64,
        /// The key.
        key: u64,
        /// The blob.
        value: V,
        /// Causal context being superseded.
        context: VectorClock,
        /// Who to answer.
        resp_to: NodeId,
    },
    /// W replicas have the write.
    PutOk {
        /// Correlation id.
        req: u64,
    },
    /// Could not reach W replicas (even sloppily).
    PutFailed {
        /// Correlation id.
        req: u64,
    },
    /// Client GET.
    ClientGet {
        /// Client correlation id.
        req: u64,
        /// The key.
        key: u64,
        /// Who to answer.
        resp_to: NodeId,
    },
    /// R replicas answered; `versions` holds every causally-concurrent
    /// sibling — possibly more than one (§6.1).
    GetOk {
        /// Correlation id.
        req: u64,
        /// The key.
        key: u64,
        /// The sibling set.
        versions: Vec<Versioned<V>>,
    },
    /// Could not reach R replicas.
    GetFailed {
        /// Correlation id.
        req: u64,
    },

    // ----- coordinator ↔ replica -----
    /// Store the coordinator's reconciled sibling set at a replica.
    /// Shipping the *whole set* (not just the new version) is what keeps
    /// dotted-version coverage sound: two writes minted at the same node
    /// for the same key always travel together, so a causal context can
    /// never cover a dot whose version it has not seen. `hint_for` marks
    /// a sloppy-quorum write held on behalf of an unreachable preferred
    /// store.
    ReplicaPut {
        /// Coordinator correlation id (`None` for fire-and-forget
        /// repair traffic).
        req: Option<u64>,
        /// The key.
        key: u64,
        /// The coordinator's sibling set after the write.
        versions: Vec<Versioned<V>>,
        /// The preferred store this write is held for, if sloppy.
        hint_for: Option<StoreId>,
        /// Who to ack.
        resp_to: NodeId,
    },
    /// Replica write acknowledged.
    ReplicaPutAck {
        /// Coordinator correlation id.
        req: u64,
    },
    /// Read one key's sibling set from a replica.
    ReplicaGet {
        /// Coordinator correlation id.
        req: u64,
        /// The key.
        key: u64,
        /// Who to answer.
        resp_to: NodeId,
    },
    /// A replica's sibling set for the key.
    ReplicaGetResp {
        /// Coordinator correlation id.
        req: u64,
        /// The key.
        key: u64,
        /// The replica's versions.
        versions: Vec<Versioned<V>>,
    },

    // ----- hinted handoff & anti-entropy -----
    /// Deliver hinted data to the store it was intended for.
    HintDeliver {
        /// Hint correlation id at the holder.
        hint_id: u64,
        /// The key.
        key: u64,
        /// Versions held on the intended store's behalf.
        versions: Vec<Versioned<V>>,
    },
    /// The intended store has the hinted data; the holder may drop it.
    HintAck {
        /// Hint correlation id.
        hint_id: u64,
    },
    /// One-way anti-entropy push of (key, sibling set) pairs.
    SyncPush {
        /// The entries.
        entries: Vec<(u64, Vec<Versioned<V>>)>,
    },
    /// Digest-mode anti-entropy: "here is what I have" as (key, dots),
    /// without the values. The receiver replies with a [`DynamoMsg::SyncPush`]
    /// of exactly the versions the sender is missing — orders of
    /// magnitude less traffic than pushing the whole store when replicas
    /// are nearly in sync.
    SyncDigest {
        /// The sender's holdings: key → the dots of its sibling set.
        entries: Vec<(u64, Vec<Dot>)>,
        /// Who to send the missing versions to.
        resp_to: NodeId,
    },

    // ----- membership & rebalancing -----
    /// Operator control: join the ring (a spare promotes itself to
    /// `Joining`, gossips the new view, and starts receiving its key
    /// range). Injected by chaos `AddNode` clauses and `loadgen --join-at`.
    CtlJoin,
    /// Operator control: leave the ring gracefully — drain owned keys to
    /// their new owners, then mark the member `Down`.
    CtlLeave,
    /// Gossip exchange of the membership view (full view; the CRDT merge
    /// makes repeats idempotent and reordering harmless).
    ViewGossip {
        /// The sender's current view.
        view: membership::MembershipView,
    },
    /// Rebalance stream: keys whose ownership moved to `resp_to`'s store
    /// in a newer ring. Each in-flight transfer is a durable guess at the
    /// sender — retried until acked, so an acked write survives any
    /// join/leave interleaving.
    TransferKeys {
        /// Sender-local transfer correlation id.
        xfer_id: u64,
        /// The moved entries: key → full sibling set.
        entries: Vec<(u64, Vec<Versioned<V>>)>,
        /// Who to ack.
        resp_to: NodeId,
    },
    /// The new owner has the transferred keys durably; the sender settles
    /// the guess.
    TransferAck {
        /// Transfer correlation id.
        xfer_id: u64,
    },
}

// `NodeId` lives in `sim` and `WireCodec` in `quicksand-core`, so the
// orphan rule forbids a direct impl; node ids cross the wire as u64
// inside this message codec instead.
fn encode_node(n: NodeId, buf: &mut Vec<u8>) {
    (n.0 as u64).encode(buf);
}

fn decode_node(buf: &mut &[u8]) -> Result<NodeId, WireError> {
    Ok(NodeId(u64::decode(buf)? as usize))
}

/// One `u8` discriminant (declaration order) + the variant's fields in
/// order. Both ends of a TCP link must run the same build — the format
/// carries no versioning, exactly like the in-memory contract.
impl<V: WireCodec> WireCodec for DynamoMsg<V> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            DynamoMsg::ClientPut { req, key, value, context, resp_to } => {
                buf.push(0);
                req.encode(buf);
                key.encode(buf);
                value.encode(buf);
                context.encode(buf);
                encode_node(*resp_to, buf);
            }
            DynamoMsg::PutOk { req } => {
                buf.push(1);
                req.encode(buf);
            }
            DynamoMsg::PutFailed { req } => {
                buf.push(2);
                req.encode(buf);
            }
            DynamoMsg::ClientGet { req, key, resp_to } => {
                buf.push(3);
                req.encode(buf);
                key.encode(buf);
                encode_node(*resp_to, buf);
            }
            DynamoMsg::GetOk { req, key, versions } => {
                buf.push(4);
                req.encode(buf);
                key.encode(buf);
                versions.encode(buf);
            }
            DynamoMsg::GetFailed { req } => {
                buf.push(5);
                req.encode(buf);
            }
            DynamoMsg::ReplicaPut { req, key, versions, hint_for, resp_to } => {
                buf.push(6);
                req.encode(buf);
                key.encode(buf);
                versions.encode(buf);
                hint_for.encode(buf);
                encode_node(*resp_to, buf);
            }
            DynamoMsg::ReplicaPutAck { req } => {
                buf.push(7);
                req.encode(buf);
            }
            DynamoMsg::ReplicaGet { req, key, resp_to } => {
                buf.push(8);
                req.encode(buf);
                key.encode(buf);
                encode_node(*resp_to, buf);
            }
            DynamoMsg::ReplicaGetResp { req, key, versions } => {
                buf.push(9);
                req.encode(buf);
                key.encode(buf);
                versions.encode(buf);
            }
            DynamoMsg::HintDeliver { hint_id, key, versions } => {
                buf.push(10);
                hint_id.encode(buf);
                key.encode(buf);
                versions.encode(buf);
            }
            DynamoMsg::HintAck { hint_id } => {
                buf.push(11);
                hint_id.encode(buf);
            }
            DynamoMsg::SyncPush { entries } => {
                buf.push(12);
                entries.encode(buf);
            }
            DynamoMsg::SyncDigest { entries, resp_to } => {
                buf.push(13);
                entries.encode(buf);
                encode_node(*resp_to, buf);
            }
            DynamoMsg::CtlJoin => buf.push(14),
            DynamoMsg::CtlLeave => buf.push(15),
            DynamoMsg::ViewGossip { view } => {
                buf.push(16);
                view.encode(buf);
            }
            DynamoMsg::TransferKeys { xfer_id, entries, resp_to } => {
                buf.push(17);
                xfer_id.encode(buf);
                entries.encode(buf);
                encode_node(*resp_to, buf);
            }
            DynamoMsg::TransferAck { xfer_id } => {
                buf.push(18);
                xfer_id.encode(buf);
            }
        }
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode(buf)? {
            0 => Ok(DynamoMsg::ClientPut {
                req: u64::decode(buf)?,
                key: u64::decode(buf)?,
                value: V::decode(buf)?,
                context: VectorClock::decode(buf)?,
                resp_to: decode_node(buf)?,
            }),
            1 => Ok(DynamoMsg::PutOk { req: u64::decode(buf)? }),
            2 => Ok(DynamoMsg::PutFailed { req: u64::decode(buf)? }),
            3 => Ok(DynamoMsg::ClientGet {
                req: u64::decode(buf)?,
                key: u64::decode(buf)?,
                resp_to: decode_node(buf)?,
            }),
            4 => Ok(DynamoMsg::GetOk {
                req: u64::decode(buf)?,
                key: u64::decode(buf)?,
                versions: Vec::decode(buf)?,
            }),
            5 => Ok(DynamoMsg::GetFailed { req: u64::decode(buf)? }),
            6 => Ok(DynamoMsg::ReplicaPut {
                req: Option::decode(buf)?,
                key: u64::decode(buf)?,
                versions: Vec::decode(buf)?,
                hint_for: Option::decode(buf)?,
                resp_to: decode_node(buf)?,
            }),
            7 => Ok(DynamoMsg::ReplicaPutAck { req: u64::decode(buf)? }),
            8 => Ok(DynamoMsg::ReplicaGet {
                req: u64::decode(buf)?,
                key: u64::decode(buf)?,
                resp_to: decode_node(buf)?,
            }),
            9 => Ok(DynamoMsg::ReplicaGetResp {
                req: u64::decode(buf)?,
                key: u64::decode(buf)?,
                versions: Vec::decode(buf)?,
            }),
            10 => Ok(DynamoMsg::HintDeliver {
                hint_id: u64::decode(buf)?,
                key: u64::decode(buf)?,
                versions: Vec::decode(buf)?,
            }),
            11 => Ok(DynamoMsg::HintAck { hint_id: u64::decode(buf)? }),
            12 => Ok(DynamoMsg::SyncPush { entries: Vec::decode(buf)? }),
            13 => {
                Ok(DynamoMsg::SyncDigest { entries: Vec::decode(buf)?, resp_to: decode_node(buf)? })
            }
            14 => Ok(DynamoMsg::CtlJoin),
            15 => Ok(DynamoMsg::CtlLeave),
            16 => Ok(DynamoMsg::ViewGossip { view: membership::MembershipView::decode(buf)? }),
            17 => Ok(DynamoMsg::TransferKeys {
                xfer_id: u64::decode(buf)?,
                entries: Vec::decode(buf)?,
                resp_to: decode_node(buf)?,
            }),
            18 => Ok(DynamoMsg::TransferAck { xfer_id: u64::decode(buf)? }),
            t => Err(WireError::BadTag(t)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quicksand_core::wire::{from_bytes, to_bytes};

    fn versions(n: u64) -> Vec<Versioned<u64>> {
        (1..=n)
            .map(|i| {
                Versioned::new(
                    VectorClock::new().incremented(i as StoreId),
                    Dot { node: i as StoreId, counter: i },
                    i * 100,
                )
            })
            .collect()
    }

    #[test]
    fn every_variant_round_trips() {
        let msgs: Vec<DynamoMsg<u64>> = vec![
            DynamoMsg::ClientPut {
                req: 1,
                key: 2,
                value: 3,
                context: VectorClock::new().incremented(4),
                resp_to: NodeId(5),
            },
            DynamoMsg::PutOk { req: 6 },
            DynamoMsg::PutFailed { req: 7 },
            DynamoMsg::ClientGet { req: 8, key: 9, resp_to: NodeId(10) },
            DynamoMsg::GetOk { req: 11, key: 12, versions: versions(2) },
            DynamoMsg::GetFailed { req: 13 },
            DynamoMsg::ReplicaPut {
                req: Some(14),
                key: 15,
                versions: versions(1),
                hint_for: Some(16),
                resp_to: NodeId(17),
            },
            DynamoMsg::ReplicaPut {
                req: None,
                key: 18,
                versions: vec![],
                hint_for: None,
                resp_to: NodeId(19),
            },
            DynamoMsg::ReplicaPutAck { req: 20 },
            DynamoMsg::ReplicaGet { req: 21, key: 22, resp_to: NodeId(23) },
            DynamoMsg::ReplicaGetResp { req: 24, key: 25, versions: versions(3) },
            DynamoMsg::HintDeliver { hint_id: 26, key: 27, versions: versions(1) },
            DynamoMsg::HintAck { hint_id: 28 },
            DynamoMsg::SyncPush { entries: vec![(29, versions(2))] },
            DynamoMsg::SyncDigest {
                entries: vec![(30, vec![Dot { node: 1, counter: 2 }])],
                resp_to: NodeId(31),
            },
            DynamoMsg::CtlJoin,
            DynamoMsg::CtlLeave,
            DynamoMsg::ViewGossip { view: membership::boot_view(&[0, 1, 2]) },
            DynamoMsg::TransferKeys {
                xfer_id: 32,
                entries: vec![(33, versions(2))],
                resp_to: NodeId(34),
            },
            DynamoMsg::TransferAck { xfer_id: 35 },
        ];
        for msg in msgs {
            let bytes = to_bytes(&msg);
            let back: DynamoMsg<u64> = from_bytes(&bytes).expect("decodes");
            // DynamoMsg is not PartialEq (V need not be); compare debug.
            assert_eq!(format!("{msg:?}"), format!("{back:?}"));
        }
    }

    #[test]
    fn unknown_discriminant_is_rejected() {
        assert!(matches!(from_bytes::<DynamoMsg<u64>>(&[99]), Err(WireError::BadTag(99))));
    }

    #[test]
    fn truncated_message_is_rejected() {
        let bytes = to_bytes(&DynamoMsg::<u64>::GetOk { req: 1, key: 2, versions: versions(2) });
        for cut in 0..bytes.len() {
            assert!(from_bytes::<DynamoMsg<u64>>(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }
}
