//! Protocol messages of the Dynamo-style store.

use sim::NodeId;

use crate::vclock::{StoreId, VectorClock};
use crate::version::{Dot, Versioned};

/// Messages between clients, coordinators, and replicas. Generic over
/// the application blob type `V` — the store is "a storage substrate
/// independent of the application layered on top of it" (§6.1).
#[derive(Debug, Clone)]
pub enum DynamoMsg<V> {
    // ----- client ↔ coordinator -----
    /// Client PUT: store `value` under `key`, given the causal `context`
    /// from a previous GET (empty for a blind write).
    ClientPut {
        /// Client correlation id.
        req: u64,
        /// The key.
        key: u64,
        /// The blob.
        value: V,
        /// Causal context being superseded.
        context: VectorClock,
        /// Who to answer.
        resp_to: NodeId,
    },
    /// W replicas have the write.
    PutOk {
        /// Correlation id.
        req: u64,
    },
    /// Could not reach W replicas (even sloppily).
    PutFailed {
        /// Correlation id.
        req: u64,
    },
    /// Client GET.
    ClientGet {
        /// Client correlation id.
        req: u64,
        /// The key.
        key: u64,
        /// Who to answer.
        resp_to: NodeId,
    },
    /// R replicas answered; `versions` holds every causally-concurrent
    /// sibling — possibly more than one (§6.1).
    GetOk {
        /// Correlation id.
        req: u64,
        /// The key.
        key: u64,
        /// The sibling set.
        versions: Vec<Versioned<V>>,
    },
    /// Could not reach R replicas.
    GetFailed {
        /// Correlation id.
        req: u64,
    },

    // ----- coordinator ↔ replica -----
    /// Store the coordinator's reconciled sibling set at a replica.
    /// Shipping the *whole set* (not just the new version) is what keeps
    /// dotted-version coverage sound: two writes minted at the same node
    /// for the same key always travel together, so a causal context can
    /// never cover a dot whose version it has not seen. `hint_for` marks
    /// a sloppy-quorum write held on behalf of an unreachable preferred
    /// store.
    ReplicaPut {
        /// Coordinator correlation id (`None` for fire-and-forget
        /// repair traffic).
        req: Option<u64>,
        /// The key.
        key: u64,
        /// The coordinator's sibling set after the write.
        versions: Vec<Versioned<V>>,
        /// The preferred store this write is held for, if sloppy.
        hint_for: Option<StoreId>,
        /// Who to ack.
        resp_to: NodeId,
    },
    /// Replica write acknowledged.
    ReplicaPutAck {
        /// Coordinator correlation id.
        req: u64,
    },
    /// Read one key's sibling set from a replica.
    ReplicaGet {
        /// Coordinator correlation id.
        req: u64,
        /// The key.
        key: u64,
        /// Who to answer.
        resp_to: NodeId,
    },
    /// A replica's sibling set for the key.
    ReplicaGetResp {
        /// Coordinator correlation id.
        req: u64,
        /// The key.
        key: u64,
        /// The replica's versions.
        versions: Vec<Versioned<V>>,
    },

    // ----- hinted handoff & anti-entropy -----
    /// Deliver hinted data to the store it was intended for.
    HintDeliver {
        /// Hint correlation id at the holder.
        hint_id: u64,
        /// The key.
        key: u64,
        /// Versions held on the intended store's behalf.
        versions: Vec<Versioned<V>>,
    },
    /// The intended store has the hinted data; the holder may drop it.
    HintAck {
        /// Hint correlation id.
        hint_id: u64,
    },
    /// One-way anti-entropy push of (key, sibling set) pairs.
    SyncPush {
        /// The entries.
        entries: Vec<(u64, Vec<Versioned<V>>)>,
    },
    /// Digest-mode anti-entropy: "here is what I have" as (key, dots),
    /// without the values. The receiver replies with a [`DynamoMsg::SyncPush`]
    /// of exactly the versions the sender is missing — orders of
    /// magnitude less traffic than pushing the whole store when replicas
    /// are nearly in sync.
    SyncDigest {
        /// The sender's holdings: key → the dots of its sibling set.
        entries: Vec<(u64, Vec<Dot>)>,
        /// Who to send the missing versions to.
        resp_to: NodeId,
    },
}
