//! A fault-plan-driven PUT workload over a plain cluster, for chaos
//! sweeps: a retrying loader blind-writes uniquely-valued versions
//! while a [`FaultPlan`] partitions, crashes, and degrades the ring,
//! then the report audits what the availability posture promised —
//! every acked write survives somewhere, and (once the plan has healed
//! and anti-entropy has run) replicas agree.

use std::collections::BTreeMap;

use rand::Rng;
use sim::chaos::FaultPlan;
use sim::{
    Actor, Context, FlightRecorder, LedgerAccounting, NodeId, SimDuration, SimTime, Simulation,
    SpanId, SpanStatus, SpanStore,
};

use crate::harness::{build_cluster_with_spares, Cluster};
use crate::msg::DynamoMsg;
use crate::node::{DynamoConfig, StoreNode};
use crate::vclock::VectorClock;
use crate::version::same_versions;

const TAG_SHIFT: u64 = 48;
const TAG_NEXT: u64 = 1;
const TAG_STUCK: u64 = 2;

fn tag(kind: u64, payload: u64) -> u64 {
    (kind << TAG_SHIFT) | (payload & ((1 << TAG_SHIFT) - 1))
}

/// Configuration for one chaos workload run.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Store parameters.
    pub dynamo: DynamoConfig,
    /// Cluster size.
    pub n_stores: u32,
    /// Standby stores provisioned outside the ring (ids
    /// `n_stores..n_stores+spares`), available as `AddNode` targets.
    pub spares: u32,
    /// Keys the loader cycles through.
    pub n_keys: u64,
    /// Blind PUTs the loader issues (each with a globally unique value).
    pub puts: u64,
    /// Mean think time between acked PUTs.
    pub mean_interarrival: SimDuration,
    /// The fault timeline.
    pub faults: FaultPlan,
    /// Minimum run length; the run is extended past the plan's last
    /// heal so convergence is a fair question to ask.
    pub horizon: SimTime,
    /// Enable the forensic flight recorder (causal event graph). Off by
    /// default; chaos explainers re-run failing seeds with it on.
    pub flight: bool,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            dynamo: DynamoConfig::default(),
            n_stores: 5,
            spares: 0,
            n_keys: 4,
            puts: 40,
            mean_interarrival: SimDuration::from_millis(10),
            faults: FaultPlan::none(),
            horizon: SimTime::from_secs(30),
            flight: false,
        }
    }
}

/// What the workload observed and what the post-run audit found.
#[derive(Debug, Clone, Default)]
pub struct WorkloadReport {
    /// PUTs the loader saw acknowledged.
    pub acked: u64,
    /// PUTs still unacknowledged at the end of the run.
    pub unacked: u64,
    /// `PutFailed` responses (each was retried).
    pub put_failures: u64,
    /// Cycles restarted because the coordinator never answered.
    pub stuck_retries: u64,
    /// Acked values absent from *every* store at the end of the run —
    /// promised durability that evaporated.
    pub acked_lost: u64,
    /// Acked values absent from every store the **final** ring's
    /// preference list names for their key — the
    /// `no-acked-write-lost-across-rebalance` invariant: surviving only
    /// on a departed or demoted store does not count, because no read
    /// will ever route there again.
    pub acked_lost_in_ring: u64,
    /// Rebalance transfers still unacked at the end of the run (each is
    /// also an open `membership.transfer` guess in the ledger).
    pub transfers_unacked: u64,
    /// Keys on which two stores still hold conflicting sibling sets.
    pub diverged_keys: u64,
    /// Hinted writes still parked on a stand-in store.
    pub hints_undelivered: u64,
    /// Total simulated messages.
    pub messages: u64,
    /// Guess/apology accounting. Parked hints are **durable** guesses
    /// (`dynamo.hint_handoff`): a hint stranded by the stranded-hint bug
    /// shows up here as a guess still open after quiescence.
    pub ledger: LedgerAccounting,
    /// Every span the run recorded.
    pub spans: SpanStore,
    /// The causal event graph, when `WorkloadConfig::flight` was set.
    pub flight: Option<FlightRecorder>,
}

impl WorkloadReport {
    /// Every store that holds a key agrees on its sibling set.
    pub fn converged(&self) -> bool {
        self.diverged_keys == 0 && self.hints_undelivered == 0
    }
}

/// A client that issues `puts` blind PUTs, one at a time, retrying a
/// failed or stuck PUT (same value, fresh request id) until it is
/// acknowledged — the shopping-cart posture: the writer never gives up.
pub struct Loader {
    coordinators: Vec<NodeId>,
    puts: u64,
    n_keys: u64,
    think: SimDuration,
    stuck_timeout: SimDuration,

    next_value: u64,
    /// The in-flight (value, key), kept across retries.
    current: Option<(u64, u64)>,
    /// The `workload.put` span covering the current cycle's attempts.
    cycle_span: Option<SpanId>,
    outstanding_req: Option<u64>,
    req_counter: u64,
    /// Acked value → key.
    pub acked: BTreeMap<u64, u64>,
    /// `PutFailed` responses seen.
    pub put_failures: u64,
    /// Cycles restarted on timeout.
    pub stuck_retries: u64,
}

impl Loader {
    /// A loader cycling over `n_keys` keys via any of `coordinators`.
    pub fn new(coordinators: Vec<NodeId>, puts: u64, n_keys: u64, think: SimDuration) -> Self {
        Loader {
            coordinators,
            puts,
            n_keys: n_keys.max(1),
            think,
            stuck_timeout: SimDuration::from_millis(500),
            next_value: 0,
            current: None,
            cycle_span: None,
            outstanding_req: None,
            req_counter: 0,
            acked: BTreeMap::new(),
            put_failures: 0,
            stuck_retries: 0,
        }
    }

    /// True when every planned PUT has been acknowledged.
    pub fn done(&self) -> bool {
        self.next_value >= self.puts && self.current.is_none()
    }

    fn begin(&mut self, ctx: &mut Context<'_, DynamoMsg<u64>>) {
        if self.current.is_none() {
            if self.next_value >= self.puts {
                return;
            }
            let value = self.next_value;
            self.next_value += 1;
            self.current = Some((value, value % self.n_keys));
            let span = ctx.start_span("workload.put");
            ctx.span_field(span, "value", value);
            self.cycle_span = Some(span);
        }
        let (value, key) = self.current.expect("cycle in progress");
        self.req_counter += 1;
        let req = self.req_counter;
        self.outstanding_req = Some(req);
        let me = ctx.me();
        let coord = self.coordinators[ctx.rng().gen_range(0..self.coordinators.len())];
        ctx.set_current_span(self.cycle_span);
        ctx.send(
            coord,
            DynamoMsg::ClientPut { req, key, value, context: VectorClock::new(), resp_to: me },
        );
        ctx.set_timer(self.stuck_timeout, tag(TAG_STUCK, req));
    }

    fn retry(&mut self, ctx: &mut Context<'_, DynamoMsg<u64>>) {
        if let Some(span) = self.cycle_span {
            ctx.span_field(span, "retried", "true");
        }
        self.outstanding_req = None;
        let backoff = self.think / 2 + SimDuration::from_micros(ctx.rng().gen_range(0..10_000));
        ctx.set_timer(backoff, tag(TAG_NEXT, 0));
    }
}

impl Actor<DynamoMsg<u64>> for Loader {
    fn on_start(&mut self, ctx: &mut Context<'_, DynamoMsg<u64>>) {
        let jitter = ctx.rng().gen_range(0..=self.think.as_micros());
        ctx.set_timer(SimDuration::from_micros(jitter), tag(TAG_NEXT, 0));
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, DynamoMsg<u64>>, t: u64) {
        match t >> TAG_SHIFT {
            TAG_NEXT if self.outstanding_req.is_none() => {
                self.begin(ctx);
            }
            TAG_STUCK => {
                let req = t & ((1 << TAG_SHIFT) - 1);
                if self.outstanding_req == Some(req) {
                    self.stuck_retries += 1;
                    ctx.metrics().inc("workload.stuck_retries");
                    self.retry(ctx);
                }
            }
            _ => {}
        }
    }

    fn on_message(
        &mut self,
        ctx: &mut Context<'_, DynamoMsg<u64>>,
        _from: NodeId,
        msg: DynamoMsg<u64>,
    ) {
        match msg {
            DynamoMsg::PutOk { req } if self.outstanding_req == Some(req) => {
                self.outstanding_req = None;
                let (value, key) = self.current.take().expect("an ack implies a cycle");
                self.acked.insert(value, key);
                if let Some(span) = self.cycle_span.take() {
                    ctx.finish_span_with(span, SpanStatus::Ok);
                }
                ctx.metrics().inc("workload.puts_acked");
                if self.next_value < self.puts {
                    let jitter = ctx.rng().gen_range(0..=self.think.as_micros());
                    ctx.set_timer(self.think + SimDuration::from_micros(jitter), tag(TAG_NEXT, 0));
                }
            }
            DynamoMsg::PutFailed { req } if self.outstanding_req == Some(req) => {
                self.put_failures += 1;
                ctx.metrics().inc("workload.put_failures");
                self.retry(ctx);
            }
            _ => {}
        }
    }
}

/// Build the cluster + loader, apply the plan, and run. The returned
/// simulation has advanced past both `cfg.horizon` and the plan's last
/// heal plus a gossip-settling margin.
pub fn run_workload_sim(cfg: &WorkloadConfig, seed: u64) -> (Simulation<DynamoMsg<u64>>, Cluster) {
    let mut sim: Simulation<DynamoMsg<u64>> = Simulation::new(seed);
    let cluster = build_cluster_with_spares(&mut sim, cfg.n_stores, cfg.spares, &cfg.dynamo);
    // Coordinators are the boot-time ring members; spares (and leavers)
    // are reachable through the ring, not addressed directly.
    let loader = Loader::new(
        cluster.stores[..cfg.n_stores as usize].to_vec(),
        cfg.puts,
        cfg.n_keys.min(cfg.puts.max(1)),
        cfg.mean_interarrival,
    );
    let id = sim.add_node(loader);
    debug_assert_eq!(id, NodeId((cfg.n_stores + cfg.spares) as usize));
    if cfg.flight {
        sim.enable_flight(1 << 16);
    }
    cfg.faults.apply(&mut sim);
    // The plan engine applies crashes and partitions itself but is
    // mechanism-agnostic about membership; the scenario owns the
    // translation of AddNode/RemoveNode clauses into the data plane's
    // control messages.
    for f in &cfg.faults.faults {
        match f {
            sim::chaos::Fault::AddNode { at, node } => {
                sim.inject_at(*at, *node, *node, DynamoMsg::CtlJoin);
            }
            sim::chaos::Fault::RemoveNode { at, node } => {
                sim.inject_at(*at, *node, *node, DynamoMsg::CtlLeave);
            }
            _ => {}
        }
    }
    let settle = SimDuration::from_secs(5);
    let end = cfg.horizon.max(cfg.faults.ends_by() + settle);
    sim.run_until(end);
    (sim, cluster)
}

/// Run the workload under `cfg.faults` and audit the outcome.
pub fn run_workload(cfg: &WorkloadConfig, seed: u64) -> WorkloadReport {
    let (mut sim, cluster) = run_workload_sim(cfg, seed);
    let loader: &Loader = sim.actor(NodeId((cfg.n_stores + cfg.spares) as usize));

    let mut report = WorkloadReport {
        acked: loader.acked.len() as u64,
        unacked: cfg.puts - loader.acked.len() as u64,
        put_failures: loader.put_failures,
        stuck_retries: loader.stuck_retries,
        ..WorkloadReport::default()
    };

    // Durability: every acked value must survive in some store's
    // sibling set for its key. Blind writes are pairwise concurrent, so
    // a correct store never supersedes one with another.
    for (value, key) in &loader.acked {
        let held = cluster.stores.iter().any(|s| {
            sim.actor::<StoreNode<u64>>(*s).versions(*key).iter().any(|v| v.value == *value)
        });
        if !held {
            report.acked_lost += 1;
        }
    }

    // Rebalance durability: route each acked value by the **final** ring
    // (as converged on by a surviving in-ring member) and require it on
    // a store reads would actually reach. Catches the subtler loss mode
    // where a value survives only on a node the ring no longer names.
    let final_ring = cluster
        .stores
        .iter()
        .map(|s| sim.actor::<StoreNode<u64>>(*s))
        .find(|n| n.gossiper.status().in_ring())
        .map(|n| n.ring().clone())
        .unwrap_or_else(|| cluster.ring.clone());
    for (value, key) in &loader.acked {
        let held = final_ring.preference_list(*key, cfg.dynamo.n).iter().any(|s| {
            sim.actor::<StoreNode<u64>>(cluster.stores[*s as usize])
                .versions(*key)
                .iter()
                .any(|v| v.value == *value)
        });
        if !held {
            report.acked_lost_in_ring += 1;
        }
    }
    report.transfers_unacked = cluster
        .stores
        .iter()
        .map(|s| sim.actor::<StoreNode<u64>>(*s).transfer_count() as u64)
        .sum();

    // Convergence: with the plan healed and anti-entropy settled, every
    // **in-ring** store holding a key agrees with every other holder,
    // and no hinted write is still parked on a stand-in. Departed
    // stores are expected to go stale — anti-entropy stops routing to
    // them the moment the ring forgets them.
    for key in 0..cfg.n_keys {
        let holders: Vec<&StoreNode<u64>> = cluster
            .stores
            .iter()
            .map(|s| sim.actor::<StoreNode<u64>>(*s))
            .filter(|n| n.gossiper.status().in_ring())
            .filter(|n| !n.versions(key).is_empty())
            .collect();
        if let Some(first) = holders.first() {
            let reference = first.versions(key);
            if holders[1..].iter().any(|n| !same_versions(n.versions(key), reference)) {
                report.diverged_keys += 1;
            }
        }
    }
    report.hints_undelivered =
        cluster.stores.iter().map(|s| sim.actor::<StoreNode<u64>>(*s).hint_count() as u64).sum();
    report.messages = sim.metrics().counter("sim.messages_sent");
    sim.export_ledger_metrics();
    report.ledger = sim.ledger().accounting();
    report.spans = sim.spans().clone();
    report.flight = sim.take_flight();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim::chaos::Fault;

    fn base() -> WorkloadConfig {
        WorkloadConfig { puts: 30, ..WorkloadConfig::default() }
    }

    #[test]
    fn calm_run_acks_everything_and_converges() {
        let r = run_workload(&base(), 11);
        assert_eq!(r.acked, 30, "{r:?}");
        assert_eq!(r.acked_lost, 0, "{r:?}");
        assert!(r.converged(), "{r:?}");
    }

    #[test]
    fn partitioned_run_still_acks_and_converges_after_heal() {
        let mut cfg = base();
        cfg.faults = FaultPlan::partition_window(
            SimTime::from_millis(50),
            SimTime::from_millis(400),
            &[NodeId(0), NodeId(1)],
            &[NodeId(2), NodeId(3), NodeId(4)],
        );
        let r = run_workload(&cfg, 12);
        assert_eq!(r.acked, 30, "sloppy quorum keeps accepting writes: {r:?}");
        assert_eq!(r.acked_lost, 0, "{r:?}");
        assert!(r.converged(), "hinted handoff + gossip must reconcile: {r:?}");
    }

    #[test]
    fn crashed_coordinator_is_routed_around() {
        let mut cfg = base();
        cfg.faults = FaultPlan::from_faults(vec![Fault::Crash {
            at: SimTime::from_millis(40),
            node: NodeId(2),
            restart_at: Some(SimTime::from_millis(900)),
        }]);
        let r = run_workload(&cfg, 13);
        assert_eq!(r.acked, 30, "the loader retries through other coordinators: {r:?}");
        assert_eq!(r.acked_lost, 0, "{r:?}");
    }

    #[test]
    fn disabling_gossip_strands_hints_under_partition() {
        // The planted-bug knob the chaos sweep must catch: without
        // anti-entropy, a partition-era hinted write never reaches its
        // preferred store, so replicas stay diverged after the heal.
        let mut cfg = base();
        cfg.dynamo.gossip_interval = None;
        cfg.faults = FaultPlan::partition_window(
            SimTime::from_millis(20),
            SimTime::from_millis(600),
            &[NodeId(0), NodeId(1)],
            &[NodeId(2), NodeId(3), NodeId(4)],
        );
        let r = run_workload(&cfg, 14);
        assert!(!r.converged(), "without gossip the damage must persist: {r:?}");
    }

    #[test]
    fn join_and_leave_mid_run_lose_nothing() {
        // A spare joins while the loader is writing, then a founding
        // member drains out — the acceptance shape of
        // `no-acked-write-lost-across-rebalance` in miniature.
        let mut cfg = base();
        cfg.spares = 1;
        cfg.faults = FaultPlan::from_faults(vec![
            Fault::AddNode { at: SimTime::from_millis(60), node: NodeId(5) },
            Fault::RemoveNode { at: SimTime::from_millis(200), node: NodeId(1) },
        ]);
        let r = run_workload(&cfg, 21);
        assert_eq!(r.acked, 30, "{r:?}");
        assert_eq!(r.acked_lost, 0, "{r:?}");
        assert_eq!(r.acked_lost_in_ring, 0, "acked writes must follow the ring: {r:?}");
        assert_eq!(r.transfers_unacked, 0, "{r:?}");
        assert!(r.converged(), "{r:?}");
        assert_eq!(r.ledger.open(), 0, "every transfer and hint guess settles: {r:?}");
    }

    #[test]
    fn deterministic_reports() {
        let mut cfg = base();
        cfg.faults = sim::chaos::FaultPlan::generate(
            3,
            &sim::chaos::FaultSpec::new((0..5).map(NodeId).collect()),
        );
        let a = run_workload(&cfg, 3);
        let b = run_workload(&cfg, 3);
        assert_eq!(a.messages, b.messages);
        assert_eq!(a.acked, b.acked);
        assert_eq!(a.diverged_keys, b.diverged_keys);
    }
}
