//! # dynamo — an availability-first replicated blob store (§6.1)
//!
//! A from-scratch implementation of the storage substrate the paper uses
//! for its shopping-cart example: "Dynamo is a replicated blob store
//! implemented with a Dynamic Hash Table... interesting in many ways
//! including its conscious choice to support availability over
//! consistency. Dynamo always accepts a PUT to the store even if this
//! may result in an inconsistent GET later on."
//!
//! What's here, all built on the `sim` substrate:
//!
//! - [`ring::Ring`] — consistent hashing with virtual nodes and minimal
//!   remapping on membership change.
//! - [`vclock::VectorClock`] — the causality metadata that distinguishes
//!   ancestors (dropped) from genuine siblings (surfaced).
//! - [`version`] — sibling-set maintenance: no version in a slot ever
//!   dominates another.
//! - [`node::StoreNode`] — replica + coordinator + hint holder + gossip
//!   peer: N/R/W quorums, **sloppy quorum with hinted handoff** (a PUT is
//!   never refused for consistency reasons), read repair, and periodic
//!   anti-entropy.
//! - Live membership: every node embeds a [`membership::Gossiper`] and
//!   routes by a [`membership::HashRing`] derived from the gossiped
//!   view. `CtlJoin`/`CtlLeave` control messages grow and shrink the
//!   ring at runtime; moved key ranges stream to their new owners as
//!   durable-guess-backed transfers (see [`node::StoreNode`]).
//!
//! The store is generic over the blob type `V` and deliberately knows
//! nothing about reconciliation: "the shopping cart application on top of
//! the Dynamo storage system is responsible for the semantics of eventual
//! consistency and commutativity" (§6.4). See the `cart` crate for that
//! application.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod msg;
pub mod node;
pub mod ring;
pub mod vclock;
pub mod version;
pub mod workload;

pub use harness::{
    build_cluster, build_cluster_with_spares, build_crdt_cluster, build_crdt_cluster_with_spares,
    standby_view, Cluster, Probe, ProbeResult,
};
pub use msg::DynamoMsg;
pub use node::{DynamoConfig, GossipMode, StoreNode};
pub use ring::Ring;
pub use vclock::{Causality, StoreId, VectorClock};
pub use version::{merge_version, merge_versions, same_versions, Dot, Versioned};
pub use workload::{run_workload, Loader, WorkloadConfig, WorkloadReport};
