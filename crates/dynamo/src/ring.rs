//! The consistent-hash ring ("Dynamo is a replicated blob store
//! implemented with a Dynamic Hash Table", §6.1).
//!
//! Each physical store owns many virtual nodes on a 64-bit ring; a key's
//! preference list is the first N *distinct* stores found walking
//! clockwise from the key's hash. Virtual nodes smooth the load and make
//! membership changes remap only a sliver of the key space — verified by
//! the `minimal_remap` tests below.

use std::collections::BTreeMap;

use crate::vclock::StoreId;

/// 64-bit FNV-1a followed by a splitmix64 finalizer. FNV alone maps
/// sequential keys onto an arithmetic progression around the ring (its
/// final step is a multiply), which skews arc ownership; the finalizer's
/// xor-shifts break that structure.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    mix64(h)
}

fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Hash a key onto the ring.
pub fn hash_key(key: u64) -> u64 {
    fnv64(&key.to_le_bytes())
}

/// The consistent-hash ring.
#[derive(Debug, Clone)]
pub struct Ring {
    /// ring position → owning store.
    vnodes: BTreeMap<u64, StoreId>,
    vnodes_per_store: usize,
}

impl Ring {
    /// A ring over stores `0..n_stores`, each with `vnodes_per_store`
    /// virtual nodes.
    pub fn new(n_stores: u32, vnodes_per_store: usize) -> Self {
        let mut ring = Ring { vnodes: BTreeMap::new(), vnodes_per_store };
        for s in 0..n_stores {
            ring.add_store(s);
        }
        ring
    }

    /// Add a store's virtual nodes.
    pub fn add_store(&mut self, store: StoreId) {
        for v in 0..self.vnodes_per_store {
            let pos = fnv64(&[&store.to_le_bytes()[..], &v.to_le_bytes()[..]].concat());
            self.vnodes.insert(pos, store);
        }
    }

    /// Remove a store's virtual nodes (decommissioning).
    pub fn remove_store(&mut self, store: StoreId) {
        self.vnodes.retain(|_, s| *s != store);
    }

    /// Number of distinct stores on the ring.
    pub fn store_count(&self) -> usize {
        let mut ids: Vec<StoreId> = self.vnodes.values().copied().collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }

    /// The first `n` distinct stores clockwise from the key's hash — the
    /// key's preference list. If fewer than `n` stores exist, returns
    /// them all.
    pub fn preference_list(&self, key: u64, n: usize) -> Vec<StoreId> {
        let h = hash_key(key);
        let mut out = Vec::with_capacity(n);
        for (_, store) in self.vnodes.range(h..).chain(self.vnodes.range(..h)) {
            if !out.contains(store) {
                out.push(*store);
                if out.len() == n {
                    break;
                }
            }
        }
        out
    }

    /// The coordinator (first preference) for a key.
    pub fn coordinator(&self, key: u64) -> Option<StoreId> {
        self.preference_list(key, 1).first().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preference_list_is_stable_and_distinct() {
        let ring = Ring::new(5, 64);
        for key in 0..200u64 {
            let p = ring.preference_list(key, 3);
            assert_eq!(p.len(), 3);
            let mut q = p.clone();
            q.sort_unstable();
            q.dedup();
            assert_eq!(q.len(), 3, "duplicates in preference list {p:?}");
            assert_eq!(p, ring.preference_list(key, 3));
        }
    }

    #[test]
    fn short_rings_return_everyone() {
        let ring = Ring::new(2, 16);
        assert_eq!(ring.preference_list(42, 5).len(), 2);
    }

    #[test]
    fn load_spreads_across_stores() {
        let ring = Ring::new(4, 128);
        let mut counts = [0usize; 4];
        for key in 0..4000u64 {
            counts[ring.coordinator(key).unwrap() as usize] += 1;
        }
        for c in counts {
            assert!((500..2000).contains(&c), "coordinator load skewed: {counts:?}");
        }
    }

    #[test]
    fn removing_a_store_remaps_only_its_share() {
        let before = Ring::new(5, 128);
        let mut after = before.clone();
        after.remove_store(4);
        let mut moved = 0;
        let mut total = 0;
        for key in 0..2000u64 {
            let b = before.coordinator(key).unwrap();
            let a = after.coordinator(key).unwrap();
            total += 1;
            if b != a {
                moved += 1;
                assert_eq!(b, 4, "only keys owned by the removed store may move");
            }
        }
        // Expect roughly 1/5 of keys to move.
        assert!((total / 10..total / 2).contains(&moved), "moved {moved} of {total}");
    }

    #[test]
    fn adding_a_store_steals_only_from_others() {
        let before = Ring::new(4, 128);
        let mut after = before.clone();
        after.add_store(4);
        let mut moved = 0;
        for key in 0..2000u64 {
            let b = before.coordinator(key).unwrap();
            let a = after.coordinator(key).unwrap();
            if b != a {
                moved += 1;
                assert_eq!(a, 4, "keys may only move to the new store");
            }
        }
        assert!(moved > 100, "the new store must take real load: {moved}");
    }

    #[test]
    fn store_count_tracks_membership() {
        let mut ring = Ring::new(3, 8);
        assert_eq!(ring.store_count(), 3);
        ring.remove_store(1);
        assert_eq!(ring.store_count(), 2);
        ring.add_store(7);
        assert_eq!(ring.store_count(), 3);
    }
}
