//! Cluster construction helpers and a probe client for driving the store
//! from tests and experiment harnesses.
//!
//! Clusters boot from a [`MembershipView`] rather than a fixed store
//! count: `n_stores` members start `Up`, and an optional tail of
//! **spares** is pre-provisioned `Down` at incarnation 0 — standby
//! actors outside the ring that enter only when a
//! [`DynamoMsg::CtlJoin`] arrives (the chaos `AddNode` clause, or
//! `loadgen --join-at` in the wall-clock runtime).

use membership::{boot_view, HashRing, MemberRecord, MemberStatus, MembershipView};
use sim::{Actor, Context, NodeId, Simulation};

use crate::msg::DynamoMsg;
use crate::node::{DynamoConfig, StoreNode};
use crate::version::Versioned;

/// The node ids of a built cluster.
#[derive(Debug, Clone)]
pub struct Cluster {
    /// Store nodes, indexed by store id — ring members first, then any
    /// pre-provisioned spares.
    pub stores: Vec<NodeId>,
    /// The boot-time ring (nodes evolve their own copies via gossip).
    pub ring: HashRing,
    /// The boot-time membership view.
    pub view: MembershipView,
}

/// The standard boot view plus `spares` standby members: stores
/// `0..n_stores` are `Up` at incarnation 1; stores
/// `n_stores..n_stores+spares` are `Down` at incarnation 0, waiting for
/// a `CtlJoin` to begin their first life.
pub fn standby_view(n_stores: u32, spares: u32) -> MembershipView {
    let mut view = boot_view(&(0..n_stores as u64).collect::<Vec<_>>());
    for m in n_stores..n_stores + spares {
        view.observe(
            m,
            MemberRecord { status: MemberStatus::Down, incarnation: 0, node: m as u64, tokens: 0 },
        );
    }
    view
}

/// Add `n_stores` store nodes to a fresh-but-empty simulation. Store `s`
/// gets simulation node id `s`; clients must be added afterwards.
pub fn build_cluster<V: Clone + std::fmt::Debug + 'static>(
    sim: &mut Simulation<DynamoMsg<V>>,
    n_stores: u32,
    cfg: &DynamoConfig,
) -> Cluster {
    build_cluster_with_spares(sim, n_stores, 0, cfg)
}

/// Like [`build_cluster`], plus `spares` standby stores (ids
/// `n_stores..n_stores+spares`) provisioned outside the ring.
pub fn build_cluster_with_spares<V: Clone + std::fmt::Debug + 'static>(
    sim: &mut Simulation<DynamoMsg<V>>,
    n_stores: u32,
    spares: u32,
    cfg: &DynamoConfig,
) -> Cluster {
    let view = standby_view(n_stores, spares);
    let stores: Vec<NodeId> = (0..(n_stores + spares) as usize).map(NodeId).collect();
    for s in 0..n_stores + spares {
        let id = sim.add_node(StoreNode::<V>::new(s, view.clone(), stores.clone(), cfg.clone()));
        debug_assert_eq!(id, stores[s as usize]);
    }
    Cluster { stores, ring: HashRing::from_view(&view, cfg.vnodes as u32), view }
}

/// Like [`build_cluster`], but the stored value is a [`crdt::Crdt`] and
/// every node squashes concurrent siblings server-side (see
/// [`StoreNode::with_sibling_squash`]): GETs return a single joined
/// version instead of a sibling set, and anti-entropy carries squashed
/// slots. Sound because the merge laws (§8) make the join lossless.
pub fn build_crdt_cluster<V: crdt::Crdt + 'static>(
    sim: &mut Simulation<DynamoMsg<V>>,
    n_stores: u32,
    cfg: &DynamoConfig,
) -> Cluster {
    build_crdt_cluster_with_spares(sim, n_stores, 0, cfg)
}

/// Like [`build_crdt_cluster`], plus `spares` standby stores outside the
/// ring.
pub fn build_crdt_cluster_with_spares<V: crdt::Crdt + 'static>(
    sim: &mut Simulation<DynamoMsg<V>>,
    n_stores: u32,
    spares: u32,
    cfg: &DynamoConfig,
) -> Cluster {
    let view = standby_view(n_stores, spares);
    let stores: Vec<NodeId> = (0..(n_stores + spares) as usize).map(NodeId).collect();
    for s in 0..n_stores + spares {
        let node =
            StoreNode::<V>::new(s, view.clone(), stores.clone(), cfg.clone()).with_sibling_squash();
        let id = sim.add_node(node);
        debug_assert_eq!(id, stores[s as usize]);
    }
    Cluster { stores, ring: HashRing::from_view(&view, cfg.vnodes as u32), view }
}

/// What a probe saw come back for one request.
#[derive(Debug, Clone)]
pub enum ProbeResult<V> {
    /// PUT acknowledged.
    PutOk,
    /// PUT failed.
    PutFailed,
    /// GET returned these siblings.
    GetOk(Vec<Versioned<V>>),
    /// GET failed.
    GetFailed,
}

/// A passive client: harnesses inject `ClientPut`/`ClientGet` messages
/// *from* the probe's node id at chosen times and read the correlated
/// responses afterwards.
#[derive(Debug, Default)]
pub struct Probe<V> {
    /// Responses by request id.
    pub results: std::collections::BTreeMap<u64, ProbeResult<V>>,
}

impl<V> Probe<V> {
    /// An empty probe.
    pub fn new() -> Self {
        Probe { results: std::collections::BTreeMap::new() }
    }

    /// The result recorded for a request, if any arrived.
    pub fn result(&self, req: u64) -> Option<&ProbeResult<V>> {
        self.results.get(&req)
    }
}

impl<V: Clone + std::fmt::Debug + 'static> Actor<DynamoMsg<V>> for Probe<V> {
    fn on_message(
        &mut self,
        _ctx: &mut Context<'_, DynamoMsg<V>>,
        _from: NodeId,
        msg: DynamoMsg<V>,
    ) {
        match msg {
            DynamoMsg::PutOk { req } => {
                self.results.insert(req, ProbeResult::PutOk);
            }
            DynamoMsg::PutFailed { req } => {
                self.results.insert(req, ProbeResult::PutFailed);
            }
            DynamoMsg::GetOk { req, versions, .. } => {
                self.results.insert(req, ProbeResult::GetOk(versions));
            }
            DynamoMsg::GetFailed { req } => {
                self.results.insert(req, ProbeResult::GetFailed);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vclock::VectorClock;
    use sim::{SimTime, Simulation};

    type Msg = DynamoMsg<&'static str>;

    #[allow(clippy::too_many_arguments)]
    fn put_at(
        sim: &mut Simulation<Msg>,
        at: SimTime,
        coord: NodeId,
        probe: NodeId,
        req: u64,
        key: u64,
        value: &'static str,
        context: VectorClock,
    ) {
        sim.inject_at(
            at,
            coord,
            probe,
            DynamoMsg::ClientPut { req, key, value, context, resp_to: probe },
        );
    }

    fn get_at(
        sim: &mut Simulation<Msg>,
        at: SimTime,
        coord: NodeId,
        probe: NodeId,
        req: u64,
        key: u64,
    ) {
        sim.inject_at(at, coord, probe, DynamoMsg::ClientGet { req, key, resp_to: probe });
    }

    fn cluster(seed: u64, n: u32) -> (Simulation<Msg>, Cluster, NodeId) {
        let mut sim = Simulation::new(seed);
        let c = build_cluster(&mut sim, n, &DynamoConfig::default());
        let probe = sim.add_node(Probe::<&'static str>::new());
        (sim, c, probe)
    }

    #[test]
    fn put_then_get_round_trips() {
        let (mut sim, c, probe) = cluster(1, 4);
        put_at(
            &mut sim,
            SimTime::from_millis(1),
            c.stores[0],
            probe,
            1,
            42,
            "hello",
            VectorClock::new(),
        );
        get_at(&mut sim, SimTime::from_millis(50), c.stores[1], probe, 2, 42);
        sim.run_until(SimTime::from_millis(100));
        let p: &Probe<&'static str> = sim.actor(probe);
        assert!(matches!(p.result(1), Some(ProbeResult::PutOk)));
        match p.result(2) {
            Some(ProbeResult::GetOk(vs)) => {
                assert_eq!(vs.len(), 1);
                assert_eq!(vs[0].value, "hello");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn concurrent_blind_puts_surface_as_siblings() {
        let (mut sim, c, probe) = cluster(2, 4);
        // Two writers, no shared context, different coordinators.
        put_at(
            &mut sim,
            SimTime::from_millis(1),
            c.stores[0],
            probe,
            1,
            7,
            "from-a",
            VectorClock::new(),
        );
        put_at(
            &mut sim,
            SimTime::from_millis(1),
            c.stores[1],
            probe,
            2,
            7,
            "from-b",
            VectorClock::new(),
        );
        get_at(&mut sim, SimTime::from_millis(80), c.stores[2], probe, 3, 7);
        sim.run_until(SimTime::from_millis(150));
        let p: &Probe<&'static str> = sim.actor(probe);
        match p.result(3) {
            Some(ProbeResult::GetOk(vs)) => {
                assert_eq!(vs.len(), 2, "both concurrent writes must survive: {vs:?}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn contextual_put_supersedes_and_collapses() {
        let (mut sim, c, probe) = cluster(3, 4);
        put_at(
            &mut sim,
            SimTime::from_millis(1),
            c.stores[0],
            probe,
            1,
            7,
            "v1",
            VectorClock::new(),
        );
        get_at(&mut sim, SimTime::from_millis(50), c.stores[0], probe, 2, 7);
        sim.run_until(SimTime::from_millis(100));
        let context = {
            let p: &Probe<&'static str> = sim.actor(probe);
            match p.result(2) {
                Some(ProbeResult::GetOk(vs)) => vs[0].effective_clock(),
                other => panic!("unexpected {other:?}"),
            }
        };
        put_at(&mut sim, SimTime::from_millis(101), c.stores[1], probe, 3, 7, "v2", context);
        get_at(&mut sim, SimTime::from_millis(200), c.stores[2], probe, 4, 7);
        sim.run_until(SimTime::from_millis(300));
        let p: &Probe<&'static str> = sim.actor(probe);
        match p.result(4) {
            Some(ProbeResult::GetOk(vs)) => {
                assert_eq!(vs.len(), 1, "descendant must collapse the ancestor");
                assert_eq!(vs[0].value, "v2");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn puts_survive_partition_via_sloppy_quorum() {
        let (mut sim, c, probe) = cluster(4, 5);
        // Find key 9's preferred stores and partition them all away from
        // the rest; coordinate from a non-preferred store.
        let prefs = c.ring.preference_list(9, 3);
        let pref_nodes: Vec<NodeId> = prefs.iter().map(|s| c.stores[*s as usize]).collect();
        let others: Vec<NodeId> =
            c.stores.iter().copied().filter(|n| !pref_nodes.contains(n)).collect();
        assert!(others.len() >= 2, "need 2 non-preferred stores for W=2");
        let coord = others[0];
        sim.schedule_partition(SimTime::from_millis(0), &pref_nodes, &others);
        put_at(
            &mut sim,
            SimTime::from_millis(10),
            coord,
            probe,
            1,
            9,
            "sloppy",
            VectorClock::new(),
        );
        sim.run_until(SimTime::from_millis(200));
        {
            let p: &Probe<&'static str> = sim.actor(probe);
            assert!(
                matches!(p.result(1), Some(ProbeResult::PutOk)),
                "the PUT must be accepted despite the partition: {:?}",
                p.result(1)
            );
        }
        assert!(sim.metrics().counter("dynamo.hints_stored") > 0);
        // Heal; hinted handoff delivers to the preferred stores.
        sim.schedule_heal(SimTime::from_millis(200));
        sim.run_until(SimTime::from_secs(3));
        let first_pref: &StoreNode<&'static str> = sim.actor(pref_nodes[0]);
        assert!(!first_pref.versions(9).is_empty(), "hinted handoff must deliver after heal");
    }

    #[test]
    fn anti_entropy_converges_all_replicas() {
        let (mut sim, c, probe) = cluster(5, 4);
        for (i, key) in [11u64, 22, 33].iter().enumerate() {
            put_at(
                &mut sim,
                SimTime::from_millis(1 + i as u64),
                c.stores[i % 4],
                probe,
                i as u64,
                *key,
                "x",
                VectorClock::new(),
            );
        }
        sim.run_until(SimTime::from_secs(5));
        // After plenty of gossip, every store that replicates a key has
        // an equivalent sibling set; with full-store push everyone has
        // everything.
        for key in [11u64, 22, 33] {
            let reference =
                sim.actor::<StoreNode<&'static str>>(c.stores[0]).versions(key).to_vec();
            assert!(!reference.is_empty());
            for s in &c.stores[1..] {
                let node: &StoreNode<&'static str> = sim.actor(*s);
                assert!(
                    crate::version::same_versions(node.versions(key), &reference),
                    "store {s} diverged on key {key}"
                );
            }
        }
    }

    #[test]
    fn get_fails_when_r_unreachable_without_sloppy_reads_helping() {
        let mut cfg = DynamoConfig { gossip_interval: None, ..DynamoConfig::default() };
        cfg.r = 2;
        let mut sim: Simulation<Msg> = Simulation::new(6);
        let c = build_cluster(&mut sim, 3, &cfg);
        let probe = sim.add_node(Probe::<&'static str>::new());
        // Isolate the coordinator completely from the other stores.
        let rest: Vec<NodeId> = c.stores[1..].to_vec();
        sim.schedule_partition(SimTime::ZERO, &[c.stores[0]], &rest);
        get_at(&mut sim, SimTime::from_millis(1), c.stores[0], probe, 1, 5);
        sim.run_until(SimTime::from_secs(1));
        let p: &Probe<&'static str> = sim.actor(probe);
        match p.result(1) {
            Some(ProbeResult::GetFailed) => {}
            other => panic!("isolated coordinator cannot reach R=2: {other:?}"),
        }
    }

    #[test]
    fn crdt_cluster_squashes_concurrent_siblings() {
        use crdt::GCounter;
        let mut sim: Simulation<DynamoMsg<GCounter>> = Simulation::new(8);
        let c = build_crdt_cluster(&mut sim, 4, &DynamoConfig::default());
        let probe = sim.add_node(Probe::<GCounter>::new());
        // Two blind writers on different coordinators — with a plain
        // cluster these surface as two siblings; here they squash.
        let mut a = GCounter::new();
        a.inc(1, 5);
        let mut b = GCounter::new();
        b.inc(2, 7);
        for (req, coord, v) in [(1u64, 0usize, a), (2, 1, b)] {
            sim.inject_at(
                SimTime::from_millis(1),
                c.stores[coord],
                probe,
                DynamoMsg::ClientPut {
                    req,
                    key: 7,
                    value: v,
                    context: VectorClock::new(),
                    resp_to: probe,
                },
            );
        }
        sim.inject_at(
            SimTime::from_millis(80),
            c.stores[2],
            probe,
            DynamoMsg::ClientGet { req: 3, key: 7, resp_to: probe },
        );
        sim.run_until(SimTime::from_millis(150));
        let p: &Probe<GCounter> = sim.actor(probe);
        match p.result(3) {
            Some(ProbeResult::GetOk(vs)) => {
                assert_eq!(vs.len(), 1, "siblings must squash into one version: {vs:?}");
                assert_eq!(vs[0].value.value(), 12, "the join keeps both tallies");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(sim.metrics().counter("dynamo.siblings_squashed") > 0);
        // Convergence: after gossip every replica holds one squashed
        // version with the full value.
        sim.run_until(SimTime::from_secs(5));
        for s in &c.stores {
            let node: &StoreNode<GCounter> = sim.actor(*s);
            let vs = node.versions(7);
            assert_eq!(vs.len(), 1, "store {s} still holds siblings: {vs:?}");
            assert_eq!(vs[0].value.value(), 12);
        }
    }

    #[test]
    fn deterministic_with_same_seed() {
        let run = |seed| {
            let (mut sim, c, probe) = cluster(seed, 4);
            for i in 0..10u64 {
                put_at(
                    &mut sim,
                    SimTime::from_millis(i),
                    c.stores[(i % 4) as usize],
                    probe,
                    i,
                    i % 3,
                    "v",
                    VectorClock::new(),
                );
            }
            sim.run_until(SimTime::from_secs(2));
            sim.metrics().counter("sim.messages_sent")
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn spare_joins_and_receives_its_key_range() {
        let mut sim: Simulation<Msg> = Simulation::new(11);
        let c = build_cluster_with_spares(&mut sim, 3, 1, &DynamoConfig::default());
        let spare = c.stores[3];
        let probe = sim.add_node(Probe::<&'static str>::new());
        // Seed data while the spare is a silent standby.
        for (i, key) in (0..20u64).enumerate() {
            put_at(
                &mut sim,
                SimTime::from_millis(1 + i as u64),
                c.stores[(i % 3) as usize],
                probe,
                i as u64,
                key,
                "v",
                VectorClock::new(),
            );
        }
        sim.run_until(SimTime::from_millis(500));
        assert_eq!(sim.actor::<StoreNode<&'static str>>(spare).key_count(), 0, "standby is idle");
        // Join: the spare enters the ring and old owners stream its range.
        sim.inject_at(SimTime::from_millis(500), spare, spare, DynamoMsg::CtlJoin);
        sim.run_until(SimTime::from_secs(4));
        let node: &StoreNode<&'static str> = sim.actor(spare);
        assert_eq!(node.gossiper.status(), MemberStatus::Up, "join settles into Up");
        assert!(node.key_count() > 0, "the joiner must receive its key range");
        assert!(node.ring().contains(3), "the joiner's own ring includes it");
        // Every member converged on a 4-store ring.
        for s in &c.stores {
            let n: &StoreNode<&'static str> = sim.actor(*s);
            assert_eq!(n.ring().len(), 4, "store {s} sees the grown ring");
            assert!(n.ring().contains(3), "store {s} routes around the joiner");
            assert_eq!(n.transfer_count(), 0, "all transfers settled");
        }
        assert!(sim.metrics().counter("dynamo.transfers_completed") > 0);
        assert_eq!(sim.ledger().open_count(), 0, "no transfer guess left open");
    }

    #[test]
    fn graceful_leave_streams_keys_out_before_departing() {
        let mut sim: Simulation<Msg> = Simulation::new(12);
        let c = build_cluster(&mut sim, 4, &DynamoConfig::default());
        let probe = sim.add_node(Probe::<&'static str>::new());
        for (i, key) in (0..20u64).enumerate() {
            put_at(
                &mut sim,
                SimTime::from_millis(1 + i as u64),
                c.stores[(i % 4) as usize],
                probe,
                i as u64,
                key,
                "v",
                VectorClock::new(),
            );
        }
        sim.run_until(SimTime::from_millis(500));
        sim.inject_at(SimTime::from_millis(500), c.stores[2], c.stores[2], DynamoMsg::CtlLeave);
        sim.run_until(SimTime::from_secs(4));
        let leaver: &StoreNode<&'static str> = sim.actor(c.stores[2]);
        assert_eq!(leaver.gossiper.status(), MemberStatus::Down, "drain completes into Down");
        assert!(leaver.gossiper.departed(), "the leave was chosen, not a rumor");
        assert_eq!(leaver.transfer_count(), 0, "every drain batch was acked");
        // Every acked write is still held by a current preference-list
        // member — the acid test of `no-acked-write-lost-across-rebalance`.
        let survivor: &StoreNode<&'static str> = sim.actor(c.stores[0]);
        let ring = survivor.ring().clone();
        assert!(!ring.contains(2), "the ring forgot the leaver");
        for key in 0..20u64 {
            let holders = ring.preference_list(key, 3);
            let held = holders.iter().any(|s| {
                !sim.actor::<StoreNode<&'static str>>(c.stores[*s as usize])
                    .versions(key)
                    .is_empty()
            });
            assert!(held, "key {key} must live on a current owner");
        }
        assert_eq!(sim.ledger().open_count(), 0, "no transfer guess left open");
    }
}
