//! Versioned values with **dotted version vectors** and sibling
//! management.
//!
//! A store slot holds a *set* of versions. Each version carries the
//! causal **context** its writer had seen (a [`VectorClock`]) plus a
//! **dot** — the globally unique event id `(coordinator, counter)` of
//! the write itself. Dominance is judged the DVV way:
//!
//! > version A makes version B redundant iff A *is* B (same dot) or A's
//! > context includes B's dot.
//!
//! Plain vector clocks break on the paper's own availability posture:
//! a client that could not GET (partition) writes with an *empty*
//! context, and a coordinator-local clock either falsely dominates the
//! versions already written there (losing them) or is falsely dominated
//! (losing the new write). The dot separates "what this write has seen"
//! from "what this write is", so blind writes become honest siblings —
//! and the §6.1 contract ("Dynamo always accepts a PUT... items added
//! to the cart will not be lost") actually holds.

use quicksand_core::{WireCodec, WireError};

use crate::vclock::{StoreId, VectorClock};

/// The unique event id of one write: which store coordinated it and its
/// position in that store's monotonic write counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Dot {
    /// Coordinating store.
    pub node: StoreId,
    /// The coordinator's write counter at this write (starts at 1).
    pub counter: u64,
}

/// A value with its causal metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct Versioned<V> {
    /// Everything the writer had seen when it wrote.
    pub context: VectorClock,
    /// The write's own event.
    pub dot: Dot,
    /// The application blob.
    pub value: V,
}

impl<V> Versioned<V> {
    /// Pair a value with its causal context and dot.
    pub fn new(context: VectorClock, dot: Dot, value: V) -> Self {
        Versioned { context, dot, value }
    }

    /// The clock a reader inherits from this version: context plus the
    /// write's own event. Feeding the merge of all siblings' effective
    /// clocks back as the next write's context is what makes that write
    /// supersede them all.
    pub fn effective_clock(&self) -> VectorClock {
        self.context.with_entry(self.dot.node, self.dot.counter)
    }

    /// True if this version makes `other` redundant: same write, or this
    /// writer had already seen `other`'s event.
    pub fn supersedes<U>(&self, other: &Versioned<U>) -> bool {
        self.dot == other.dot || self.context.get(other.dot.node) >= other.dot.counter
    }
}

impl WireCodec for Dot {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.node.encode(buf);
        self.counter.encode(buf);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(Dot { node: StoreId::decode(buf)?, counter: u64::decode(buf)? })
    }
}

impl<V: WireCodec> WireCodec for Versioned<V> {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.context.encode(buf);
        self.dot.encode(buf);
        self.value.encode(buf);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(Versioned {
            context: VectorClock::decode(buf)?,
            dot: Dot::decode(buf)?,
            value: V::decode(buf)?,
        })
    }
}

/// Merge `incoming` into the sibling set `slot`, maintaining the
/// invariant that no version in the set supersedes another. Returns
/// `true` if the set changed.
pub fn merge_version<V: Clone>(slot: &mut Vec<Versioned<V>>, incoming: Versioned<V>) -> bool {
    if slot.iter().any(|existing| existing.supersedes(&incoming)) {
        return false;
    }
    slot.retain(|existing| !incoming.supersedes(existing));
    slot.push(incoming);
    true
}

/// Merge a whole remote sibling set into a local one (anti-entropy /
/// read repair). Returns how many incoming versions were new.
pub fn merge_versions<V: Clone>(slot: &mut Vec<Versioned<V>>, incoming: &[Versioned<V>]) -> usize {
    let mut changed = 0;
    for v in incoming {
        if merge_version(slot, v.clone()) {
            changed += 1;
        }
    }
    changed
}

/// True if the two sibling sets contain exactly the same writes
/// (convergence check for tests and experiments).
pub fn same_versions<V>(a: &[Versioned<V>], b: &[Versioned<V>]) -> bool {
    a.len() == b.len() && a.iter().all(|va| b.iter().any(|vb| va.dot == vb.dot))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dot(node: StoreId, counter: u64) -> Dot {
        Dot { node, counter }
    }

    fn v(context: VectorClock, d: Dot, val: u32) -> Versioned<u32> {
        Versioned::new(context, d, val)
    }

    #[test]
    fn descendant_replaces_ancestor() {
        // Write 1 at node 0; reader saw it, wrote write 2 at node 0.
        let v1 = v(VectorClock::new(), dot(0, 1), 1);
        let ctx = v1.effective_clock();
        let v2 = v(ctx, dot(0, 2), 2);
        let mut slot = vec![v1];
        assert!(merge_version(&mut slot, v2.clone()));
        assert_eq!(slot.len(), 1);
        assert_eq!(slot[0].value, 2);
    }

    #[test]
    fn ancestor_is_absorbed_silently() {
        let v1 = v(VectorClock::new(), dot(0, 1), 1);
        let v2 = v(v1.effective_clock(), dot(0, 2), 2);
        let mut slot = vec![v2];
        assert!(!merge_version(&mut slot, v1));
        assert_eq!(slot.len(), 1);
        assert_eq!(slot[0].value, 2);
    }

    #[test]
    fn duplicate_delivery_is_idempotent() {
        let v1 = v(VectorClock::new(), dot(0, 1), 1);
        let mut slot = vec![v1.clone()];
        assert!(!merge_version(&mut slot, v1));
        assert_eq!(slot.len(), 1);
    }

    #[test]
    fn concurrent_writes_become_siblings() {
        let base = v(VectorClock::new(), dot(0, 1), 0);
        let ctx = base.effective_clock();
        let a = v(ctx.clone(), dot(1, 1), 1);
        let b = v(ctx, dot(2, 1), 2);
        let mut slot = vec![a];
        assert!(merge_version(&mut slot, b));
        assert_eq!(slot.len(), 2, "siblings must coexist");
    }

    #[test]
    fn blind_write_at_a_busy_coordinator_is_a_sibling_not_a_clobber() {
        // The empty-context PUT that plain vector clocks get wrong: node
        // 0 already coordinated five writes; a partition-blinded client
        // writes with an empty context through the same node.
        let seen = v(VectorClock::new().with_entry(0, 4), dot(0, 5), 42);
        let blind = v(VectorClock::new(), dot(0, 6), 7);
        let mut slot = vec![seen.clone()];
        assert!(merge_version(&mut slot, blind.clone()));
        assert_eq!(slot.len(), 2, "neither write may be lost");
        // And in the other merge order too.
        let mut slot = vec![blind];
        assert!(merge_version(&mut slot, seen));
        assert_eq!(slot.len(), 2);
    }

    #[test]
    fn merged_write_collapses_siblings() {
        let a = v(VectorClock::new(), dot(1, 1), 1);
        let b = v(VectorClock::new(), dot(2, 1), 2);
        let mut slot = vec![a.clone(), b.clone()];
        // The application reconciled: context = merge of effective clocks.
        let ctx = a.effective_clock().merged(&b.effective_clock());
        let m = v(ctx, dot(0, 1), 3);
        assert!(merge_version(&mut slot, m));
        assert_eq!(slot.len(), 1);
        assert_eq!(slot[0].value, 3);
    }

    #[test]
    fn merge_versions_counts_novelty_and_is_idempotent() {
        let a = v(VectorClock::new(), dot(1, 1), 1);
        let b = v(VectorClock::new(), dot(2, 1), 2);
        let mut slot = vec![a.clone()];
        let incoming = vec![a, b];
        assert_eq!(merge_versions(&mut slot, &incoming), 1);
        assert_eq!(slot.len(), 2);
        assert_eq!(merge_versions(&mut slot, &incoming), 0);
    }

    #[test]
    fn merge_is_order_insensitive() {
        let a = v(VectorClock::new(), dot(1, 1), 1);
        let b = v(VectorClock::new(), dot(2, 1), 2);
        let c = v(a.effective_clock().merged(&b.effective_clock()), dot(1, 2), 3);
        let versions = [a, b, c];
        // All 6 arrival orders end in the same set.
        let mut reference: Option<Vec<Versioned<u32>>> = None;
        for perm in [[0, 1, 2], [0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0]] {
            let mut slot = Vec::new();
            for i in perm {
                merge_version(&mut slot, versions[i].clone());
            }
            match &reference {
                None => reference = Some(slot),
                Some(r) => assert!(same_versions(&slot, r), "order-dependent merge"),
            }
        }
        assert_eq!(reference.unwrap().len(), 1, "c supersedes both parents");
    }

    #[test]
    fn same_versions_is_order_insensitive() {
        let a = v(VectorClock::new(), dot(1, 1), 1);
        let b = v(VectorClock::new(), dot(2, 1), 2);
        let s1 = vec![a.clone(), b.clone()];
        let s2 = vec![b, a.clone()];
        assert!(same_versions(&s1, &s2));
        assert!(!same_versions(&s1, &[a]));
    }
}
