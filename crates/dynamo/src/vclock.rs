//! Vector clocks: the causality tracking that lets the store *keep*
//! conflicting versions instead of losing one of them.
//!
//! Dynamo "always accepts a PUT to the store even if this may result in
//! an inconsistent GET later on" (§6.1). The price is that a GET may
//! return two or more sibling versions; the vector clock is how the
//! store knows which versions are mere ancestors (safe to drop) and
//! which are genuine siblings (must be surfaced to the application for
//! reconciliation).

use std::collections::BTreeMap;
use std::fmt;

use quicksand_core::{WireCodec, WireError};

/// Identifies a storage node for clock purposes.
pub type StoreId = u32;

/// How two clocks relate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Causality {
    /// Identical clocks.
    Equal,
    /// `self` causally precedes the other (the other has seen all of
    /// `self`'s events and more).
    Before,
    /// `self` causally follows the other.
    After,
    /// Neither dominates: concurrent — genuine siblings.
    Concurrent,
}

/// A vector clock: per-store event counters.
#[derive(Debug, Clone, PartialEq, Eq, Default, Hash)]
pub struct VectorClock {
    entries: BTreeMap<StoreId, u64>,
}

impl VectorClock {
    /// The empty (initial) clock.
    pub fn new() -> Self {
        VectorClock::default()
    }

    /// The counter for one store.
    pub fn get(&self, id: StoreId) -> u64 {
        self.entries.get(&id).copied().unwrap_or(0)
    }

    /// Record one more event at `id`, returning the new clock.
    pub fn incremented(&self, id: StoreId) -> VectorClock {
        let mut c = self.clone();
        *c.entries.entry(id).or_insert(0) += 1;
        c
    }

    /// A copy with `id`'s counter raised to at least `value`. Used by
    /// coordinators that keep a monotonic per-node event counter, so two
    /// writes with the same causal context still get distinct clocks.
    pub fn with_entry(&self, id: StoreId, value: u64) -> VectorClock {
        let mut c = self.clone();
        let e = c.entries.entry(id).or_insert(0);
        *e = (*e).max(value);
        c
    }

    /// Pointwise maximum — the clock of a state that has seen both
    /// histories.
    pub fn merged(&self, other: &VectorClock) -> VectorClock {
        let mut out = self.clone();
        for (id, n) in &other.entries {
            let e = out.entries.entry(*id).or_insert(0);
            *e = (*e).max(*n);
        }
        out
    }

    /// Causal comparison.
    pub fn compare(&self, other: &VectorClock) -> Causality {
        let mut self_ahead = false;
        let mut other_ahead = false;
        for (id, n) in &self.entries {
            match other.get(*id).cmp(n) {
                std::cmp::Ordering::Less => self_ahead = true,
                std::cmp::Ordering::Greater => other_ahead = true,
                std::cmp::Ordering::Equal => {}
            }
        }
        for (id, n) in &other.entries {
            if self.get(*id) < *n {
                other_ahead = true;
            }
        }
        match (self_ahead, other_ahead) {
            (false, false) => Causality::Equal,
            (true, false) => Causality::After,
            (false, true) => Causality::Before,
            (true, true) => Causality::Concurrent,
        }
    }

    /// True if `self` dominates-or-equals `other` (safe to drop `other`).
    pub fn descends(&self, other: &VectorClock) -> bool {
        matches!(self.compare(other), Causality::After | Causality::Equal)
    }

    /// Number of stores that have coordinated writes of this value.
    pub fn width(&self) -> usize {
        self.entries.len()
    }

    /// Total event count (for size-based truncation heuristics).
    pub fn total(&self) -> u64 {
        self.entries.values().sum()
    }
}

/// The vector clock is itself a join-semilattice — pointwise max — and
/// so satisfies the ACID 2.0 merge laws. The property tests certify this
/// through [`crdt::check_merge_laws`], the same harness the CRDT crate
/// runs over its own types.
impl crdt::Crdt for VectorClock {
    fn merge(&mut self, other: &Self) {
        *self = self.merged(other);
    }

    fn wire_size(&self) -> usize {
        self.entries.len() * 12 // 4-byte store id + 8-byte counter
    }
}

/// Wire form: the entry map verbatim. Private fields keep the codec in
/// this module; the runtime's TCP transport is the consumer.
impl WireCodec for VectorClock {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.entries.encode(buf);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(VectorClock { entries: BTreeMap::decode(buf)? })
    }
}

impl fmt::Display for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, (id, n)) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "s{id}:{n}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_clocks_are_equal() {
        assert_eq!(VectorClock::new().compare(&VectorClock::new()), Causality::Equal);
    }

    #[test]
    fn increment_makes_a_strict_descendant() {
        let a = VectorClock::new();
        let b = a.incremented(1);
        assert_eq!(b.compare(&a), Causality::After);
        assert_eq!(a.compare(&b), Causality::Before);
        assert!(b.descends(&a));
        assert!(!a.descends(&b));
    }

    #[test]
    fn divergent_increments_are_concurrent() {
        let base = VectorClock::new().incremented(0);
        let a = base.incremented(1);
        let b = base.incremented(2);
        assert_eq!(a.compare(&b), Causality::Concurrent);
        assert_eq!(b.compare(&a), Causality::Concurrent);
        assert!(!a.descends(&b) && !b.descends(&a));
    }

    #[test]
    fn merge_dominates_both_parents() {
        let base = VectorClock::new().incremented(0);
        let a = base.incremented(1);
        let b = base.incremented(2);
        let m = a.merged(&b);
        assert!(m.descends(&a));
        assert!(m.descends(&b));
        // ... and a post-merge write strictly descends.
        let w = m.incremented(0);
        assert_eq!(w.compare(&a), Causality::After);
    }

    #[test]
    fn merge_is_commutative_and_idempotent() {
        let a = VectorClock::new().incremented(1).incremented(1).incremented(2);
        let b = VectorClock::new().incremented(2).incremented(3);
        assert_eq!(a.merged(&b), b.merged(&a));
        assert_eq!(a.merged(&a), a);
    }

    #[test]
    fn equal_after_same_events() {
        let a = VectorClock::new().incremented(1).incremented(2);
        let b = VectorClock::new().incremented(1).incremented(2);
        assert_eq!(a.compare(&b), Causality::Equal);
        assert!(a.descends(&b) && b.descends(&a));
    }

    #[test]
    fn width_and_total_count_events() {
        let c = VectorClock::new().incremented(1).incremented(1).incremented(5);
        assert_eq!(c.width(), 2);
        assert_eq!(c.total(), 3);
        assert_eq!(c.get(1), 2);
        assert_eq!(c.get(5), 1);
        assert_eq!(c.get(9), 0);
    }

    #[test]
    fn display_is_compact() {
        let c = VectorClock::new().incremented(2).incremented(7);
        assert_eq!(c.to_string(), "[s2:1,s7:1]");
    }
}
