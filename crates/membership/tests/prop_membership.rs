//! Property tests for the membership control plane: ring determinism,
//! bounded disruption on join, merge-law certification over random
//! views, and the down-verdict lifecycle.

use crdt::{check_merge_laws, Crdt};
use membership::{HashRing, MemberRecord, MemberStatus, MembershipView};
use proptest::prelude::*;

fn status_from(rank: u8) -> MemberStatus {
    match rank % 4 {
        0 => MemberStatus::Joining,
        1 => MemberStatus::Up,
        2 => MemberStatus::Leaving,
        _ => MemberStatus::Down,
    }
}

/// A view sampled from `(member, rank, incarnation)` triples.
fn view_of(entries: &[(u8, u8, u8)]) -> MembershipView {
    let mut v = MembershipView::new();
    for &(m, rank, inc) in entries {
        let m = (m % 8) as u32;
        v.observe(
            m,
            MemberRecord {
                status: status_from(rank),
                incarnation: 1 + (inc % 4) as u64,
                node: m as u64,
                tokens: 0,
            },
        );
    }
    v
}

proptest! {
    /// Token assignment is deterministic: the ring (and every
    /// preference list) is a pure function of the member set, however
    /// that set was assembled.
    #[test]
    fn ring_tokens_deterministic(
        members in prop::collection::vec(0u32..32, 2..10),
        keys in prop::collection::vec(proptest::arbitrary::any::<u64>(), 1..20),
    ) {
        let mut uniq = members.clone();
        uniq.sort_unstable();
        uniq.dedup();
        prop_assume!(uniq.len() >= 2);
        let mut forward = HashRing::empty(32);
        for &m in &uniq {
            forward.add_member(m, 0);
        }
        let mut backward = HashRing::empty(32);
        for &m in uniq.iter().rev() {
            backward.add_member(m, 0);
        }
        prop_assert_eq!(&forward, &backward);
        prop_assert_eq!(forward.version(), backward.version());
        for &k in &keys {
            prop_assert_eq!(forward.preference_list(k, 3), backward.preference_list(k, 3));
        }
    }

    /// Bounded disruption: joining the (n+1)-th member moves at most
    /// ⌈keys/n⌉ + slack primary assignments. Slack covers virtual-node
    /// hash variance (the expectation is keys/(n+1)).
    #[test]
    fn join_moves_at_most_its_share(n in 3u32..9, joiner in 100u32..200) {
        let keys: u64 = 2000;
        let before = HashRing::new(n, 64);
        let mut after = before.clone();
        after.add_member(joiner, 0);
        let moved = (0..keys)
            .filter(|k| before.coordinator(*k) != after.coordinator(*k))
            .count() as u64;
        let bound = keys.div_ceil(n as u64);
        let slack = bound / 2 + 50;
        prop_assert!(
            moved <= bound + slack,
            "join of 1 into {n} moved {moved} of {keys} keys (bound {bound} + slack {slack})"
        );
        // And every moved key moved *to* the joiner: nobody else's
        // ownership reshuffles.
        for k in 0..keys {
            if before.coordinator(k) != after.coordinator(k) {
                prop_assert_eq!(after.coordinator(k), Some(joiner));
            }
        }
    }

    /// The view merge satisfies the ACID 2.0 lattice laws over random
    /// sample sets (the certification the tentpole promises).
    #[test]
    fn view_merge_laws(
        a in prop::collection::vec((0u8..8, 0u8..4, 0u8..4), 0..10),
        b in prop::collection::vec((0u8..8, 0u8..4, 0u8..4), 0..10),
        c in prop::collection::vec((0u8..8, 0u8..4, 0u8..4), 0..10),
    ) {
        let samples = vec![MembershipView::new(), view_of(&a), view_of(&b), view_of(&c)];
        if let Err(e) = check_merge_laws(&samples) {
            prop_assert!(false, "{e}");
        }
    }

    /// Remove + re-add with a bumped incarnation never resurrects a
    /// `down` verdict: once the member reincarnates, no replay of
    /// old-incarnation records (in any order) can take it down again.
    #[test]
    fn bumped_incarnation_buries_the_down_verdict(
        stale in prop::collection::vec((0u8..4, 0u8..2), 0..12),
        ranks in prop::collection::vec(0u8..4, 0..6),
    ) {
        let member = 3u32;
        let mut v = MembershipView::new();
        v.observe(
            member,
            MemberRecord { status: MemberStatus::Up, incarnation: 1, node: 3, tokens: 0 },
        );
        // The verdict: suspicion declares the member dead at inc 1.
        v.suspect(member);
        prop_assert_eq!(v.get(member).unwrap().status, MemberStatus::Down);
        // The member re-adds itself with a bumped incarnation.
        let new_inc = v.reincarnate(member, MemberStatus::Joining);
        prop_assert!(new_inc > 1);
        // Arbitrary stale gossip about the old life (any rank, any
        // incarnation ≤ 1), replayed in any order...
        for &(rank, inc) in &stale {
            let mut frag = MembershipView::new();
            frag.observe(
                member,
                MemberRecord {
                    status: status_from(rank),
                    incarnation: (inc % 2) as u64, // 0 or 1 — all stale
                    node: 3,
                    tokens: 0,
                },
            );
            v.merge(&frag);
            prop_assert!(v.get(member).unwrap().incarnation >= new_inc);
            prop_assert!(v.get(member).unwrap().status != MemberStatus::Down);
        }
        // ...and legitimate in-incarnation advances still work.
        for &rank in &ranks {
            let s = status_from(rank);
            if s.rank() > v.get(member).unwrap().status.rank() && s != MemberStatus::Down {
                v.advance(member, s);
            }
        }
        prop_assert!(v.get(member).unwrap().status != MemberStatus::Down);
    }
}
