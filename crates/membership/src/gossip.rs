//! The gossip protocol engine: periodic view exchange, suspicion, and
//! incarnation-bumped refutation.
//!
//! [`Gossiper`] is deliberately embeddable — it owns the view and the
//! protocol decisions but performs no I/O, so a data-plane actor (see
//! `dynamo::StoreNode`) can drive it from its own timers and sends.
//! [`GossipActor`] wraps it as a standalone [`sim::Actor`] for
//! deterministic protocol tests: the same suspicion timeouts and
//! refutation moves, exercised under partitions with nothing else in
//! the way.

use std::collections::BTreeMap;

use rand::Rng;
use sim::{Actor, Context, NodeId, SimDuration};

use crate::view::{MemberId, MemberRecord, MemberStatus, MembershipView};

/// One gossip frame: the sender's full view (views are small — tens of
/// members — so delta optimization is not worth the protocol surface).
#[derive(Debug, Clone)]
pub struct ViewMsg(pub MembershipView);

/// Protocol knobs.
#[derive(Debug, Clone, Copy)]
pub struct GossipConfig {
    /// How often to exchange views with one random peer.
    pub interval: SimDuration,
    /// Gossip rounds of silence before a peer is declared `Down`
    /// (`0` disables suspicion — membership changes then come only from
    /// explicit joins and leaves).
    pub suspicion_ticks: u32,
}

impl Default for GossipConfig {
    fn default() -> Self {
        GossipConfig { interval: SimDuration::from_millis(100), suspicion_ticks: 0 }
    }
}

/// What one [`Gossiper::absorb`] did.
#[derive(Debug, Clone, Copy, Default)]
pub struct Absorbed {
    /// The local view changed (ring version moved).
    pub changed: bool,
    /// The remote view had us dead or draining; we bumped our
    /// incarnation to outbid the rumor.
    pub refuted: bool,
    /// We hold records the sender lacks — reply with our view so the
    /// exchange converges in one round trip.
    pub sender_stale: bool,
}

/// The embeddable membership engine: a view plus the suspicion and
/// refutation rules.
#[derive(Debug, Clone)]
pub struct Gossiper {
    me: MemberId,
    /// The local membership view (the CRDT).
    pub view: MembershipView,
    suspicion_ticks: u32,
    /// Gossip rounds since each in-ring peer was last heard from.
    silence: BTreeMap<MemberId, u32>,
    /// True while this member has *chosen* to be out (never joined, or
    /// gracefully departed) — a `Down` record is then ours, not a rumor,
    /// and must not be refuted.
    departed: bool,
    /// True while this member has *chosen* to drain (`Leaving`): its
    /// out-of-ring status is then deliberate and must not be refuted
    /// back to `Up`, only defended against premature `Down` rumors.
    draining: bool,
}

impl Gossiper {
    /// An engine for `me` over `view`. A member whose own record starts
    /// `Down` (a pre-provisioned standby) is treated as departed until
    /// [`Gossiper::join`].
    pub fn new(me: MemberId, view: MembershipView, suspicion_ticks: u32) -> Self {
        let departed = view.get(me).is_none_or(|r| r.status == MemberStatus::Down);
        let draining = view.get(me).is_some_and(|r| r.status == MemberStatus::Leaving);
        Gossiper { me, view, suspicion_ticks, silence: BTreeMap::new(), departed, draining }
    }

    /// This member's id.
    pub fn me(&self) -> MemberId {
        self.me
    }

    /// Our own current status (`Down` if the view has lost us).
    pub fn status(&self) -> MemberStatus {
        self.view.get(self.me).map_or(MemberStatus::Down, |r| r.status)
    }

    /// Whether this member has chosen to be out of the cluster.
    pub fn departed(&self) -> bool {
        self.departed
    }

    /// Begin (or re-begin) a life in the cluster: bump the incarnation
    /// past everything the view has seen and enter as `Joining`.
    /// Returns the new incarnation. No-op if already in the ring.
    pub fn join(&mut self) -> u64 {
        if self.status().in_ring() {
            return self.view.get(self.me).map_or(0, |r| r.incarnation);
        }
        self.departed = false;
        self.draining = false;
        self.silence.clear();
        self.view.reincarnate(self.me, MemberStatus::Joining)
    }

    /// Settle from `Joining` into `Up` (no-op otherwise).
    pub fn promote(&mut self) -> bool {
        self.status() == MemberStatus::Joining && self.view.advance(self.me, MemberStatus::Up)
    }

    /// Start a graceful drain: mark ourselves `Leaving`. The data plane
    /// streams our keys out, then calls [`Gossiper::depart`].
    pub fn leave(&mut self) -> bool {
        let left = self.view.advance(self.me, MemberStatus::Leaving);
        self.draining |= left;
        left
    }

    /// Complete the drain: mark ourselves `Down`, by choice.
    pub fn depart(&mut self) -> bool {
        self.departed = true;
        self.draining = false;
        self.view.advance(self.me, MemberStatus::Down)
    }

    /// The peers we gossip with: in-ring members other than ourselves,
    /// as `(member, engine node)`.
    pub fn peers(&self) -> Vec<(MemberId, u64)> {
        self.view
            .ring_members()
            .filter(|(m, _)| *m != self.me)
            .map(|(m, rec)| (m, rec.node))
            .collect()
    }

    /// Everyone we may *send* gossip to: every known member but
    /// ourselves, whatever its status. Crucially wider than
    /// [`Gossiper::peers`]: a member we hold `Down` must still hear the
    /// rumor of its death, or it can never refute it — two halves of a
    /// healed partition that suspected each other would otherwise stay
    /// split forever. A truly dead node just drops the frame.
    pub fn gossip_targets(&self) -> Vec<(MemberId, u64)> {
        self.view.members().filter(|(m, _)| *m != self.me).map(|(m, rec)| (m, rec.node)).collect()
    }

    /// Note life from `peer` (any message counts as gossip liveness).
    pub fn heard_from(&mut self, peer: MemberId) {
        self.silence.insert(peer, 0);
    }

    /// The member living on engine node `node`, if any.
    pub fn member_on(&self, node: u64) -> Option<MemberId> {
        self.view.members().find(|(_, rec)| rec.node == node).map(|(m, _)| m)
    }

    /// One gossip round: age every in-ring peer's silence counter and
    /// declare the ones past the threshold `Down` at their current
    /// incarnation. Returns the members newly suspected this round.
    pub fn tick(&mut self) -> Vec<MemberId> {
        if self.suspicion_ticks == 0 || !self.status().in_ring() {
            return Vec::new();
        }
        let peers: Vec<MemberId> = self.peers().into_iter().map(|(m, _)| m).collect();
        let mut suspected = Vec::new();
        for m in peers {
            let c = self.silence.entry(m).or_insert(0);
            *c += 1;
            if *c > self.suspicion_ticks && self.view.suspect(m) {
                suspected.push(m);
            }
        }
        suspected
    }

    /// Merge a received view and apply the refutation rule: if the
    /// merged view says we are `Down` (or `Leaving`) while we have not
    /// chosen to be, outbid the rumor with a fresh incarnation. A member
    /// mid-drain defends its *chosen* `Leaving` against premature `Down`
    /// rumors but never bounces itself back to `Up` — an early version
    /// did exactly that, and every graceful leave that overlapped one
    /// gossip frame silently un-left.
    pub fn absorb(&mut self, remote: &MembershipView) -> Absorbed {
        let before = self.view.ring_version();
        crdt::Crdt::merge(&mut self.view, remote);
        let mut out = Absorbed::default();
        if self.draining {
            if self.status() == MemberStatus::Down {
                self.view.reincarnate(self.me, MemberStatus::Leaving);
                out.refuted = true;
            }
        } else if !self.departed && !self.status().in_ring() {
            self.view.reincarnate(self.me, MemberStatus::Up);
            out.refuted = true;
        }
        out.changed = self.view.ring_version() != before;
        out.sender_stale = self.view != *remote;
        out
    }
}

/// A membership view over members `0..n`, all `Up` at incarnation 1,
/// member `m` living on engine node `nodes[m]`. The standard boot view
/// for a fixed starting cluster.
pub fn boot_view(nodes: &[u64]) -> MembershipView {
    let mut view = MembershipView::new();
    for (m, &node) in nodes.iter().enumerate() {
        view.observe(
            m as MemberId,
            MemberRecord { status: MemberStatus::Up, incarnation: 1, node, tokens: 0 },
        );
    }
    view
}

const TAG_GOSSIP: u64 = 1;

/// A standalone gossip node: the [`Gossiper`] on a timer, speaking
/// [`ViewMsg`] over the normal actor `send` path. Volatile state is the
/// timer only — the view itself is this actor's durable matter and
/// survives a crash (the node resumes its old incarnation; if the
/// cluster declared it dead meanwhile, refutation bumps it on the first
/// exchange).
#[derive(Debug)]
pub struct GossipActor {
    /// The protocol engine (public for harness inspection).
    pub gossiper: Gossiper,
    cfg: GossipConfig,
}

impl GossipActor {
    /// A gossip node for `me` starting from `view`.
    pub fn new(me: MemberId, view: MembershipView, cfg: GossipConfig) -> Self {
        GossipActor { gossiper: Gossiper::new(me, view, cfg.suspicion_ticks), cfg }
    }

    fn publish(&self, ctx: &mut Context<'_, ViewMsg>) {
        let v = self.gossiper.view.ring_version();
        ctx.metrics().set_gauge("membership.ring_version", v as f64);
    }
}

impl Actor<ViewMsg> for GossipActor {
    fn on_start(&mut self, ctx: &mut Context<'_, ViewMsg>) {
        ctx.set_timer(self.cfg.interval, TAG_GOSSIP);
        self.publish(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, ViewMsg>, tag: u64) {
        if tag != TAG_GOSSIP {
            return;
        }
        for m in self.gossiper.tick() {
            ctx.metrics().inc("membership.suspicions");
            let _ = m;
        }
        self.gossiper.promote();
        let targets = self.gossiper.gossip_targets();
        if !targets.is_empty() {
            let (_, node) = targets[ctx.rng().gen_range(0..targets.len())];
            ctx.send(NodeId(node as usize), ViewMsg(self.gossiper.view.clone()));
        }
        self.publish(ctx);
        ctx.set_timer(self.cfg.interval, TAG_GOSSIP);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, ViewMsg>, from: NodeId, msg: ViewMsg) {
        if let Some(peer) = self.gossiper.member_on(from.0 as u64) {
            self.gossiper.heard_from(peer);
        }
        let outcome = self.gossiper.absorb(&msg.0);
        if outcome.refuted {
            ctx.metrics().inc("membership.refutations");
        }
        if outcome.sender_stale {
            ctx.send(from, ViewMsg(self.gossiper.view.clone()));
        }
        self.publish(ctx);
    }

    fn on_restart(&mut self, ctx: &mut Context<'_, ViewMsg>) {
        ctx.set_timer(self.cfg.interval, TAG_GOSSIP);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim::{SimTime, Simulation};

    fn cluster(n: usize, cfg: GossipConfig) -> (Simulation<ViewMsg>, Vec<NodeId>) {
        let mut sim = Simulation::new(42);
        let view = boot_view(&(0..n as u64).collect::<Vec<_>>());
        let ids: Vec<NodeId> = (0..n)
            .map(|m| sim.add_node(GossipActor::new(m as MemberId, view.clone(), cfg)))
            .collect();
        (sim, ids)
    }

    fn status_of(sim: &mut Simulation<ViewMsg>, holder: NodeId, member: MemberId) -> MemberStatus {
        sim.actor::<GossipActor>(holder).gossiper.view.get(member).unwrap().status
    }

    #[test]
    fn suspicion_declares_a_partitioned_peer_down_and_refutation_revives_it() {
        let cfg = GossipConfig { interval: SimDuration::from_millis(50), suspicion_ticks: 4 };
        let (mut sim, ids) = cluster(4, cfg);
        // Isolate n3 from everyone for long enough to trip suspicion.
        sim.schedule_partition(SimTime::from_millis(100), &ids[..3], &ids[3..]);
        sim.schedule_heal_groups(SimTime::from_secs(2), &ids[..3], &ids[3..]);
        sim.run_until(SimTime::from_millis(1_900));
        assert_eq!(status_of(&mut sim, ids[0], 3), MemberStatus::Down, "suspicion verdict");
        let old_inc = sim.actor::<GossipActor>(ids[0]).gossiper.view.get(3).unwrap().incarnation;
        // After the heal, n3 hears the rumor of its death and refutes it.
        sim.run_until(SimTime::from_secs(4));
        for &id in &ids {
            let rec = sim.actor::<GossipActor>(id).gossiper.view.get(3).unwrap().clone();
            assert_eq!(rec.status, MemberStatus::Up, "holder {id:?}");
            assert!(rec.incarnation > old_inc, "refutation must bump the incarnation");
        }
    }

    /// Regression: a member that chose `Leaving` must not treat its own
    /// out-of-ring status as a rumor. The original refutation rule
    /// bounced any non-in-ring self back to `Up`, so a graceful leave
    /// that overlapped a single incoming gossip frame un-left itself
    /// with a bumped incarnation that outbid the drain everywhere.
    #[test]
    fn a_draining_member_defends_leaving_without_bouncing_back_up() {
        let view = boot_view(&[0, 1, 2]);
        let mut g = Gossiper::new(2, view.clone(), 0);
        assert!(g.leave());
        // A peer's stale view that still has us `Up` merges away (our
        // Leaving outranks it at the same incarnation) — no refutation.
        let out = g.absorb(&view);
        assert!(!out.refuted, "choosing to leave is not a rumor to refute");
        assert_eq!(g.status(), MemberStatus::Leaving);
        // A rumor of our *death* mid-drain is outbid — back to Leaving,
        // never to Up: the drain continues, the eviction does not stick.
        let mut death = g.view.clone();
        assert!(death.suspect(2));
        let out = g.absorb(&death);
        assert!(out.refuted);
        assert_eq!(g.status(), MemberStatus::Leaving);
        // Completing the drain still works and stays chosen.
        assert!(g.depart());
        let snapshot = g.view.clone();
        assert!(!g.absorb(&snapshot).refuted, "a departed member never refutes");
        assert_eq!(g.status(), MemberStatus::Down);
    }

    #[test]
    fn views_converge_without_faults() {
        let cfg = GossipConfig { interval: SimDuration::from_millis(50), suspicion_ticks: 0 };
        let (mut sim, ids) = cluster(5, cfg);
        sim.run_until(SimTime::from_secs(2));
        let v0 = sim.actor::<GossipActor>(ids[0]).gossiper.view.clone();
        for &id in &ids[1..] {
            assert_eq!(sim.actor::<GossipActor>(id).gossiper.view, v0);
        }
    }
}
