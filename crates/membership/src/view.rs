//! The membership view: a per-member LWW map that is a join-semilattice.
//!
//! Every member's record carries an **incarnation** (bumped only by the
//! member itself) and a **status** whose rank is monotone *within* an
//! incarnation: `Joining < Up < Leaving < Down`. Merge keeps, per
//! member, the record with the larger `(incarnation, rank)` — a total
//! order, so the join is trivially commutative, associative, and
//! idempotent. The consequences are exactly the protocol rules:
//!
//! - within one incarnation a member only moves *forward* (a `Down`
//!   verdict cannot be talked back down to `Up` by stale gossip);
//! - refuting a false `Down` (or rejoining after a real one) requires
//!   the member to bump its incarnation, which outbids every record of
//!   the previous life.

use std::collections::BTreeMap;

use quicksand_core::wire::{WireCodec, WireError};

/// A member's stable identity (the data plane's store id).
pub type MemberId = u32;

/// Where a member stands in its current incarnation. Rank order is
/// `Joining < Up < Leaving < Down`; within an incarnation a status only
/// advances.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MemberStatus {
    /// Announced itself; receiving its key range but not yet settled.
    Joining,
    /// A full ring member.
    Up,
    /// Draining: streaming owned keys out before going down.
    Leaving,
    /// Out of the ring — gracefully departed, or declared dead by
    /// suspicion. Only an incarnation bump revives the member.
    Down,
}

impl MemberStatus {
    /// Monotone in-incarnation rank.
    pub fn rank(self) -> u8 {
        match self {
            MemberStatus::Joining => 0,
            MemberStatus::Up => 1,
            MemberStatus::Leaving => 2,
            MemberStatus::Down => 3,
        }
    }

    /// Whether a member with this status owns ring tokens. `Leaving`
    /// members are already out: the drain protocol transfers their keys
    /// to the owners the shrunken ring names.
    pub fn in_ring(self) -> bool {
        matches!(self, MemberStatus::Joining | MemberStatus::Up)
    }

    fn from_rank(rank: u8) -> Result<Self, WireError> {
        Ok(match rank {
            0 => MemberStatus::Joining,
            1 => MemberStatus::Up,
            2 => MemberStatus::Leaving,
            3 => MemberStatus::Down,
            other => return Err(WireError::BadTag(other)),
        })
    }

    /// Stable label for metrics and rendering.
    pub fn label(self) -> &'static str {
        match self {
            MemberStatus::Joining => "joining",
            MemberStatus::Up => "up",
            MemberStatus::Leaving => "leaving",
            MemberStatus::Down => "down",
        }
    }
}

impl std::fmt::Display for MemberStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One member's record in the view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemberRecord {
    /// Current status (see [`MemberStatus`] for the lattice rules).
    pub status: MemberStatus,
    /// The member's self-asserted lifetime counter. Bumped only by the
    /// member itself: on (re)join and on refuting a false `Down`.
    pub incarnation: u64,
    /// The engine node the member lives on (`sim::NodeId` as `u64`, the
    /// same widening `DynamoMsg` uses on the wire).
    pub node: u64,
    /// Virtual-node tokens this member contributes to the ring
    /// (`0` means "use the ring's default").
    pub tokens: u32,
}

impl MemberRecord {
    /// The LWW key: records compare by `(incarnation, rank)` first;
    /// `tokens` and `node` only break (pathological) ties so the order
    /// is total and the merge deterministic.
    fn lww_key(&self) -> (u64, u8, u32, u64) {
        (self.incarnation, self.status.rank(), self.tokens, self.node)
    }
}

/// The membership view CRDT: member id → newest [`MemberRecord`].
///
/// [`crdt::Crdt::merge`] keeps, per member, the record with the larger
/// LWW key; absent members are unioned in. `check_merge_laws` certifies
/// the lattice laws over concrete samples in this crate's tests.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MembershipView {
    members: BTreeMap<MemberId, MemberRecord>,
}

impl MembershipView {
    /// The empty view.
    pub fn new() -> Self {
        MembershipView::default()
    }

    /// Record `member` (merging against any existing record).
    pub fn observe(&mut self, member: MemberId, record: MemberRecord) {
        match self.members.get_mut(&member) {
            Some(existing) => {
                if record.lww_key() > existing.lww_key() {
                    *existing = record;
                }
            }
            None => {
                self.members.insert(member, record);
            }
        }
    }

    /// The current record for `member`.
    pub fn get(&self, member: MemberId) -> Option<&MemberRecord> {
        self.members.get(&member)
    }

    /// Every member, in id order.
    pub fn members(&self) -> impl Iterator<Item = (MemberId, &MemberRecord)> {
        self.members.iter().map(|(id, rec)| (*id, rec))
    }

    /// Members the ring should currently contain (status `in_ring`).
    pub fn ring_members(&self) -> impl Iterator<Item = (MemberId, &MemberRecord)> {
        self.members().filter(|(_, rec)| rec.status.in_ring())
    }

    /// Number of known members (any status).
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the view knows no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Advance `member`'s status *within its current incarnation*.
    /// Ignored (returns `false`) if the move would lower the rank or the
    /// member is unknown — within one life a member only moves forward.
    pub fn advance(&mut self, member: MemberId, status: MemberStatus) -> bool {
        match self.members.get_mut(&member) {
            Some(rec) if status.rank() > rec.status.rank() => {
                rec.status = status;
                true
            }
            _ => false,
        }
    }

    /// Begin a new incarnation for `member`: bump past every record the
    /// view has seen and enter it as `status` (typically `Joining` for a
    /// rejoin, `Up` for a refutation). Returns the new incarnation.
    pub fn reincarnate(&mut self, member: MemberId, status: MemberStatus) -> u64 {
        let rec = self.members.get_mut(&member).expect("reincarnate requires a known member");
        rec.incarnation += 1;
        rec.status = status;
        rec.incarnation
    }

    /// Declare `member` dead at its current incarnation (a suspicion
    /// verdict). Returns `false` when already `Down` or unknown.
    pub fn suspect(&mut self, member: MemberId) -> bool {
        self.advance(member, MemberStatus::Down)
    }

    /// A single-member view fragment — the delta a mutation gossips.
    pub fn delta_of(&self, member: MemberId) -> MembershipView {
        let mut v = MembershipView::new();
        if let Some(rec) = self.members.get(&member) {
            v.members.insert(member, rec.clone());
        }
        v
    }

    /// A deterministic digest of the whole view: any membership change —
    /// status, incarnation, tokens — changes it. Exposed as the
    /// `membership.ring_version` gauge.
    pub fn ring_version(&self) -> u64 {
        let mut bytes = Vec::with_capacity(self.members.len() * 21);
        for (id, rec) in &self.members {
            bytes.extend_from_slice(&id.to_le_bytes());
            bytes.extend_from_slice(&rec.incarnation.to_le_bytes());
            bytes.push(rec.status.rank());
            bytes.extend_from_slice(&rec.tokens.to_le_bytes());
        }
        crate::ring::hash_key(&bytes)
    }
}

impl crdt::Crdt for MembershipView {
    fn merge(&mut self, other: &Self) {
        for (id, rec) in &other.members {
            self.observe(*id, rec.clone());
        }
    }

    fn wire_size(&self) -> usize {
        8 + self.members.len() * 25
    }
}

impl crdt::DeltaCrdt for MembershipView {
    type Delta = MembershipView;

    fn apply_delta(&mut self, delta: &Self::Delta) {
        crdt::Crdt::merge(self, delta);
    }
}

impl WireCodec for MembershipView {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.members.len() as u32).encode(buf);
        for (id, rec) in &self.members {
            id.encode(buf);
            rec.status.rank().encode(buf);
            rec.incarnation.encode(buf);
            rec.node.encode(buf);
            rec.tokens.encode(buf);
        }
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        let n = u32::decode(buf)?;
        let mut view = MembershipView::new();
        for _ in 0..n {
            let id = MemberId::decode(buf)?;
            let status = MemberStatus::from_rank(u8::decode(buf)?)?;
            let incarnation = u64::decode(buf)?;
            let node = u64::decode(buf)?;
            let tokens = u32::decode(buf)?;
            view.members.insert(id, MemberRecord { status, incarnation, node, tokens });
        }
        Ok(view)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crdt::{check_merge_laws, Crdt};

    fn rec(status: MemberStatus, incarnation: u64) -> MemberRecord {
        MemberRecord { status, incarnation, node: 7, tokens: 0 }
    }

    fn sample_views() -> Vec<MembershipView> {
        let mut a = MembershipView::new();
        a.observe(0, rec(MemberStatus::Up, 1));
        a.observe(1, rec(MemberStatus::Joining, 1));
        let mut b = MembershipView::new();
        b.observe(0, rec(MemberStatus::Down, 1));
        b.observe(2, rec(MemberStatus::Up, 3));
        let mut c = a.clone();
        c.observe(0, rec(MemberStatus::Up, 2)); // refutation of b's verdict
        c.observe(1, rec(MemberStatus::Leaving, 1));
        let mut d = MembershipView::new();
        d.observe(2, rec(MemberStatus::Leaving, 2)); // stale incarnation
        vec![MembershipView::new(), a, b, c, d]
    }

    #[test]
    fn merge_laws_hold() {
        check_merge_laws(&sample_views()).unwrap();
    }

    #[test]
    fn within_incarnation_rank_wins_across_incarnations_incarnation_wins() {
        let mut v = MembershipView::new();
        v.observe(0, rec(MemberStatus::Up, 1));
        // Same incarnation: Down outranks Up.
        let mut down = MembershipView::new();
        down.observe(0, rec(MemberStatus::Down, 1));
        v.merge(&down);
        assert_eq!(v.get(0).unwrap().status, MemberStatus::Down);
        // Stale gossip of the old Up cannot resurrect it.
        let mut stale = MembershipView::new();
        stale.observe(0, rec(MemberStatus::Up, 1));
        v.merge(&stale);
        assert_eq!(v.get(0).unwrap().status, MemberStatus::Down);
        // A bumped incarnation outbids the verdict.
        let mut refuted = MembershipView::new();
        refuted.observe(0, rec(MemberStatus::Up, 2));
        v.merge(&refuted);
        assert_eq!(v.get(0).unwrap().status, MemberStatus::Up);
        assert_eq!(v.get(0).unwrap().incarnation, 2);
    }

    #[test]
    fn advance_is_monotone_and_reincarnate_bumps() {
        let mut v = MembershipView::new();
        v.observe(3, rec(MemberStatus::Up, 1));
        assert!(!v.advance(3, MemberStatus::Joining), "rank cannot go backwards");
        assert!(v.advance(3, MemberStatus::Leaving));
        assert!(v.suspect(3));
        assert_eq!(v.get(3).unwrap().status, MemberStatus::Down);
        let inc = v.reincarnate(3, MemberStatus::Joining);
        assert_eq!(inc, 2);
        assert_eq!(v.get(3).unwrap().status, MemberStatus::Joining);
    }

    #[test]
    fn ring_version_tracks_any_change() {
        let mut v = MembershipView::new();
        v.observe(0, rec(MemberStatus::Up, 1));
        let v0 = v.ring_version();
        v.observe(1, rec(MemberStatus::Up, 1));
        let v1 = v.ring_version();
        assert_ne!(v0, v1);
        v.advance(1, MemberStatus::Down);
        let v2 = v.ring_version();
        assert_ne!(v1, v2);
        // The digest is a pure function of the state.
        assert_eq!(v.ring_version(), v2);
    }

    #[test]
    fn wire_round_trip() {
        use quicksand_core::wire::{from_bytes, to_bytes};
        for v in sample_views() {
            let got: MembershipView = from_bytes(&to_bytes(&v)).unwrap();
            assert_eq!(got, v);
        }
    }
}
