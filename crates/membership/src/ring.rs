//! Consistent hashing with virtual-node tokens, driven by the view.
//!
//! Same construction as Dynamo's DHT: each member hashes to `vnodes`
//! positions on a `u64` ring, a key is owned by the first `n` distinct
//! members clockwise from its hash. Virtual nodes smooth the load and —
//! the property the resize protocol leans on — bound the disruption of
//! a membership change: adding or removing one member of `n` moves
//! about `1/n` of the key space and leaves every other key's owner set
//! untouched. The token positions are a pure function of `(member id,
//! vnode index)`, so every replica that agrees on the member set agrees
//! on the whole ring without exchanging tokens.

use std::collections::BTreeMap;

use crate::view::{MemberId, MembershipView};

/// FNV-1a over `key`, finished with a 64-bit avalanche mix. The FNV
/// prime walks the bytes cheaply; the finalizer (splitmix64's) spreads
/// consecutive ids across the whole ring instead of clustering them.
pub fn hash_key(key: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    mix64(h)
}

fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

fn token_position(member: MemberId, vnode: u32) -> u64 {
    let mut bytes = [0u8; 8];
    bytes[..4].copy_from_slice(&member.to_le_bytes());
    bytes[4..].copy_from_slice(&vnode.to_le_bytes());
    hash_key(&bytes)
}

/// The consistent-hash ring: token position → owning member.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HashRing {
    tokens: BTreeMap<u64, MemberId>,
    vnodes_per_member: u32,
    members: u32,
}

impl HashRing {
    /// A ring over members `0..n_members`, each with `vnodes` tokens
    /// (the fixed-cluster constructor the harnesses start from).
    pub fn new(n_members: u32, vnodes: u32) -> Self {
        let mut ring = HashRing::empty(vnodes);
        for m in 0..n_members {
            ring.add_member(m, 0);
        }
        ring
    }

    /// A ring with no members yet.
    pub fn empty(vnodes: u32) -> Self {
        HashRing { tokens: BTreeMap::new(), vnodes_per_member: vnodes.max(1), members: 0 }
    }

    /// The ring `view` currently prescribes: every member whose status
    /// is in-ring, with its record's token count (`0` → `vnodes`).
    pub fn from_view(view: &MembershipView, vnodes: u32) -> Self {
        let mut ring = HashRing::empty(vnodes);
        for (id, rec) in view.ring_members() {
            ring.add_member(id, rec.tokens);
        }
        ring
    }

    /// Add `member` with `tokens` virtual nodes (`0` → the default).
    /// Idempotent: re-adding re-inserts the same positions.
    pub fn add_member(&mut self, member: MemberId, tokens: u32) {
        let tokens = if tokens == 0 { self.vnodes_per_member } else { tokens };
        for v in 0..tokens {
            self.tokens.entry(token_position(member, v)).or_insert(member);
        }
        self.recount();
    }

    /// Remove every token `member` holds.
    pub fn remove_member(&mut self, member: MemberId) {
        self.tokens.retain(|_, m| *m != member);
        self.recount();
    }

    fn recount(&mut self) {
        let mut seen: Vec<MemberId> = self.tokens.values().copied().collect();
        seen.sort_unstable();
        seen.dedup();
        self.members = seen.len() as u32;
    }

    /// Number of distinct members on the ring.
    pub fn len(&self) -> usize {
        self.members as usize
    }

    /// Whether the ring holds no members.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Whether `member` holds any token.
    pub fn contains(&self, member: MemberId) -> bool {
        self.tokens.values().any(|&m| m == member)
    }

    /// The first `n` **distinct** members clockwise from `key`'s hash —
    /// the key's owner set (coordinator first).
    pub fn preference_list(&self, key: u64, n: usize) -> Vec<MemberId> {
        let h = hash_key(&key.to_le_bytes());
        let mut out = Vec::with_capacity(n.min(self.members as usize));
        for (_, &m) in self.tokens.range(h..).chain(self.tokens.range(..h)) {
            if !out.contains(&m) {
                out.push(m);
                if out.len() == n {
                    break;
                }
            }
        }
        out
    }

    /// The key's primary owner.
    pub fn coordinator(&self, key: u64) -> Option<MemberId> {
        self.preference_list(key, 1).first().copied()
    }

    /// A digest of the token map: changes iff the ring's shape changes.
    pub fn version(&self) -> u64 {
        let mut bytes = Vec::with_capacity(self.tokens.len() * 12);
        for (pos, m) in &self.tokens {
            bytes.extend_from_slice(&pos.to_le_bytes());
            bytes.extend_from_slice(&m.to_le_bytes());
        }
        hash_key(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::{MemberRecord, MemberStatus};

    #[test]
    fn preference_list_is_distinct_and_sized() {
        let ring = HashRing::new(5, 64);
        for key in 0..200u64 {
            let prefs = ring.preference_list(key, 3);
            assert_eq!(prefs.len(), 3);
            let mut d = prefs.clone();
            d.sort_unstable();
            d.dedup();
            assert_eq!(d.len(), 3, "duplicates in {prefs:?}");
        }
    }

    #[test]
    fn ring_is_a_pure_function_of_the_member_set() {
        let a = HashRing::new(6, 32);
        let mut b = HashRing::empty(32);
        for m in (0..6).rev() {
            b.add_member(m, 0);
        }
        assert_eq!(a, b, "insertion order is irrelevant");
        assert_eq!(a.version(), b.version());
    }

    #[test]
    fn from_view_excludes_down_and_leaving_members() {
        let mut view = MembershipView::new();
        for m in 0..4u32 {
            view.observe(
                m,
                MemberRecord {
                    status: MemberStatus::Up,
                    incarnation: 1,
                    node: m as u64,
                    tokens: 0,
                },
            );
        }
        view.advance(2, MemberStatus::Leaving);
        view.suspect(3);
        let ring = HashRing::from_view(&view, 16);
        assert_eq!(ring.len(), 2);
        assert!(ring.contains(0) && ring.contains(1));
        assert!(!ring.contains(2) && !ring.contains(3));
    }

    #[test]
    fn join_moves_a_bounded_slice_of_keys() {
        let before = HashRing::new(5, 64);
        let mut after = before.clone();
        after.add_member(5, 0);
        let keys = 4000u64;
        let moved =
            (0..keys).filter(|k| before.coordinator(*k) != after.coordinator(*k)).count() as u64;
        // Expected ≈ keys/6; allow 2× slack for hash variance.
        assert!(moved <= keys / 3, "{moved} of {keys} primaries moved");
        assert!(moved > 0, "a join must move something");
    }

    #[test]
    fn remove_only_moves_the_removed_members_keys() {
        let before = HashRing::new(6, 64);
        let mut after = before.clone();
        after.remove_member(2);
        for k in 0..2000u64 {
            let b = before.coordinator(k).unwrap();
            if b != 2 {
                assert_eq!(after.coordinator(k), Some(b), "key {k} moved needlessly");
            } else {
                assert_ne!(after.coordinator(k), Some(2));
            }
        }
    }
}
