//! # membership — gossip-based cluster membership (ROADMAP item 2)
//!
//! *Building on Quicksand* treats "the shifting sands of
//! non-deterministic asynchrony" as the ground truth a system stands on:
//! machines do not just crash and restart, they arrive and leave. This
//! crate is the control plane that lets the rest of the workspace cope
//! with that — the membership view itself is a join-semilattice, so the
//! ACID 2.0 discipline (§8) that protects the data plane protects the
//! node list too:
//!
//! - [`MembershipView`] — a per-member last-writer-wins map keyed by
//!   `(incarnation, status rank)`. Merge is the lattice join, certified
//!   by `crdt::check_merge_laws`; any gossip schedule that eventually
//!   delivers everything converges every replica to the same view.
//! - [`HashRing`] — consistent hashing with virtual-node tokens, built
//!   from whichever members the view currently places in the ring.
//!   Joins and leaves move a bounded slice of the key space (≈ 1/n),
//!   never reshuffle it.
//! - [`Gossiper`] — the embeddable protocol engine: periodic view
//!   exchange over the normal actor `send` path, suspicion via
//!   missed-gossip timeouts, and incarnation-bumped refutation (a node
//!   declared down by rumor outbids the rumor by incrementing its own
//!   incarnation — SWIM's trick, expressed as a lattice move).
//! - [`GossipActor`] — a standalone [`sim::Actor`] speaking
//!   [`ViewMsg`], for deterministic protocol tests and as the reference
//!   for embedding the [`Gossiper`] in a data-plane actor (see
//!   `dynamo::StoreNode`).
//!
//! Rebalance transfers themselves live with the data planes that own
//! the data; this crate only decides *who owns what*. The §5
//! guess/apology contract still applies: every transfer a data plane
//! streams on a ring change is booked as a durable ledger guess and
//! settled on ack, so a crash mid-rebalance produces an apology, never
//! silent loss.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gossip;
pub mod ring;
pub mod view;

pub use gossip::{boot_view, GossipActor, GossipConfig, Gossiper, ViewMsg};
pub use ring::{hash_key, HashRing};
pub use view::{MemberId, MemberRecord, MemberStatus, MembershipView};
