//! Property tests: across arbitrary crash timings and shipping
//! intervals, resurrection never loses acknowledged work and never
//! double-applies it; sync shipping never loses anything even when
//! discarded.

use logship::{run, LogshipConfig, RecoveryPolicy, ShipMode};
use proptest::prelude::*;
use sim::{SimDuration, SimTime};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn resurrection_is_lossless_and_exactly_once(
        seed in 0u64..1000,
        crash_ms in 20u64..500,
        ship_ms in 1u64..200,
        restart_delay in 200u64..4000,
    ) {
        let cfg = LogshipConfig {
            mode: ShipMode::Asynchronous,
            ship_interval: SimDuration::from_millis(ship_ms),
            mean_interarrival: SimDuration::from_millis(2),
            crash_primary_at: Some(SimTime::from_millis(crash_ms)),
            restart_primary_at: Some(SimTime::from_millis(crash_ms + restart_delay)),
            recovery: RecoveryPolicy::Resurrect,
            horizon: SimTime::from_secs(90),
            ..LogshipConfig::default()
        };
        let r = run(&cfg, seed);
        prop_assert_eq!(r.lost_acked, 0, "{:?}", r);
        prop_assert_eq!(r.duplicate_applications, 0, "{:?}", r);
        prop_assert_eq!(r.acked, 200, "{:?}", r);
    }

    #[test]
    fn sync_shipping_is_transparent_for_any_crash_time(
        seed in 0u64..1000,
        crash_ms in 20u64..500,
    ) {
        let cfg = LogshipConfig {
            mode: ShipMode::Synchronous,
            mean_interarrival: SimDuration::from_millis(2),
            crash_primary_at: Some(SimTime::from_millis(crash_ms)),
            recovery: RecoveryPolicy::Discard,
            horizon: SimTime::from_secs(90),
            ..LogshipConfig::default()
        };
        let r = run(&cfg, seed);
        prop_assert_eq!(r.lost_acked, 0, "{:?}", r);
    }
}
