//! The database node: primary, backup, and recovered-primary behaviour.
//!
//! One actor type plays all three roles because that is what happens in
//! deployment: the backup *becomes* the primary on takeover, and the old
//! primary comes back as neither — just a WAL with a tail nobody has
//! seen (§4.2). Durability is modelled honestly: the WAL is an
//! [`eventlog`] segment partition fsynced at every append — the §4.1
//! "ack nothing before the WAL append" discipline — so it survives a
//! crash in full (`on_crash` wipes only volatile state), which is
//! precisely why the stuck tail can be resurrected at all.

use std::collections::HashMap;

use eventlog::{MemKind, MemStorage, Partition, RecoveryReport};
use quicksand_core::op::{OpLog, Operation};
use quicksand_core::wire::{from_bytes, to_bytes, Framed};
use sim::{Actor, Context, NodeId, SimDuration, SimTime, SpanId};

use crate::msg::ShipMsg;
use crate::types::{Lsn, RecoveryPolicy, ShipMode, ShipOp, WalRecord};

/// Rotation threshold for the WAL's backing segments.
const WAL_SEGMENT_BYTES: u64 = 64 * 1024;

/// Timer tag: ship accumulated WAL records to the backup.
const TAG_SHIP: u64 = 1;

/// Database roles over a node's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DbRole {
    /// Serving commits and shipping its log.
    Primary,
    /// Replaying the shipped log; promotable.
    Backup,
    /// A failed primary after restart: not serving; may resurrect its
    /// tail.
    Recovered,
}

/// A database node in the log-shipping deployment.
#[derive(Debug)]
pub struct DbNode {
    role: DbRole,
    mode: ShipMode,
    peer: NodeId,
    clients: Vec<NodeId>,
    ship_interval: SimDuration,
    recovery: RecoveryPolicy,
    dedup: bool,

    // --- durable state (survives crashes) ---
    /// The write-ahead log: an event-log partition, fsynced per append
    /// so every record is durable before any ack escapes.
    wal: Partition<MemStorage>,

    // --- volatile state ---
    /// Applied operations (uniquifier-deduped memory).
    log: OpLog<ShipOp>,
    /// Number of times an operation's business impact was applied more
    /// than once (only possible when `dedup` is off).
    duplicate_applications: u64,
    /// Next LSN to assign (primary) / applied through (backup).
    next_lsn: Lsn,
    /// Highest own-WAL LSN the backup has acknowledged.
    acked_upto: Option<Lsn>,
    /// Sync mode: commit acks parked until the backup confirms.
    pending_acks: HashMap<Lsn, (NodeId, quicksand_core::uniquifier::Uniquifier)>,
    /// `logship.ship` spans open per in-flight batch.
    ship_spans: HashMap<u64, SpanId>,
    /// Async mode: acked-but-unshipped commits — each ack is a guess,
    /// outstanding until the backup confirms its LSN.
    guesses: Vec<(Lsn, SpanId)>,
    next_batch_id: u64,
    /// LSN applied from the *peer's* WAL (backup side).
    applied_from_peer: Lsn,
}

impl DbNode {
    /// Build a node. `peer` is the other datacenter; `clients` are
    /// notified on takeover.
    pub fn new(
        role: DbRole,
        mode: ShipMode,
        peer: NodeId,
        clients: Vec<NodeId>,
        ship_interval: SimDuration,
        recovery: RecoveryPolicy,
        dedup: bool,
    ) -> Self {
        let wal =
            Partition::open(&mut MemKind, "wal", WAL_SEGMENT_BYTES, &mut RecoveryReport::default());
        DbNode {
            role,
            mode,
            peer,
            clients,
            ship_interval,
            recovery,
            dedup,
            wal,
            log: OpLog::new(),
            duplicate_applications: 0,
            next_lsn: 0,
            acked_upto: None,
            pending_acks: HashMap::new(),
            ship_spans: HashMap::new(),
            guesses: Vec::new(),
            next_batch_id: 0,
            applied_from_peer: 0,
        }
    }

    /// Current role.
    pub fn role(&self) -> DbRole {
        self.role
    }

    /// The node's applied-operation memory.
    pub fn log(&self) -> &OpLog<ShipOp> {
        &self.log
    }

    /// The durable WAL, decoded from its segment frames (for shipping
    /// and post-run stuck-tail accounting).
    pub fn wal(&self) -> Vec<WalRecord> {
        self.wal
            .all_records()
            .iter()
            .filter_map(|r| from_bytes::<WalRecord>(&r.payload).ok())
            .collect()
    }

    /// Append one record to the WAL and make it durable immediately:
    /// log shipping acks nothing whose WAL frame is not on disk, so
    /// every append rides its own bus.
    fn wal_push(&mut self, rec: WalRecord) {
        self.wal.append(&mut MemKind, Some(rec.id), to_bytes(&rec));
        self.wal.fsync();
    }

    /// Async acks whose shipping confirmation has not arrived, as
    /// (lsn, guess span) — for harness-level final settlement when the
    /// peer died and stayed down.
    pub fn open_guesses(&self) -> &[(Lsn, SpanId)] {
        &self.guesses
    }

    /// Operations applied more than once (dedup-off ablation).
    pub fn duplicate_applications(&self) -> u64 {
        self.duplicate_applications
    }

    /// Apply one operation's business impact, honouring (or not) the
    /// uniquifier dedup.
    fn apply_op(&mut self, op: ShipOp) -> bool {
        if self.dedup {
            self.log.record(op)
        } else {
            // Ablation: apply unconditionally; count the damage.
            if self.log.contains(op.id()) {
                self.duplicate_applications += 1;
                // Model the duplicated business impact by re-applying
                // onto a shadow id so materialization double-counts.
                let mut dup = op;
                dup.id = quicksand_core::uniquifier::Uniquifier::derived_from_fields(&[
                    b"dup",
                    &dup.id.as_raw().to_le_bytes(),
                    &self.duplicate_applications.to_le_bytes(),
                ]);
                self.log.record(dup);
                false
            } else {
                self.log.record(op)
            }
        }
    }

    fn ship_now(&mut self, ctx: &mut Context<'_, ShipMsg>) {
        let from = match self.acked_upto {
            Some(l) => l + 1,
            None => 0,
        };
        let recs: Vec<WalRecord> = self.wal().into_iter().filter(|r| r.lsn >= from).collect();
        if recs.is_empty() {
            return;
        }
        let batch_id = self.next_batch_id;
        self.next_batch_id += 1;
        ctx.metrics().inc("logship.batches");
        // The ship span covers WAL-read → backup replay → ack.
        let span = ctx.child_span(ctx.current_span(), "logship.ship");
        ctx.span_field(span, "records", recs.len());
        self.ship_spans.insert(batch_id, span);
        ctx.set_current_span(Some(span));
        ctx.send(self.peer, ShipMsg::ShipBatch { batch_id, recs });
        ctx.set_current_span(None);
    }

    fn handle_commit(&mut self, ctx: &mut Context<'_, ShipMsg>, op: ShipOp, resp_to: NodeId) {
        if self.role == DbRole::Recovered {
            return; // not serving
        }
        let id = op.id();
        if self.log.contains(id) {
            // Retry of applied work: collapse. Under sync mode the
            // original ack may still be pending; re-ack only when safe.
            let still_pending = self.pending_acks.values().any(|(_, i)| *i == id);
            if !still_pending {
                ctx.send(resp_to, ShipMsg::CommitAck { id });
            }
            return;
        }
        let lsn = self.next_lsn;
        self.next_lsn += 1;
        // WAL append is the durability point: it precedes any ack.
        self.wal_push(Framed::new(lsn, op.clone()));
        self.apply_op(op);
        match self.mode {
            ShipMode::Asynchronous => {
                // Ack before the backup has the record: a guess that this
                // datacenter survives until the next ship (§4.2's window).
                let g = ctx.begin_guess_basis("logship.commit_ack", "local WAL, tail unshipped");
                self.guesses.push((lsn, g));
                ctx.send(resp_to, ShipMsg::CommitAck { id });
            }
            ShipMode::Synchronous => {
                self.pending_acks.insert(lsn, (resp_to, id));
                self.ship_now(ctx);
            }
        }
    }
}

impl Actor<ShipMsg> for DbNode {
    fn on_start(&mut self, ctx: &mut Context<'_, ShipMsg>) {
        if self.role == DbRole::Primary {
            ctx.set_timer(self.ship_interval, TAG_SHIP);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, ShipMsg>, tag: u64) {
        if tag == TAG_SHIP && self.role == DbRole::Primary {
            self.ship_now(ctx);
            ctx.set_timer(self.ship_interval, TAG_SHIP);
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_, ShipMsg>, from: NodeId, msg: ShipMsg) {
        match msg {
            ShipMsg::CommitReq { op, resp_to } => self.handle_commit(ctx, op, resp_to),

            ShipMsg::ShipBatch { batch_id, recs } => {
                // Backup: replay, constantly playing catch-up (§4.1).
                let mut upto = self.applied_from_peer.saturating_sub(1);
                for rec in recs {
                    if rec.lsn >= self.applied_from_peer {
                        self.applied_from_peer = rec.lsn + 1;
                        // The backup's own WAL mirrors the primary's.
                        self.wal_push(rec.clone());
                        self.next_lsn = self.next_lsn.max(rec.lsn + 1);
                        self.apply_op(rec.body);
                    }
                    upto = upto.max(rec.lsn);
                }
                ctx.send(from, ShipMsg::ShipAck { batch_id, upto });
            }
            ShipMsg::ShipAck { batch_id, upto } => {
                if let Some(span) = self.ship_spans.remove(&batch_id) {
                    ctx.finish_span(span);
                }
                self.acked_upto = Some(self.acked_upto.map_or(upto, |a| a.max(upto)));
                // Every async ack at or below the watermark: confirmed.
                let mut still = Vec::new();
                for (lsn, g) in std::mem::take(&mut self.guesses) {
                    if lsn <= upto {
                        ctx.resolve_guess(g, true);
                    } else {
                        still.push((lsn, g));
                    }
                }
                self.guesses = still;
                if self.mode == ShipMode::Synchronous {
                    // Sorted so the ack order is deterministic (HashMap
                    // iteration order is not).
                    let mut ready: Vec<Lsn> =
                        self.pending_acks.keys().copied().filter(|l| *l <= upto).collect();
                    ready.sort_unstable();
                    for lsn in ready {
                        if let Some((resp_to, id)) = self.pending_acks.remove(&lsn) {
                            ctx.send(resp_to, ShipMsg::CommitAck { id });
                        }
                    }
                }
            }

            ShipMsg::TakeOver => {
                if self.role == DbRole::Backup {
                    self.role = DbRole::Primary;
                    ctx.metrics().inc("logship.takeovers");
                    // The new primary has no backup: it serves commits in
                    // local-durability mode regardless of the old mode.
                    self.mode = ShipMode::Asynchronous;
                    for c in self.clients.clone() {
                        ctx.send(c, ShipMsg::RedirectNotice);
                    }
                }
            }

            ShipMsg::ResurrectTail { recs } => {
                // New primary absorbing a recovered node's stuck tail.
                for rec in recs {
                    if self.apply_op(rec.body.clone()) {
                        ctx.metrics().inc("logship.resurrected");
                        let lsn = self.next_lsn;
                        self.next_lsn += 1;
                        self.wal_push(Framed::new(lsn, rec.body));
                    }
                }
            }

            ShipMsg::CommitAck { .. } | ShipMsg::RedirectNotice => {}
        }
    }

    fn on_crash(&mut self, _now: SimTime) {
        // The WAL is on disk — every frame was fsynced at append, so
        // the partition's durable watermark covers it all and a crash
        // costs nothing there. Everything else dies with the process.
        debug_assert_eq!(self.wal.durable_next(), self.wal.next_offset());
        self.log = OpLog::new();
        self.pending_acks.clear();
        self.ship_spans.clear();
        self.guesses.clear();
        self.acked_upto = None;
        self.applied_from_peer = 0;
        self.duplicate_applications = 0;
    }

    fn on_restart(&mut self, ctx: &mut Context<'_, ShipMsg>) {
        // Local recovery: replay the durable WAL.
        self.role = DbRole::Recovered;
        let recs = self.wal();
        self.next_lsn = recs.last().map_or(0, |r| r.lsn + 1);
        for rec in &recs {
            self.apply_op(rec.body.clone());
        }
        ctx.metrics().inc("logship.recoveries");
        if self.recovery == RecoveryPolicy::Resurrect {
            // "The goal of any recovery policy would be to examine the
            // work in the tail of the log and determine what the heck to
            // do" — we ship the whole WAL; uniquifiers collapse what the
            // backup already saw.
            ctx.send(self.peer, ShipMsg::ResurrectTail { recs });
        }
    }
}
