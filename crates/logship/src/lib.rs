//! # logship — classic log shipping (§4 of *Building on Quicksand*)
//!
//! "A classic database system has a process that reads the log and ships
//! it to a backup data-center. The normal implementation commits
//! transactions at the primary system (acknowledging the user's commit
//! request) and asynchronously ships the log." (§4.1)
//!
//! This crate implements that system honestly enough to expose every
//! behaviour the paper builds its argument on:
//!
//! - **The latency trade**: [`ShipMode::Synchronous`] stalls each commit
//!   for the WAN round trip; [`ShipMode::Asynchronous`] acks at local
//!   durability. (E4 sweeps the WAN latency and ship interval.)
//! - **The window**: under async shipping, a primary crash strands
//!   acknowledged work in the primary's durable WAL — "stuck in the
//!   primary... the backup will move ahead without knowledge of the
//!   locked up work" (§4.2).
//! - **Recovery policies**: [`RecoveryPolicy::Discard`] ("the pending
//!   work is simply discarded", §5.1) versus
//!   [`RecoveryPolicy::Resurrect`], which replays the tail into the new
//!   primary — safe *only because* the shipped operations are uniquified
//!   and commutative, the paper's core prescription. The `dedup: false`
//!   ablation shows the double-application damage without uniquifiers.
//!
//! ```
//! use logship::{run, LogshipConfig};
//!
//! let report = run(&LogshipConfig::default(), 7);
//! assert_eq!(report.lost_acked, 0); // no failure injected, nothing lost
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod db;
pub mod harness;
pub mod msg;
pub mod types;

pub use client::ShipClient;
pub use db::{DbNode, DbRole};
pub use harness::{build, layout, run, Layout};
pub use msg::ShipMsg;
pub use types::{
    Balances, LogshipConfig, LogshipReport, Lsn, RecoveryPolicy, ShipMode, ShipOp, WalRecord,
};
