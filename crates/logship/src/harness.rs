//! Builds the two-datacenter deployment, injects the failover, and
//! extracts the report.
//!
//! Layout: clients `0..n_clients`, primary `n_clients`, backup
//! `n_clients + 1`. The client↔database links run at LAN latency; the
//! primary↔backup link is the WAN.

use sim::{LinkConfig, Network, NodeId, Simulation};

use crate::client::ShipClient;
use crate::db::{DbNode, DbRole};
use crate::msg::ShipMsg;
use crate::types::{LogshipConfig, LogshipReport};

/// Node ids for a deployment under `cfg`.
#[derive(Debug, Clone)]
pub struct Layout {
    /// Client nodes.
    pub clients: Vec<NodeId>,
    /// The primary database.
    pub primary: NodeId,
    /// The backup database.
    pub backup: NodeId,
}

/// Compute the node layout.
pub fn layout(cfg: &LogshipConfig) -> Layout {
    Layout {
        clients: (0..cfg.n_clients).map(NodeId).collect(),
        primary: NodeId(cfg.n_clients),
        backup: NodeId(cfg.n_clients + 1),
    }
}

/// Build the deployment into a fresh simulation.
pub fn build(cfg: &LogshipConfig, seed: u64) -> (Simulation<ShipMsg>, Layout) {
    let lay = layout(cfg);
    let mut net = Network::new(LinkConfig::reliable(cfg.client_latency));
    net.set_link(lay.primary, lay.backup, LinkConfig::reliable(cfg.wan_one_way));
    let mut sim = Simulation::with_network(seed, net);

    for i in 0..cfg.n_clients {
        let id = sim.add_node(ShipClient::new(
            i as u32,
            lay.primary,
            lay.backup,
            cfg.ops_per_client,
            cfg.mean_interarrival,
            cfg.retry_timeout,
        ));
        debug_assert_eq!(id, lay.clients[i]);
    }
    let id = sim.add_node(DbNode::new(
        DbRole::Primary,
        cfg.mode,
        lay.backup,
        lay.clients.clone(),
        cfg.ship_interval,
        cfg.recovery,
        cfg.dedup,
    ));
    debug_assert_eq!(id, lay.primary);
    let id = sim.add_node(DbNode::new(
        DbRole::Backup,
        cfg.mode,
        lay.primary,
        lay.clients.clone(),
        cfg.ship_interval,
        cfg.recovery,
        cfg.dedup,
    ));
    debug_assert_eq!(id, lay.backup);

    if let Some(at) = cfg.crash_primary_at {
        sim.schedule_crash(at, lay.primary);
        sim.inject_at(at + cfg.takeover_delay, lay.backup, lay.backup, ShipMsg::TakeOver);
        if let Some(restart) = cfg.restart_primary_at {
            sim.schedule_restart(restart, lay.primary);
        }
    }
    cfg.faults.apply(&mut sim);
    // A planned crash of the primary triggers the same takeover protocol
    // the legacy knob drives: promote the backup shortly after. (TakeOver
    // is a no-op unless the receiver is still in the Backup role, so
    // repeated clauses are safe.)
    for f in &cfg.faults.faults {
        if let sim::chaos::Fault::Crash { at, node, .. } = f {
            if *node == lay.primary {
                sim.inject_at(*at + cfg.takeover_delay, lay.backup, lay.backup, ShipMsg::TakeOver);
            }
        }
    }
    (sim, lay)
}

/// True when `cfg` fails the primary at any point — via the legacy knob
/// or a fault-plan clause — which makes the backup the final authority.
pub fn primary_fails(cfg: &LogshipConfig) -> bool {
    cfg.crash_primary_at.is_some()
        || cfg.faults.faults.iter().any(
            |f| matches!(f, sim::chaos::Fault::Crash { node, .. } if *node == layout(cfg).primary),
        )
}

/// Run the configured scenario and report.
pub fn run(cfg: &LogshipConfig, seed: u64) -> LogshipReport {
    let (mut sim, lay) = build(cfg, seed);
    if cfg.flight {
        sim.enable_flight(1 << 16);
    }
    sim.run_until(cfg.horizon);

    let mut report = LogshipReport { sim_seconds: sim.now().as_secs_f64(), ..Default::default() };

    // Who is the authority at the end of the run?
    let failed = primary_fails(cfg);
    let authority = if failed { lay.backup } else { lay.primary };

    let mut all_acked = Vec::new();
    for c in &lay.clients {
        let client: &ShipClient = sim.actor(*c);
        report.acked += client.acked.len() as u64;
        all_acked.extend(client.acked.iter().copied());
    }

    {
        let auth: &DbNode = sim.actor(authority);
        for id in &all_acked {
            if !auth.log().contains(*id) {
                report.lost_acked += 1;
            }
        }
        report.duplicate_applications = auth.duplicate_applications();
    }

    // Stuck tail: durable at the old primary, never applied at the
    // authority before recovery could run. (Counted even when the
    // primary never restarts — the WAL is on disk either way.)
    if failed {
        let old: &DbNode = sim.actor(lay.primary);
        let auth: &DbNode = sim.actor(lay.backup);
        report.stuck_tail = old.wal().iter().filter(|r| !auth.log().contains(r.id)).count() as u64;
    }

    // Final settlement for commit-ack guesses the shipping protocol
    // could never judge — e.g. a post-takeover primary whose peer died
    // and stayed down never receives a ShipAck. The run is over, so the
    // authority's log is ground truth: the ack held iff the op is there.
    let open: Vec<(sim::SpanId, quicksand_core::uniquifier::Uniquifier)> =
        [lay.primary, lay.backup]
            .iter()
            .flat_map(|db| {
                let node: &DbNode = sim.actor(*db);
                node.open_guesses()
                    .iter()
                    .filter_map(|(lsn, g)| {
                        node.wal().iter().find(|r| r.lsn == *lsn).map(|r| (*g, r.id))
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
    let verdicts: Vec<(sim::SpanId, bool)> = {
        let auth: &DbNode = sim.actor(authority);
        open.into_iter().map(|(g, id)| (g, auth.log().contains(id))).collect()
    };
    for (g, confirmed) in verdicts {
        sim.settle_guess(g, confirmed);
    }

    let m = sim.metrics_mut();
    report.commit_mean_ms = m.histogram("logship.commit_us").mean() / 1000.0;
    report.commit_p99_ms = m.histogram("logship.commit_us").percentile(99.0) / 1000.0;
    report.resurrected = m.counter("logship.resurrected");
    report.messages = m.counter("sim.messages_sent");
    sim.export_ledger_metrics();
    report.ledger = sim.ledger().accounting();
    report.spans = sim.spans().clone();
    report.flight = sim.take_flight();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{RecoveryPolicy, ShipMode};
    use sim::{SimDuration, SimTime};

    fn base() -> LogshipConfig {
        LogshipConfig {
            n_clients: 3,
            ops_per_client: 30,
            mean_interarrival: SimDuration::from_millis(4),
            horizon: SimTime::from_secs(60),
            ..LogshipConfig::default()
        }
    }

    #[test]
    fn async_mode_commits_at_lan_latency() {
        let r = run(&base(), 3);
        assert_eq!(r.acked, 90);
        assert_eq!(r.lost_acked, 0);
        // One LAN round trip is 1ms; WAN round trip is 40ms.
        assert!(r.commit_mean_ms < 5.0, "async commit should not pay the WAN: {r:?}");
    }

    #[test]
    fn sync_mode_pays_the_wan_round_trip() {
        let mut cfg = base();
        cfg.mode = ShipMode::Synchronous;
        let r = run(&cfg, 3);
        assert_eq!(r.acked, 90);
        assert!(r.commit_mean_ms >= 40.0, "sync commit must include the WAN round trip: {r:?}");
    }

    #[test]
    fn async_takeover_loses_a_bounded_recent_window() {
        let mut cfg = base();
        cfg.mean_interarrival = SimDuration::from_millis(2);
        cfg.ship_interval = SimDuration::from_millis(50);
        cfg.crash_primary_at = Some(SimTime::from_millis(100));
        cfg.recovery = RecoveryPolicy::Discard;
        let r = run(&cfg, 9);
        assert!(r.lost_acked > 0, "the ack-before-ship window must bite: {r:?}");
        assert!(r.stuck_tail >= r.lost_acked, "lost work is stuck in the WAL: {r:?}");
        // But clients finished their runs against the new primary.
        assert_eq!(r.acked, 90, "{r:?}");
    }

    #[test]
    fn sync_takeover_loses_nothing_acked() {
        let mut cfg = base();
        cfg.mode = ShipMode::Synchronous;
        cfg.crash_primary_at = Some(SimTime::from_millis(100));
        cfg.recovery = RecoveryPolicy::Discard;
        let r = run(&cfg, 9);
        assert_eq!(r.lost_acked, 0, "sync shipping is transparent: {r:?}");
        assert_eq!(r.acked, 90);
    }

    #[test]
    fn resurrection_recovers_the_stuck_tail() {
        let mut cfg = base();
        cfg.mean_interarrival = SimDuration::from_millis(2);
        cfg.ship_interval = SimDuration::from_millis(50);
        cfg.crash_primary_at = Some(SimTime::from_millis(100));
        cfg.restart_primary_at = Some(SimTime::from_secs(2));
        cfg.recovery = RecoveryPolicy::Resurrect;
        let r = run(&cfg, 9);
        assert_eq!(r.lost_acked, 0, "resurrected ops must all reappear: {r:?}");
        assert!(r.resurrected > 0, "{r:?}");
        assert_eq!(r.duplicate_applications, 0, "uniquifiers collapse retries: {r:?}");
    }

    #[test]
    fn without_dedup_resurrection_double_applies() {
        let mut cfg = base();
        cfg.mean_interarrival = SimDuration::from_millis(2);
        cfg.ship_interval = SimDuration::from_millis(50);
        cfg.crash_primary_at = Some(SimTime::from_millis(100));
        cfg.restart_primary_at = Some(SimTime::from_secs(2));
        cfg.recovery = RecoveryPolicy::Resurrect;
        cfg.dedup = false;
        let r = run(&cfg, 9);
        assert!(
            r.duplicate_applications > 0,
            "without uniquifier dedup the tail double-applies: {r:?}"
        );
    }

    #[test]
    fn deterministic_runs() {
        let a = run(&base(), 42);
        let b = run(&base(), 42);
        assert_eq!(a.acked, b.acked);
        assert_eq!(a.messages, b.messages);
    }
}
