//! The client: commits uniquified operations, retries on silence, and
//! follows the redirect after a takeover. Its retries are what make the
//! server-side uniquifier discipline (§2.1) load-bearing: a commit that
//! raced the crash is re-submitted, unmodified, to whoever answers —
//! exactly the paper-forms-in-triplicate protocol of §7.7.

use quicksand_core::uniquifier::{Uniquifier, UniquifierSource};
use rand::Rng;
use sim::{Actor, Context, NodeId, SimDuration, SimTime};

use crate::msg::ShipMsg;
use crate::types::ShipOp;

const TAG_NEXT: u64 = 1;
const TAG_RETRY: u64 = 2;
const TAG_SHIFT: u64 = 48;

fn tag(kind: u64, seq: u64) -> u64 {
    (kind << TAG_SHIFT) | seq
}

/// A client process committing a stream of operations.
#[derive(Debug)]
pub struct ShipClient {
    /// Client id (namespaces its uniquifiers).
    pub id: u32,
    primary: NodeId,
    backup: NodeId,
    redirected: bool,
    ops_total: u64,
    mean_interarrival: SimDuration,
    retry_timeout: SimDuration,
    ids: UniquifierSource,

    issued: u64,
    outstanding: Option<(ShipOp, SimTime)>,
    /// Uniquifiers of every acknowledged commit, in order.
    pub acked: Vec<Uniquifier>,
}

impl ShipClient {
    /// Build a client that will commit `ops_total` operations.
    pub fn new(
        id: u32,
        primary: NodeId,
        backup: NodeId,
        ops_total: u64,
        mean_interarrival: SimDuration,
        retry_timeout: SimDuration,
    ) -> Self {
        ShipClient {
            id,
            primary,
            backup,
            redirected: false,
            ops_total,
            mean_interarrival,
            retry_timeout,
            ids: UniquifierSource::new(id as u64),
            issued: 0,
            outstanding: None,
            acked: Vec::new(),
        }
    }

    fn target(&self) -> NodeId {
        if self.redirected {
            self.backup
        } else {
            self.primary
        }
    }

    fn schedule_next(&mut self, ctx: &mut Context<'_, ShipMsg>) {
        if self.issued >= self.ops_total {
            return;
        }
        let mean = self.mean_interarrival.as_micros() as f64;
        let d = SimDuration::from_micros(ctx.rng().exp_micros(mean));
        ctx.set_timer(d, tag(TAG_NEXT, self.issued));
    }

    fn issue(&mut self, ctx: &mut Context<'_, ShipMsg>) {
        debug_assert!(self.outstanding.is_none());
        let op = ShipOp {
            id: self.ids.next_id(),
            account: ctx.rng().gen_range(0..64),
            delta: ctx.rng().gen_range(-100..=100),
        };
        self.issued += 1;
        self.outstanding = Some((op.clone(), ctx.now()));
        let me = ctx.me();
        ctx.send(self.target(), ShipMsg::CommitReq { op, resp_to: me });
        ctx.set_timer(self.retry_timeout, tag(TAG_RETRY, self.issued));
    }
}

impl Actor<ShipMsg> for ShipClient {
    fn on_start(&mut self, ctx: &mut Context<'_, ShipMsg>) {
        self.schedule_next(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, ShipMsg>, t: u64) {
        let kind = t >> TAG_SHIFT;
        let seq = t & ((1 << TAG_SHIFT) - 1);
        match kind {
            TAG_NEXT if self.outstanding.is_none() && seq == self.issued => {
                self.issue(ctx);
            }
            TAG_NEXT => {}
            TAG_RETRY => {
                if seq != self.issued {
                    return; // stale
                }
                if let Some((op, _)) = &self.outstanding {
                    // Resubmitted "without modification to ensure a lack
                    // of confusion" (§7.7).
                    let op = op.clone();
                    let me = ctx.me();
                    ctx.metrics().inc("logship.client_retries");
                    ctx.send(self.target(), ShipMsg::CommitReq { op, resp_to: me });
                    ctx.set_timer(self.retry_timeout, tag(TAG_RETRY, self.issued));
                }
            }
            _ => {}
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_, ShipMsg>, _from: NodeId, msg: ShipMsg) {
        match msg {
            ShipMsg::CommitAck { id } => {
                if let Some((op, sent_at)) = &self.outstanding {
                    if op.id == id {
                        let lat = ctx.now().saturating_since(*sent_at);
                        ctx.metrics().record("logship.commit_us", lat.as_micros() as f64);
                        self.acked.push(id);
                        self.outstanding = None;
                        self.schedule_next(ctx);
                    }
                }
            }
            ShipMsg::RedirectNotice => {
                self.redirected = true;
                // Re-drive anything outstanding at the new primary now.
                if let Some((op, _)) = &self.outstanding {
                    let op = op.clone();
                    let me = ctx.me();
                    ctx.send(self.target(), ShipMsg::CommitReq { op, resp_to: me });
                }
            }
            _ => {}
        }
    }
}
