//! Protocol messages for the log-shipping model.

use sim::NodeId;

use crate::types::{Lsn, ShipOp, WalRecord};

/// Messages between clients, the primary, and the backup.
#[derive(Debug, Clone)]
pub enum ShipMsg {
    /// Client commit request.
    CommitReq {
        /// The uniquified operation.
        op: ShipOp,
        /// Where the ack goes.
        resp_to: NodeId,
    },
    /// The commit is acknowledged (durable locally under async mode;
    /// received at the backup under sync mode).
    CommitAck {
        /// The acknowledged operation's uniquifier.
        id: quicksand_core::uniquifier::Uniquifier,
    },
    /// Primary → backup: WAL records from the last acknowledged LSN.
    ShipBatch {
        /// Correlation id.
        batch_id: u64,
        /// Records in LSN order.
        recs: Vec<WalRecord>,
    },
    /// Backup → primary: received and applied through `upto`.
    ShipAck {
        /// Correlation id.
        batch_id: u64,
        /// Highest applied LSN.
        upto: Lsn,
    },
    /// Harness → backup: the primary is gone; take over.
    TakeOver,
    /// New primary → clients: send future commits here.
    RedirectNotice,
    /// Recovered old primary → new primary: the stuck tail, replayed
    /// (§5.1's "examine the work in the tail of the log and determine
    /// what the heck to do").
    ResurrectTail {
        /// The tail records.
        recs: Vec<WalRecord>,
    },
}
