//! Types for the log-shipping model: the WAL, the shipped operation, the
//! configuration, and the experiment report.

use quicksand_core::op::Operation;
use quicksand_core::uniquifier::Uniquifier;
use quicksand_core::wire::{Framed, WireCodec, WireError};
use sim::chaos::FaultPlan;
use sim::{FlightRecorder, LedgerAccounting, SimDuration, SimTime, SpanStore};

/// Log sequence number in a database's WAL.
pub type Lsn = u64;

/// The business operation carried through the log — a commutative,
/// uniquely identified account adjustment (the op-centric discipline of
/// §6.5, which is what makes resurrection of a stuck tail safe).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShipOp {
    /// Uniquifier assigned at ingress.
    pub id: Uniquifier,
    /// The account the operation adjusts.
    pub account: u64,
    /// Signed amount.
    pub delta: i64,
}

/// Balances by account: the materialized state of a [`ShipOp`] log.
pub type Balances = std::collections::BTreeMap<u64, i64>;

impl Operation for ShipOp {
    type State = Balances;
    fn id(&self) -> Uniquifier {
        self.id
    }
    fn apply(&self, state: &mut Balances) {
        *state.entry(self.account).or_insert(0) += self.delta;
    }
}

impl WireCodec for ShipOp {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.id.encode(buf);
        self.account.encode(buf);
        self.delta.encode(buf);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(ShipOp {
            id: Uniquifier::decode(buf)?,
            account: u64::decode(buf)?,
            delta: i64::decode(buf)?,
        })
    }
}

/// One durable WAL record: a [`ShipOp`] framed at its log position.
/// (The frame shape is shared with every other WAL in the workspace via
/// [`quicksand_core::wire::Framed`].)
pub type WalRecord = Framed<ShipOp>;

/// When the primary acknowledges a commit relative to shipping (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShipMode {
    /// Acknowledge after the local WAL append; ship later. The paper's
    /// normal deployment: fast, but "a failure of the primary during
    /// this window will lock the work inside the primary".
    Asynchronous,
    /// Stall the ack until the backup confirms receipt — transparent
    /// datacenter failover at the price of a WAN round trip per commit.
    Synchronous,
}

/// What to do with the stuck tail when a failed primary comes back
/// (§4.2, §5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryPolicy {
    /// "In some cases, the pending work is simply discarded due to lack
    /// of designed mechanisms to reclaim it!"
    Discard,
    /// Resurrect: replay the tail into the new primary. Safe only
    /// because the operations are uniquified (retries collapse) and
    /// commutative (arrival order doesn't matter).
    Resurrect,
}

/// Configuration for one log-shipping run.
#[derive(Debug, Clone)]
pub struct LogshipConfig {
    /// Ack-vs-ship ordering.
    pub mode: ShipMode,
    /// How long the shipper may buffer before sending (async mode).
    pub ship_interval: SimDuration,
    /// One-way latency between the primary and the backup datacenter.
    pub wan_one_way: SimDuration,
    /// One-way latency between clients and the databases.
    pub client_latency: SimDuration,
    /// Number of client processes.
    pub n_clients: usize,
    /// Operations each client commits.
    pub ops_per_client: u64,
    /// Mean client think time between commits (Poisson).
    pub mean_interarrival: SimDuration,
    /// Client retry timeout for unacknowledged commits.
    pub retry_timeout: SimDuration,
    /// Crash the primary at this time, if set.
    pub crash_primary_at: Option<SimTime>,
    /// Promote the backup this long after the crash.
    pub takeover_delay: SimDuration,
    /// Restart the failed primary at this time (it then applies
    /// `recovery`), if set.
    pub restart_primary_at: Option<SimTime>,
    /// Stuck-tail policy on restart.
    pub recovery: RecoveryPolicy,
    /// If `false`, the new primary applies resurrected/retried work
    /// without uniquifier dedup — the A1 ablation knob. Business impact
    /// may then be duplicated.
    pub dedup: bool,
    /// Declarative fault timeline applied on top of the legacy crash
    /// knobs. A `Crash` clause on the primary triggers the takeover
    /// protocol exactly like `crash_primary_at` (TakeOver injected
    /// `takeover_delay` later; the clause's `restart_at` drives
    /// `recovery`).
    pub faults: FaultPlan,
    /// Simulation horizon.
    pub horizon: SimTime,
    /// Enable the forensic flight recorder (causal event graph). Off by
    /// default; chaos explainers re-run failing seeds with it on.
    pub flight: bool,
}

impl Default for LogshipConfig {
    fn default() -> Self {
        LogshipConfig {
            mode: ShipMode::Asynchronous,
            ship_interval: SimDuration::from_millis(10),
            wan_one_way: SimDuration::from_millis(20),
            client_latency: SimDuration::from_micros(500),
            n_clients: 4,
            ops_per_client: 50,
            mean_interarrival: SimDuration::from_millis(5),
            retry_timeout: SimDuration::from_millis(100),
            crash_primary_at: None,
            takeover_delay: SimDuration::from_millis(10),
            restart_primary_at: None,
            recovery: RecoveryPolicy::Resurrect,
            dedup: true,
            faults: FaultPlan::none(),
            horizon: SimTime::from_secs(60),
            flight: false,
        }
    }
}

/// Measurements from one run.
#[derive(Debug, Clone, Default)]
pub struct LogshipReport {
    /// Commits acknowledged to clients.
    pub acked: u64,
    /// Mean commit latency (ms) as clients saw it.
    pub commit_mean_ms: f64,
    /// p99 commit latency (ms).
    pub commit_p99_ms: f64,
    /// Acked operations absent from the authority (new primary) at the
    /// end of the run — work the business promised and then lost.
    pub lost_acked: u64,
    /// Operations durably in the old primary's WAL but never shipped
    /// before the crash (the stuck tail of §4.2).
    pub stuck_tail: u64,
    /// Operations resurrected into the new primary on recovery.
    pub resurrected: u64,
    /// Operations whose business impact was applied more than once at
    /// the authority (only possible with `dedup: false`).
    pub duplicate_applications: u64,
    /// Total messages.
    pub messages: u64,
    /// Simulated seconds.
    pub sim_seconds: f64,
    /// Guess/apology accounting (`logship.commit_ack` guesses: acks
    /// issued before the tail shipped).
    pub ledger: LedgerAccounting,
    /// Every span the run recorded.
    pub spans: SpanStore,
    /// The causal event graph, when `LogshipConfig::flight` was set.
    pub flight: Option<FlightRecorder>,
}
