//! The on-disk record format: offset-addressed, CRC-framed, scannable.
//!
//! A segment file is a flat concatenation of frames:
//!
//! ```text
//! [len: u32 LE][crc32: u32 LE][body: len bytes]
//! body = offset u64 | key Option<Uniquifier> | payload Vec<u8>   (WireCodec)
//! ```
//!
//! The length prefix makes the file scannable without an index; the CRC
//! makes a torn write *detectable* rather than silently corrupting the
//! replay. Recovery ([`scan`]) walks frames from the segment's start and
//! stops at the first incomplete or corrupt frame — everything before it
//! is the durable prefix, everything from it on is the torn tail the
//! crash interrupted, and truncating that tail is exactly the paper's
//! "as of" recovery: the log's authority ends at the last frame that
//! fully hit the disk.

use quicksand_core::uniquifier::Uniquifier;
use quicksand_core::wire::{to_bytes, WireCodec, WireError};

/// One event-log record: its partition-local offset, an optional
/// compaction key (the uniquifier of the unit of work it belongs to),
/// and an opaque payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Partition-local position, dense from 0.
    pub offset: u64,
    /// Compaction identity: records sharing a key are versions of the
    /// same unit of work, and compaction keeps only the newest.
    pub key: Option<Uniquifier>,
    /// The business payload, opaque to the log.
    pub payload: Vec<u8>,
}

impl WireCodec for Record {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.offset.encode(buf);
        self.key.encode(buf);
        self.payload.encode(buf);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(Record {
            offset: u64::decode(buf)?,
            key: Option::<Uniquifier>::decode(buf)?,
            payload: Vec::<u8>::decode(buf)?,
        })
    }
}

/// CRC-32 (IEEE 802.3, reflected), table-driven. Hand-rolled because the
/// workspace is dependency-free; the polynomial is the same one every
/// `crc32` tool computes, so segment files can be checked externally.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc32_table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// Append `rec`'s frame (length, CRC, body) to `out`.
pub fn encode_frame(rec: &Record, out: &mut Vec<u8>) {
    let body = to_bytes(rec);
    (body.len() as u32).encode(out);
    crc32(&body).encode(out);
    out.extend_from_slice(&body);
}

/// What [`scan`] found at a position in the byte stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// A complete, checksummed record; `consumed` bytes of stream.
    Ok {
        /// The decoded record.
        rec: Record,
        /// Total frame size (header + body).
        consumed: usize,
    },
    /// The stream ends mid-frame — the torn tail of an interrupted
    /// append. Everything from here on is not durable.
    Torn,
    /// A complete frame whose CRC or body does not check out — bit rot
    /// or a torn write that happened to leave a full-length garbage
    /// frame. Treated exactly like [`Frame::Torn`] by recovery.
    Corrupt,
}

/// Decode the frame at the front of `buf`.
pub fn read_frame(buf: &[u8]) -> Frame {
    if buf.len() < 8 {
        return Frame::Torn;
    }
    let len = u32::from_le_bytes(buf[0..4].try_into().expect("sized")) as usize;
    let crc = u32::from_le_bytes(buf[4..8].try_into().expect("sized"));
    if buf.len() < 8 + len {
        return Frame::Torn;
    }
    let body = &buf[8..8 + len];
    if crc32(body) != crc {
        return Frame::Corrupt;
    }
    match quicksand_core::wire::from_bytes::<Record>(body) {
        Ok(rec) => Frame::Ok { rec, consumed: 8 + len },
        Err(_) => Frame::Corrupt,
    }
}

/// Result of scanning a segment's bytes on recovery.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScanResult {
    /// Every record in the durable prefix, in file order.
    pub records: Vec<Record>,
    /// Byte position where each record's frame ends, parallel to
    /// `records` — the segment uses these to tell which records a given
    /// durable watermark fully covers.
    pub ends: Vec<u64>,
    /// Byte length of the durable prefix (where the torn tail starts).
    pub valid_len: u64,
    /// Bytes past the durable prefix — the torn tail a restart truncates.
    pub truncated: u64,
    /// True when the tail was cut on a CRC/decode failure rather than a
    /// short frame.
    pub corrupt: bool,
}

/// Walk frames from the start of `bytes`, stopping at the first torn or
/// corrupt frame. The durable prefix is everything before the stop.
pub fn scan(bytes: &[u8]) -> ScanResult {
    let mut out = ScanResult::default();
    let mut pos = 0usize;
    while pos < bytes.len() {
        match read_frame(&bytes[pos..]) {
            Frame::Ok { rec, consumed } => {
                out.records.push(rec);
                pos += consumed;
                out.ends.push(pos as u64);
            }
            Frame::Torn => break,
            Frame::Corrupt => {
                out.corrupt = true;
                break;
            }
        }
    }
    out.valid_len = pos as u64;
    out.truncated = (bytes.len() - pos) as u64;
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(offset: u64, payload: &[u8]) -> Record {
        Record { offset, key: Some(Uniquifier::derived(payload)), payload: payload.to_vec() }
    }

    #[test]
    fn crc32_matches_the_reference_vector() {
        // The canonical IEEE check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frames_round_trip_through_a_scan() {
        let mut bytes = Vec::new();
        let recs: Vec<Record> = (0..5).map(|i| rec(i, format!("op-{i}").as_bytes())).collect();
        for r in &recs {
            encode_frame(r, &mut bytes);
        }
        let scanned = scan(&bytes);
        assert_eq!(scanned.records, recs);
        assert_eq!(scanned.valid_len, bytes.len() as u64);
        assert_eq!(scanned.truncated, 0);
        assert!(!scanned.corrupt);
    }

    #[test]
    fn a_torn_tail_is_truncated_at_every_cut_point() {
        let mut bytes = Vec::new();
        encode_frame(&rec(0, b"first"), &mut bytes);
        let keep = bytes.len();
        encode_frame(&rec(1, b"second"), &mut bytes);
        // Cut the second frame anywhere: the first survives, the tail
        // is reported torn.
        for cut in keep..bytes.len() - 1 {
            let scanned = scan(&bytes[..cut]);
            assert_eq!(scanned.records.len(), 1, "cut at {cut}");
            assert_eq!(scanned.valid_len, keep as u64);
            assert_eq!(scanned.truncated, (cut - keep) as u64);
        }
    }

    #[test]
    fn a_flipped_bit_is_caught_by_the_crc() {
        let mut bytes = Vec::new();
        encode_frame(&rec(0, b"first"), &mut bytes);
        let keep = bytes.len();
        encode_frame(&rec(1, b"second"), &mut bytes);
        let target = keep + 10; // inside the second frame's body
        bytes[target] ^= 0x40;
        let scanned = scan(&bytes);
        assert_eq!(scanned.records.len(), 1);
        assert!(scanned.corrupt, "the damaged frame must be flagged, not replayed");
        assert_eq!(scanned.valid_len, keep as u64);
    }

    #[test]
    fn garbage_appended_to_a_clean_log_is_cut() {
        let mut bytes = Vec::new();
        encode_frame(&rec(0, b"only"), &mut bytes);
        let keep = bytes.len();
        bytes.extend_from_slice(&[0xAB, 0xCD, 0xEF]);
        let scanned = scan(&bytes);
        assert_eq!(scanned.records.len(), 1);
        assert_eq!(scanned.valid_len, keep as u64);
        assert_eq!(scanned.truncated, 3);
    }
}
