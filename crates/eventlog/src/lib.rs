//! # eventlog — a durable, partitioned event-log substrate
//!
//! The paper's §4 says the *degree* of durability behind an
//! acknowledgment is a business decision, not an engineering constant:
//! work "may be acknowledged ... before all the effects of the work are
//! completely durable", and the system's job is to know exactly what it
//! risked. This crate makes that decision a parameter. One log
//! implementation — segmented, offset-addressed, CRC-framed, compacted
//! by [`quicksand_core::uniquifier::Uniquifier`] — serves every WAL in
//! the workspace, and [`AckPolicy`](policy::AckPolicy) picks the point
//! on the spectrum where the ack escapes:
//!
//! - [`Immediate`](policy::AckPolicy::Immediate): ack from memory; the
//!   unflushed tail is a ledger guess with a crash-sized apology window.
//! - [`OnFsync`](policy::AckPolicy::OnFsync): ack when the §3.2
//!   group-commit bus departs (one fsync carries everyone aboard).
//! - [`OnReplicate(n)`](policy::AckPolicy::OnReplicate): ack when `n`
//!   replicas hold the record on *their* disks.
//!
//! Everything runs on both engines through the
//! [`StorageKind`](log::StorageKind) seam: [`MemKind`](log::MemKind)
//! under the deterministic simulator (chaos plans crash it at will, torn
//! tails included) and [`DirKind`](log::DirKind) under the wall-clock
//! runtime, where a real `kill -9` and a real fsync play themselves.
//!
//! Module map:
//!
//! - [`record`] — frame format, CRC-32, recovery scan.
//! - [`storage`] — the durability boundary (`MemStorage`/`FileStorage`).
//! - [`log`] — segments, partitions, consumer offsets, compaction.
//! - [`policy`] — the ack spectrum.
//! - [`node`] — broker/replica/producer/consumer actors.
//! - [`harness`] — simulated deployments and loss accounting.

#![warn(missing_docs)]

pub mod harness;
pub mod log;
pub mod node;
pub mod policy;
pub mod record;
pub mod storage;

pub use harness::{run, EventLogReport, EventLogScenario};
pub use log::{
    CompactionStats, DirKind, EventLog, LogConfig, MemKind, Partition, RecoveryReport, StorageKind,
    OFFSETS_PARTITION,
};
pub use node::{BrokerConfig, Consumer, EvMsg, EventLogNode, Producer};
pub use policy::AckPolicy;
pub use record::{crc32, encode_frame, scan, Frame, Record, ScanResult};
pub use storage::{FileStorage, MemStorage, Storage};
