//! Where segment bytes live: the durability boundary.
//!
//! Everything above this trait — framing, rotation, compaction, consumer
//! offsets — is identical on both engines. The trait is deliberately
//! tiny: append bytes, fsync, read everything back, truncate. The two
//! implementations model durability honestly in their own worlds:
//!
//! - [`MemStorage`] (simulator): keeps a **durable watermark**. Bytes
//!   past it are the page cache; a crash ([`MemStorage::crash`]) drops
//!   the unflushed tail, except for a caller-chosen number of torn bytes
//!   that "made it to the platter" mid-write — which is how the
//!   deterministic simulator exercises the CRC/torn-tail recovery path
//!   that a real `kill -9` exercises in CI.
//! - [`FileStorage`] (runtime): a real file with real `sync_data`. The
//!   kernel keeps the page cache; a process kill loses whatever was not
//!   yet flushed, torn frames included, with no modelling required.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// A segment's backing bytes. Appends land in volatile cache until
/// [`Storage::fsync`]; `read_all` sees every appended byte (the writing
/// process reads its own cache), while a crash only preserves the
/// durable prefix (plus possibly a torn fragment).
pub trait Storage {
    /// Total appended bytes (durable + cached).
    fn len(&self) -> u64;
    /// True when nothing has been appended.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Append bytes to the cache.
    fn append(&mut self, bytes: &[u8]);
    /// Make every appended byte durable. Returns the bytes newly made
    /// durable by this call (0 when already clean) — the group-commit
    /// metrics are built on this.
    fn fsync(&mut self) -> u64;
    /// Bytes guaranteed to survive a crash.
    fn durable_len(&self) -> u64;
    /// The full byte stream as this process sees it.
    fn read_all(&self) -> Vec<u8>;
    /// Cut the stream to `len` bytes (recovery truncating a torn tail).
    fn truncate(&mut self, len: u64);
}

/// In-memory storage with an explicit durable watermark, for the
/// deterministic simulator.
#[derive(Debug, Clone, Default)]
pub struct MemStorage {
    bytes: Vec<u8>,
    durable: u64,
}

impl MemStorage {
    /// Fresh empty storage.
    pub fn new() -> Self {
        MemStorage::default()
    }

    /// Simulate the process dying: the unflushed tail is gone, except
    /// for the first `torn` bytes of it — a write the kernel had pushed
    /// partway to the platter. Recovery's CRC scan must cut those.
    pub fn crash(&mut self, torn: u64) {
        let keep = (self.durable + torn).min(self.bytes.len() as u64);
        self.bytes.truncate(keep as usize);
        self.durable = self.durable.min(keep);
    }
}

impl Storage for MemStorage {
    fn len(&self) -> u64 {
        self.bytes.len() as u64
    }
    fn append(&mut self, bytes: &[u8]) {
        self.bytes.extend_from_slice(bytes);
    }
    fn fsync(&mut self) -> u64 {
        let newly = self.bytes.len() as u64 - self.durable;
        self.durable = self.bytes.len() as u64;
        newly
    }
    fn durable_len(&self) -> u64 {
        self.durable
    }
    fn read_all(&self) -> Vec<u8> {
        self.bytes.clone()
    }
    fn truncate(&mut self, len: u64) {
        self.bytes.truncate(len as usize);
        self.durable = self.durable.min(len);
    }
}

/// File-backed storage for the wall-clock runtime: appends buffer in the
/// OS page cache, `fsync` is a real `sync_data`, truncation rewrites the
/// file length. One file per segment.
#[derive(Debug)]
pub struct FileStorage {
    path: PathBuf,
    file: File,
    len: u64,
    synced: u64,
}

impl FileStorage {
    /// Open (or create) the segment file at `path`, appending after any
    /// existing content. Existing bytes count as durable: they survived
    /// at least one process lifetime already.
    pub fn open(path: &Path) -> std::io::Result<Self> {
        let mut file = OpenOptions::new().create(true).read(true).append(true).open(path)?;
        let len = file.seek(SeekFrom::End(0))?;
        Ok(FileStorage { path: path.to_path_buf(), file, len, synced: len })
    }

    /// The file this storage writes.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Storage for FileStorage {
    fn len(&self) -> u64 {
        self.len
    }
    fn append(&mut self, bytes: &[u8]) {
        // An append-mode write that fails mid-stream leaves a torn
        // frame, which is exactly what recovery handles; surfacing the
        // error any further would just crash the process sooner.
        self.file.write_all(bytes).expect("segment append");
        self.len += bytes.len() as u64;
    }
    fn fsync(&mut self) -> u64 {
        let newly = self.len - self.synced;
        if newly > 0 {
            self.file.sync_data().expect("segment fsync");
            self.synced = self.len;
        }
        newly
    }
    fn durable_len(&self) -> u64 {
        self.synced
    }
    fn read_all(&self) -> Vec<u8> {
        let mut f = File::open(&self.path).expect("segment reopen");
        let mut out = Vec::with_capacity(self.len as usize);
        f.read_to_end(&mut out).expect("segment read");
        out
    }
    fn truncate(&mut self, len: u64) {
        self.file.set_len(len).expect("segment truncate");
        self.file.seek(SeekFrom::End(0)).expect("segment seek");
        self.len = len;
        self.synced = self.synced.min(len);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_storage_loses_the_unflushed_tail_on_crash() {
        let mut s = MemStorage::new();
        s.append(b"durable");
        assert_eq!(s.fsync(), 7);
        s.append(b"-volatile");
        assert_eq!(s.len(), 16);
        assert_eq!(s.durable_len(), 7);
        s.crash(3);
        assert_eq!(s.read_all(), b"durable-vo");
        assert_eq!(s.fsync(), 3, "the torn fragment is on disk after recovery syncs");
    }

    #[test]
    fn mem_storage_truncate_cuts_the_tail() {
        let mut s = MemStorage::new();
        s.append(b"abcdef");
        s.fsync();
        s.truncate(4);
        assert_eq!(s.read_all(), b"abcd");
        assert_eq!(s.durable_len(), 4);
    }

    #[test]
    fn file_storage_round_trips_and_truncates() {
        let dir = std::env::temp_dir().join(format!("evlog-store-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("0.seg");
        {
            let mut s = FileStorage::open(&path).unwrap();
            s.append(b"hello ");
            s.append(b"world");
            assert_eq!(s.fsync(), 11);
            assert_eq!(s.fsync(), 0);
            assert_eq!(s.read_all(), b"hello world");
            s.truncate(5);
            assert_eq!(s.read_all(), b"hello");
        }
        // Reopen: existing bytes count as durable and appends continue.
        let mut s = FileStorage::open(&path).unwrap();
        assert_eq!(s.durable_len(), 5);
        s.append(b"!");
        assert_eq!(s.read_all(), b"hello!");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
