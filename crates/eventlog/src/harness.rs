//! Builds an event-log deployment in the simulator, runs it under a
//! fault plan, and accounts for every promise made.
//!
//! Layout: producers `0..n_producers`, the leader broker at
//! `n_producers`, replicas right after it, and one consumer last. The
//! report's two loss numbers carve the §4 spectrum at its joints:
//!
//! - `lost_acked` — acked appends held by *no* broker at the end of the
//!   run. Only [`AckPolicy::Immediate`] may show these (its acks run
//!   ahead of the fsync bus), and each one is an apology the ledger
//!   already booked.
//! - `lost_without_leader_disk` — acked appends held by no *replica*:
//!   what a leader disk fire would cost. [`AckPolicy::OnReplicate`]
//!   must drive this to zero; `OnFsync` merely prices it in.

use quicksand_core::uniquifier::Uniquifier;
use sim::chaos::FaultPlan;
use sim::{
    FlightRecorder, LedgerAccounting, LinkConfig, Network, NodeId, SimDuration, SimTime,
    Simulation, SpanStore,
};

use crate::log::{LogConfig, MemKind};
use crate::node::{BrokerConfig, Consumer, EvMsg, EventLogNode, Producer};
use crate::policy::AckPolicy;

/// One simulated event-log deployment.
#[derive(Debug, Clone)]
pub struct EventLogScenario {
    /// Producer count.
    pub n_producers: usize,
    /// Appends each producer must get acked.
    pub appends_per_producer: u64,
    /// Per-producer pipeline depth.
    pub window: usize,
    /// Payload size per record.
    pub payload_bytes: usize,
    /// Mean think time between appends (zero = keep the window full).
    pub mean_interarrival: SimDuration,
    /// Producer retry sweep period.
    pub retry_timeout: SimDuration,
    /// The ack policy under test.
    pub policy: AckPolicy,
    /// Group-commit bus period.
    pub flush_every: SimDuration,
    /// Compact every N bus departures (0 = never).
    pub compact_every: u32,
    /// Data partitions.
    pub partitions: u32,
    /// Segment rotation threshold.
    pub segment_bytes: u64,
    /// Replica brokers shipping from the leader.
    pub n_replicas: usize,
    /// One-way network latency, all links.
    pub latency: SimDuration,
    /// Consumer poll period.
    pub poll_every: SimDuration,
    /// Fault timeline.
    pub faults: FaultPlan,
    /// Wall of simulated time.
    pub horizon: SimTime,
    /// Record a flight log for forensics.
    pub flight: bool,
}

impl Default for EventLogScenario {
    fn default() -> Self {
        EventLogScenario {
            n_producers: 3,
            appends_per_producer: 40,
            window: 4,
            payload_bytes: 32,
            mean_interarrival: SimDuration::from_millis(2),
            retry_timeout: SimDuration::from_millis(50),
            policy: AckPolicy::OnFsync,
            flush_every: SimDuration::from_millis(5),
            compact_every: 0,
            partitions: 2,
            segment_bytes: 4 * 1024,
            n_replicas: 0,
            latency: SimDuration::from_micros(500),
            poll_every: SimDuration::from_millis(10),
            faults: FaultPlan::none(),
            horizon: SimTime::from_secs(60),
            flight: false,
        }
    }
}

/// Node ids for a deployment under `sc`.
#[derive(Debug, Clone)]
pub struct Layout {
    /// Producer nodes.
    pub producers: Vec<NodeId>,
    /// The leader broker.
    pub leader: NodeId,
    /// Replica brokers.
    pub replicas: Vec<NodeId>,
    /// The consumer.
    pub consumer: NodeId,
}

/// Compute the node layout.
pub fn layout(sc: &EventLogScenario) -> Layout {
    let leader = NodeId(sc.n_producers);
    Layout {
        producers: (0..sc.n_producers).map(NodeId).collect(),
        leader,
        replicas: (0..sc.n_replicas).map(|i| NodeId(sc.n_producers + 1 + i)).collect(),
        consumer: NodeId(sc.n_producers + 1 + sc.n_replicas),
    }
}

/// Build the deployment into a fresh simulation.
pub fn build(sc: &EventLogScenario, seed: u64) -> (Simulation<EvMsg>, Layout) {
    let lay = layout(sc);
    let net = Network::new(LinkConfig::reliable(sc.latency));
    let mut sim = Simulation::with_network(seed, net);

    for (i, p) in lay.producers.iter().enumerate() {
        let id = sim.add_node(Producer::new(
            i as u64,
            lay.leader,
            sc.appends_per_producer,
            sc.window,
            sc.payload_bytes,
            sc.mean_interarrival,
            sc.retry_timeout,
        ));
        debug_assert_eq!(id, *p);
    }
    let broker_cfg = BrokerConfig {
        log: LogConfig { partitions: sc.partitions, segment_bytes: sc.segment_bytes },
        policy: sc.policy,
        flush_every: sc.flush_every,
        compact_every: sc.compact_every,
    };
    let id = sim.add_node(EventLogNode::leader(MemKind, broker_cfg.clone(), lay.replicas.clone()));
    debug_assert_eq!(id, lay.leader);
    for r in &lay.replicas {
        let id = sim.add_node(EventLogNode::replica(MemKind, broker_cfg.clone()));
        debug_assert_eq!(id, *r);
    }
    let id = sim.add_node(Consumer::new(lay.leader, "readers", sc.poll_every));
    debug_assert_eq!(id, lay.consumer);

    sc.faults.apply(&mut sim);
    (sim, lay)
}

/// What an event-log run promised, delivered, and lost.
#[derive(Debug, Clone, Default)]
pub struct EventLogReport {
    /// Appends planned across all producers.
    pub planned: u64,
    /// Appends acked to producers.
    pub acked: u64,
    /// Acked appends held by no broker at the end — the crash-loss
    /// window, nonzero only when the policy priced it in.
    pub lost_acked: u64,
    /// Acked appends held by no replica — the leader-disk-loss window.
    /// Equal to `lost_acked` when there are no replicas.
    pub lost_without_leader_disk: u64,
    /// Distinct records the consumer group processed.
    pub consumer_seen: u64,
    /// Records the consumer saw more than once (at-least-once tax).
    pub redeliveries: u64,
    /// Producer retransmissions.
    pub retries: u64,
    /// Broker crash recoveries.
    pub recoveries: u64,
    /// Torn-tail bytes recovery truncated.
    pub truncated_bytes: u64,
    /// Group-commit bus departures that carried bytes.
    pub fsyncs: u64,
    /// Producer-observed ack latency, p50 / p99 (ms).
    pub ack_p50_ms: f64,
    /// See `ack_p50_ms`.
    pub ack_p99_ms: f64,
    /// Mean wait aboard the group-commit bus (ms), `OnFsync` acks only.
    pub group_commit_mean_ms: f64,
    /// Records still held in data partitions at the end.
    pub records_remaining: u64,
    /// Segments across the leader's data partitions.
    pub segments: u64,
    /// Total messages the simulation delivered.
    pub messages: u64,
    /// Simulated seconds elapsed.
    pub sim_seconds: f64,
    /// Guess/apology accounting for `eventlog.*` promises.
    pub ledger: LedgerAccounting,
    /// Full span store (span-hygiene invariants read this).
    pub spans: SpanStore,
    /// Flight recording, when enabled.
    pub flight: Option<FlightRecorder>,
}

/// Run the scenario and account for every ack.
pub fn run(sc: &EventLogScenario, seed: u64) -> EventLogReport {
    let (mut sim, lay) = build(sc, seed);
    if sc.flight {
        sim.enable_flight(1 << 16);
    }
    sim.run_until(sc.horizon);

    let mut report = EventLogReport {
        planned: sc.n_producers as u64 * sc.appends_per_producer,
        sim_seconds: sim.now().as_secs_f64(),
        ..Default::default()
    };

    let mut acked_ids: Vec<Uniquifier> = Vec::new();
    for p in &lay.producers {
        let prod: &Producer = sim.actor(*p);
        report.acked += prod.acked.len() as u64;
        acked_ids.extend(prod.acked_ids());
    }

    let (leader_held, open_guesses) = {
        let leader: &EventLogNode<MemKind> = sim.actor(lay.leader);
        report.records_remaining = leader.log().record_count() as u64;
        report.segments = leader.log().segment_count() as u64;
        (leader.held_ids(), leader.open_guesses())
    };
    let mut replica_held: std::collections::HashSet<Uniquifier> = std::collections::HashSet::new();
    for r in &lay.replicas {
        let rep: &EventLogNode<MemKind> = sim.actor(*r);
        replica_held.extend(rep.held_ids());
    }
    let leader_held: std::collections::HashSet<Uniquifier> = leader_held.into_iter().collect();

    for id in &acked_ids {
        let on_leader = leader_held.contains(id);
        let on_replica = replica_held.contains(id);
        if !on_leader && !on_replica {
            report.lost_acked += 1;
        }
        let survives_leader_disk_loss =
            if lay.replicas.is_empty() { on_leader } else { on_replica };
        if !survives_leader_disk_loss {
            report.lost_without_leader_disk += 1;
        }
    }

    // Final settlement for Immediate-mode guesses the bus never caught
    // up with: the run is over and the leader never crashed after the
    // ack (a crash would have orphaned the guess), so the record is
    // still aboard — the ack held.
    let verdicts: Vec<(sim::SpanId, bool)> = {
        let leader: &EventLogNode<MemKind> = sim.actor(lay.leader);
        open_guesses
            .into_iter()
            .map(|(g, p, off)| {
                let held = leader.log().read(p, off, 1).first().is_some_and(|r| r.offset == off);
                (g, held)
            })
            .collect()
    };
    for (g, confirmed) in verdicts {
        sim.settle_guess(g, confirmed);
    }

    {
        let consumer: &Consumer = sim.actor(lay.consumer);
        report.consumer_seen = consumer.seen.len() as u64;
        report.redeliveries = consumer.redeliveries;
    }

    let m = sim.metrics_mut();
    report.retries = m.counter("eventlog.producer_retries");
    report.recoveries = m.counter("eventlog.recoveries");
    report.truncated_bytes = m.counter("eventlog.truncated_bytes");
    report.fsyncs = m.counter("eventlog.fsyncs");
    report.ack_p50_ms = m.histogram("eventlog.producer_ack_us").percentile(50.0) / 1000.0;
    report.ack_p99_ms = m.histogram("eventlog.producer_ack_us").percentile(99.0) / 1000.0;
    report.group_commit_mean_ms = m.histogram("eventlog.group_commit_wait_us").mean() / 1000.0;
    report.messages = m.counter("sim.messages_sent");
    sim.export_ledger_metrics();
    report.ledger = sim.ledger().accounting();
    report.spans = sim.spans().clone();
    report.flight = sim.take_flight();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim::chaos::Fault;

    fn crash_leader(sc: &EventLogScenario, at_ms: u64, back_ms: u64) -> FaultPlan {
        FaultPlan::from_faults(vec![Fault::Crash {
            at: SimTime::from_millis(at_ms),
            node: layout(sc).leader,
            restart_at: Some(SimTime::from_millis(back_ms)),
        }])
    }

    #[test]
    fn fsync_policy_delivers_everything_without_faults() {
        let sc = EventLogScenario::default();
        let r = run(&sc, 7);
        assert_eq!(r.acked, r.planned, "{r:?}");
        assert_eq!(r.lost_acked, 0);
        assert_eq!(r.consumer_seen, r.planned, "consumer group falls behind");
        assert!(r.fsyncs > 0, "the bus must actually depart");
        assert!(r.ack_p50_ms > 0.0, "fsync acks wait for the bus");
        assert!(r.ledger.is_settled(), "{:?}", r.ledger);
    }

    #[test]
    fn immediate_policy_apologizes_for_the_unflushed_tail() {
        // A slow bus and a crash right across the busy window: some
        // acks must outrun their fsync and die with the process.
        let sc = EventLogScenario {
            policy: AckPolicy::Immediate,
            flush_every: SimDuration::from_millis(200),
            mean_interarrival: SimDuration::ZERO,
            faults: FaultPlan::none(),
            ..EventLogScenario::default()
        };
        let sc = EventLogScenario { faults: crash_leader(&sc, 20, 40), ..sc };
        let r = run(&sc, 11);
        assert!(r.lost_acked > 0, "the crash must beat the 200 ms bus: {r:?}");
        assert!(
            r.ledger.orphaned() >= r.lost_acked,
            "every lost ack was an open guess the crash orphaned: {:?}",
            r.ledger
        );
        assert_eq!(r.acked, r.planned, "survivors keep producing after restart");
    }

    #[test]
    fn fsync_policy_survives_the_same_crash_with_zero_loss() {
        let sc = EventLogScenario {
            policy: AckPolicy::OnFsync,
            mean_interarrival: SimDuration::ZERO,
            ..EventLogScenario::default()
        };
        let sc = EventLogScenario { faults: crash_leader(&sc, 20, 40), ..sc };
        let r = run(&sc, 11);
        assert_eq!(r.lost_acked, 0, "{r:?}");
        assert_eq!(r.acked, r.planned);
        assert!(r.recoveries >= 1, "the broker must have recovered: {r:?}");
        assert!(r.redeliveries > 0 || r.consumer_seen == r.planned);
    }

    #[test]
    fn replicate_policy_keeps_acked_records_off_the_leaders_disk() {
        let sc = EventLogScenario {
            policy: AckPolicy::OnReplicate(2),
            n_replicas: 2,
            mean_interarrival: SimDuration::ZERO,
            ..EventLogScenario::default()
        };
        let sc = EventLogScenario { faults: crash_leader(&sc, 20, 40), ..sc };
        let r = run(&sc, 13);
        assert_eq!(r.acked, r.planned, "{r:?}");
        assert_eq!(r.lost_acked, 0);
        assert_eq!(
            r.lost_without_leader_disk, 0,
            "every acked record must sit on a replica disk: {r:?}"
        );
    }

    #[test]
    fn compaction_runs_inside_the_broker_and_readers_still_see_every_key() {
        // Small segments + periodic compaction; producers re-use no
        // keys here, so compaction only squeezes the offsets partition
        // and duplicate generations never appear to the consumer.
        let sc = EventLogScenario {
            compact_every: 4,
            segment_bytes: 512,
            ..EventLogScenario::default()
        };
        let r = run(&sc, 17);
        assert_eq!(r.acked, r.planned, "{r:?}");
        assert_eq!(r.consumer_seen, r.planned);
        assert_eq!(r.redeliveries, 0, "no crash, no at-least-once tax");
        assert!(r.segments > sc.partitions as u64, "512-byte segments must rotate: {r:?}");
    }
}
