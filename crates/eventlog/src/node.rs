//! The actors: broker (leader or replica), producer, and consumer.
//!
//! One broker implementation serves both engines. Under the simulator it
//! runs on [`MemKind`](crate::log::MemKind) storage and its crashes are
//! deterministic; under the wall-clock runtime it runs on
//! [`DirKind`](crate::log::DirKind) and a `kill -9` plays the crash. The
//! flush timer is the paper's §3.2 **city bus**: appends board in memory,
//! the bus departs every `flush_every`, and one fsync carries everyone
//! aboard — the group-commit window is exposed as the
//! `eventlog.group_commit_wait_us` histogram.
//!
//! Ack discipline follows [`AckPolicy`]: `Immediate` acks are booked as
//! ledger guesses (basis: the unflushed tail), `OnFsync` acks wait for
//! the bus, `OnReplicate(n)` acks wait for `n` replicas to confirm the
//! bytes are on *their* disks. Replication ships only the leader's
//! **durable prefix**, so a leader crash can never retract an offset a
//! replica already holds.

use std::collections::HashMap;

use quicksand_core::uniquifier::{Uniquifier, UniquifierSource};
use quicksand_core::wire::{WireCodec, WireError};
use sim::{Actor, Context, NodeId, SimDuration, SimTime, SpanId};

use crate::log::{EventLog, LogConfig, RecoveryReport, StorageKind};
use crate::policy::AckPolicy;
use crate::record::Record;

/// Timer tag: the group-commit bus departs.
const TAG_FLUSH: u64 = 1;
/// Timer tag: producer issues its next append.
const TAG_NEXT: u64 = 2;
/// Timer tag: producer retry sweep.
const TAG_RETRY: u64 = 3;
/// Timer tag: consumer poll.
const TAG_POLL: u64 = 4;

/// Records per partition shipped to a replica per flush tick.
const REPLICATE_BATCH: usize = 64;
/// Records per partition served to a consumer per fetch.
const FETCH_BATCH: usize = 128;

/// Wire protocol of the event log. [`WireCodec`]-encoded so the same
/// actors serve TCP traffic under the wall-clock runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvMsg {
    /// Producer → leader: append `payload` under uniquifier `id`.
    Append {
        /// Unit-of-work identity: routing key, dedup key, compaction key.
        id: Uniquifier,
        /// Opaque record body.
        payload: Vec<u8>,
        /// Where the ack goes.
        resp_to: NodeId,
    },
    /// Leader → producer: `id` is accepted at `(partition, offset)`.
    /// *When* this fires relative to the fsync/replicate lag is the
    /// whole [`AckPolicy`] spectrum.
    Ack {
        /// The acked unit of work.
        id: Uniquifier,
        /// Partition the record landed in.
        partition: u32,
        /// Its partition-local offset.
        offset: u64,
    },
    /// Leader → replica: durable-prefix records to absorb.
    Replicate {
        /// Monotonic ship-batch number (tracing only).
        batch: u64,
        /// `(partition, record)` pairs, each already durable on the
        /// leader.
        recs: Vec<(u32, Record)>,
    },
    /// Replica → leader: per-partition durable watermarks after
    /// absorbing (and fsyncing) a batch.
    ReplicateAck {
        /// Echo of the batch number.
        batch: u64,
        /// `durable[p]` = offsets below this are durable on the replica.
        durable: Vec<u64>,
    },
    /// Consumer → leader: serve records past `group`'s committed
    /// offsets.
    Fetch {
        /// Consumer group name.
        group: String,
        /// Where the records go.
        resp_to: NodeId,
    },
    /// Leader → consumer: records of one partition.
    FetchResp {
        /// Partition these records belong to.
        partition: u32,
        /// Records in offset order.
        recs: Vec<Record>,
    },
    /// Consumer → leader: `group` has processed `partition` up to
    /// (exclusive) `upto`; durable with the next bus.
    Commit {
        /// Consumer group name.
        group: String,
        /// Partition being committed.
        partition: u32,
        /// First offset *not yet* processed.
        upto: u64,
    },
}

impl WireCodec for EvMsg {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            EvMsg::Append { id, payload, resp_to } => {
                0u8.encode(buf);
                id.encode(buf);
                payload.encode(buf);
                (resp_to.0 as u64).encode(buf);
            }
            EvMsg::Ack { id, partition, offset } => {
                1u8.encode(buf);
                id.encode(buf);
                partition.encode(buf);
                offset.encode(buf);
            }
            EvMsg::Replicate { batch, recs } => {
                2u8.encode(buf);
                batch.encode(buf);
                recs.encode(buf);
            }
            EvMsg::ReplicateAck { batch, durable } => {
                3u8.encode(buf);
                batch.encode(buf);
                durable.encode(buf);
            }
            EvMsg::Fetch { group, resp_to } => {
                4u8.encode(buf);
                group.encode(buf);
                (resp_to.0 as u64).encode(buf);
            }
            EvMsg::FetchResp { partition, recs } => {
                5u8.encode(buf);
                partition.encode(buf);
                recs.encode(buf);
            }
            EvMsg::Commit { group, partition, upto } => {
                6u8.encode(buf);
                group.encode(buf);
                partition.encode(buf);
                upto.encode(buf);
            }
        }
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(match u8::decode(buf)? {
            0 => EvMsg::Append {
                id: Uniquifier::decode(buf)?,
                payload: Vec::<u8>::decode(buf)?,
                resp_to: NodeId(u64::decode(buf)? as usize),
            },
            1 => EvMsg::Ack {
                id: Uniquifier::decode(buf)?,
                partition: u32::decode(buf)?,
                offset: u64::decode(buf)?,
            },
            2 => EvMsg::Replicate {
                batch: u64::decode(buf)?,
                recs: Vec::<(u32, Record)>::decode(buf)?,
            },
            3 => {
                EvMsg::ReplicateAck { batch: u64::decode(buf)?, durable: Vec::<u64>::decode(buf)? }
            }
            4 => EvMsg::Fetch {
                group: String::decode(buf)?,
                resp_to: NodeId(u64::decode(buf)? as usize),
            },
            5 => {
                EvMsg::FetchResp { partition: u32::decode(buf)?, recs: Vec::<Record>::decode(buf)? }
            }
            6 => EvMsg::Commit {
                group: String::decode(buf)?,
                partition: u32::decode(buf)?,
                upto: u64::decode(buf)?,
            },
            t => return Err(WireError::BadTag(t)),
        })
    }
}

/// An ack the broker owes but has not yet earned the right to send.
#[derive(Debug, Clone)]
struct ParkedAck {
    id: Uniquifier,
    partition: u32,
    offset: u64,
    resp_to: NodeId,
    appended_at: SimTime,
    /// Replica confirmations still required (0 = just the local bus).
    need_replicas: u32,
}

/// Broker configuration.
#[derive(Debug, Clone)]
pub struct BrokerConfig {
    /// Storage layout shared by every partition.
    pub log: LogConfig,
    /// When the broker may ack (the §4 spectrum).
    pub policy: AckPolicy,
    /// Group-commit bus period.
    pub flush_every: SimDuration,
    /// Run compaction every this many bus departures (0 = never).
    pub compact_every: u32,
}

impl Default for BrokerConfig {
    fn default() -> Self {
        BrokerConfig {
            log: LogConfig::default(),
            policy: AckPolicy::OnFsync,
            flush_every: SimDuration::from_millis(5),
            compact_every: 0,
        }
    }
}

/// The broker actor: a leader accepting appends (with replicas to ship
/// to), or a replica absorbing the leader's durable prefix.
pub struct EventLogNode<K: StorageKind> {
    cfg: BrokerConfig,
    /// Replicas this node ships to. Empty on replicas themselves.
    replicas: Vec<NodeId>,
    /// The log itself — the durable part of this actor. Survives
    /// [`Actor::on_crash`] the way a disk survives a process: only the
    /// fsynced prefix (plus a deterministic torn fragment) remains.
    log: EventLog<K>,

    // ---- volatile state below: wiped by on_crash ----
    /// Acks waiting on the bus and/or replica confirmations.
    parked: Vec<ParkedAck>,
    /// Open ledger guesses for records acked ahead of their durability,
    /// as `(span, partition, offset, acked_at)`.
    guesses: Vec<(SpanId, u32, u64, SimTime)>,
    /// Per-replica, per-partition durable watermarks last confirmed.
    confirmed: HashMap<NodeId, Vec<u64>>,
    /// Appends since the last bus departure (flush_records histogram).
    boarded: u64,
    /// Monotonic ship-batch counter (resets on crash; tracing only).
    batches: u64,
    /// Bus departures since the last compaction.
    flushes_since_compact: u32,
    /// What recovery cut, accumulated across restarts (read by
    /// harnesses and surfaced as metrics on restart).
    pub recovered: RecoveryReport,
    /// Stash for the report produced inside `on_crash` (no metrics
    /// there), drained into counters by `on_restart`.
    pending_report: Option<RecoveryReport>,
}

impl<K: StorageKind> EventLogNode<K> {
    /// A leader broker shipping to `replicas` (empty for none).
    pub fn leader(kind: K, cfg: BrokerConfig, replicas: Vec<NodeId>) -> Self {
        let (log, recovered) = EventLog::open(kind, cfg.log);
        EventLogNode {
            cfg,
            replicas,
            log,
            parked: Vec::new(),
            guesses: Vec::new(),
            confirmed: HashMap::new(),
            boarded: 0,
            batches: 0,
            flushes_since_compact: 0,
            recovered,
            pending_report: None,
        }
    }

    /// A replica broker: absorbs [`EvMsg::Replicate`], fsyncs, acks.
    pub fn replica(kind: K, cfg: BrokerConfig) -> Self {
        Self::leader(kind, cfg, Vec::new())
    }

    /// The underlying log (harness accounting).
    pub fn log(&self) -> &EventLog<K> {
        &self.log
    }

    /// Uniquifiers of every record the log holds, durable or not.
    pub fn held_ids(&self) -> Vec<Uniquifier> {
        let mut out = Vec::new();
        for p in 0..self.log.partitions() {
            out.extend(self.log.part(p).all_records().into_iter().filter_map(|r| r.key));
        }
        out
    }

    /// Uniquifiers of every record below the durable watermark — what
    /// this node can still vouch for after a crash.
    pub fn durable_ids(&self) -> Vec<Uniquifier> {
        let mut out = Vec::new();
        for p in 0..self.log.partitions() {
            let durable = self.log.durable_next(p);
            out.extend(
                self.log
                    .part(p)
                    .all_records()
                    .into_iter()
                    .filter(|r| r.offset < durable)
                    .filter_map(|r| r.key),
            );
        }
        out
    }

    /// Ledger guesses still open (Immediate acks the bus has not yet
    /// made true), as `(span, partition, offset)` — the harness settles
    /// them against ground truth once the run is over.
    pub fn open_guesses(&self) -> Vec<(SpanId, u32, u64)> {
        self.guesses.iter().map(|(g, p, off, _)| (*g, *p, *off)).collect()
    }

    /// How many replicas have confirmed `(partition, offset)` durable.
    fn replica_cover(&self, partition: u32, offset: u64) -> u32 {
        self.confirmed
            .values()
            .filter(|d| d.get(partition as usize).is_some_and(|&next| next > offset))
            .count() as u32
    }

    fn handle_append(
        &mut self,
        ctx: &mut Context<'_, EvMsg>,
        id: Uniquifier,
        payload: Vec<u8>,
        resp_to: NodeId,
    ) {
        let (partition, offset, fresh) = self.log.append(id, payload);
        if fresh {
            ctx.metrics().inc("eventlog.appends");
            self.boarded += 1;
        } else {
            ctx.metrics().inc("eventlog.dup_appends");
        }
        let durable = self.log.durable_next(partition) > offset;
        let need_replicas = match self.cfg.policy {
            AckPolicy::OnReplicate(n) => n.min(self.replicas.len() as u32),
            _ => 0,
        };
        match self.cfg.policy {
            AckPolicy::Immediate => {
                // Ack now; durability rides a later bus. The ledger
                // records the window: if the crash beats the bus, this
                // guess dies with the volatile state and the harness
                // books the apology.
                if fresh && !durable {
                    let g = ctx.begin_guess_basis(
                        "eventlog.append_ack",
                        "record in memory; fsync pending on the next bus",
                    );
                    self.guesses.push((g, partition, offset, ctx.now()));
                }
                ctx.send(resp_to, EvMsg::Ack { id, partition, offset });
            }
            AckPolicy::OnFsync | AckPolicy::OnReplicate(_) => {
                let satisfied = durable && self.replica_cover(partition, offset) >= need_replicas;
                if satisfied {
                    // A duplicate of something already earned: re-ack
                    // (the first ack may have been lost in the network).
                    ctx.send(resp_to, EvMsg::Ack { id, partition, offset });
                } else {
                    self.parked.push(ParkedAck {
                        id,
                        partition,
                        offset,
                        resp_to,
                        appended_at: ctx.now(),
                        need_replicas,
                    });
                }
            }
        }
    }

    /// The bus departs: fsync, settle guesses, release earned acks,
    /// ship the durable prefix, maybe compact.
    fn flush(&mut self, ctx: &mut Context<'_, EvMsg>) {
        let bytes = self.log.fsync();
        if bytes > 0 {
            ctx.metrics().inc("eventlog.fsyncs");
            ctx.metrics().record("eventlog.flush_bytes", bytes as f64);
            ctx.metrics().record("eventlog.flush_records", self.boarded as f64);
        }
        self.boarded = 0;
        self.settle_and_release(ctx);
        self.ship(ctx);
        if self.cfg.compact_every > 0 {
            self.flushes_since_compact += 1;
            if self.flushes_since_compact >= self.cfg.compact_every {
                self.flushes_since_compact = 0;
                let stats = self.log.compact();
                if stats.segments_rewritten > 0 {
                    ctx.metrics().inc("eventlog.compactions");
                    ctx.metrics().add("eventlog.compaction_dropped", stats.records_dropped);
                    ctx.metrics().add("eventlog.compaction_bytes", stats.bytes_reclaimed);
                }
            }
        }
        ctx.set_timer(self.cfg.flush_every, TAG_FLUSH);
    }

    /// Resolve Immediate-mode guesses the bus just made true and send
    /// every parked ack whose conditions are now met.
    fn settle_and_release(&mut self, ctx: &mut Context<'_, EvMsg>) {
        let durable: Vec<u64> =
            (0..self.log.partitions()).map(|p| self.log.durable_next(p)).collect();
        let mut open = Vec::new();
        for (g, partition, offset, acked_at) in self.guesses.drain(..) {
            if durable[partition as usize] > offset {
                let wait = ctx.now().saturating_since(acked_at);
                ctx.metrics().record("eventlog.ack_to_durable_us", wait.as_micros() as f64);
                ctx.resolve_guess(g, true);
            } else {
                open.push((g, partition, offset, acked_at));
            }
        }
        self.guesses = open;

        let mut still_parked = Vec::new();
        for p in std::mem::take(&mut self.parked) {
            let is_durable = durable[p.partition as usize] > p.offset;
            let covered = self.replica_cover(p.partition, p.offset) >= p.need_replicas;
            if is_durable && covered {
                let wait = ctx.now().saturating_since(p.appended_at);
                if p.need_replicas > 0 {
                    ctx.metrics().record("eventlog.replicate_wait_us", wait.as_micros() as f64);
                } else {
                    ctx.metrics().record("eventlog.group_commit_wait_us", wait.as_micros() as f64);
                }
                ctx.send(
                    p.resp_to,
                    EvMsg::Ack { id: p.id, partition: p.partition, offset: p.offset },
                );
            } else {
                still_parked.push(p);
            }
        }
        self.parked = still_parked;
    }

    /// Ship each replica the durable records past what it last
    /// confirmed. Re-ships every bus tick until confirmed — absorb is
    /// idempotent, so repetition is safe and survives either side
    /// crashing (the volatile `confirmed` map just starts over).
    fn ship(&mut self, ctx: &mut Context<'_, EvMsg>) {
        let replicas = self.replicas.clone();
        for r in replicas {
            let from = self.confirmed.get(&r).cloned();
            let mut recs = Vec::new();
            for p in 0..self.log.partitions() {
                let start = from.as_ref().and_then(|v| v.get(p as usize).copied()).unwrap_or(0);
                let durable = self.log.durable_next(p);
                for rec in self.log.read(p, start, REPLICATE_BATCH) {
                    if rec.offset >= durable {
                        break;
                    }
                    recs.push((p, rec));
                }
            }
            if recs.is_empty() {
                continue;
            }
            self.batches += 1;
            ctx.metrics().add("eventlog.replicated_records", recs.len() as u64);
            ctx.send(r, EvMsg::Replicate { batch: self.batches, recs });
        }
    }

    /// Replica side: absorb contiguous records, fsync immediately (a
    /// replica's whole point is durable receipt), report watermarks.
    fn absorb(
        &mut self,
        ctx: &mut Context<'_, EvMsg>,
        from: NodeId,
        batch: u64,
        recs: Vec<(u32, Record)>,
    ) {
        for (p, rec) in recs {
            if rec.offset == self.log.next_offset(p) {
                self.log.append_to(p, rec.key, rec.payload);
            }
            // Below next_offset: a re-shipped duplicate, skip. Above: a
            // gap from a stale leader view of our watermark; skip and
            // let our ack re-anchor the shipper.
        }
        self.log.fsync();
        let durable: Vec<u64> =
            (0..self.log.partitions()).map(|p| self.log.durable_next(p)).collect();
        ctx.metrics().inc("eventlog.replica_fsyncs");
        ctx.send(from, EvMsg::ReplicateAck { batch, durable });
    }

    fn handle_replicate_ack(
        &mut self,
        ctx: &mut Context<'_, EvMsg>,
        from: NodeId,
        durable: Vec<u64>,
    ) {
        self.confirmed.insert(from, durable);
        // Confirmations can release OnReplicate acks between bus ticks.
        self.settle_and_release(ctx);
    }

    fn serve_fetch(&mut self, ctx: &mut Context<'_, EvMsg>, group: &str, resp_to: NodeId) {
        ctx.metrics().inc("eventlog.fetches");
        for p in 0..self.log.partitions() {
            let from = self.log.committed(group, p).unwrap_or(0);
            let recs = self.log.read(p, from, FETCH_BATCH);
            if !recs.is_empty() {
                ctx.send(resp_to, EvMsg::FetchResp { partition: p, recs });
            }
        }
    }
}

impl<K: StorageKind + 'static> Actor<EvMsg> for EventLogNode<K> {
    fn on_start(&mut self, ctx: &mut Context<'_, EvMsg>) {
        ctx.set_timer(self.cfg.flush_every, TAG_FLUSH);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, EvMsg>, from: NodeId, msg: EvMsg) {
        match msg {
            EvMsg::Append { id, payload, resp_to } => self.handle_append(ctx, id, payload, resp_to),
            EvMsg::Replicate { batch, recs } => self.absorb(ctx, from, batch, recs),
            EvMsg::ReplicateAck { durable, .. } => self.handle_replicate_ack(ctx, from, durable),
            EvMsg::Fetch { group, resp_to } => self.serve_fetch(ctx, &group, resp_to),
            EvMsg::Commit { group, partition, upto } => {
                // Monotonic: a slow duplicate commit never rewinds the
                // group.
                if self.log.committed(&group, partition).is_none_or(|c| c < upto) {
                    self.log.commit_offset(&group, partition, upto);
                }
            }
            EvMsg::Ack { .. } | EvMsg::FetchResp { .. } => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, EvMsg>, tag: u64) {
        if tag == TAG_FLUSH {
            self.flush(ctx);
        }
    }

    fn on_crash(&mut self, now: SimTime) {
        // The process dies: volatile bookkeeping is gone (the span
        // guesses in `self.guesses` are orphaned by the ledger — the
        // apologies the harness will count). The log keeps its durable
        // prefix plus a deterministic torn fragment: no Context here
        // means no RNG, so derive the tear from the clock and the log's
        // shape.
        let torn = (now.as_micros() ^ self.log.byte_len()) % 23;
        let report = self.log.crash(torn);
        self.parked.clear();
        self.guesses.clear();
        self.confirmed.clear();
        self.boarded = 0;
        self.batches = 0;
        self.flushes_since_compact = 0;
        self.recovered.absorb(&report);
        self.pending_report = Some(report);
    }

    fn on_restart(&mut self, ctx: &mut Context<'_, EvMsg>) {
        if let Some(report) = self.pending_report.take() {
            ctx.metrics().inc("eventlog.recoveries");
            ctx.metrics().add("eventlog.truncated_bytes", report.truncated_bytes);
            ctx.metrics().add("eventlog.torn_segments", report.torn_segments);
        }
        ctx.set_timer(self.cfg.flush_every, TAG_FLUSH);
    }
}

/// A producer: keeps up to `window` appends in flight, retries on
/// silence with the *same* uniquifier (retries collapse server-side),
/// and records end-to-end ack latency.
#[derive(Debug)]
pub struct Producer {
    leader: NodeId,
    /// Appends to issue in total.
    total: u64,
    /// Max appends in flight (the batch-size axis of BENCH_7).
    window: usize,
    /// Mean think time between appends; zero keeps the window full.
    mean_interarrival: SimDuration,
    retry_timeout: SimDuration,
    ids: UniquifierSource,
    payload_bytes: usize,
    issued: u64,
    in_flight: HashMap<Uniquifier, (Vec<u8>, SimTime)>,
    /// Every acked append: `(id, issued_at, acked_at)`.
    pub acked: Vec<(Uniquifier, SimTime, SimTime)>,
}

impl Producer {
    /// A producer committing `total` appends of `payload_bytes` each.
    pub fn new(
        producer_id: u64,
        leader: NodeId,
        total: u64,
        window: usize,
        payload_bytes: usize,
        mean_interarrival: SimDuration,
        retry_timeout: SimDuration,
    ) -> Self {
        Producer {
            leader,
            total,
            window: window.max(1),
            mean_interarrival,
            retry_timeout,
            ids: UniquifierSource::new(producer_id),
            payload_bytes,
            issued: 0,
            in_flight: HashMap::new(),
            acked: Vec::new(),
        }
    }

    /// True once every append has been acked.
    pub fn done(&self) -> bool {
        self.acked.len() as u64 >= self.total
    }

    /// Uniquifiers of every acked append, in ack order.
    pub fn acked_ids(&self) -> Vec<Uniquifier> {
        self.acked.iter().map(|(id, _, _)| *id).collect()
    }

    fn issue_one(&mut self, ctx: &mut Context<'_, EvMsg>) {
        let id = self.ids.next_id();
        // Deterministic payload derived from the id, so a retry after a
        // crash resubmits byte-identical content.
        let mut payload = vec![0u8; self.payload_bytes.max(8)];
        payload[..8].copy_from_slice(&(id.as_raw() as u64).to_le_bytes());
        self.issued += 1;
        self.in_flight.insert(id, (payload.clone(), ctx.now()));
        let me = ctx.me();
        ctx.send(self.leader, EvMsg::Append { id, payload, resp_to: me });
    }

    fn refill(&mut self, ctx: &mut Context<'_, EvMsg>) {
        while self.issued < self.total && self.in_flight.len() < self.window {
            if self.mean_interarrival.is_zero() {
                self.issue_one(ctx);
            } else {
                let mean = self.mean_interarrival.as_micros() as f64;
                let d = SimDuration::from_micros(ctx.rng().exp_micros(mean));
                ctx.set_timer(d, TAG_NEXT);
                break;
            }
        }
    }
}

impl Actor<EvMsg> for Producer {
    fn on_start(&mut self, ctx: &mut Context<'_, EvMsg>) {
        self.refill(ctx);
        ctx.set_timer(self.retry_timeout, TAG_RETRY);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, EvMsg>, _from: NodeId, msg: EvMsg) {
        if let EvMsg::Ack { id, .. } = msg {
            if let Some((_, sent)) = self.in_flight.remove(&id) {
                let now = ctx.now();
                ctx.metrics().record(
                    "eventlog.producer_ack_us",
                    now.saturating_since(sent).as_micros() as f64,
                );
                self.acked.push((id, sent, now));
                self.refill(ctx);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, EvMsg>, tag: u64) {
        match tag {
            TAG_NEXT if self.issued < self.total && self.in_flight.len() < self.window => {
                self.issue_one(ctx);
                self.refill(ctx);
            }
            TAG_NEXT => {}
            TAG_RETRY => {
                // Resubmit anything in flight longer than the timeout,
                // unmodified (§7.7): the uniquifier makes it safe.
                let now = ctx.now();
                let stale: Vec<(Uniquifier, Vec<u8>)> = self
                    .in_flight
                    .iter()
                    .filter(|(_, (_, sent))| now.saturating_since(*sent) >= self.retry_timeout)
                    .map(|(id, (payload, _))| (*id, payload.clone()))
                    .collect();
                for (id, payload) in stale {
                    ctx.metrics().inc("eventlog.producer_retries");
                    let me = ctx.me();
                    ctx.send(self.leader, EvMsg::Append { id, payload, resp_to: me });
                }
                ctx.set_timer(self.retry_timeout, TAG_RETRY);
            }
            _ => {}
        }
    }
}

/// A consumer-group member: polls, dedups by uniquifier (the log is
/// at-least-once across broker crashes — committed offsets can rewind to
/// the last bus), commits progress back into the log.
#[derive(Debug)]
pub struct Consumer {
    leader: NodeId,
    group: String,
    poll_every: SimDuration,
    /// Partition → next offset we expect (mirror of our commits).
    position: HashMap<u32, u64>,
    /// Uniquifiers seen, in first-delivery order.
    pub seen: Vec<Uniquifier>,
    seen_set: std::collections::HashSet<Uniquifier>,
    /// Records delivered more than once (the price of at-least-once).
    pub redeliveries: u64,
}

impl Consumer {
    /// A member of `group` polling `leader`.
    pub fn new(leader: NodeId, group: &str, poll_every: SimDuration) -> Self {
        Consumer {
            leader,
            group: group.to_owned(),
            poll_every,
            position: HashMap::new(),
            seen: Vec::new(),
            seen_set: std::collections::HashSet::new(),
            redeliveries: 0,
        }
    }
}

impl Actor<EvMsg> for Consumer {
    fn on_start(&mut self, ctx: &mut Context<'_, EvMsg>) {
        ctx.set_timer(self.poll_every, TAG_POLL);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, EvMsg>, _from: NodeId, msg: EvMsg) {
        if let EvMsg::FetchResp { partition, recs } = msg {
            let Some(last) = recs.last() else { return };
            let upto = last.offset + 1;
            for rec in &recs {
                if let Some(id) = rec.key {
                    if self.seen_set.insert(id) {
                        self.seen.push(id);
                    } else {
                        self.redeliveries += 1;
                        ctx.metrics().inc("eventlog.consumer_redeliveries");
                    }
                }
            }
            self.position.insert(partition, upto);
            ctx.send(self.leader, EvMsg::Commit { group: self.group.clone(), partition, upto });
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, EvMsg>, tag: u64) {
        if tag == TAG_POLL {
            let me = ctx.me();
            ctx.send(self.leader, EvMsg::Fetch { group: self.group.clone(), resp_to: me });
            ctx.set_timer(self.poll_every, TAG_POLL);
        }
    }
}
