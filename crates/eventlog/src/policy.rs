//! When the broker may acknowledge an append — the paper's §4
//! asynchronous-checkpointing spectrum as one enum.
//!
//! The durability spectrum is *where the ack sits relative to the
//! fsync/ship lag*. Each policy names a point on it, and each point
//! prices in a different loss window the business must be prepared to
//! apologize for:
//!
//! | policy | ack when | loss window |
//! |---|---|---|
//! | [`AckPolicy::Immediate`] | append hits memory | unflushed tail on process crash |
//! | [`AckPolicy::OnFsync`] | local fsync covers it (the group-commit bus) | local disk destroyed |
//! | [`AckPolicy::OnReplicate`]`(n)` | `n` replicas confirm durable receipt | none the model can produce |
//!
//! Kafka speakers read `Immediate` as `acks=0`-ish, `OnFsync` as
//! `acks=leader` with forced flush, and `OnReplicate(n)` as `acks=all`
//! with `min.insync.replicas = n`.

/// When an append is acknowledged to its producer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AckPolicy {
    /// Ack as soon as the record is in the leader's memory; durability
    /// rides a later bus. Fastest, and the whole unflushed tail is the
    /// §4.2 loss window.
    Immediate,
    /// Ack once the local group-commit fsync covers the record. A
    /// process crash loses nothing acked; losing the leader's disk
    /// still loses everything unreplicated.
    OnFsync,
    /// Ack once `n` replicas confirm the record is durable *on their*
    /// disks (the leader's own fsync happens first — replication ships
    /// only the durable prefix). `OnReplicate(0)` degrades to
    /// [`AckPolicy::OnFsync`].
    OnReplicate(u32),
}

impl AckPolicy {
    /// True when the policy's contract allows an acked record to
    /// disappear in a process crash (the policy priced that window in).
    pub fn prices_in_crash_loss(self) -> bool {
        matches!(self, AckPolicy::Immediate)
    }

    /// True when the policy's contract allows an acked record to
    /// disappear with the leader's disk.
    pub fn prices_in_disk_loss(self) -> bool {
        match self {
            AckPolicy::Immediate | AckPolicy::OnFsync => true,
            AckPolicy::OnReplicate(n) => n == 0,
        }
    }

    /// Parse `"immediate"`, `"fsync"`, or `"replicate:N"` (CLI form).
    pub fn parse(s: &str) -> Option<AckPolicy> {
        match s {
            "immediate" => Some(AckPolicy::Immediate),
            "fsync" => Some(AckPolicy::OnFsync),
            _ => s
                .strip_prefix("replicate:")
                .and_then(|n| n.parse().ok())
                .map(AckPolicy::OnReplicate),
        }
    }
}

impl std::str::FromStr for AckPolicy {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, String> {
        AckPolicy::parse(s)
            .ok_or_else(|| format!("unknown ack policy {s:?} (immediate|fsync|replicate:N)"))
    }
}

impl std::fmt::Display for AckPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AckPolicy::Immediate => write!(f, "immediate"),
            AckPolicy::OnFsync => write!(f, "fsync"),
            AckPolicy::OnReplicate(n) => write!(f, "replicate:{n}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_display() {
        for p in [AckPolicy::Immediate, AckPolicy::OnFsync, AckPolicy::OnReplicate(2)] {
            assert_eq!(AckPolicy::parse(&p.to_string()), Some(p));
        }
        assert_eq!(AckPolicy::parse("bogus"), None);
    }

    #[test]
    fn the_spectrum_is_ordered() {
        assert!(AckPolicy::Immediate.prices_in_crash_loss());
        assert!(!AckPolicy::OnFsync.prices_in_crash_loss());
        assert!(AckPolicy::OnFsync.prices_in_disk_loss());
        assert!(!AckPolicy::OnReplicate(1).prices_in_disk_loss());
        assert!(AckPolicy::OnReplicate(0).prices_in_disk_loss());
    }

    #[test]
    fn from_str_rejects_everything_that_is_not_a_policy() {
        for bad in [
            "",
            " ",
            "Immediate", // case-sensitive: CLI forms are lowercase
            "FSYNC",
            "fsync ",
            " fsync",
            "replicate",
            "replicate:",
            "replicate:x",
            "replicate:-1",
            "replicate:1.5",
            "replicate:1 ",
            "replicate:99999999999999999999", // overflows u32
            "onfsync",
            "acks=all",
        ] {
            let err = bad.parse::<AckPolicy>().unwrap_err();
            assert!(err.contains(&format!("{bad:?}")), "error names the input: {err}");
            assert!(err.contains("immediate|fsync|replicate:N"), "error lists the forms: {err}");
        }
    }

    #[test]
    fn from_str_accepts_every_cli_form() {
        assert_eq!("immediate".parse::<AckPolicy>(), Ok(AckPolicy::Immediate));
        assert_eq!("fsync".parse::<AckPolicy>(), Ok(AckPolicy::OnFsync));
        assert_eq!("replicate:0".parse::<AckPolicy>(), Ok(AckPolicy::OnReplicate(0)));
        assert_eq!("replicate:2".parse::<AckPolicy>(), Ok(AckPolicy::OnReplicate(2)));
        assert_eq!(
            "replicate:4294967295".parse::<AckPolicy>(),
            Ok(AckPolicy::OnReplicate(u32::MAX))
        );
    }

    /// The full §4 truth table: what each point on the spectrum admits
    /// losing. `OnReplicate(0)` degrades to `OnFsync` — same row.
    #[test]
    fn loss_window_truth_table() {
        let table: [(AckPolicy, bool, bool); 5] = [
            // policy                      crash-loss  disk-loss
            (AckPolicy::Immediate, true, true),
            (AckPolicy::OnFsync, false, true),
            (AckPolicy::OnReplicate(0), false, true),
            (AckPolicy::OnReplicate(1), false, false),
            (AckPolicy::OnReplicate(2), false, false),
        ];
        for (policy, crash, disk) in table {
            assert_eq!(policy.prices_in_crash_loss(), crash, "{policy}: crash-loss window");
            assert_eq!(policy.prices_in_disk_loss(), disk, "{policy}: disk-loss window");
            // Crash loss implies disk loss: destroying the disk is
            // strictly worse than killing the process.
            assert!(!policy.prices_in_crash_loss() || policy.prices_in_disk_loss());
        }
    }
}
