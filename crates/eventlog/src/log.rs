//! Segments, partitions, and the log itself — everything between the
//! record codec and the actors.
//!
//! Layout follows the Kafka shape (PAPERS.md: Mohammad 2025) at model
//! scale: a log is `n` partitions; a partition is a list of **segments**
//! (byte stores scanned by [`crate::record::scan`] on recovery), of
//! which only the last accepts appends; records are addressed by a
//! dense partition-local **offset**; consumer groups persist their
//! committed offsets *in the log itself* — an internal compacted
//! partition keyed by a uniquifier derived from `(group, partition)`,
//! so offset durability rides the same fsync discipline as the data and
//! the compaction path is exercised by every committing consumer.
//!
//! Compaction (ISSUE 7 / ROADMAP 3: "log-compaction keyed by
//! uniquifier") rewrites **sealed** segments, keeping for every key only
//! its newest record (plus all unkeyed records). Offsets are stored in
//! each frame, so a compacted segment is sparse but still
//! offset-addressed; readers never notice beyond the gaps.

use std::collections::{BTreeMap, HashMap};
use std::path::{Path, PathBuf};

use quicksand_core::uniquifier::Uniquifier;
use quicksand_core::wire::{from_bytes, to_bytes};

use crate::record::{encode_frame, scan, Record};
use crate::storage::{FileStorage, MemStorage, Storage};

/// How a log obtains segment stores: the only engine-specific seam.
pub trait StorageKind {
    /// The storage this kind produces.
    type S: Storage;
    /// Create a fresh, empty segment store for `partition`, first
    /// offset `base`.
    fn create(&mut self, partition: &str, base: u64) -> Self::S;
    /// Pre-existing segment stores for `partition` (a previous process
    /// lifetime's files), as `(base, storage)` sorted by base. Empty
    /// for in-memory kinds.
    fn existing(&mut self, partition: &str) -> Vec<(u64, Self::S)>;
    /// Apply process-crash semantics to one segment store. In-memory
    /// kinds drop the unflushed tail (keeping `torn` stray bytes for
    /// recovery to cut); file kinds keep everything — bytes handed to
    /// the kernel survive an in-process fail-fast crash, and a real
    /// `kill -9` exercises the page-cache loss for them.
    fn crash_storage(storage: &mut Self::S, torn: u64) {
        let _ = (storage, torn);
    }
}

/// In-memory segments for the simulator. "Durability" is the
/// [`MemStorage`] watermark, crashed deterministically by the actor.
#[derive(Debug, Clone, Copy, Default)]
pub struct MemKind;

impl StorageKind for MemKind {
    type S = MemStorage;
    fn create(&mut self, _partition: &str, _base: u64) -> MemStorage {
        MemStorage::new()
    }
    fn existing(&mut self, _partition: &str) -> Vec<(u64, MemStorage)> {
        Vec::new()
    }
    fn crash_storage(storage: &mut MemStorage, torn: u64) {
        storage.crash(torn);
    }
}

/// One file per segment under `root/<partition>/<base>.seg`, for the
/// wall-clock runtime.
#[derive(Debug, Clone)]
pub struct DirKind {
    root: PathBuf,
}

impl DirKind {
    /// Segments live under `root`, one directory per partition.
    pub fn new(root: &Path) -> Self {
        DirKind { root: root.to_path_buf() }
    }

    fn seg_path(&self, partition: &str, base: u64) -> PathBuf {
        self.root.join(partition).join(format!("{base:020}.seg"))
    }
}

impl StorageKind for DirKind {
    type S = FileStorage;
    fn create(&mut self, partition: &str, base: u64) -> FileStorage {
        let dir = self.root.join(partition);
        std::fs::create_dir_all(&dir).expect("segment dir");
        FileStorage::open(&self.seg_path(partition, base)).expect("segment create")
    }
    fn existing(&mut self, partition: &str) -> Vec<(u64, FileStorage)> {
        let dir = self.root.join(partition);
        let Ok(entries) = std::fs::read_dir(&dir) else { return Vec::new() };
        let mut out = Vec::new();
        for e in entries.flatten() {
            let name = e.file_name().to_string_lossy().into_owned();
            if let Some(base) = name.strip_suffix(".seg").and_then(|b| b.parse::<u64>().ok()) {
                out.push((base, FileStorage::open(&e.path()).expect("segment open")));
            }
        }
        out.sort_by_key(|(b, _)| *b);
        out
    }
}

/// What recovery found and fixed while opening a log.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Records replayed from durable prefixes.
    pub records: u64,
    /// Bytes cut from torn tails.
    pub truncated_bytes: u64,
    /// Segments that ended in a torn or corrupt frame.
    pub torn_segments: u64,
    /// Of those, segments cut on a CRC/decode failure (bit damage or a
    /// full-length torn frame) rather than a short frame.
    pub corrupt_segments: u64,
}

impl RecoveryReport {
    /// Fold another report into this one (multi-partition recovery).
    pub fn absorb(&mut self, other: &RecoveryReport) {
        self.records += other.records;
        self.truncated_bytes += other.truncated_bytes;
        self.torn_segments += other.torn_segments;
        self.corrupt_segments += other.corrupt_segments;
    }
}

/// What one [`Partition::compact`] pass reclaimed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactionStats {
    /// Sealed segments rewritten.
    pub segments_rewritten: u64,
    /// Superseded records dropped.
    pub records_dropped: u64,
    /// Bytes reclaimed.
    pub bytes_reclaimed: u64,
}

impl CompactionStats {
    fn absorb(&mut self, other: CompactionStats) {
        self.segments_rewritten += other.segments_rewritten;
        self.records_dropped += other.records_dropped;
        self.bytes_reclaimed += other.bytes_reclaimed;
    }
}

/// One segment: a byte store plus the in-memory index of the records it
/// holds (rebuilt by scanning on recovery).
#[derive(Debug)]
struct Segment<S> {
    /// First offset this segment may hold.
    base: u64,
    storage: S,
    /// Records in offset order (sparse after compaction).
    records: Vec<Record>,
    /// Frame-end byte positions, parallel to `records`.
    ends: Vec<u64>,
}

impl<S: Storage> Segment<S> {
    fn fresh(base: u64, storage: S) -> Self {
        Segment { base, storage, records: Vec::new(), ends: Vec::new() }
    }

    /// Scan the storage's bytes, truncate any torn tail, and rebuild
    /// the in-memory index.
    fn recover(base: u64, mut storage: S, report: &mut RecoveryReport) -> Self {
        let scanned = scan(&storage.read_all());
        if scanned.truncated > 0 {
            storage.truncate(scanned.valid_len);
            report.truncated_bytes += scanned.truncated;
            report.torn_segments += 1;
            if scanned.corrupt {
                report.corrupt_segments += 1;
            }
        }
        report.records += scanned.records.len() as u64;
        Segment { base, storage, records: scanned.records, ends: scanned.ends }
    }

    /// Number of records fully covered by the durable watermark.
    fn durable_records(&self) -> usize {
        let d = self.storage.durable_len();
        self.ends.partition_point(|&e| e <= d)
    }

    fn append(&mut self, rec: Record) {
        let mut frame = Vec::new();
        encode_frame(&rec, &mut frame);
        self.storage.append(&frame);
        self.records.push(rec);
        self.ends.push(self.storage.len());
    }

    /// Offset one past the last record (or `base` when empty).
    fn next_offset(&self) -> u64 {
        self.records.last().map_or(self.base, |r| r.offset + 1)
    }
}

/// One partition: an ordered list of segments, the last of which is
/// active (accepting appends).
#[derive(Debug)]
pub struct Partition<S> {
    name: String,
    segments: Vec<Segment<S>>,
    /// Rotation threshold: the active segment seals once its byte store
    /// reaches this size.
    segment_bytes: u64,
}

impl<S: Storage> Partition<S> {
    /// Open the partition named `name`: recover any existing segments
    /// (scanning and truncating torn tails) or start a fresh one.
    pub fn open<K: StorageKind<S = S>>(
        kind: &mut K,
        name: &str,
        segment_bytes: u64,
        report: &mut RecoveryReport,
    ) -> Self {
        let mut segments: Vec<Segment<S>> = kind
            .existing(name)
            .into_iter()
            .map(|(base, storage)| Segment::recover(base, storage, report))
            .collect();
        if segments.is_empty() {
            segments.push(Segment::fresh(0, kind.create(name, 0)));
        }
        Partition { name: name.to_owned(), segments, segment_bytes: segment_bytes.max(1) }
    }

    /// The partition's name (its directory, for file-backed kinds).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Append a record, rotating the active segment first if it is
    /// full. Returns the assigned offset.
    pub fn append<K: StorageKind<S = S>>(
        &mut self,
        kind: &mut K,
        key: Option<Uniquifier>,
        payload: Vec<u8>,
    ) -> u64 {
        let offset = self.next_offset();
        let active = self.segments.last().expect("a partition always has an active segment");
        if active.storage.len() >= self.segment_bytes {
            let storage = kind.create(&self.name, offset);
            self.segments.push(Segment::fresh(offset, storage));
        }
        let seg = self.segments.last_mut().expect("active segment");
        seg.append(Record { offset, key, payload });
        offset
    }

    /// Offset the next append will get.
    pub fn next_offset(&self) -> u64 {
        self.segments.last().expect("active segment").next_offset()
    }

    /// Offsets strictly below this are durable (fsynced). The watermark
    /// stops at the first record not fully covered by its segment's
    /// durable length.
    pub fn durable_next(&self) -> u64 {
        let mut next = self.segments[0].base;
        for seg in &self.segments {
            let d = seg.durable_records();
            if d > 0 {
                next = seg.records[d - 1].offset + 1;
            }
            if d < seg.records.len() {
                break;
            }
        }
        next
    }

    /// Flush every segment; returns the bytes newly made durable.
    pub fn fsync(&mut self) -> u64 {
        self.segments.iter_mut().map(|s| s.storage.fsync()).sum()
    }

    /// Records with `offset >= from`, in offset order, up to `max`
    /// records.
    pub fn read_from(&self, from: u64, max: usize) -> Vec<Record> {
        let mut out = Vec::new();
        for seg in &self.segments {
            if seg.next_offset() <= from {
                continue;
            }
            for rec in &seg.records {
                if rec.offset >= from {
                    out.push(rec.clone());
                    if out.len() >= max {
                        return out;
                    }
                }
            }
        }
        out
    }

    /// Every record currently held, in offset order.
    pub fn all_records(&self) -> Vec<Record> {
        self.segments.iter().flat_map(|s| s.records.iter().cloned()).collect()
    }

    /// Total records held (post-compaction survivors).
    pub fn record_count(&self) -> usize {
        self.segments.iter().map(|s| s.records.len()).sum()
    }

    /// Number of segments (sealed + active).
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Total bytes across all segment stores.
    pub fn byte_len(&self) -> u64 {
        self.segments.iter().map(|s| s.storage.len()).sum()
    }

    /// Compact sealed segments: for every key, only the partition's
    /// newest record survives; unkeyed records always survive. The
    /// active segment is left alone (it is still being written), so a
    /// key's newest record is never dropped by a concurrent append.
    pub fn compact(&mut self) -> CompactionStats {
        let mut stats = CompactionStats::default();
        if self.segments.len() < 2 {
            return stats;
        }
        // Newest offset per key across the whole partition, active
        // segment included.
        let mut newest: HashMap<Uniquifier, u64> = HashMap::new();
        for seg in &self.segments {
            for rec in &seg.records {
                if let Some(k) = rec.key {
                    let e = newest.entry(k).or_insert(rec.offset);
                    *e = (*e).max(rec.offset);
                }
            }
        }
        let sealed = self.segments.len() - 1;
        for seg in &mut self.segments[..sealed] {
            let keep: Vec<Record> = seg
                .records
                .iter()
                .filter(|r| r.key.is_none_or(|k| newest[&k] == r.offset))
                .cloned()
                .collect();
            if keep.len() == seg.records.len() {
                continue;
            }
            let before = seg.storage.len();
            let mut bytes = Vec::new();
            let mut ends = Vec::new();
            for rec in &keep {
                encode_frame(rec, &mut bytes);
                ends.push(bytes.len() as u64);
            }
            // Rewrite in place: truncate, re-append, fsync. (A crash
            // mid-rewrite loses only already-superseded copies; the
            // newest version of every key lives in a later segment.)
            seg.storage.truncate(0);
            seg.storage.append(&bytes);
            seg.storage.fsync();
            stats.segments_rewritten += 1;
            stats.records_dropped += (seg.records.len() - keep.len()) as u64;
            stats.bytes_reclaimed += before - seg.storage.len();
            seg.records = keep;
            seg.ends = ends;
        }
        stats
    }
}

impl<S: Storage> Partition<S> {
    /// The owning process died: apply `crash` to each segment store
    /// (`torn` stray bytes allowed on the active one, modelling a
    /// half-written frame), then re-scan and truncate exactly as a
    /// restart would. Returns what recovery cut.
    fn crash_and_rescan(&mut self, crash: impl Fn(&mut S, u64), torn: u64) -> RecoveryReport {
        let mut report = RecoveryReport::default();
        let last = self.segments.len() - 1;
        for (i, seg) in self.segments.iter_mut().enumerate() {
            crash(&mut seg.storage, if i == last { torn } else { 0 });
            let scanned = scan(&seg.storage.read_all());
            if scanned.truncated > 0 {
                seg.storage.truncate(scanned.valid_len);
                report.truncated_bytes += scanned.truncated;
                report.torn_segments += 1;
                if scanned.corrupt {
                    report.corrupt_segments += 1;
                }
            }
            report.records += scanned.records.len() as u64;
            seg.records = scanned.records;
            seg.ends = scanned.ends;
        }
        // Drop empty trailing segments a crash may have gutted, keeping
        // at least one active.
        while self.segments.len() > 1 && self.segments.last().expect("nonempty").records.is_empty()
        {
            self.segments.pop();
        }
        report
    }
}

/// Configuration shared by every partition of a log.
#[derive(Debug, Clone, Copy)]
pub struct LogConfig {
    /// Data partitions.
    pub partitions: u32,
    /// Segment rotation threshold in bytes.
    pub segment_bytes: u64,
}

impl Default for LogConfig {
    fn default() -> Self {
        LogConfig { partitions: 2, segment_bytes: 64 * 1024 }
    }
}

/// Name of the internal partition holding consumer-group committed
/// offsets (compacted; keyed by `(group, partition)` uniquifier).
pub const OFFSETS_PARTITION: &str = "offsets";

/// The event log: `n` data partitions plus the internal offsets
/// partition, all on one [`StorageKind`].
#[derive(Debug)]
pub struct EventLog<K: StorageKind> {
    kind: K,
    parts: Vec<Partition<K::S>>,
    offsets: Partition<K::S>,
    /// Committed offsets by `(group, partition)`, materialized from the
    /// offsets partition.
    committed: BTreeMap<(String, u32), u64>,
    /// Dedup index: key → (partition, offset) of its newest record.
    /// Volatile — rebuilt from durable records on recovery, which is
    /// why an acked-but-lost append can be retried to a fresh offset.
    seen: HashMap<Uniquifier, (u32, u64)>,
}

impl<K: StorageKind> EventLog<K> {
    /// Open (or create) a log: recover every partition, truncating torn
    /// tails, and rematerialize committed offsets and the dedup index.
    pub fn open(mut kind: K, cfg: LogConfig) -> (Self, RecoveryReport) {
        let mut report = RecoveryReport::default();
        let parts: Vec<Partition<K::S>> = (0..cfg.partitions.max(1))
            .map(|p| Partition::open(&mut kind, &format!("p{p}"), cfg.segment_bytes, &mut report))
            .collect();
        let offsets = Partition::open(&mut kind, OFFSETS_PARTITION, cfg.segment_bytes, &mut report);
        let mut log =
            EventLog { kind, parts, offsets, committed: BTreeMap::new(), seen: HashMap::new() };
        log.rematerialize();
        (log, report)
    }

    fn rematerialize(&mut self) {
        self.seen.clear();
        for (p, part) in self.parts.iter().enumerate() {
            for rec in part.all_records() {
                if let Some(k) = rec.key {
                    self.seen.insert(k, (p as u32, rec.offset));
                }
            }
        }
        self.committed.clear();
        for rec in self.offsets.all_records() {
            if let Ok((group, (partition, upto))) = from_bytes::<(String, (u32, u64))>(&rec.payload)
            {
                // Later records supersede earlier ones (compaction may
                // not have run yet), so plain insert-in-order is right.
                self.committed.insert((group, partition), upto);
            }
        }
    }

    /// Data partition count.
    pub fn partitions(&self) -> u32 {
        self.parts.len() as u32
    }

    /// Route `key` to its partition (§5.4 role 1: the uniquifier is the
    /// partitioning key).
    pub fn partition_of(&self, key: Uniquifier) -> u32 {
        key.partition(self.parts.len()) as u32
    }

    /// Append a keyed record, routed by its uniquifier. Idempotent:
    /// re-appending a key already in the log returns the existing
    /// position without writing (§5.4 role 2 — retries collapse).
    pub fn append(&mut self, key: Uniquifier, payload: Vec<u8>) -> (u32, u64, bool) {
        if let Some(&(p, off)) = self.seen.get(&key) {
            return (p, off, false);
        }
        let p = self.partition_of(key);
        let off = self.parts[p as usize].append(&mut self.kind, Some(key), payload);
        self.seen.insert(key, (p, off));
        (p, off, true)
    }

    /// Append to an explicit partition (unkeyed or externally routed).
    pub fn append_to(&mut self, partition: u32, key: Option<Uniquifier>, payload: Vec<u8>) -> u64 {
        let off = self.parts[partition as usize].append(&mut self.kind, key, payload);
        if let Some(k) = key {
            self.seen.insert(k, (partition, off));
        }
        off
    }

    /// Where `key`'s newest record lives, if anywhere.
    pub fn lookup(&self, key: Uniquifier) -> Option<(u32, u64)> {
        self.seen.get(&key).copied()
    }

    /// One data partition, by index.
    pub fn part(&self, partition: u32) -> &Partition<K::S> {
        &self.parts[partition as usize]
    }

    /// Records of `partition` from `from`, at most `max`.
    pub fn read(&self, partition: u32, from: u64, max: usize) -> Vec<Record> {
        self.parts[partition as usize].read_from(from, max)
    }

    /// Next offset of `partition`.
    pub fn next_offset(&self, partition: u32) -> u64 {
        self.parts[partition as usize].next_offset()
    }

    /// Durable watermark of `partition`.
    pub fn durable_next(&self, partition: u32) -> u64 {
        self.parts[partition as usize].durable_next()
    }

    /// Flush everything (data + offsets). Returns bytes newly durable —
    /// the size of the "city bus" that just departed.
    pub fn fsync(&mut self) -> u64 {
        let mut bytes = self.offsets.fsync();
        for p in &mut self.parts {
            bytes += p.fsync();
        }
        bytes
    }

    /// Record that `group` has consumed `partition` up to (exclusive)
    /// `upto`. Durable with the next fsync; compaction keeps only the
    /// newest commit per `(group, partition)`.
    pub fn commit_offset(&mut self, group: &str, partition: u32, upto: u64) {
        let key = Uniquifier::derived_from_fields(&[
            b"offsets",
            group.as_bytes(),
            &partition.to_le_bytes(),
        ]);
        let payload = to_bytes(&(group.to_owned(), (partition, upto)));
        self.offsets.append(&mut self.kind, Some(key), payload);
        self.committed.insert((group.to_owned(), partition), upto);
    }

    /// The committed offset for `(group, partition)`, if any.
    pub fn committed(&self, group: &str, partition: u32) -> Option<u64> {
        self.committed.get(&(group.to_owned(), partition)).copied()
    }

    /// Compact every partition (offsets included — that one compacts
    /// down to one record per consumer group and partition).
    pub fn compact(&mut self) -> CompactionStats {
        let mut stats = self.offsets.compact();
        for p in &mut self.parts {
            stats.absorb(p.compact());
        }
        stats
    }

    /// Total records across data partitions.
    pub fn record_count(&self) -> usize {
        self.parts.iter().map(|p| p.record_count()).sum()
    }

    /// Total bytes across all partitions (offsets included).
    pub fn byte_len(&self) -> u64 {
        self.parts.iter().map(|p| p.byte_len()).sum::<u64>() + self.offsets.byte_len()
    }

    /// Total segments across data partitions.
    pub fn segment_count(&self) -> usize {
        self.parts.iter().map(|p| p.segment_count()).sum()
    }
}

impl<K: StorageKind> EventLog<K> {
    /// The owning process crashed fail-fast: apply the kind's crash
    /// semantics to every segment store (in-memory kinds lose unflushed
    /// tails; file kinds keep kernel-held bytes), re-scan, truncate
    /// torn tails, and rebuild the volatile indexes from survivors.
    pub fn crash(&mut self, torn: u64) -> RecoveryReport {
        let mut report = self.offsets.crash_and_rescan(K::crash_storage, 0);
        for p in &mut self.parts {
            report.absorb(&p.crash_and_rescan(K::crash_storage, torn));
        }
        self.rematerialize();
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem_log(partitions: u32, segment_bytes: u64) -> EventLog<MemKind> {
        EventLog::open(MemKind, LogConfig { partitions, segment_bytes }).0
    }

    fn key(i: u64) -> Uniquifier {
        Uniquifier::derived_from_fields(&[b"k", &i.to_le_bytes()])
    }

    #[test]
    fn appends_are_offset_dense_per_partition_and_idempotent() {
        let mut log = mem_log(4, 1024);
        let mut per_part: BTreeMap<u32, u64> = BTreeMap::new();
        for i in 0..100u64 {
            let (p, off, fresh) = log.append(key(i), vec![i as u8]);
            assert!(fresh);
            let next = per_part.entry(p).or_insert(0);
            assert_eq!(off, *next, "offsets are dense per partition");
            *next += 1;
        }
        // Retries collapse to the original position.
        let before = log.record_count();
        let (_, _, fresh) = log.append(key(17), vec![0xFF]);
        assert!(!fresh);
        assert_eq!(log.record_count(), before);
    }

    #[test]
    fn rotation_seals_segments_at_the_byte_threshold() {
        let mut log = mem_log(1, 64);
        for i in 0..40u64 {
            log.append_to(0, Some(key(i)), vec![0; 16]);
        }
        assert!(log.part(0).segment_count() > 1, "64-byte segments must rotate");
        // Reads still span segments in offset order.
        let recs = log.read(0, 0, usize::MAX);
        assert_eq!(recs.len(), 40);
        assert!(recs.windows(2).all(|w| w[0].offset < w[1].offset));
    }

    #[test]
    fn durable_watermark_advances_only_on_fsync() {
        let mut log = mem_log(1, 1024);
        for i in 0..10u64 {
            log.append_to(0, Some(key(i)), vec![1, 2, 3]);
        }
        assert_eq!(log.durable_next(0), 0, "nothing flushed yet");
        assert!(log.fsync() > 0);
        assert_eq!(log.durable_next(0), 10);
        log.append_to(0, Some(key(10)), vec![4]);
        assert_eq!(log.durable_next(0), 10, "the new append rides the next bus");
    }

    #[test]
    fn crash_drops_the_unflushed_tail_and_recovery_cuts_torn_bytes() {
        let mut log = mem_log(1, 1024);
        for i in 0..5u64 {
            log.append_to(0, Some(key(i)), vec![7; 8]);
        }
        log.fsync();
        for i in 5..9u64 {
            log.append_to(0, Some(key(i)), vec![9; 8]);
        }
        let report = log.crash(3); // 3 stray bytes of a torn frame
        assert_eq!(log.next_offset(0), 5, "unflushed appends are gone");
        assert_eq!(report.truncated_bytes, 3, "the torn fragment was cut");
        assert_eq!(report.torn_segments, 1);
        // The dedup index reflects only survivors: a retry re-appends.
        let (_, off, fresh) = log.append(key(7), vec![9; 8]);
        assert!(fresh, "the lost record's key is free again");
        assert_eq!(log.lookup(key(7)), Some((0, off)));
    }

    #[test]
    fn compaction_keeps_only_the_newest_record_per_key() {
        let mut log = mem_log(1, 128);
        // Three generations of the same 4 keys, forcing several
        // segments.
        for generation in 0..3u64 {
            for k in 0..4u64 {
                log.append_to(0, Some(key(k)), vec![generation as u8; 24]);
            }
        }
        log.fsync();
        let before = log.record_count();
        assert_eq!(before, 12);
        let stats = log.compact();
        assert!(stats.records_dropped > 0, "{stats:?}");
        assert!(stats.bytes_reclaimed > 0);
        // Every key still resolves, to its newest generation.
        let survivors = log.read(0, 0, usize::MAX);
        for k in 0..4u64 {
            let newest = survivors
                .iter()
                .filter(|r| r.key == Some(key(k)))
                .max_by_key(|r| r.offset)
                .expect("key survives compaction");
            assert_eq!(newest.payload[0], 2, "newest generation survives");
        }
        // Offsets remain addressable: reading from an arbitrary offset
        // returns only records at or past it.
        let tail = log.read(0, 9, usize::MAX);
        assert!(tail.iter().all(|r| r.offset >= 9));
        assert_eq!(tail.len(), 3, "the newest generation sits at offsets 8..12");
    }

    #[test]
    fn committed_offsets_survive_crash_and_compaction() {
        let mut log = mem_log(2, 256);
        for upto in [3u64, 7, 12] {
            log.commit_offset("readers", 0, upto);
            log.commit_offset("readers", 1, upto + 1);
        }
        log.commit_offset("audit", 0, 2);
        log.fsync();
        log.compact();
        assert_eq!(log.committed("readers", 0), Some(12));
        assert_eq!(log.committed("readers", 1), Some(13));
        assert_eq!(log.committed("audit", 0), Some(2));
        // Crash: committed offsets were fsynced, so they come back.
        log.crash(0);
        assert_eq!(log.committed("readers", 0), Some(12));
        assert_eq!(log.committed("audit", 0), Some(2));
        assert_eq!(log.committed("nobody", 0), None);
    }

    #[test]
    fn file_backed_log_recovers_across_reopen() {
        let root = std::env::temp_dir().join(format!("evlog-reopen-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let cfg = LogConfig { partitions: 2, segment_bytes: 256 };
        let mut acked = Vec::new();
        {
            let (mut log, rep) = EventLog::open(DirKind::new(&root), cfg);
            assert_eq!(rep, RecoveryReport::default());
            for i in 0..30u64 {
                let (p, off, _) = log.append(key(i), format!("val-{i}").into_bytes());
                acked.push((key(i), p, off));
            }
            log.fsync();
            log.commit_offset("g", 0, 5);
            log.fsync();
        }
        // Simulate a torn tail: stray bytes appended to partition 0's
        // last segment file after the process died.
        let p0 = root.join("p0");
        let mut segs: Vec<_> = std::fs::read_dir(&p0).unwrap().flatten().collect();
        segs.sort_by_key(|e| e.file_name());
        {
            use std::io::Write;
            let mut f =
                std::fs::OpenOptions::new().append(true).open(segs.last().unwrap().path()).unwrap();
            f.write_all(&[0xDE, 0xAD, 0xBE]).unwrap();
        }
        let (log, rep) = EventLog::open(DirKind::new(&root), cfg);
        assert_eq!(rep.truncated_bytes, 3, "{rep:?}");
        assert_eq!(rep.torn_segments, 1);
        for (k, p, off) in &acked {
            assert_eq!(log.lookup(*k), Some((*p, *off)), "acked record lost on reopen");
        }
        assert_eq!(log.committed("g", 0), Some(5));
        std::fs::remove_dir_all(&root).unwrap();
    }
}
