//! Dots and causal contexts: the bookkeeping that makes observed-remove
//! semantics possible.
//!
//! A [`Dot`] is one write event, named by `(replica, counter)` — a
//! uniquifier (§5.4) specialized to CRDT internals. A [`DotContext`] is a
//! *set of dots* a replica has observed, stored compactly: a per-replica
//! contiguous prefix (the "compact clock") plus a cloud of out-of-order
//! stragglers that folds into the prefix as gaps fill. Dot-store CRDTs
//! ([`crate::MVRegister`], [`crate::ORSet`]) pair live dots with a
//! context of *everything ever seen*, so a merge can distinguish "you
//! haven't seen this add yet" (keep it) from "you saw it and removed it"
//! (drop it) — the distinction the §6.4 shopping-cart anomaly turns on.

use std::collections::{BTreeMap, BTreeSet};

use quicksand_core::{WireCodec, WireError};

/// One write event: `counter`-th write by `replica`. Totally ordered
/// (by replica, then counter) so dot stores have a canonical layout.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Dot {
    /// The replica that minted the dot.
    pub replica: u64,
    /// 1-based sequence number within that replica.
    pub counter: u64,
}

impl Dot {
    /// Construct a dot.
    pub fn new(replica: u64, counter: u64) -> Self {
        Dot { replica, counter }
    }
}

/// A compactly-stored set of observed [`Dot`]s.
///
/// Invariant: `clock[r] = n` means every dot `(r, 1..=n)` is in the set;
/// `cloud` holds only dots beyond their replica's contiguous prefix and
/// is re-compacted after every mutation, so equal dot sets always
/// compare equal structurally.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DotContext {
    clock: BTreeMap<u64, u64>,
    cloud: BTreeSet<Dot>,
}

impl DotContext {
    /// The empty context.
    pub fn new() -> Self {
        DotContext::default()
    }

    /// True if `dot` has been observed.
    pub fn contains(&self, dot: &Dot) -> bool {
        self.clock.get(&dot.replica).copied().unwrap_or(0) >= dot.counter
            || self.cloud.contains(dot)
    }

    /// Mint the next dot for `replica` and record it as observed. Only
    /// the replica itself mints its dots, so they are always contiguous
    /// locally and land directly in the compact clock.
    pub fn next_dot(&mut self, replica: u64) -> Dot {
        let c = self.clock.entry(replica).or_insert(0);
        *c += 1;
        Dot { replica, counter: *c }
    }

    /// Record an observed dot (possibly out of order).
    pub fn insert(&mut self, dot: Dot) {
        if !self.contains(&dot) {
            self.cloud.insert(dot);
            self.compact();
        }
    }

    /// Union with another context (the join of two observation sets).
    pub fn join(&mut self, other: &DotContext) {
        for (&r, &n) in &other.clock {
            let c = self.clock.entry(r).or_insert(0);
            *c = (*c).max(n);
        }
        self.cloud.extend(other.cloud.iter().copied());
        self.compact();
    }

    /// Fold cloud dots that now extend a contiguous prefix into the
    /// compact clock, and drop cloud dots the clock already covers. One
    /// ordered pass suffices: the cloud is sorted by (replica, counter),
    /// so each replica's stragglers are visited in ascending order.
    fn compact(&mut self) {
        let cloud = std::mem::take(&mut self.cloud);
        for dot in cloud {
            let seen = self.clock.get(&dot.replica).copied().unwrap_or(0);
            if dot.counter == seen + 1 {
                self.clock.insert(dot.replica, dot.counter);
            } else if dot.counter > seen {
                self.cloud.insert(dot);
            }
        }
    }

    /// Estimated serialized size: 16 bytes per clock entry and per cloud
    /// dot.
    pub fn wire_size(&self) -> usize {
        (self.clock.len() + self.cloud.len()) * 16
    }
}

impl WireCodec for Dot {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.replica.encode(buf);
        self.counter.encode(buf);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(Dot { replica: u64::decode(buf)?, counter: u64::decode(buf)? })
    }
}

/// Wire form: compact clock then cloud. A decoded context is
/// re-compacted so a peer cannot ship a denormalized one (cloud dots
/// the clock already covers) and break structural equality.
impl WireCodec for DotContext {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.clock.encode(buf);
        self.cloud.encode(buf);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        let mut ctx = DotContext { clock: BTreeMap::decode(buf)?, cloud: BTreeSet::decode(buf)? };
        ctx.compact();
        Ok(ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_dot_is_contiguous_per_replica() {
        let mut ctx = DotContext::new();
        assert_eq!(ctx.next_dot(7), Dot::new(7, 1));
        assert_eq!(ctx.next_dot(7), Dot::new(7, 2));
        assert_eq!(ctx.next_dot(3), Dot::new(3, 1));
        assert!(ctx.contains(&Dot::new(7, 2)));
        assert!(!ctx.contains(&Dot::new(7, 3)));
    }

    #[test]
    fn out_of_order_inserts_compact_when_the_gap_fills() {
        let mut ctx = DotContext::new();
        ctx.insert(Dot::new(1, 3));
        ctx.insert(Dot::new(1, 2));
        assert!(ctx.contains(&Dot::new(1, 2)));
        assert!(!ctx.contains(&Dot::new(1, 1)));
        // Cloud holds two stragglers: 16 bytes each, no clock entry yet.
        assert_eq!(ctx.wire_size(), 32);
        ctx.insert(Dot::new(1, 1));
        // 1,2,3 collapse into one clock entry.
        assert_eq!(ctx.wire_size(), 16);
        assert!(ctx.contains(&Dot::new(1, 3)));
    }

    #[test]
    fn join_unions_observations() {
        let mut a = DotContext::new();
        a.next_dot(1);
        a.next_dot(1);
        let mut b = DotContext::new();
        b.next_dot(2);
        b.insert(Dot::new(1, 3));
        a.join(&b);
        assert!(a.contains(&Dot::new(1, 3)), "gap 1..=2 filled by a's own prefix");
        assert!(a.contains(&Dot::new(2, 1)));
        // Fully compact: two clock entries, empty cloud.
        assert_eq!(a.wire_size(), 32);
    }

    #[test]
    fn join_is_idempotent_and_commutative() {
        let mut a = DotContext::new();
        a.next_dot(1);
        a.insert(Dot::new(3, 9));
        let mut b = DotContext::new();
        b.next_dot(2);
        b.insert(Dot::new(3, 2));
        let mut ab = a.clone();
        ab.join(&b);
        let mut ba = b.clone();
        ba.join(&a);
        assert_eq!(ab, ba);
        let mut abb = ab.clone();
        abb.join(&b);
        assert_eq!(abb, ab);
    }
}
