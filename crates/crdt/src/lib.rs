//! Delta-state CRDTs: the paper's ACID 2.0 (§8) made first-class.
//!
//! §6 of *Building on Quicksand* argues that once a system accepts work
//! on both sides of a partition, the only durable discipline is state
//! whose merge is **A**ssociative, **C**ommutative, **I**dempotent, and
//! **D**istributed. The rest of this workspace hand-rolls that
//! discipline in several places — the cart's op-log union, the bank's
//! ledger, Dynamo's vector clocks. This crate extracts the pattern into
//! a trait pair and a menagerie of standard conflict-free replicated
//! data types:
//!
//! - [`Crdt`] — a join-semilattice: `merge` is the lattice join.
//! - [`DeltaCrdt`] — the delta-state refinement (Almeida et al.): every
//!   mutator returns a small *delta* in the same lattice, so
//!   anti-entropy can ship recent fragments instead of whole states.
//! - [`GCounter`], [`PNCounter`] — grow-only / up-down counters (§6.2's
//!   "accounting is done with operations, not states").
//! - [`LWWRegister`] — last-writer-wins, the *lossy* merge the paper
//!   warns about: commutative because it discards.
//! - [`MVRegister`] — multi-value register; keeps every concurrent
//!   write, exactly Dynamo's sibling semantics in miniature.
//! - [`ORSet`] — the add-wins observed-remove set that fixes the §6.4
//!   reappearing-delete anomaly: a remove only kills the add *instances*
//!   it observed, so replaying history in a different order cannot
//!   resurrect a deleted item.
//! - [`Replicated`] — a generic sim actor that replicates any
//!   [`DeltaCrdt`] by periodic delta-shipping anti-entropy with
//!   full-state fallback, instrumented with spans and bytes-on-wire
//!   metrics.
//!
//! The merge laws themselves are checkable: [`check_merge_laws`] takes
//! sample states and verifies commutativity, associativity, and
//! idempotence — the property tests run it over every type here, plus
//! `dynamo::VectorClock` and `quicksand_core::op::OpLog`.

#![forbid(unsafe_code)]

pub mod ctx;
pub mod harness;
pub mod orset;
pub mod registers;
pub mod replicated;

mod counters;

pub use counters::{GCounter, PNCounter};
pub use ctx::{Dot, DotContext};
pub use harness::{run_orset_replication, ReplicationReport, ReplicationScenario};
pub use orset::ORSet;
pub use registers::{LWWRegister, MVRegister};
pub use replicated::{CrdtMsg, Mutator, Replicated, ReplicatedConfig, ShipMode};

use quicksand_core::op::{OpLog, Operation};

/// A state-based CRDT: a join-semilattice whose [`Crdt::merge`] is the
/// lattice join.
///
/// Implementations must satisfy the ACID 2.0 merge laws (§8):
///
/// - **commutative** — `a ⊔ b == b ⊔ a`
/// - **associative** — `(a ⊔ b) ⊔ c == a ⊔ (b ⊔ c)`
/// - **idempotent** — `a ⊔ a == a`
///
/// which together make replication order- and duplication-proof: any
/// gossip schedule that eventually delivers everything converges every
/// replica to the same state. [`check_merge_laws`] verifies the laws
/// over concrete samples.
pub trait Crdt: Clone + std::fmt::Debug {
    /// Join `other` into `self` (the lattice least upper bound).
    fn merge(&mut self, other: &Self);

    /// Estimated serialized size in bytes. The workspace has no real
    /// serializer, so anti-entropy accounting (bytes-on-wire metrics)
    /// uses this structural estimate instead.
    fn wire_size(&self) -> usize;

    /// Owning variant of [`Crdt::merge`], convenient in folds.
    fn joined(mut self, other: &Self) -> Self
    where
        Self: Sized,
    {
        self.merge(other);
        self
    }
}

/// A delta-state CRDT (Almeida et al., *Approaches to Conflict-free
/// Replicated Data Types*): mutators return **deltas** — small states in
/// the same (or a compatible) lattice — such that applying the delta to
/// the pre-state reproduces the mutation. Replicas buffer the deltas
/// they originate and ship joined *delta groups* instead of full states;
/// [`Replicated`] implements that protocol.
pub trait DeltaCrdt: Crdt + Default {
    /// The type of delta fragments. For every type in this crate the
    /// delta lattice is the state lattice itself (`Delta = Self`), the
    /// common case in the literature.
    type Delta: Crdt + Default;

    /// Apply a delta produced by a mutator (possibly on another
    /// replica). Must equal the lattice join when `Delta = Self`.
    fn apply_delta(&mut self, delta: &Self::Delta);
}

/// Verify the ACID 2.0 merge laws over concrete samples. Returns the
/// first violated law as an error message naming the offending indices.
///
/// Checks every ordered pair for commutativity, every pair for
/// idempotent re-merge (`(a ⊔ b) ⊔ b == a ⊔ b`, which subsumes
/// `a ⊔ a == a`), and — bounded to the first 8 samples to keep property
/// tests fast — every triple for associativity.
pub fn check_merge_laws<C: Crdt + PartialEq>(samples: &[C]) -> Result<(), String> {
    for (i, a) in samples.iter().enumerate() {
        let aa = a.clone().joined(a);
        if aa != *a {
            return Err(format!("idempotence violated: sample {i} ⊔ itself changed it"));
        }
        for (j, b) in samples.iter().enumerate() {
            let ab = a.clone().joined(b);
            let ba = b.clone().joined(a);
            if ab != ba {
                return Err(format!("commutativity violated for samples ({i}, {j})"));
            }
            let abb = ab.clone().joined(b);
            if abb != ab {
                return Err(format!("idempotent re-merge violated for samples ({i}, {j})"));
            }
        }
    }
    let bound = samples.len().min(8);
    for (i, a) in samples[..bound].iter().enumerate() {
        for (j, b) in samples[..bound].iter().enumerate() {
            for (k, c) in samples[..bound].iter().enumerate() {
                let left = a.clone().joined(b).joined(c);
                let right = a.clone().joined(&b.clone().joined(c));
                if left != right {
                    return Err(format!("associativity violated for samples ({i}, {j}, {k})"));
                }
            }
        }
    }
    Ok(())
}

/// The op-log (§6.5) *is* a CRDT: merge is set union keyed by
/// uniquifier, which is commutative, associative, and idempotent — the
/// original ACID 2.0 structure in the workspace. This impl lets op-log
/// values flow through generic CRDT machinery (e.g. Dynamo sibling
/// squashing) unchanged.
impl<O: Operation + std::fmt::Debug> Crdt for OpLog<O> {
    fn merge(&mut self, other: &Self) {
        OpLog::merge(self, other);
    }

    fn wire_size(&self) -> usize {
        // 16 bytes of uniquifier plus a nominal 16-byte payload per op.
        self.len() * 32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn law_checker_accepts_a_real_lattice() {
        let mut a = GCounter::new();
        a.inc(1, 3);
        let mut b = GCounter::new();
        b.inc(2, 5);
        let mut c = a.clone();
        c.inc(2, 1);
        check_merge_laws(&[GCounter::new(), a, b, c]).unwrap();
    }

    #[test]
    fn law_checker_rejects_a_non_idempotent_merge() {
        // A counter whose "merge" adds is commutative + associative but
        // not idempotent — the classic ACID 2.0 mistake.
        #[derive(Clone, Debug, PartialEq)]
        struct Summing(u64);
        impl Crdt for Summing {
            fn merge(&mut self, other: &Self) {
                self.0 += other.0;
            }
            fn wire_size(&self) -> usize {
                8
            }
        }
        let err = check_merge_laws(&[Summing(1), Summing(2)]).unwrap_err();
        assert!(err.contains("idempotence"), "{err}");
    }

    #[test]
    fn oplog_merges_as_a_crdt() {
        use quicksand_core::acid2::examples::CounterAdd;
        let mut a: OpLog<CounterAdd> = OpLog::new();
        let mut b: OpLog<CounterAdd> = OpLog::new();
        a.record(CounterAdd::new(1, 10));
        b.record(CounterAdd::new(2, -4));
        Crdt::merge(&mut a, &b);
        assert_eq!(a.materialize(), 6);
        assert!(a.wire_size() >= 2 * 32);
    }
}
