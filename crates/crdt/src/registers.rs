//! Replicated registers: two answers to "WRITE is not commutative"
//! (§6.4).
//!
//! [`LWWRegister`] makes writes commute by *discarding* — the merge
//! keeps whichever write carries the larger timestamp, silently losing
//! the other. That is exactly the lossy behaviour the paper warns
//! against for business data, but it is cheap and sometimes right
//! (caches, presence flags). [`MVRegister`] makes the loss visible
//! instead: concurrent writes are all kept, and the reader sees the
//! set of siblings — Dynamo's reconciliation semantics as a single
//! register.

use std::collections::BTreeMap;
use std::fmt::Debug;

use crate::ctx::{Dot, DotContext};
use crate::{Crdt, DeltaCrdt};

/// Last-writer-wins register: the merge keeps the write with the
/// largest `(timestamp, replica)` pair. Ties on timestamp break by
/// replica id, so the merge stays deterministic and commutative.
///
/// The `(timestamp, replica)` pair is the total order, so it must name
/// a unique write: a replica that reuses a timestamp for two different
/// values breaks commutativity (whichever value merges second sticks).
/// Keep per-replica timestamps monotonic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LWWRegister<T> {
    slot: Option<(u64, u64, T)>,
}

impl<T> Default for LWWRegister<T> {
    fn default() -> Self {
        LWWRegister { slot: None }
    }
}

impl<T: Clone + Debug> LWWRegister<T> {
    /// The empty register.
    pub fn new() -> Self {
        LWWRegister { slot: None }
    }

    /// Write `value` at `(timestamp, replica)`, returning the delta. A
    /// write that loses to the current contents still returns a delta
    /// (shipping it is harmless: merges discard it everywhere).
    pub fn write(&mut self, timestamp: u64, replica: u64, value: T) -> LWWRegister<T> {
        let delta = LWWRegister { slot: Some((timestamp, replica, value)) };
        self.merge(&delta);
        delta
    }

    /// The current value, if any write has been observed.
    pub fn get(&self) -> Option<&T> {
        self.slot.as_ref().map(|(_, _, v)| v)
    }

    /// The `(timestamp, replica)` of the winning write.
    pub fn version(&self) -> Option<(u64, u64)> {
        self.slot.as_ref().map(|(t, r, _)| (*t, *r))
    }
}

impl<T: Clone + Debug> Crdt for LWWRegister<T> {
    fn merge(&mut self, other: &Self) {
        let wins = match (&self.slot, &other.slot) {
            (_, None) => false,
            (None, Some(_)) => true,
            (Some((t, r, _)), Some((ot, or, _))) => (ot, or) > (t, r),
        };
        if wins {
            self.slot.clone_from(&other.slot);
        }
    }

    fn wire_size(&self) -> usize {
        match &self.slot {
            None => 1,
            Some(_) => 16 + std::mem::size_of::<T>(),
        }
    }
}

impl<T: Clone + Debug> DeltaCrdt for LWWRegister<T> {
    type Delta = LWWRegister<T>;

    fn apply_delta(&mut self, delta: &Self::Delta) {
        self.merge(delta);
    }
}

/// Multi-value register: a dot store pairing each live write with the
/// [`Dot`] that named it, plus a causal context of everything observed.
/// A write supersedes the writes its replica had seen; writes it had
/// *not* seen survive the merge as siblings, so concurrency is surfaced
/// to the reader instead of being silently resolved.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MVRegister<T> {
    vals: BTreeMap<Dot, T>,
    ctx: DotContext,
}

impl<T> Default for MVRegister<T> {
    fn default() -> Self {
        MVRegister { vals: BTreeMap::new(), ctx: DotContext::new() }
    }
}

impl<T: Clone + Debug> MVRegister<T> {
    /// The empty register.
    pub fn new() -> Self {
        MVRegister { vals: BTreeMap::new(), ctx: DotContext::new() }
    }

    /// Write `value` at `replica`, superseding every value this replica
    /// has observed. Returns the delta (the new dot plus a context
    /// covering the superseded dots, so receivers drop them too).
    pub fn write(&mut self, replica: u64, value: T) -> MVRegister<T> {
        let dot = self.ctx.next_dot(replica);
        let mut delta = MVRegister::new();
        for old in self.vals.keys() {
            delta.ctx.insert(*old);
        }
        delta.ctx.insert(dot);
        delta.vals.insert(dot, value.clone());
        self.vals.clear();
        self.vals.insert(dot, value);
        delta
    }

    /// The surviving values (siblings), in dot order. One entry means no
    /// unresolved concurrency.
    pub fn values(&self) -> Vec<&T> {
        self.vals.values().collect()
    }

    /// Number of surviving siblings.
    pub fn len(&self) -> usize {
        self.vals.len()
    }

    /// True if no write has been observed.
    pub fn is_empty(&self) -> bool {
        self.vals.is_empty()
    }
}

/// The dot-store join shared by [`MVRegister`] and [`crate::ORSet`]:
/// keep a dot if both sides have it, or if one side has it and the
/// *other side's context has never seen it* (a write still in flight).
/// A dot one side lacks but whose context covers it was seen and
/// superseded — drop it.
fn join_dot_store<T: Clone>(
    a: &mut BTreeMap<Dot, T>,
    actx: &DotContext,
    b: &BTreeMap<Dot, T>,
    bctx: &DotContext,
) {
    a.retain(|dot, _| b.contains_key(dot) || !bctx.contains(dot));
    for (dot, v) in b {
        if !a.contains_key(dot) && !actx.contains(dot) {
            a.insert(*dot, v.clone());
        }
    }
}

impl<T: Clone + Debug> Crdt for MVRegister<T> {
    fn merge(&mut self, other: &Self) {
        join_dot_store(&mut self.vals, &self.ctx, &other.vals, &other.ctx);
        self.ctx.join(&other.ctx);
    }

    fn wire_size(&self) -> usize {
        self.vals.len() * (16 + std::mem::size_of::<T>()) + self.ctx.wire_size()
    }
}

impl<T: Clone + Debug> DeltaCrdt for MVRegister<T> {
    type Delta = MVRegister<T>;

    fn apply_delta(&mut self, delta: &Self::Delta) {
        self.merge(delta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lww_keeps_the_latest_write() {
        let mut a: LWWRegister<&str> = LWWRegister::new();
        let mut b = a.clone();
        let d1 = a.write(10, 1, "early");
        let d2 = b.write(20, 2, "late");
        a.apply_delta(&d2);
        b.apply_delta(&d1);
        assert_eq!(a.get(), Some(&"late"));
        assert_eq!(a, b, "order of delta arrival must not matter");
        assert_eq!(a.version(), Some((20, 2)));
    }

    #[test]
    fn lww_breaks_timestamp_ties_by_replica() {
        let mut a: LWWRegister<u32> = LWWRegister::new();
        let mut b: LWWRegister<u32> = LWWRegister::new();
        a.write(5, 1, 111);
        b.write(5, 2, 222);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.get(), Some(&222), "higher replica id wins the tie");
    }

    #[test]
    fn mv_register_keeps_concurrent_writes_as_siblings() {
        let mut a: MVRegister<&str> = MVRegister::new();
        let mut b: MVRegister<&str> = MVRegister::new();
        a.write(1, "left");
        b.write(2, "right");
        a.merge(&b);
        assert_eq!(a.len(), 2, "concurrent writes both survive");
        let mut vs = a.values();
        vs.sort();
        assert_eq!(vs, vec![&"left", &"right"]);
    }

    #[test]
    fn mv_register_write_supersedes_observed_siblings() {
        let mut a: MVRegister<&str> = MVRegister::new();
        let mut b: MVRegister<&str> = MVRegister::new();
        a.write(1, "left");
        b.write(2, "right");
        a.merge(&b);
        // a has seen both; its next write resolves the conflict...
        let resolve = a.write(1, "merged");
        assert_eq!(a.values(), vec![&"merged"]);
        // ...and shipping the delta resolves it at b, too.
        b.apply_delta(&resolve);
        assert_eq!(b.values(), vec![&"merged"]);
    }
}
