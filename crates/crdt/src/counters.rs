//! Replicated counters: the "amount of money in a bank" done the §6.2
//! way — per-replica tallies that merge by max, never by overwrite.

use std::collections::BTreeMap;

use quicksand_core::{WireCodec, WireError};

use crate::{Crdt, DeltaCrdt};

/// A grow-only counter: one monotone tally per replica; the value is the
/// sum and the merge is the pointwise max. Incrementing is a delta
/// mutator — it returns a one-entry counter carrying the new tally.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GCounter {
    counts: BTreeMap<u64, u64>,
}

impl GCounter {
    /// The zero counter.
    pub fn new() -> Self {
        GCounter::default()
    }

    /// Add `by` to this replica's tally, returning the delta (this
    /// replica's entry only).
    pub fn inc(&mut self, replica: u64, by: u64) -> GCounter {
        let c = self.counts.entry(replica).or_insert(0);
        *c += by;
        GCounter { counts: BTreeMap::from([(replica, *c)]) }
    }

    /// The counter's value: the sum of every replica's tally.
    pub fn value(&self) -> u64 {
        self.counts.values().sum()
    }

    /// One replica's tally.
    pub fn tally(&self, replica: u64) -> u64 {
        self.counts.get(&replica).copied().unwrap_or(0)
    }
}

impl Crdt for GCounter {
    fn merge(&mut self, other: &Self) {
        for (&r, &n) in &other.counts {
            let c = self.counts.entry(r).or_insert(0);
            *c = (*c).max(n);
        }
    }

    fn wire_size(&self) -> usize {
        self.counts.len() * 16
    }
}

impl DeltaCrdt for GCounter {
    type Delta = GCounter;

    fn apply_delta(&mut self, delta: &Self::Delta) {
        self.merge(delta);
    }
}

impl WireCodec for GCounter {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.counts.encode(buf);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(GCounter { counts: BTreeMap::decode(buf)? })
    }
}

/// An up-down counter: two [`GCounter`]s, one for increments and one for
/// decrements. The value may be read while concurrent decrements race —
/// bounding that race against real stock is what
/// `inventory`'s escrow wrapper is for (§5.3).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PNCounter {
    incs: GCounter,
    decs: GCounter,
}

impl PNCounter {
    /// The zero counter.
    pub fn new() -> Self {
        PNCounter::default()
    }

    /// Add `delta` (of either sign) at `replica`, returning the delta
    /// state to ship.
    pub fn add(&mut self, replica: u64, delta: i64) -> PNCounter {
        if delta >= 0 {
            PNCounter { incs: self.incs.inc(replica, delta as u64), decs: GCounter::new() }
        } else {
            PNCounter { incs: GCounter::new(), decs: self.decs.inc(replica, delta.unsigned_abs()) }
        }
    }

    /// The counter's value: total increments minus total decrements.
    pub fn value(&self) -> i64 {
        self.incs.value() as i64 - self.decs.value() as i64
    }
}

impl Crdt for PNCounter {
    fn merge(&mut self, other: &Self) {
        self.incs.merge(&other.incs);
        self.decs.merge(&other.decs);
    }

    fn wire_size(&self) -> usize {
        self.incs.wire_size() + self.decs.wire_size()
    }
}

impl DeltaCrdt for PNCounter {
    type Delta = PNCounter;

    fn apply_delta(&mut self, delta: &Self::Delta) {
        self.merge(delta);
    }
}

impl WireCodec for PNCounter {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.incs.encode(buf);
        self.decs.encode(buf);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(PNCounter { incs: GCounter::decode(buf)?, decs: GCounter::decode(buf)? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcounter_sums_across_replicas() {
        let mut a = GCounter::new();
        a.inc(1, 5);
        let mut b = GCounter::new();
        b.inc(2, 3);
        a.merge(&b);
        assert_eq!(a.value(), 8);
        assert_eq!(a.tally(1), 5);
        a.merge(&b); // idempotent
        assert_eq!(a.value(), 8);
    }

    #[test]
    fn gcounter_deltas_reproduce_the_mutation() {
        let mut full = GCounter::new();
        let mut mirror = GCounter::new();
        for by in [1, 4, 2] {
            let delta = full.inc(9, by);
            mirror.apply_delta(&delta);
        }
        assert_eq!(mirror, full);
        assert_eq!(mirror.value(), 7);
    }

    #[test]
    fn gcounter_merge_takes_pointwise_max_not_sum() {
        let mut a = GCounter::new();
        a.inc(1, 10);
        let mut stale = GCounter::new();
        stale.inc(1, 4); // an old view of replica 1
        a.merge(&stale);
        assert_eq!(a.value(), 10, "merging a stale tally must not add");
    }

    #[test]
    fn pncounter_goes_both_ways_and_deltas_converge() {
        let mut a = PNCounter::new();
        let mut b = PNCounter::new();
        let d1 = a.add(1, 10);
        let d2 = a.add(1, -3);
        b.apply_delta(&d1);
        b.apply_delta(&d2);
        assert_eq!(a.value(), 7);
        assert_eq!(b, a);
        let d3 = b.add(2, -20);
        a.apply_delta(&d3);
        assert_eq!(a.value(), -13);
    }
}
