//! `Replicated<C>`: a generic sim actor that keeps one [`DeltaCrdt`]
//! converged across a fleet of replicas by periodic anti-entropy.
//!
//! Each replica applies its local mutation plan, buffers the deltas its
//! mutators return (tagged with a local sequence number), and on every
//! sync tick ships each peer the *joined delta group* covering
//! everything the peer has not yet acknowledged. When a peer has fallen
//! behind the retained buffer — it was partitioned away, or the buffer
//! was capped — the replica falls back to shipping its **full state**,
//! which is always safe because the state is its own lattice join of
//! every delta (§8: idempotence means resending is harmless, so the
//! cheap plan is to send *more* than needed, never to coordinate).
//!
//! Every ship is metered (`crdt.bytes_sent`, labeled by kind) and runs
//! under a `crdt.anti_entropy` span, so the bench harness can compare
//! delta-shipping against naive full-state gossip on bytes-on-wire at
//! equal convergence — the `crdt_exp` experiment.

use std::collections::{BTreeMap, VecDeque};

use sim::{Actor, Context, NodeId, SimDuration};

use crate::{Crdt, DeltaCrdt};

/// What anti-entropy puts on the wire.
#[derive(Clone, Debug, Copy, PartialEq, Eq)]
pub enum ShipMode {
    /// Ship the whole state every round — the naive baseline.
    FullState,
    /// Ship joined delta groups, falling back to full state only when a
    /// peer is behind the retained buffer.
    Delta,
}

/// Anti-entropy protocol messages for a fleet replicating `C`.
#[derive(Clone, Debug)]
pub enum CrdtMsg<C: DeltaCrdt> {
    /// A joined delta group covering the sender's local sequence numbers
    /// `from_seq..to_seq`.
    Delta {
        /// First sequence number covered (receiver must have applied
        /// everything before it).
        from_seq: u64,
        /// One past the last sequence number covered.
        to_seq: u64,
        /// The join of the covered deltas.
        delta: C::Delta,
    },
    /// The sender's entire state, current through `to_seq`.
    Full {
        /// One past the last local sequence number folded into `state`.
        to_seq: u64,
        /// The full state.
        state: C,
    },
    /// Receiver has applied the sender's deltas through `through_seq`.
    Ack {
        /// One past the last applied sequence number.
        through_seq: u64,
    },
}

/// Estimated per-message envelope overhead (headers, tags) added to
/// [`Crdt::wire_size`] when metering bytes.
const ENVELOPE_BYTES: usize = 24;

const TAG_THINK: u64 = 1;
const TAG_SYNC: u64 = 2;

/// A deferred local mutation: called once against the replica's state,
/// returns the delta to buffer and ship.
pub type Mutator<C> = Box<dyn FnMut(&mut C) -> <C as DeltaCrdt>::Delta>;

/// Tuning for a [`Replicated`] fleet.
#[derive(Clone, Debug)]
pub struct ReplicatedConfig {
    /// How anti-entropy ships state.
    pub ship_mode: ShipMode,
    /// Interval between local plan steps.
    pub think: SimDuration,
    /// Interval between anti-entropy rounds.
    pub sync_every: SimDuration,
    /// Maximum retained deltas; older entries are dropped, forcing
    /// full-state fallback for peers still behind them.
    pub max_buffer: usize,
}

impl Default for ReplicatedConfig {
    fn default() -> Self {
        ReplicatedConfig {
            ship_mode: ShipMode::Delta,
            think: SimDuration::from_millis(10),
            sync_every: SimDuration::from_millis(25),
            max_buffer: 1024,
        }
    }
}

/// One replica of a [`DeltaCrdt`], driving a local mutation plan and
/// anti-entropy against its peers.
pub struct Replicated<C: DeltaCrdt> {
    /// Logical replica id used by the mutation plan (passed to CRDT
    /// mutators as the dot/tally namespace).
    pub replica: u64,
    cfg: ReplicatedConfig,
    state: C,
    peers: Vec<NodeId>,
    plan: VecDeque<Mutator<C>>,
    /// Locally-originated deltas awaiting peer acknowledgement, tagged
    /// with their sequence number. Front is the oldest retained.
    buffer: VecDeque<(u64, C::Delta)>,
    /// Next sequence number to assign (== one past the newest delta).
    next_seq: u64,
    /// Sequence number of the oldest retained delta; peers acked below
    /// this can only be served a full state.
    buffer_floor: u64,
    /// Per-peer: one past the last sequence number the peer has acked.
    peer_acks: BTreeMap<NodeId, u64>,
    /// Per-sender: one past the last sequence number applied locally.
    applied: BTreeMap<NodeId, u64>,
}

impl<C: DeltaCrdt + 'static> Replicated<C> {
    /// A replica starting from the lattice bottom (`C::default()`).
    pub fn new(
        replica: u64,
        peers: Vec<NodeId>,
        plan: Vec<Mutator<C>>,
        cfg: ReplicatedConfig,
    ) -> Self {
        Replicated {
            replica,
            cfg,
            state: C::default(),
            peers,
            plan: plan.into(),
            buffer: VecDeque::new(),
            next_seq: 0,
            buffer_floor: 0,
            peer_acks: BTreeMap::new(),
            applied: BTreeMap::new(),
        }
    }

    /// The replica's current state.
    pub fn state(&self) -> &C {
        &self.state
    }

    /// True once every local plan step has run.
    pub fn plan_done(&self) -> bool {
        self.plan.is_empty()
    }

    fn ship_full(&self, ctx: &mut Context<'_, CrdtMsg<C>>, peer: NodeId, fallback: bool) {
        let bytes = (self.state.wire_size() + ENVELOPE_BYTES) as u64;
        ctx.metrics().add_with("crdt.bytes_sent", bytes, &[("kind", "full")]);
        ctx.metrics().inc("crdt.ship.full");
        if fallback {
            ctx.metrics().inc("crdt.full_fallback");
        }
        ctx.send(peer, CrdtMsg::Full { to_seq: self.next_seq, state: self.state.clone() });
    }

    fn ship_delta_group(&self, ctx: &mut Context<'_, CrdtMsg<C>>, peer: NodeId, from_seq: u64) {
        let mut group = C::Delta::default();
        let mut count = 0u64;
        for (seq, d) in &self.buffer {
            if *seq >= from_seq {
                group.merge(d);
                count += 1;
            }
        }
        let bytes = (group.wire_size() + ENVELOPE_BYTES) as u64;
        ctx.metrics().add_with("crdt.bytes_sent", bytes, &[("kind", "delta")]);
        ctx.metrics().inc("crdt.ship.delta");
        ctx.metrics().record("crdt.delta_group_size", count as f64);
        ctx.send(peer, CrdtMsg::Delta { from_seq, to_seq: self.next_seq, delta: group });
    }

    fn prune_buffer(&mut self) {
        let min_ack = self.peer_acks.values().copied().min().unwrap_or(0);
        while let Some((seq, _)) = self.buffer.front() {
            if *seq < min_ack {
                self.buffer.pop_front();
            } else {
                break;
            }
        }
        self.buffer_floor = self.buffer.front().map(|(s, _)| *s).unwrap_or(self.next_seq);
    }
}

impl<C: DeltaCrdt + 'static> Actor<CrdtMsg<C>> for Replicated<C> {
    fn on_start(&mut self, ctx: &mut Context<'_, CrdtMsg<C>>) {
        for p in self.peers.clone() {
            self.peer_acks.insert(p, 0);
        }
        if !self.plan.is_empty() {
            ctx.set_timer(self.cfg.think, TAG_THINK);
        }
        ctx.set_timer(self.cfg.sync_every, TAG_SYNC);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, CrdtMsg<C>>, tag: u64) {
        match tag {
            TAG_THINK => {
                if let Some(mut step) = self.plan.pop_front() {
                    let delta = step(&mut self.state);
                    self.buffer.push_back((self.next_seq, delta));
                    self.next_seq += 1;
                    while self.buffer.len() > self.cfg.max_buffer {
                        self.buffer.pop_front();
                    }
                    self.buffer_floor =
                        self.buffer.front().map(|(s, _)| *s).unwrap_or(self.next_seq);
                    ctx.metrics().inc("crdt.local_ops");
                }
                if !self.plan.is_empty() {
                    ctx.set_timer(self.cfg.think, TAG_THINK);
                }
            }
            TAG_SYNC => {
                let span = ctx.start_span("crdt.anti_entropy");
                ctx.span_field(span, "replica", self.replica);
                ctx.span_field(span, "seq", self.next_seq);
                for peer in self.peers.clone() {
                    let acked = self.peer_acks.get(&peer).copied().unwrap_or(0);
                    if acked >= self.next_seq {
                        continue; // peer is caught up; nothing to ship
                    }
                    match self.cfg.ship_mode {
                        ShipMode::FullState => self.ship_full(ctx, peer, false),
                        ShipMode::Delta => {
                            if acked < self.buffer_floor {
                                self.ship_full(ctx, peer, true);
                            } else {
                                self.ship_delta_group(ctx, peer, acked);
                            }
                        }
                    }
                }
                ctx.finish_span(span);
                ctx.set_timer(self.cfg.sync_every, TAG_SYNC);
            }
            _ => {}
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_, CrdtMsg<C>>, from: NodeId, msg: CrdtMsg<C>) {
        match msg {
            CrdtMsg::Delta { from_seq, to_seq, delta } => {
                let applied = self.applied.entry(from).or_insert(0);
                if from_seq > *applied {
                    // A gap: an earlier delta group is still missing
                    // (e.g. a reordered duplicate). Ignore; the sender
                    // keeps shipping from our last ack.
                    ctx.metrics().inc("crdt.delta_gap");
                } else if to_seq > *applied {
                    self.state.apply_delta(&delta);
                    *applied = to_seq;
                }
                let through_seq = *applied;
                ctx.send(from, CrdtMsg::Ack { through_seq });
            }
            CrdtMsg::Full { to_seq, state } => {
                self.state.merge(&state);
                let applied = self.applied.entry(from).or_insert(0);
                *applied = (*applied).max(to_seq);
                let through_seq = *applied;
                ctx.metrics().inc("crdt.full_received");
                ctx.send(from, CrdtMsg::Ack { through_seq });
            }
            CrdtMsg::Ack { through_seq } => {
                let acked = self.peer_acks.entry(from).or_insert(0);
                *acked = (*acked).max(through_seq);
                self.prune_buffer();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GCounter;

    #[test]
    fn delta_groups_join_the_covered_range() {
        let mut r: Replicated<GCounter> =
            Replicated::new(0, vec![], vec![], ReplicatedConfig::default());
        // Simulate three buffered increments without a sim.
        for _ in 0..3 {
            let d = r.state.inc(0, 2);
            r.buffer.push_back((r.next_seq, d));
            r.next_seq += 1;
        }
        assert_eq!(r.state().value(), 6);
        assert_eq!(r.buffer.len(), 3);
        assert!(!r.plan_done() || r.plan.is_empty());
        // Pruning with no peers clears nothing below ack 0.
        r.prune_buffer();
        assert_eq!(r.buffer_floor, 0);
        r.peer_acks.insert(NodeId(9), 2);
        r.prune_buffer();
        assert_eq!(r.buffer_floor, 2);
        assert_eq!(r.buffer.len(), 1);
    }
}
