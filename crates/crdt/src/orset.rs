//! The add-wins observed-remove set: the CRDT answer to the §6.4
//! reappearing-delete anomaly.
//!
//! The paper's cart stores the *set of operations* and replays them in
//! canonical order, which means a remove can sort before the very add it
//! was deleting — and the item reappears. The OR-Set fixes the root
//! cause: each add mints a fresh [`Dot`], and a remove deletes exactly
//! the dots the remover *observed*. A concurrent add the remover never
//! saw keeps its dot and survives (add-wins); a re-ordered replay cannot
//! resurrect anything because membership is decided by dot bookkeeping,
//! not by replay order.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Debug;

use quicksand_core::{WireCodec, WireError};

use crate::ctx::{Dot, DotContext};
use crate::{Crdt, DeltaCrdt};

/// An add-wins observed-remove set over elements `E`.
///
/// Each present element carries the set of live dots (add instances) that
/// justify its membership; the causal context records every dot ever
/// observed, so merges can tell "not yet seen" from "seen and removed".
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ORSet<E: Ord> {
    entries: BTreeMap<E, BTreeSet<Dot>>,
    ctx: DotContext,
}

impl<E: Ord> Default for ORSet<E> {
    fn default() -> Self {
        ORSet { entries: BTreeMap::new(), ctx: DotContext::new() }
    }
}

impl<E: Ord + Clone + Debug> ORSet<E> {
    /// The empty set.
    pub fn new() -> Self {
        ORSet { entries: BTreeMap::new(), ctx: DotContext::new() }
    }

    /// Add `element` at `replica`, returning the delta. The fresh dot
    /// supersedes the element's previously-observed dots (re-adding is
    /// also a local coalesce), and the delta's context covers them so
    /// receivers drop them as well.
    pub fn insert(&mut self, replica: u64, element: E) -> ORSet<E> {
        let dot = self.ctx.next_dot(replica);
        let mut delta = ORSet::new();
        delta.ctx.insert(dot);
        if let Some(old) = self.entries.insert(element.clone(), BTreeSet::from([dot])) {
            for od in old {
                delta.ctx.insert(od);
            }
        }
        delta.entries.insert(element, BTreeSet::from([dot]));
        delta
    }

    /// Remove `element`, returning the delta: no live dots, just a
    /// context covering the observed add instances. Removing an element
    /// that is not present observed nothing, so the delta is empty and
    /// remote replicas are untouched — a blind delete cannot destroy an
    /// add it never saw.
    pub fn remove(&mut self, element: &E) -> ORSet<E> {
        let mut delta = ORSet::new();
        if let Some(dots) = self.entries.remove(element) {
            for d in dots {
                delta.ctx.insert(d);
            }
        }
        delta
    }

    /// True if `element` is present.
    pub fn contains(&self, element: &E) -> bool {
        self.entries.contains_key(element)
    }

    /// Iterate the present elements in order.
    pub fn iter(&self) -> impl Iterator<Item = &E> {
        self.entries.keys()
    }

    /// The present elements, in order.
    pub fn elements(&self) -> Vec<E> {
        self.entries.keys().cloned().collect()
    }

    /// Number of present elements.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no element is present.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl<E: Ord + Clone + Debug> Crdt for ORSet<E> {
    fn merge(&mut self, other: &Self) {
        // Per-element dot-store join: a dot survives if both sides hold
        // it, or one side holds it and the other's context never saw it.
        self.entries.retain(|e, dots| {
            let empty = BTreeSet::new();
            let theirs = other.entries.get(e).unwrap_or(&empty);
            dots.retain(|d| theirs.contains(d) || !other.ctx.contains(d));
            !dots.is_empty()
        });
        for (e, theirs) in &other.entries {
            let mine = self.entries.entry(e.clone()).or_default();
            for d in theirs {
                if !mine.contains(d) && !self.ctx.contains(d) {
                    mine.insert(*d);
                }
            }
            if mine.is_empty() {
                self.entries.remove(e);
            }
        }
        self.ctx.join(&other.ctx);
    }

    fn wire_size(&self) -> usize {
        let entry_bytes: usize =
            self.entries.values().map(|dots| std::mem::size_of::<E>() + dots.len() * 16).sum();
        entry_bytes + self.ctx.wire_size()
    }
}

impl<E: Ord + Clone + Debug> DeltaCrdt for ORSet<E> {
    type Delta = ORSet<E>;

    fn apply_delta(&mut self, delta: &Self::Delta) {
        self.merge(delta);
    }
}

impl<E: Ord + WireCodec> WireCodec for ORSet<E> {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.entries.encode(buf);
        self.ctx.encode(buf);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(ORSet { entries: BTreeMap::decode(buf)?, ctx: DotContext::decode(buf)? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_then_remove_is_empty_and_deltas_replicate_it() {
        let mut a: ORSet<u64> = ORSet::new();
        let mut b: ORSet<u64> = ORSet::new();
        let d1 = a.insert(1, 42);
        b.apply_delta(&d1);
        assert!(b.contains(&42));
        let d2 = a.remove(&42);
        b.apply_delta(&d2);
        assert!(!a.contains(&42));
        assert!(b.is_empty());
        assert_eq!(a, b);
    }

    #[test]
    fn concurrent_add_wins_over_remove() {
        let mut a: ORSet<u64> = ORSet::new();
        a.insert(1, 7);
        let mut b = a.clone();
        // a removes the instance it observed; b concurrently re-adds.
        a.remove(&7);
        b.insert(2, 7);
        let mut merged = a.clone();
        merged.merge(&b);
        assert!(merged.contains(&7), "the unobserved add survives");
        // The removed instance itself stays dead.
        let mut from_b = b.clone();
        from_b.merge(&a);
        assert_eq!(merged, from_b);
    }

    #[test]
    fn observed_remove_kills_every_observed_instance() {
        let mut a: ORSet<u64> = ORSet::new();
        let mut b: ORSet<u64> = ORSet::new();
        let da = a.insert(1, 5);
        let db = b.insert(2, 5);
        a.apply_delta(&db);
        b.apply_delta(&da);
        // a has observed both add instances; its remove kills both.
        let rm = a.remove(&5);
        b.apply_delta(&rm);
        assert!(!a.contains(&5));
        assert!(!b.contains(&5));
    }

    #[test]
    fn blind_remove_is_a_noop_everywhere() {
        let mut a: ORSet<u64> = ORSet::new();
        let mut b: ORSet<u64> = ORSet::new();
        b.insert(2, 9);
        let rm = a.remove(&9); // a never saw the add
        b.apply_delta(&rm);
        assert!(b.contains(&9), "a remove cannot delete what it never observed");
    }

    #[test]
    fn readd_after_remove_comes_back() {
        let mut a: ORSet<&str> = ORSet::new();
        a.insert(1, "milk");
        a.remove(&"milk");
        a.insert(1, "milk");
        assert!(a.contains(&"milk"));
        assert_eq!(a.len(), 1);
    }
}
