//! Experiment harness: a fleet of [`Replicated`] OR-Sets converging
//! through lossy links and a partition, instrumented for the
//! delta-vs-full-state ablation (`crdt_exp`).
//!
//! The driver runs the simulation in short slices and records the first
//! instant at which every replica holds the *same* state with every
//! local plan exhausted — the convergence time anti-entropy modes are
//! compared at. Bytes-on-wire come from the `crdt.bytes_sent` counters
//! the actor meters through [`Crdt::wire_size`].

use sim::{LinkConfig, MetricSet, Network, NodeId, SimDuration, SimTime, Simulation, SpanStore};

use crate::orset::ORSet;
use crate::replicated::{CrdtMsg, Mutator, Replicated, ReplicatedConfig, ShipMode};

/// Scenario for one replication run.
#[derive(Clone, Debug)]
pub struct ReplicationScenario {
    /// Number of replicas (full mesh).
    pub n_replicas: usize,
    /// Local plan steps per replica (a deterministic add/remove mix).
    pub ops_per_replica: usize,
    /// How anti-entropy ships state.
    pub ship_mode: ShipMode,
    /// Interval between plan steps.
    pub think: SimDuration,
    /// Interval between anti-entropy rounds.
    pub sync_every: SimDuration,
    /// Delta-buffer cap (see [`ReplicatedConfig::max_buffer`]).
    pub max_buffer: usize,
    /// Link characteristics between replicas.
    pub link: LinkConfig,
    /// Optional partition window splitting the fleet in half.
    pub partition: Option<(SimTime, SimTime)>,
    /// Hard stop.
    pub horizon: SimTime,
}

impl Default for ReplicationScenario {
    fn default() -> Self {
        ReplicationScenario {
            n_replicas: 5,
            ops_per_replica: 40,
            ship_mode: ShipMode::Delta,
            think: SimDuration::from_millis(10),
            sync_every: SimDuration::from_millis(25),
            max_buffer: 1024,
            link: LinkConfig::lossy(SimDuration::from_millis(1), SimDuration::from_millis(5), 0.05),
            partition: None,
            horizon: SimTime::from_secs(30),
        }
    }
}

/// What one replication run produced.
#[derive(Debug)]
pub struct ReplicationReport {
    /// True if every replica held the same state before the horizon.
    pub converged: bool,
    /// First slice boundary at which the fleet was converged.
    pub converged_at: Option<SimTime>,
    /// Total anti-entropy payload shipped (all kinds).
    pub bytes_shipped: u64,
    /// Bytes shipped as delta groups.
    pub delta_bytes: u64,
    /// Bytes shipped as full states.
    pub full_bytes: u64,
    /// Number of delta-group ships.
    pub delta_ships: u64,
    /// Number of full-state ships (baseline rounds or fallbacks).
    pub full_ships: u64,
    /// Full-state ships forced by a peer lagging the delta buffer.
    pub full_fallbacks: u64,
    /// Elements present in the converged set.
    pub final_elements: usize,
    /// The run's metrics (JSON-exportable).
    pub metrics: MetricSet,
    /// The run's span store.
    pub spans: SpanStore,
}

/// The deterministic per-replica workload: a mix of adds and removes
/// over a small element space, varied by replica id so the sets
/// genuinely conflict. Every fourth step removes the element added two
/// steps earlier (if still present), so removes race adds across
/// replicas — the §6.4 shape.
fn orset_plan(replica: u64, ops: usize) -> Vec<Mutator<ORSet<u64>>> {
    (0..ops)
        .map(|k| {
            let step: Mutator<ORSet<u64>> = if k % 4 == 3 {
                let element = (replica * 3 + k as u64 - 2) % 16;
                Box::new(move |s: &mut ORSet<u64>| s.remove(&element))
            } else {
                let element = (replica * 3 + k as u64) % 16;
                Box::new(move |s: &mut ORSet<u64>| s.insert(replica, element))
            };
            step
        })
        .collect()
}

/// Run a fleet of OR-Set replicas under `scenario` and measure
/// convergence and bytes-on-wire.
pub fn run_orset_replication(scenario: &ReplicationScenario, seed: u64) -> ReplicationReport {
    let net = Network::new(scenario.link);
    let mut sim: Simulation<CrdtMsg<ORSet<u64>>> = Simulation::with_network(seed, net);

    let nodes: Vec<NodeId> = (0..scenario.n_replicas).map(NodeId).collect();
    for (i, &me) in nodes.iter().enumerate() {
        let peers: Vec<NodeId> = nodes.iter().copied().filter(|&p| p != me).collect();
        let cfg = ReplicatedConfig {
            ship_mode: scenario.ship_mode,
            think: scenario.think,
            sync_every: scenario.sync_every,
            max_buffer: scenario.max_buffer,
        };
        let plan = orset_plan(i as u64, scenario.ops_per_replica);
        sim.add_node(Replicated::new(i as u64, peers, plan, cfg));
    }

    if let Some((start, end)) = scenario.partition {
        let mid = scenario.n_replicas / 2;
        sim.schedule_partition(start, &nodes[..mid], &nodes[mid..]);
        sim.schedule_heal(end);
    }

    // Run in slices; stop at the first boundary where every plan has
    // drained and every replica holds the same state.
    let slice = SimDuration::from_millis(5);
    let mut converged_at = None;
    let mut t = SimTime::ZERO;
    while t < scenario.horizon {
        t += slice;
        sim.run_until(t);
        let all_done = nodes.iter().all(|&n| sim.actor::<Replicated<ORSet<u64>>>(n).plan_done());
        if !all_done {
            continue;
        }
        let first = sim.actor::<Replicated<ORSet<u64>>>(nodes[0]).state();
        if nodes[1..].iter().all(|&n| sim.actor::<Replicated<ORSet<u64>>>(n).state() == first) {
            converged_at = Some(t);
            break;
        }
    }

    let metrics = sim.metrics().clone();
    let final_elements = sim.actor::<Replicated<ORSet<u64>>>(nodes[0]).state().len();
    ReplicationReport {
        converged: converged_at.is_some(),
        converged_at,
        bytes_shipped: metrics.counter("crdt.bytes_sent"),
        delta_bytes: metrics.counter_with("crdt.bytes_sent", &[("kind", "delta")]),
        full_bytes: metrics.counter_with("crdt.bytes_sent", &[("kind", "full")]),
        delta_ships: metrics.counter("crdt.ship.delta"),
        full_ships: metrics.counter("crdt.ship.full"),
        full_fallbacks: metrics.counter("crdt.full_fallback"),
        final_elements,
        metrics,
        spans: sim.spans().clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_fleet_converges_through_loss() {
        let scenario = ReplicationScenario::default();
        let report = run_orset_replication(&scenario, 42);
        assert!(report.converged, "fleet must converge before the horizon");
        assert!(report.delta_ships > 0);
        assert!(report.bytes_shipped > 0);
    }

    #[test]
    fn full_state_fleet_converges_but_ships_more_bytes() {
        let mut scenario = ReplicationScenario::default();
        let delta = run_orset_replication(&scenario, 42);
        scenario.ship_mode = ShipMode::FullState;
        let full = run_orset_replication(&scenario, 42);
        assert!(full.converged);
        assert!(delta.converged);
        assert!(
            delta.bytes_shipped < full.bytes_shipped,
            "delta {} >= full {}",
            delta.bytes_shipped,
            full.bytes_shipped
        );
    }

    #[test]
    fn partition_forces_full_state_fallback_and_still_converges() {
        let scenario = ReplicationScenario {
            partition: Some((SimTime::from_millis(50), SimTime::from_millis(400))),
            max_buffer: 4,
            ..ReplicationScenario::default()
        };
        let report = run_orset_replication(&scenario, 7);
        assert!(report.converged, "fleet must reconverge after the heal");
        assert!(
            report.full_fallbacks > 0,
            "a 4-delta buffer across a 350ms partition must overflow"
        );
    }

    #[test]
    fn anti_entropy_rounds_are_spanned() {
        let report = run_orset_replication(&ReplicationScenario::default(), 11);
        assert!(report.spans.spans().iter().any(|s| s.name == "crdt.anti_entropy"));
    }
}
